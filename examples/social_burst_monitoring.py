#!/usr/bin/env python3
"""Bursty social-stream monitoring: the workload the paper targets.

Section I: "In many practical applications, the graph updates are bursty,
both with periods of significant activity and periods of relative calm.
Existing maintenance algorithms fail to handle large bursts."

This example replays a bursty edge stream over a power-law social graph
through three maintainers -- the sequential ``traversal`` baseline, and the
paper's ``mod`` and ``setmb`` -- on the simulated 2x16-core machine, and
reports per-batch simulated latency at 1 and 16 threads.  The shapes to
look for (they are printed at the end):

* on calm trickles, ``setmb`` has the lowest latency;
* on bursts, ``mod`` stays flat while the sequential baseline's cost
  explodes with batch size;
* threads help the batch algorithms on bursts and do nothing for the
  sequential baseline.

Run:  python examples/social_burst_monitoring.py
"""

from repro import CoreMaintainer, SimulatedRuntime, peel
from repro.graph.generators import powerlaw_social
from repro.graph.streams import BurstySchedule, BurstyStream


def main() -> None:
    print("building the social graph and three maintainers...")
    algos = ["traversal", "mod", "setmb"]
    graphs = {a: powerlaw_social(1500, 9, seed=11) for a in algos}
    runtimes = {a: SimulatedRuntime(thread_counts=(1, 16)) for a in algos}
    maintainers = {
        a: CoreMaintainer(graphs[a], algorithm=a, rt=runtimes[a]) for a in algos
    }

    schedule = BurstySchedule(calm_size=3, burst_factor=120, p_burst=0.2, seed=3)
    streams = {a: BurstyStream(graphs[a], schedule, seed=5) for a in algos}
    rounds = {a: list(streams[a].rounds(12)) for a in algos}

    per_batch = {a: [] for a in algos}
    print(f"\n{'batch':>5} {'size':>6} | " + " | ".join(
        f"{a + ' T1':>14} {a + ' T16':>10}" for a in algos))
    for i in range(12):
        row = []
        size = rounds[algos[0]][i][0]
        for a in algos:
            _, deletion, insertion = rounds[a][i]
            rt = runtimes[a]
            rt.reset_clock()
            maintainers[a].apply_batch(deletion)
            maintainers[a].apply_batch(insertion)
            metrics = rt.take_metrics()
            t1, t16 = metrics.elapsed_seconds(1), metrics.elapsed_seconds(16)
            per_batch[a].append((size, t1, t16))
            row.append(f"{t1 * 1e3:>12.3f}ms {t16 * 1e3:>8.3f}ms")
        print(f"{i:>5} {size:>6} | " + " | ".join(row))

    # verify every maintainer against the oracle at the end
    for a in algos:
        assert maintainers[a].kappa() == peel(graphs[a]), f"{a} diverged!"

    print("\nsummary (simulated seconds, totals over the stream)")
    calm = [i for i, (s, _, _) in enumerate(per_batch["mod"]) if s <= 10]
    burst = [i for i in range(12) if i not in calm]
    for a in algos:
        t1 = sum(per_batch[a][i][1] for i in range(12))
        t16 = sum(per_batch[a][i][2] for i in range(12))
        bt = sum(per_batch[a][i][2] for i in burst) if burst else 0.0
        print(f"  {a:>10}: total T1={t1 * 1e3:8.2f}ms  T16={t16 * 1e3:8.2f}ms"
              f"  burst-only T16={bt * 1e3:8.2f}ms")
    if calm and burst:
        calm_best = min(algos, key=lambda a: sum(per_batch[a][i][2] for i in calm))
        burst_best = min(
            ["traversal", "mod"], key=lambda a: sum(per_batch[a][i][2] for i in burst))
        print(f"\n  calm periods won by: {calm_best}")
        print(f"  bursts won by (vs sequential): {burst_best}")
    print("\nall consistency checks passed.")


if __name__ == "__main__":
    main()
