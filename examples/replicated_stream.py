#!/usr/bin/env python3
"""Replicate a maintenance session to hot standbys, then fail over.

``durable_stream.py`` survives ``kill -9`` by replaying the write-ahead
log after the process comes back.  This example removes the "comes back"
requirement: with ``replicas=``, every committed batch is shipped (in raw
WAL wire format, over a simulated, fault-injectable transport) to hot
standbys that replay it through the same recovery machinery and serve
``kappa`` reads at a bounded-staleness watermark.  When the primary dies,
the standby with the highest applied watermark is promoted -- no replay,
its memory *is* the recovered state -- and a monotonically increasing
term fences the dead primary's stragglers.

The script streams the paper's remove/reinsert workload through a
replicated primary while dropping and tearing shipments in flight,
routes reads by staleness budget, kills the primary mid-stream, promotes,
and verifies the promoted core numbers against an uninterrupted oracle
and fresh peeling.

Run:  python examples/replicated_stream.py
"""

import shutil
import tempfile

from repro import CoreMaintainer
from repro.core.verify import verify_kappa
from repro.graph.batch import Batch, BatchProtocol
from repro.graph.generators import powerlaw_social
from repro.replication import StaleTermError, promote_on_failure
from repro.resilience import FaultPlan


def main(n_vertices: int = 300, rounds: int = 8, seed: int = 11,
         fail_after: int = 10) -> None:
    workdir = tempfile.mkdtemp(prefix="replicated-stream-")
    print(f"primary directory: {workdir}")

    def substrate():
        return powerlaw_social(n_vertices, 6, seed=seed)

    scratch = CoreMaintainer(substrate(), algorithm="mod")
    proto = BatchProtocol(scratch.sub, seed=seed + 1)
    batches = []
    for _ in range(rounds):
        for b in proto.remove_reinsert(8):
            batches.append(list(b))
            scratch.apply_batch(Batch(list(b)))

    # chaos on replica 0's link: a dropped and a torn shipment, healed by
    # retransmit; the divergence tripwire stays armed on every shipment
    chaos = [FaultPlan.drop_shipment(2), FaultPlan.tear_shipment(5)]
    m = CoreMaintainer(
        substrate(), algorithm="mod", durable=workdir,
        durability={"checkpoint_every": 4},
        replicas=2, replication={"fault_plans": {0: chaos}},
    )
    primary = m.impl
    print(f"\nstreaming with 2 hot standbys (chaos armed on replica 0)...")
    applied = 0
    for batch in batches[:fail_after]:
        primary.apply_batch(Batch(list(batch)))
        applied += 1
    primary.sync_replicas()
    print(f"  {applied} batches committed; max standby lag "
          f"{primary.max_lag()} batches; link-0 chaos: "
          f"dropped={primary.links[0].stats['dropped']} "
          f"torn={primary.links[0].stats['torn']}")

    # bounded-staleness reads: budget 0 only accepts a standby whose
    # applied watermark equals the primary's committed watermark
    rs = m.replica_set
    probe = next(iter(primary.tau))
    for _ in range(4):
        rs.kappa_of(probe, max_staleness=0)
    print(f"  budget-0 reads routed: {rs.reads} (standbys absorbed "
          f"{rs.replica_read_fraction():.0%})")

    print("\nkilling the primary (process death, WAL handle dropped)...")
    fh = primary.impl.wal._fh
    if fh is not None:
        fh.close()
    replicas = primary.replicas
    promoted = promote_on_failure(replicas)
    print(f"  promoted replica-{promoted.promoted_from} at watermark "
          f"{promoted.committed_seqno}, new term {promoted.term}")

    oracle = CoreMaintainer(substrate(), algorithm="mod")
    for batch in batches[:promoted.committed_seqno]:
        oracle.apply_batch(Batch(list(batch)))
    assert promoted.kappa() == oracle.kappa(), "promotion diverged"
    verify_kappa(promoted._inner_algorithm())
    print("  promoted tau == uninterrupted oracle == peeling")

    # the deposed primary limps back and announces itself on its old
    # term: the promoted timeline fences it by the term stamp
    try:
        primary.heartbeat()
        primary.pump(2)
        raise SystemExit("the stale primary was not fenced!")
    except StaleTermError as fenced:
        print(f"  old primary fenced: {fenced}")

    print("\nfinishing the stream on the new primary...")
    for batch in batches[promoted.committed_seqno:]:
        promoted.apply_batch(Batch(list(batch)))
    promoted.sync_replicas()
    assert promoted.kappa() == scratch.kappa(), "the finished stream diverged"
    for replica in promoted.replicas:
        assert replica.kappa() == promoted.kappa()
    promoted.close()

    shutil.rmtree(workdir, ignore_errors=True)
    print("  full stream complete on the promoted primary; "
          "all standbys converged")
    print("\nfailover complete: zero committed batches lost, "
          "divergence tripwire never fired")


if __name__ == "__main__":
    main()
