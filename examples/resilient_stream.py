#!/usr/bin/env python3
"""A supervised bursty stream that survives everything thrown at it.

The paper frames the goal as maintenance-as-a-service (Section I); a
service meets failures a benchmark never sees.  This example replays a
bursty remove/reinsert stream over a power-law social graph through a
:class:`ResilientMaintainer` while a chaos harness injects, at exact
reproducible positions:

* a transient crash mid-batch  -- rolled back transactionally, retried,
  and applied cleanly on the second attempt;
* a poison batch that crashes every attempt -- quarantined with a
  structured report while the stream keeps flowing;
* silent tau corruption on the final batch -- caught by the closing
  drift audit and healed by a static reseed.

The run ends with a full verification against the independent peeling
oracle: clean, despite every fault.

Run:  python examples/resilient_stream.py
"""

from repro import peel
from repro.graph.generators import powerlaw_social
from repro.graph.streams import BurstySchedule, BurstyStream
from repro.resilience import FaultInjector, FaultPlan, ResilientMaintainer


def main(n_vertices: int = 400, rounds: int = 12, seed: int = 7) -> None:
    print("building the social graph and its supervised maintainer...")
    g = powerlaw_social(n_vertices, 6, seed=seed)
    rm = ResilientMaintainer(
        g, "mod", max_retries=2, audit_every=0, audit_sample=None, seed=seed
    )

    # rounds yield (size, deletion, insertion): 2 batches per round
    last_batch = 2 * rounds - 1
    plans = (
        FaultPlan.raise_at(batch=3, change=2),                    # transient
        FaultPlan.raise_at(batch=8, change=0, transient=False),   # poison
        FaultPlan.corrupt_tau(batch=last_batch, delta=5),         # silent drift
    )
    injector = FaultInjector(rm, plans)
    schedule = BurstySchedule(calm_size=4, burst_factor=40, p_burst=0.25, seed=3)
    stream = BurstyStream(g, schedule, seed=seed + 1)

    print(f"\nreplaying {rounds} bursty rounds with {len(plans)} armed faults...")
    print(f"{'batch':>5} {'size':>5}  outcome")
    for i, (_, deletion, insertion) in enumerate(stream.rounds(rounds)):
        for batch in (deletion, insertion):
            report = injector.apply_batch(batch)
            note = report.status
            if report.status == "retried":
                note += f" (succeeded on attempt {report.attempts})"
            elif report.status == "quarantined":
                note += f" -- stream continues ({report.error})"
            print(f"{injector._cursor - 1:>5} {len(batch):>5}  {note}")

    print("\nquarantine ledger:")
    for q in rm.quarantine:
        print(f"  {q}")
    assert len(rm.quarantine) == 1, "exactly the poison batch is quarantined"

    print("\nclosing drift audit (full, unsampled):", end=" ")
    outcome = rm.audit()
    print(outcome)
    assert outcome == "healed", "the injected corruption is caught and healed"

    print("final verification against the peeling oracle:", end=" ")
    assert rm.kappa() == peel(g), "diverged!"
    s = rm.stats
    print("clean")
    print(
        f"\nstats: applied={s['applied']} retries={s['retries']} "
        f"quarantined={s['quarantined']} heals={s['heals']}"
    )
    fired = {id(p) for p in injector.fired}  # poison plans fire once per attempt
    assert fired == {id(p) for p in plans}, "every armed fault fired"
    print("all faults fired: True")
    print("\nthe stream survived every injected fault with verified state.")


if __name__ == "__main__":
    main()
