#!/usr/bin/env python3
"""Pandemic contact tracing with dynamic hypergraph k-cores (paper §II-E).

The paper motivates hypergraph cores with co-occurrence hypergraphs:
people are vertices, and every close-contact event (a meeting, a shared
room) is a hyperedge over its participants.  A k-core then isolates groups
with *deep, repeated* mutual exposure -- unlike a plain contact graph,
where one big event inflates everyone's degree (the paper's "person F"
problem).

This example

1. rebuilds the paper's Figure 3 scenario and shows the F-vs-graph
   contrast explicitly,
2. then streams a day of synthetic contact events (pin changes: people
   join and leave meetings!) through the ``mod`` maintainer, flagging
   people whose core value crosses an alert threshold.

Run:  python examples/pandemic_contact_tracing.py
"""

import random

from repro import CoreMaintainer, DynamicHypergraph, peel
from repro.graph.dynamic_graph import DynamicGraph


def figure3() -> None:
    print("=" * 64)
    print("Figure 3: why hypergraph cores, not graph cores")
    print("=" * 64)
    events = {
        "meeting1": ["A", "B", "E"],
        "meeting2": ["B", "C", "D", "E"],
        "meeting3": ["B", "C", "D"],
        "meeting4": ["C", "D", "E"],
        "hallway": ["A", "B"],
        "standup": ["B", "D", "E"],
        "big_event": ["A", "B", "C", "D", "E", "F"],
    }
    h = DynamicHypergraph.from_hyperedges(events)
    hyper_kappa = peel(h)

    # the graph view: clique-expand every event
    g = DynamicGraph()
    for people in events.values():
        for i, u in enumerate(people):
            for v in people[i + 1:]:
                g.add_edge(u, v)
    graph_kappa = peel(g)

    print(f"{'person':>8} {'graph kappa':>12} {'hypergraph kappa':>18}")
    for p in "ABCDEF":
        print(f"{p:>8} {graph_kappa[p]:>12} {hyper_kappa[p]:>18}")
    print(
        "\nPerson F attends one big event: the graph view gives F the same"
        f"\ncore value as everyone else ({graph_kappa['F']}), the hypergraph view"
        f" correctly\nisolates F at kappa={hyper_kappa['F']}."
    )


def streaming_day(n_people: int = 120, n_events: int = 200, seed: int = 7) -> None:
    print()
    print("=" * 64)
    print("Streaming a day of contact events (pin-change model)")
    print("=" * 64)
    rng = random.Random(seed)
    h = DynamicHypergraph()
    m = CoreMaintainer(h, algorithm="mod")
    alert_threshold = 3
    alerted = set()

    households = [list(range(i, min(i + 4, n_people))) for i in range(0, n_people, 4)]
    event_id = 0
    open_events = []

    for step in range(n_events):
        roll = rng.random()
        if roll < 0.55 or not open_events:
            # a new gathering: mostly one household plus drop-ins
            event_id += 1
            base = rng.choice(households)
            people = set(rng.sample(base, k=max(2, len(base) - 1)))
            while rng.random() < 0.4:
                people.add(rng.randrange(n_people))
            m.insert_hyperedge(("event", event_id), sorted(people))
            open_events.append(("event", event_id))
        elif roll < 0.8:
            # someone drops into an ongoing event: a single pin insertion
            ev = rng.choice(open_events)
            m.insert_pin(ev, rng.randrange(n_people))
        else:
            # someone leaves early: a single pin deletion
            ev = rng.choice(open_events)
            pins = list(h.pins(ev))
            if len(pins) > 1:
                m.remove_pin(ev, rng.choice(pins))
            else:
                m.remove_hyperedge(ev)
                open_events.remove(ev)

        for person, k in m.kappa().items():
            if k >= alert_threshold and person not in alerted:
                alerted.add(person)
                print(f"  step {step:3d}: person {person:3} entered the "
                      f"{k}-core -- dense repeated exposure")

    kappa = m.kappa()
    assert kappa == peel(h), "maintained values diverged from oracle!"
    top = sorted(kappa.items(), key=lambda kv: -kv[1])[:8]
    print(f"\nend of day: {h.num_edges()} open events, {h.num_pins()} pins")
    print("highest-exposure individuals:",
          ", ".join(f"{p}(k={k})" for p, k in top))
    print(f"{len(alerted)} people crossed the alert threshold "
          f"(kappa >= {alert_threshold}) during the day.")


if __name__ == "__main__":
    figure3()
    streaming_day()
