#!/usr/bin/env python3
"""Sharded distributed k-core maintenance on the simulated cluster (§VI).

The paper's final future-work item is taking these algorithms
distributed.  This example cuts a social graph into per-node shards
(owned vertices + ghost halo ring), runs the distributed static
computation, then maintains through a stream of batches -- reporting
supersteps, boundary traffic (bytes of delta messages) and load balance
as node count and partitioner vary.  The maintainer never mutates the
caller's graph, so the example mirror-applies each batch to its own copy
for the oracle check.

Run:  python examples/distributed_cores.py
"""

from repro import peel
from repro.distributed import (
    PARTITIONERS,
    ClusterSpec,
    DistributedModMaintainer,
    partition_stats,
)
from repro.graph.batch import BatchProtocol
from repro.graph.generators import powerlaw_social

NODES = (1, 2, 4, 8)
BATCH = 50
ROUNDS = 3


def run(nodes: int, partitioner_name: str) -> dict:
    g = powerlaw_social(800, 8, seed=31)
    partition = PARTITIONERS[partitioner_name](g, nodes)
    pstats = partition_stats(g, partition, nodes)
    m = DistributedModMaintainer(g, ClusterSpec(nodes=nodes),
                                 partition=partition)
    startup_bytes = m.cluster.metrics.message_bytes
    proto = BatchProtocol(g, seed=32)
    for _ in range(ROUNDS):
        deletion, insertion = proto.remove_reinsert(BATCH)
        for batch in (deletion, insertion):
            m.apply_batch(batch)
            for change in batch:
                g.apply(change)
    assert m.kappa() == peel(g), "distributed result diverged from oracle!"
    metrics = m.cluster.metrics
    return {
        "supersteps": metrics.supersteps,
        "boundary_kb": (metrics.message_bytes - startup_bytes) / 1024,
        "cut": pstats.edge_cut_fraction,
        "replication": pstats.replication_factor,
        "imbalance": metrics.load_imbalance(),
        "elapsed_ms": metrics.elapsed_seconds() * 1e3,
    }


def main() -> None:
    print(f"sharded distributed mod over {ROUNDS} remove/reinsert rounds "
          f"of {BATCH} edges (hash partition)\n")
    print(f"{'nodes':>6} {'supersteps':>11} {'boundary':>10} "
          f"{'imbalance':>10} {'elapsed':>10}")
    for nodes in NODES:
        r = run(nodes, "hash")
        print(f"{nodes:>6} {r['supersteps']:>11} {r['boundary_kb']:>8.1f}kB "
              f"{r['imbalance']:>10.2f} {r['elapsed_ms']:>8.2f}ms")

    print("\npartitioners at 4 nodes (boundary traffic tracks the cut):")
    for name in sorted(PARTITIONERS):
        r = run(4, name)
        print(f"  {name:>15s}: cut={r['cut']:.2f} "
              f"replication={r['replication']:.2f} "
              f"boundary={r['boundary_kb']:.1f}kB "
              f"imbalance={r['imbalance']:.2f} "
              f"elapsed={r['elapsed_ms']:.2f}ms")
    print("\nevery configuration verified against the peeling oracle.")


if __name__ == "__main__":
    main()
