#!/usr/bin/env python3
"""Distributed k-core maintenance on the simulated cluster (§VI).

The paper's final future-work item is taking these algorithms distributed.
This example partitions a social graph across a simulated BSP cluster,
runs the distributed static computation, then maintains through a stream
of batches -- reporting supersteps, message volume (with and without
Pregel-style combining) and load balance as the node count grows.

Run:  python examples/distributed_cores.py
"""

from repro import peel
from repro.distributed import (
    ClusterSpec,
    DistributedModMaintainer,
    degree_balanced_partition,
    hash_partition,
)
from repro.graph.batch import BatchProtocol
from repro.graph.generators import powerlaw_social

NODES = (1, 2, 4, 8)
BATCH = 50
ROUNDS = 3


def run(nodes: int, combine: bool, partitioner) -> dict:
    g = powerlaw_social(800, 8, seed=31)
    spec = ClusterSpec(nodes=nodes, combine_messages=combine)
    m = DistributedModMaintainer(g, spec, partition=partitioner(g, nodes))
    init_msgs = m.cluster.metrics.messages
    proto = BatchProtocol(g, seed=32)
    for _ in range(ROUNDS):
        deletion, insertion = proto.remove_reinsert(BATCH)
        m.apply_batch(deletion)
        m.apply_batch(insertion)
    assert m.kappa() == peel(g), "distributed result diverged from oracle!"
    metrics = m.cluster.metrics
    return {
        "supersteps": metrics.supersteps,
        "messages": metrics.messages - init_msgs,
        "imbalance": metrics.load_imbalance(),
        "elapsed_ms": metrics.elapsed_seconds() * 1e3,
    }


def main() -> None:
    print(f"distributed mod over {ROUNDS} remove/reinsert rounds of "
          f"{BATCH} edges (hash partition, per-update messages)\n")
    print(f"{'nodes':>6} {'supersteps':>11} {'messages':>10} "
          f"{'imbalance':>10} {'elapsed':>10}")
    for nodes in NODES:
        r = run(nodes, combine=False, partitioner=hash_partition)
        print(f"{nodes:>6} {r['supersteps']:>11} {r['messages']:>10} "
              f"{r['imbalance']:>10.2f} {r['elapsed_ms']:>8.2f}ms")

    print("\nablations at 4 nodes:")
    for label, combine, part in (
        ("per-update + hash", False, hash_partition),
        ("combined  + hash", True, hash_partition),
        ("combined  + LPT ", True, degree_balanced_partition),
    ):
        r = run(4, combine, part)
        print(f"  {label}: messages={r['messages']:>7} "
              f"imbalance={r['imbalance']:.2f} elapsed={r['elapsed_ms']:.2f}ms")
    print("\nevery configuration verified against the peeling oracle.")


if __name__ == "__main__":
    main()
