#!/usr/bin/env python3
"""Sliding-window k-cores over a temporal contact stream.

The paper's co-occurrence hypergraphs (§II-E) are inherently temporal:
contacts matter "during a time period".  This example maintains the k-core
decomposition of *the last 48 hours* of contact events: every window
advance emits one mixed batch (expiring old events, inserting new ones) --
exactly the fully-dynamic mixed streams the paper's algorithms process
without separating insertions from deletions (§V-D).

Run:  python examples/sliding_window_cores.py
"""

import random

from repro import CoreMaintainer, DynamicHypergraph, peel
from repro.graph.window import SlidingWindowStream, TimedEvent

HOURS = 1.0
WINDOW = 48 * HOURS
TICK = 6 * HOURS
DAYS = 12
PEOPLE = 80


def synth_events(seed: int = 13):
    """A diurnal contact pattern: households every evening, workplaces on
    weekdays, and one big weekend gathering."""
    rng = random.Random(seed)
    households = [list(range(i, min(i + 4, PEOPLE))) for i in range(0, PEOPLE, 4)]
    workplaces = [rng.sample(range(PEOPLE), k=6) for _ in range(8)]
    events = []
    eid = 0
    for day in range(DAYS):
        base = day * 24 * HOURS
        for hh in households:
            events.append(TimedEvent.of(base + 20 * HOURS, f"hh{eid}", hh))
            eid += 1
        if day % 7 < 5:  # weekday shifts
            for wp in workplaces:
                crew = [p for p in wp if rng.random() < 0.8]
                if len(crew) >= 2:
                    events.append(TimedEvent.of(base + 10 * HOURS, f"wp{eid}", crew))
                    eid += 1
        elif day % 7 == 6:  # the weekend gathering
            crowd = rng.sample(range(PEOPLE), k=18)
            events.append(TimedEvent.of(base + 16 * HOURS, f"party{eid}", crowd))
            eid += 1
    return events


def main() -> None:
    events = synth_events()
    print(f"replaying {len(events)} contact events through a "
          f"{WINDOW:.0f}h window, ticking every {TICK:.0f}h\n")

    h = DynamicHypergraph()
    m = CoreMaintainer(h, algorithm="mod")
    window = SlidingWindowStream(horizon=WINDOW)

    print(f"{'t (h)':>7} {'live events':>12} {'batch':>6} "
          f"{'people':>7} {'kmax':>5}  deepest core members")
    for t, batch in window.replay(events, tick=TICK):
        if batch:
            m.apply_batch(batch)
        kappa = m.kappa()
        kmax = max(kappa.values(), default=0)
        deepest = sorted(v for v, k in kappa.items() if k == kmax)[:10]
        print(f"{t:>7.0f} {window.live_events:>12} {len(batch):>6} "
              f"{len(kappa):>7} {kmax:>5}  {deepest if kmax else '-'}")
        assert kappa == peel(h), "maintained window decomposition diverged!"

    print("\nwindow drained; all per-tick oracle checks passed.")


if __name__ == "__main__":
    main()
