#!/usr/bin/env python3
"""Kill a maintenance session mid-batch, then recover it from disk.

The in-process resilience layer (``resilient_stream.py``) survives
anything that leaves the process alive.  This example survives the
thing that doesn't: with ``durable=``, every batch is appended to a
checksummed write-ahead log *before* it is applied, and atomic
checkpoints anchor the base state, so a ``kill -9`` loses nothing that
was acknowledged.

The script plays the paper's remove/reinsert workload over a power-law
social graph, programs a crash (a simulated SIGKILL at an exact WAL I/O
boundary, mid-record, so the log is left with a genuinely torn tail),
then recovers: the torn tail is truncated, the committed suffix is
replayed onto the last checkpoint, and the recovered core values are
verified against an independent peeling oracle before the stream
continues where it left off.

Run:  python examples/durable_stream.py
"""

import shutil
import tempfile

from repro import CoreMaintainer
from repro.core.verify import verify_kappa
from repro.graph.batch import Batch, BatchProtocol
from repro.graph.generators import powerlaw_social
from repro.resilience import FaultInjector, FaultPlan
from repro.resilience.durability import CrashError, scan_wal


def main(n_vertices: int = 300, rounds: int = 8, seed: int = 11,
         crash_hit: int = 60) -> None:
    workdir = tempfile.mkdtemp(prefix="durable-stream-")
    print(f"durable session directory: {workdir}")

    def substrate():
        return powerlaw_social(n_vertices, 6, seed=seed)

    # pre-generate the batch stream against a scratch maintainer so the
    # same batches can replay after recovery
    scratch = CoreMaintainer(substrate(), algorithm="mod")
    proto = BatchProtocol(scratch.sub, seed=seed + 1)
    batches = []
    for _ in range(rounds):
        for b in proto.remove_reinsert(8):
            batches.append(list(b))
            scratch.apply_batch(Batch(list(b)))

    m = CoreMaintainer(
        substrate(), algorithm="mod", durable=workdir,
        durability={"checkpoint_every": 4, "sync_policy": "batch"},
    )
    # program a SIGKILL mid-record: the 'torn' site fires between the two
    # flushed halves of a WAL record, leaving half a record on disk
    injector = FaultInjector(m, [FaultPlan.crash_at("wal.append.torn", crash_hit)])

    print(f"\nstreaming {len(batches)} batches with a programmed crash armed...")
    applied = 0
    try:
        for batch in batches:
            injector.apply_batch(Batch(list(batch)))
            applied += 1
        raise SystemExit("the programmed crash never fired -- raise crash_hit?")
    except CrashError as death:
        print(f"  {applied} batches acknowledged, then: {death}")

    scan = scan_wal(workdir)
    print(f"  the log is torn: damage={scan.damage[2]!r}, "
          f"{len(scan.uncommitted)} uncommitted batch group(s)")

    print("\nrecovering from the directory (scan, repair, replay)...")
    m2 = CoreMaintainer.recover(workdir)
    report = m2.last_recovery
    print(f"  {report}")
    prefix = report.checkpoint_seqno + report.batches_replayed
    assert prefix >= applied, "an acknowledged batch went missing"
    assert not scan_wal(workdir).torn, "the torn tail should be gone"

    # the recovered state must equal an uninterrupted run of the same
    # prefix -- and peeling from scratch agrees
    oracle = CoreMaintainer(substrate(), algorithm="mod")
    for batch in batches[:prefix]:
        oracle.apply_batch(Batch(list(batch)))
    assert m2.kappa() == oracle.kappa(), "recovery diverged from the oracle"
    verify_kappa(m2.impl.impl)
    print(f"  recovered tau == uninterrupted run of {prefix} batches "
          "== peeling oracle")

    print("\ncontinuing the stream on the recovered session...")
    for batch in batches[prefix:]:
        m2.apply_batch(Batch(list(batch)))
    assert m2.kappa() == scratch.kappa(), "the finished stream diverged"
    m2.impl.close()
    print("  full stream complete; final state verified, session sealed")

    shutil.rmtree(workdir)
    print("\nsurvived kill -9 with zero acknowledged batches lost")


if __name__ == "__main__":
    main()
