#!/usr/bin/env python3
"""Quickstart: maintain k-core values over a dynamic graph.

Reproduces the paper's Figure 1 flavour -- a graph with a 3-core, a
2-core ring and 1-core tendrils -- then streams edge changes through the
``mod`` maintainer and shows the decomposition updating live, checked
against from-scratch peeling at every step.

Run:  python examples/quickstart.py
"""

from repro import CoreMaintainer, DynamicGraph, peel


def show(m: CoreMaintainer, title: str) -> None:
    kappa = m.kappa()
    by_level = {}
    for v, k in sorted(kappa.items()):
        by_level.setdefault(k, []).append(v)
    print(f"\n{title}")
    for k in sorted(by_level, reverse=True):
        print(f"  {k}-core values: {by_level[k]}")
    assert kappa == peel(m.sub), "maintained values diverged from oracle!"


def main() -> None:
    # The Figure 1 shape: K4 (3-core) + ring (2-core) + tendrils (1-core)
    g = DynamicGraph.from_edges([
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),   # K4
        (3, 4), (4, 5), (5, 6), (6, 3),                   # ring off vertex 3
        (6, 7), (7, 8), (0, 9),                           # tendrils
    ])
    m = CoreMaintainer(g, algorithm="mod")
    show(m, "initial decomposition")

    print("\n-> inserting chords (4,6) and (3,5): the ring densifies")
    m.insert_edges([(4, 6), (3, 5)])
    show(m, "after ring densification")

    print("\n-> vertex 9 makes friends with the ring")
    m.insert_edges([(9, 4), (9, 5), (9, 3)])
    show(m, "after vertex 9's edges")

    print("\n-> a burst: delete the K4's spine")
    m.remove_edges([(0, 1), (2, 3)])
    show(m, "after deletions")

    # cores themselves (maximal connected subgraphs), derived on demand
    print("\nconnected 2-cores:", [sorted(c) for c in m.k_core(2)])
    print("\nall consistency checks passed.")


if __name__ == "__main__":
    main()
