#!/usr/bin/env python3
"""Serving exact k-core answers while the graph churns underneath.

The paper's framing is maintenance-as-a-service (Section I): keep core
values current so queries answer instantly.  This example puts the
serving layer (:mod:`repro.serve`) in front of a maintained power-law
social graph and walks the whole contract:

* every read is computed against one immutable snapshot published at a
  committed batch boundary -- never a torn mid-batch state;
* a standing subscription fires when a watched vertex's core value
  crosses a threshold, stamped with the exact boundary it happened at;
* a burst 10x the engine's drain rate is converted into explicit
  deferred/shed admission decisions with jittered retry hints -- the
  queue stays bounded, and reads degrade to the last snapshot with an
  explicit staleness stamp instead of blocking;
* a poison batch is quarantined by the resilient layer without ever
  publishing a view; serving continues and health recovers.

The run closes with the snapshot equal to fresh peeling of the final
graph.  Run:  python examples/served_stream.py
"""

from repro import peel
from repro.core.maintainer import CoreMaintainer
from repro.graph.generators import powerlaw_social
from repro.graph.streams import BurstySchedule, BurstyStream
from repro.resilience import FaultInjector, FaultPlan
from repro.resilience.backoff import ManualClock


class PoisonFeed:
    """Route batches through the chaos injector (resilient_stream.py's
    harness) while exposing the wrapped stack for the server."""

    def __init__(self, maintainer, plans):
        self.impl = maintainer
        self._injector = FaultInjector(maintainer, plans)

    def apply_batch(self, batch):
        return self._injector.apply_batch(batch)


def main(n_vertices: int = 300, rounds: int = 10, seed: int = 7) -> None:
    print("building the social graph and its served maintainer...")
    g = powerlaw_social(n_vertices, 6, seed=seed)
    m = CoreMaintainer(g, "mod", resilient=True, max_retries=0)
    server = m.serve(
        clock=ManualClock(), max_batch=32,
        defer_at=64, shed_at=512, recover_after=1,
        batch_cost_s=0.001,    # simulated engine cost, drives deadlines
    )

    watched = max(m.kappa(), key=m.kappa().get)
    sub = server.subscribe(m.kappa()[watched], direction="down",
                           vertices={watched})
    print(f"watching vertex {watched} (core {m.kappa()[watched]}) for a "
          "downward threshold crossing\n")

    schedule = BurstySchedule(calm_size=4, burst_factor=40, p_burst=0.3,
                              seed=3)
    stream = BurstyStream(g, schedule, seed=seed + 1)

    print("phase 1: maintenance keeps pace -- every read is fresh")
    for _, deletion, insertion in stream.rounds(rounds):
        for batch in (deletion, insertion):
            server.submit(list(batch))
            server.pump()
        qr = server.core(watched)
        assert qr.fresh and qr.staleness == 0
    print(f"  {server.stats['queries']} queries, all fresh, "
          f"view at boundary {server.view().boundary}")
    if sub.events:
        ev = sub.events[0]
        print(f"  subscription fired: vertex {ev.vertex} "
              f"{ev.old}->{ev.new} (threshold {ev.threshold}) at "
              f"boundary {ev.boundary}")

    print("\nphase 2: a sustained burst, engine throttled to 1 batch/round")
    decisions = {"accepted": 0, "deferred": 0, "shed": 0}
    max_depth = 0
    for i in range(40):
        fresh_edges = [(10_000 + 20 * i + j, 10_001 + 20 * i + j)
                       for j in range(20)]       # 40 changes vs 32 drained
        d = server.submit_edges(fresh_edges)
        decisions[d.status] += 1
        max_depth = max(max_depth, d.queue_depth)
        if not d.accepted:
            assert d.retry_after_s is not None
        server.pump(max_batches=1)
    qr = server.kappa(fresh=False)
    print(f"  admission: {decisions}, max queue depth {max_depth} "
          f"(bounded by the defer watermark)")
    print(f"  degraded read: status={qr.status!r} pending={qr.pending} "
          f"-- stamped, never torn")
    assert decisions["deferred"] + decisions["shed"] > 0
    assert max_depth <= server.health.defer_at + 40
    server.pump()   # drain the backlog

    print("\nphase 3: a poison batch is quarantined, serving continues")
    publishes_before = server.views.stats["publishes"]
    # arm a fault that crashes every attempt at the next batch: the
    # resilient layer quarantines it, and no view is ever published
    server.m = PoisonFeed(
        m, [FaultPlan.raise_at(batch=0, change=0, transient=False)])
    neighbor = next(iter(g.neighbors(watched)))
    server.submit_edges([(watched, 20_000), (neighbor, 20_001)])
    report = server.pump()
    server.m = m    # disarm
    assert report.failures == 1 and server.health.state == "shedding"
    assert server.views.stats["publishes"] == publishes_before
    print(f"  failed batch contained: {server.failed[-1][1].splitlines()[0]}")
    qr = server.core(watched)
    print(f"  reads still serve from the last snapshot: "
          f"status={qr.status!r} boundary={qr.boundary}")
    server.pump()   # idle probe: health steps back down
    print(f"  health after idle pumps: {server.pump().health}")

    print("\nfinal verification: snapshot == fresh peeling...", end=" ")
    final = server.kappa()
    assert final.fresh
    assert final.value == peel(g), "diverged!"
    print("clean")
    print(f"\nstats: {server.stats}")
    print("the served answers were exact at every stamped boundary.")


if __name__ == "__main__":
    main()
