#!/usr/bin/env python3
"""Tuning the hybrid maintainer (the paper's future-work design, §VI).

The paper closes with: "Future work includes combining the two approaches
into a hybrid approach that can provide both low latencies for small
batches but addresses high variance."  This example measures the
mod/setmb latency crossover on a synthetic social graph and then shows the
hybrid tracking the better of the two on both sides of it.

Run:  python examples/hybrid_latency_tuning.py
"""

from repro import CoreMaintainer, SimulatedRuntime, peel
from repro.eval.stats import Stats
from repro.graph.batch import BatchProtocol
from repro.graph.generators import powerlaw_social

THREADS = 16
BATCH_SIZES = (1, 4, 16, 64, 256)
ROUNDS = 4


def measure(algorithm: str, **kwargs) -> dict:
    g = powerlaw_social(1200, 9, seed=21)
    rt = SimulatedRuntime(thread_counts=(1, THREADS))
    m = CoreMaintainer(g, algorithm=algorithm, rt=rt, **kwargs)
    proto = BatchProtocol(g, seed=22)
    out = {}
    for b in BATCH_SIZES:
        samples = []
        for _ in range(ROUNDS):
            deletion, insertion = proto.remove_reinsert(b)
            rt.reset_clock()
            m.apply_batch(deletion)
            rt.reset_clock()  # time the insertion side, like Fig. 6/7
            m.apply_batch(insertion)
            samples.append(rt.take_metrics().elapsed_seconds(THREADS))
        out[b] = Stats.of(samples)
    assert m.kappa() == peel(g), f"{algorithm} diverged from oracle"
    return out


def main() -> None:
    print(f"insertion latency at {THREADS} simulated threads "
          f"(mean±std ms over {ROUNDS} rounds)\n")
    results = {
        "setmb": measure("setmb"),
        "mod": measure("mod"),
    }
    # find the crossover, then configure the hybrid on it
    crossover = None
    for b in BATCH_SIZES:
        if results["mod"][b].mean < results["setmb"][b].mean:
            crossover = b
            break
    threshold = (crossover or BATCH_SIZES[-1]) // 2 * 2 or 2
    print(f"measured mod/setmb crossover near batch={crossover}; "
          f"hybrid threshold set to {threshold}\n")
    results["hybrid"] = measure("hybrid", threshold=threshold)

    header = f"{'batch':>6} | " + " | ".join(f"{a:>16}" for a in results)
    print(header)
    print("-" * len(header))
    for b in BATCH_SIZES:
        cells = " | ".join(f"{results[a][b].format()}" for a in results)
        best = min(results, key=lambda a: results[a][b].mean)
        print(f"{b:>6} | {cells}   <- {best}")

    print("\nvariance check (coefficient of variation at the largest batch):")
    for a, r in results.items():
        print(f"  {a:>7}: cv={r[BATCH_SIZES[-1]].cv:.2f} "
              f"tail={r[BATCH_SIZES[-1]].tail_ratio:.2f}x")
    print("\nthe hybrid should sit near setmb on small batches and near mod "
          "on large ones.")


if __name__ == "__main__":
    main()
