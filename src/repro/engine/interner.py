"""Label interning: arbitrary hashable vertex labels to dense int ids.

The substrates are hypersparse -- labels are arbitrary hashable values and
vertices come and go with their degree (Section V of the paper uses raw
64-bit ids).  The array engine needs *dense* indices to address numpy
arrays, so every array-backed structure shares one :class:`VertexInterner`
per graph.

Invariants
----------
* A live label has exactly one id; ``label_of(id_of(x)) == x``.
* Ids of released labels go to a free list and are reused before the id
  space grows, so ``capacity`` stays O(peak live vertices) regardless of
  how much churn the stream carries.
* A recycled id may stand for a different label than it used to; consumers
  holding dense per-id state (tau values, adjacency slots) must reset the
  slot on :meth:`intern` of a fresh label -- the interner reports this via
  the ``reused`` flag.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

__all__ = ["VertexInterner"]

Label = Hashable


class VertexInterner:
    """Dense id allocator with free-list recycling.

    >>> it = VertexInterner()
    >>> it.intern("a"), it.intern("b"), it.intern("a")
    (0, 1, 0)
    >>> it.release("a")
    0
    >>> it.intern("c")  # recycles a's id
    0
    >>> it.label_of(1)
    'b'
    """

    __slots__ = ("_ids", "_labels", "_free")

    def __init__(self) -> None:
        self._ids: Dict[Label, int] = {}
        #: dense id -> label (None for free slots)
        self._labels: List[Optional[Label]] = []
        self._free: List[int] = []

    # -- allocation -----------------------------------------------------------
    def intern(self, label: Label) -> int:
        """Id of ``label``, allocating (or recycling) one if needed."""
        i = self._ids.get(label)
        if i is None:
            if self._free:
                i = self._free.pop()
            else:
                i = len(self._labels)
                self._labels.append(None)
            self._ids[label] = i
            self._labels[i] = label
        return i

    def release(self, label: Label) -> int:
        """Free ``label``'s id for reuse; returns the released id."""
        i = self._ids.pop(label)
        self._labels[i] = None
        self._free.append(i)
        return i

    # -- lookup ---------------------------------------------------------------
    def id_of(self, label: Label) -> Optional[int]:
        """Current id of ``label`` (None if not interned)."""
        return self._ids.get(label)

    def label_of(self, i: int) -> Label:
        """Label currently holding id ``i`` (KeyError for free slots)."""
        lbl = self._labels[i]
        if lbl is None:
            raise KeyError(f"id {i} is not live")
        return lbl

    def labels_of(self, ids) -> List[Label]:
        """Labels of an iterable of dense ids (KeyError for free slots).

        One bound-method call for a whole id array -- the bulk analogue of
        :meth:`label_of` for the array engine's commit paths.
        """
        lb = self._labels
        out = [lb[i] for i in ids]
        if None in out:
            missing = next(i for i in ids if lb[i] is None)
            raise KeyError(f"id {missing} is not live")
        return out

    def __contains__(self, label: Label) -> bool:
        return label in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def capacity(self) -> int:
        """Size of the dense id space (live + free slots)."""
        return len(self._labels)

    def items(self) -> Iterator[Tuple[Label, int]]:
        return iter(self._ids.items())

    def labels(self) -> Iterator[Label]:
        return iter(self._ids)

    def __repr__(self) -> str:
        return f"VertexInterner(live={len(self)}, capacity={self.capacity})"
