"""The flat-array maintenance engine.

The maintenance hot paths of :mod:`repro.core` are written against the
hash-based :class:`~repro.graph.substrate.Substrate` protocol -- flexible,
but every adjacency access pays dict/set overhead and nothing can be
vectorised.  This package provides an *interned* flat-array execution path
the maintainers use transparently whenever the substrate is array-backed:

``interner``
    :class:`VertexInterner` -- arbitrary hashable vertex labels to dense
    int ids, with free-list recycling so long-running dynamic workloads do
    not leak id space.
``array_graph``
    :class:`ArrayGraph` -- a fully dynamic adjacency store over numpy
    index arrays with per-vertex slack (amortised O(1) edge insert/delete)
    and periodic compaction.  Implements the full ``Substrate`` protocol,
    so every existing algorithm runs on it unchanged, and snapshots to the
    frozen :class:`~repro.graph.csr.CSRGraph` in O(n + m).
``array_hypergraph``
    :class:`ArrayHypergraph` -- the hypergraph analogue: both directions
    of the incidence (vertex -> hyperedges, hyperedge -> pins) in two
    slack+compaction pools with O(1) ``add_pin``/``remove_pin``, dual
    interners for vertex and hyperedge labels, and a
    :class:`~repro.graph.csr.CSRHypergraph` snapshot.
``frontier``
    :func:`hhc_frontier_csr` / :func:`hhc_frontier_incidence` -- the
    vectorised Algorithm 2: per-iteration neighbour-tau (or
    hyperedge-min) gathers and segment h-indices over the whole frontier
    at once, replacing the per-vertex Python update loop.
``tau_array``
    :class:`TauArray` -- dense ``int64`` tau values plus a lazily rebuilt
    (dirty-bucket) level index, so the ``mod`` increment sweep walks
    arrays instead of dict buckets; :class:`EdgeMinShadow` /
    :class:`ArrayMinCache` -- the dense per-hyperedge min-tau shadow
    (first/second order statistic + witness, dirty-edge invalidation)
    that turns ``edge_min``/``min_excluding`` into array lookups.

See docs/PERFORMANCE.md for the architecture and invariants, and
``benchmarks/bench_wallclock.py`` for the dict-vs-array wall-clock
comparison this engine is measured by.
"""

from repro.engine.array_graph import ArrayGraph
from repro.engine.array_hypergraph import ArrayHypergraph
from repro.engine.frontier import hhc_frontier_csr, hhc_frontier_incidence
from repro.engine.interner import VertexInterner
from repro.engine.tau_array import ArrayMinCache, EdgeMinShadow, TauArray

__all__ = [
    "ArrayGraph",
    "ArrayHypergraph",
    "VertexInterner",
    "TauArray",
    "EdgeMinShadow",
    "ArrayMinCache",
    "hhc_frontier_csr",
    "hhc_frontier_incidence",
]
