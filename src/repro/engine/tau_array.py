"""Array-backed tau values with a lazily rebuilt level index.

The maintainers keep ``tau`` as a label-keyed dict (the public API and the
classification callbacks read it) plus, per tau value, a set bucket so the
``mod`` increment sweep touches only affected levels.  On the array engine
a :class:`TauArray` shadows the dict with a dense ``int64`` array indexed
by interned vertex id: the vectorised frontier sweep gathers neighbour tau
straight from it, and the increment sweep walks ``np.unique`` buckets
instead of Python sets.

The level index is *dirty-bucket*: point writes (:meth:`set_`) just store
and flip a dirty flag; the per-level id lists are rebuilt in one
vectorised pass the next time a sweep asks for them.  A batch performs
many point writes but only one sweep, so the rebuild is paid once per
batch instead of two set mutations per tau change.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["TauArray"]


class TauArray:
    """Dense tau values + live mask + lazy level buckets for one graph."""

    __slots__ = ("arr", "live", "_bucket_levels", "_bucket_ptr", "_bucket_ids", "_dirty")

    def __init__(self, capacity: int = 16) -> None:
        self.arr = np.zeros(capacity, dtype=np.int64)
        self.live = np.zeros(capacity, dtype=bool)
        self._bucket_levels: Optional[np.ndarray] = None
        self._bucket_ptr: Optional[np.ndarray] = None
        self._bucket_ids: Optional[np.ndarray] = None
        self._dirty = True

    @classmethod
    def from_graph(cls, graph, tau: Dict) -> "TauArray":
        """Initialise from an :class:`~repro.engine.array_graph.ArrayGraph`
        and a label-keyed tau dict."""
        t = cls(max(16, graph.interner.capacity))
        id_of = graph.interner.id_of
        for label, value in tau.items():
            i = id_of(label)
            if i is not None:
                t.set_(i, value)
        return t

    # -- point access ---------------------------------------------------------
    def _ensure(self, i: int) -> None:
        cap = len(self.arr)
        if i < cap:
            return
        new_cap = max(cap * 2, i + 1)
        arr = np.zeros(new_cap, dtype=np.int64)
        arr[:cap] = self.arr
        self.arr = arr
        live = np.zeros(new_cap, dtype=bool)
        live[:cap] = self.live
        self.live = live

    def set_(self, i: int, value: int) -> None:
        self._ensure(i)
        self.arr[i] = value
        self.live[i] = True
        self._dirty = True

    def drop(self, i: int) -> None:
        if i < len(self.arr):
            self.live[i] = False
            self.arr[i] = 0
            self._dirty = True

    def get(self, i: int) -> int:
        return int(self.arr[i]) if i < len(self.arr) and self.live[i] else 0

    # -- bulk access ----------------------------------------------------------
    def bulk_set(self, ids: np.ndarray, values: np.ndarray) -> None:
        if len(ids):
            self._ensure(int(ids.max()))
            self.arr[ids] = values
            self.live[ids] = True
            self._dirty = True

    def resync(self, graph, tau: Dict) -> None:
        """Full rebuild from the label-keyed dict (the rollback path)."""
        self.arr[:] = 0
        self.live[:] = False
        id_of = graph.interner.id_of
        for label, value in tau.items():
            i = id_of(label)
            if i is not None:
                self.set_(i, value)
        self._dirty = True

    # -- the dirty-bucket level index -----------------------------------------
    def _rebuild(self) -> None:
        ids = np.nonzero(self.live)[0].astype(np.int64)
        if len(ids) == 0:
            self._bucket_levels = np.zeros(0, dtype=np.int64)
            self._bucket_ptr = np.zeros(1, dtype=np.int64)
            self._bucket_ids = np.zeros(0, dtype=np.int64)
            self._dirty = False
            return
        values = self.arr[ids]
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        levels, first = np.unique(sorted_vals, return_index=True)
        self._bucket_levels = levels
        self._bucket_ptr = np.append(first, len(sorted_vals)).astype(np.int64)
        self._bucket_ids = ids[order]
        self._dirty = False

    def levels(self) -> np.ndarray:
        """Distinct live tau values, ascending."""
        if self._dirty:
            self._rebuild()
        return self._bucket_levels

    def ids_at_level(self, k: int) -> np.ndarray:
        """Dense ids currently at tau value ``k``."""
        if self._dirty:
            self._rebuild()
        pos = np.searchsorted(self._bucket_levels, k)
        if pos >= len(self._bucket_levels) or self._bucket_levels[pos] != k:
            return np.zeros(0, dtype=np.int64)
        return self._bucket_ids[self._bucket_ptr[pos] : self._bucket_ptr[pos + 1]]

    def __repr__(self) -> str:
        return f"TauArray(live={int(self.live.sum())}, capacity={len(self.arr)})"
