"""Array-backed tau values with a lazily rebuilt level index.

The maintainers keep ``tau`` as a label-keyed dict (the public API and the
classification callbacks read it) plus, per tau value, a set bucket so the
``mod`` increment sweep touches only affected levels.  On the array engine
a :class:`TauArray` shadows the dict with a dense ``int64`` array indexed
by interned vertex id: the vectorised frontier sweep gathers neighbour tau
straight from it, and the increment sweep walks ``np.unique`` buckets
instead of Python sets.

The level index is a GBBS-style lazy bucket structure (Julienne's
buckets, Dhulipala/Blelloch/Shun, arXiv:1805.05208): one bucket per
distinct tau value, holding a compacted id array plus a pending append
list.  Writes only *append* the id to its new bucket (amortised O(1),
no removal from the old one); reads filter stale entries -- ids whose
current tau no longer matches the bucket, or that died -- with one
vectorised mask + ``np.unique`` pass over exactly the buckets touched.
This replaces the previous dirty-flag design, whose every sweep paid a
full ``argsort`` over all live vertices even when a batch had dirtied
only a handful of levels.  A stale-entry cap (4x the live count)
bounds bucket memory by triggering the occasional full rebuild, which
is also the rollback/resync path.

On array-backed *hypergraphs* the frequent query is not a neighbour's tau
but the minimum tau over the other pins of a hyperedge (Algorithm 2 line
8).  :class:`EdgeMinShadow` keeps a dense per-hyperedge-id shadow of the
first and second order statistics of the pin taus plus one witness pin
achieving the minimum, maintained with dirty-edge invalidation: structural
pin changes and tau commits flip a ``valid`` bit, and the next query (or
the vectorised frontier kernel, in bulk) recomputes exactly the
invalidated edges.  ``min_excluding(e, v)`` then collapses to ``m2 if v is
the witness else m1`` -- correct under ties because the second order
statistic equals the minimum whenever the minimum is shared.
:class:`ArrayMinCache` wraps the shadow in the label-keyed interface of
:class:`~repro.graph.dynamic_hypergraph.MinCache` so every dict-path
algorithm (and the approximate maintainer's bounded convergence) uses it
transparently.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["TauArray", "EdgeMinShadow", "ArrayMinCache", "INF"]

#: big sentinel standing in for +inf while staying in int64 arithmetic; it
#: exceeds any reachable h-index (bounded by max degree)
INF = np.int64(1) << 60


_EMPTY_IDS = np.zeros(0, dtype=np.int64)


class TauArray:
    """Dense tau values + live mask + GBBS-style lazy level buckets."""

    __slots__ = ("arr", "live", "_bk_arr", "_bk_pending", "_stale", "_all_dirty",
                 "_clean")

    def __init__(self, capacity: int = 16) -> None:
        self.arr = np.zeros(capacity, dtype=np.int64)
        self.live = np.zeros(capacity, dtype=bool)
        #: level -> compacted (sorted, deduped, filtered) id array
        self._bk_arr: Dict[int, np.ndarray] = {}
        #: level -> pending appended ids, not yet compacted
        self._bk_pending: Dict[int, list] = {}
        #: appends+drops since the last full rebuild (bounds bucket memory)
        self._stale = 0
        #: buckets unusable; rebuild wholesale on next read
        self._all_dirty = True
        #: every compacted bucket is exact (no writes since last compact-all)
        self._clean = False

    @classmethod
    def from_graph(cls, graph, tau: Dict) -> "TauArray":
        """Initialise from an :class:`~repro.engine.array_graph.ArrayGraph`
        and a label-keyed tau dict."""
        t = cls(max(16, graph.interner.capacity))
        id_of = graph.interner.id_of
        for label, value in tau.items():
            i = id_of(label)
            if i is not None:
                t.set_(i, value)
        return t

    # -- point access ---------------------------------------------------------
    def _ensure(self, i: int) -> None:
        cap = len(self.arr)
        if i < cap:
            return
        new_cap = max(cap * 2, i + 1)
        arr = np.zeros(new_cap, dtype=np.int64)
        arr[:cap] = self.arr
        self.arr = arr
        live = np.zeros(new_cap, dtype=bool)
        live[:cap] = self.live
        self.live = live

    def set_(self, i: int, value: int) -> None:
        self._ensure(i)
        self.arr[i] = value
        self.live[i] = True
        if not self._all_dirty:
            self._bk_pending.setdefault(int(value), []).append(int(i))
            self._stale += 1
        self._clean = False

    def drop(self, i: int) -> None:
        if i < len(self.arr):
            self.live[i] = False
            self.arr[i] = 0
            self._stale += 1
            self._clean = False

    def get(self, i: int) -> int:
        return int(self.arr[i]) if i < len(self.arr) and self.live[i] else 0

    # -- bulk access ----------------------------------------------------------
    def bulk_set(self, ids: np.ndarray, values: np.ndarray) -> None:
        if not len(ids):
            return
        self._ensure(int(ids.max()))
        self.arr[ids] = values
        self.live[ids] = True
        if not self._all_dirty:
            vals = np.broadcast_to(np.asarray(values, dtype=np.int64), ids.shape)
            # group ids by value via one sort -- a per-level ``inv == j``
            # scan is quadratic in the number of distinct levels
            order = np.argsort(vals, kind="stable")
            sv = vals[order]
            si = ids[order]
            bounds = np.flatnonzero(np.diff(sv)) + 1
            starts = np.concatenate(([0], bounds))
            stops = np.concatenate((bounds, [len(sv)]))
            pend = self._bk_pending
            for lo, hi in zip(starts.tolist(), stops.tolist()):
                pend.setdefault(int(sv[lo]), []).extend(si[lo:hi].tolist())
            self._stale += len(ids)
        self._clean = False

    def resync(self, graph, tau: Dict) -> None:
        """Full rebuild from the label-keyed dict (the rollback path)."""
        self.arr[:] = 0
        self.live[:] = False
        self._bk_arr = {}
        self._bk_pending = {}
        self._all_dirty = True
        self._clean = False
        id_of = graph.interner.id_of
        for label, value in tau.items():
            i = id_of(label)
            if i is not None:
                self._ensure(i)
                self.arr[i] = value
                self.live[i] = True

    # -- the lazy bucket level index ------------------------------------------
    def _full_rebuild(self) -> None:
        """Regenerate every bucket from the dense arrays (argsort pass);
        the resync path and the stale-cap escape hatch."""
        self._bk_pending = {}
        self._bk_arr = {}
        ids = np.nonzero(self.live)[0].astype(np.int64)
        if len(ids):
            values = self.arr[ids]
            order = np.argsort(values, kind="stable")
            sv = values[order]
            si = ids[order]
            levels, first = np.unique(sv, return_index=True)
            bounds = np.append(first, len(sv))
            for j, lv in enumerate(levels.tolist()):
                self._bk_arr[int(lv)] = si[bounds[j]:bounds[j + 1]]
        self._stale = 0
        self._all_dirty = False
        self._clean = True

    def _maybe_rebuild(self) -> None:
        if self._all_dirty:
            self._full_rebuild()
        elif self._stale > 1024 and self._stale > 4 * int(self.live.sum()):
            self._full_rebuild()

    def _compact_level(self, k: int) -> np.ndarray:
        """Merge pending appends into bucket ``k`` and filter stale entries
        (dead ids, ids whose tau moved on, recycled-id duplicates)."""
        parts = []
        stored = self._bk_arr.get(k)
        if stored is not None and len(stored):
            parts.append(stored)
        pend = self._bk_pending.pop(k, None)
        if pend:
            parts.append(np.asarray(pend, dtype=np.int64))
        if not parts:
            self._bk_arr.pop(k, None)
            return _EMPTY_IDS
        ids = parts[0] if len(parts) == 1 else np.concatenate(parts)
        ids = ids[self.live[ids] & (self.arr[ids] == k)]
        ids = np.unique(ids)
        if len(ids):
            self._bk_arr[k] = ids
        else:
            self._bk_arr.pop(k, None)
        return ids

    def levels(self) -> np.ndarray:
        """Distinct live tau values, ascending."""
        self._maybe_rebuild()
        if not self._clean:
            for k in list(self._bk_pending.keys() | self._bk_arr.keys()):
                self._compact_level(k)
            self._stale = 0
            self._clean = True
        return np.array(sorted(self._bk_arr.keys()), dtype=np.int64)

    def ids_at_level(self, k: int) -> np.ndarray:
        """Dense ids currently at tau value ``k`` (sorted, distinct)."""
        self._maybe_rebuild()
        k = int(k)
        if self._clean:
            ids = self._bk_arr.get(k)
            return ids if ids is not None else _EMPTY_IDS
        return self._compact_level(k)

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """One-shot copy of the live ``(ids, values)`` pairs.

        The serve layer's vectorised view capture: both arrays are fresh
        (``nonzero`` allocates, fancy indexing copies), so a published
        snapshot is immune to later maintenance writes.  Does not touch
        the lazy buckets -- capture cost is O(live) regardless of how
        stale the level index is.
        """
        ids = np.nonzero(self.live)[0].astype(np.int64)
        return ids, self.arr[ids]

    def __repr__(self) -> str:
        return f"TauArray(live={int(self.live.sum())}, capacity={len(self.arr)})"


class EdgeMinShadow:
    """Dense per-hyperedge (min, second-min, witness) of pin taus.

    Indexed by interned hyperedge id.  Entries are recomputed lazily:
    callers invalidate on structural pin changes
    (:meth:`invalidate` / the maintainer's ``_apply_structural``) and on
    tau commits of a pin (:meth:`on_vertex_change` /
    :meth:`on_vertices_changed`), and the next read refreshes -- point
    reads via a scalar scan, the frontier kernel via one vectorised
    :meth:`refresh_ids` pass over every edge it is about to gather.

    The representation is exact under ties: ``witness`` is *a* pin
    achieving ``m1`` and ``m2`` is the second order statistic (not the
    second *distinct* value), so ``min over pins != v`` is ``m2`` when
    ``v == witness`` and ``m1`` otherwise, in every case.  Size-1 edges
    carry ``m2 == INF`` (the empty minimum), mirroring ``math.inf`` on
    the dict path.
    """

    __slots__ = ("hg", "ta", "m1", "m2", "witness", "valid")

    def __init__(self, hg, tau_array: TauArray) -> None:
        self.hg = hg
        self.ta = tau_array
        cap = max(16, hg.edge_interner.capacity)
        self.m1 = np.full(cap, INF, dtype=np.int64)
        self.m2 = np.full(cap, INF, dtype=np.int64)
        self.witness = np.full(cap, -1, dtype=np.int64)
        self.valid = np.zeros(cap, dtype=bool)

    def _ensure(self, i: int) -> None:
        cap = len(self.valid)
        if i < cap:
            return
        new_cap = max(cap * 2, i + 1)
        for name, fill in (("m1", INF), ("m2", INF), ("witness", -1)):
            arr = getattr(self, name)
            grown = np.full(new_cap, fill, dtype=np.int64)
            grown[:cap] = arr
            setattr(self, name, grown)
        valid = np.zeros(new_cap, dtype=bool)
        valid[:cap] = self.valid
        self.valid = valid

    # -- invalidation ---------------------------------------------------------
    def invalidate(self, ei: int) -> None:
        """Pin set of edge ``ei`` changed (or its id was recycled)."""
        if ei < len(self.valid):
            self.valid[ei] = False

    def invalidate_all(self) -> None:
        """Wholesale reset (the rollback / resync path)."""
        self.valid[:] = False

    def on_vertex_change(self, vi: int) -> None:
        """tau of pin ``vi`` committed: dirty its incident edges."""
        starts, counts, pool = self.hg.incidence_arrays()
        if vi >= len(counts):
            return
        s, c = int(starts[vi]), int(counts[vi])
        if c:
            inc = pool[s : s + c]
            self._ensure(int(inc.max()))
            self.valid[inc] = False

    def on_vertices_changed(self, vids: np.ndarray) -> None:
        """Bulk tau commit: dirty every edge incident to ``vids``."""
        from repro.engine.frontier import _gather_ranges

        starts, counts, pool = self.hg.incidence_arrays()
        vids = vids[vids < len(counts)]
        if not len(vids):
            return
        inc, _ = _gather_ranges(starts, counts, pool, vids)
        if len(inc):
            self._ensure(int(inc.max()))
            self.valid[inc] = False

    # -- refresh --------------------------------------------------------------
    def refresh_ids(self, ids: np.ndarray) -> int:
        """Recompute the invalid entries among edge ids ``ids`` in one
        vectorised pass; returns the number of pin reads performed."""
        from repro.engine.frontier import _gather_ranges

        if not len(ids):
            return 0
        self._ensure(int(ids.max()))
        dirty = ids[~self.valid[ids]]
        if not len(dirty):
            return 0
        starts, counts, pool = self.hg.pin_arrays()
        dirty = dirty[(dirty < len(counts)) & (counts[dirty] > 0)]
        if not len(dirty):
            return 0
        pins, ptr = _gather_ranges(starts, counts, pool, dirty)
        ta = self.ta
        ta._ensure(int(pins.max()))
        vals = ta.arr[pins]
        sizes = np.diff(ptr)
        seg = np.repeat(np.arange(len(dirty), dtype=np.int64), sizes)
        order = np.lexsort((vals, seg))
        sv = vals[order]
        sp = pins[order]
        first = ptr[:-1]
        self.m1[dirty] = sv[first]
        self.witness[dirty] = sp[first]
        m2 = np.full(len(dirty), INF, dtype=np.int64)
        has2 = sizes >= 2
        m2[has2] = sv[first[has2] + 1]
        self.m2[dirty] = m2
        self.valid[dirty] = True
        return int(len(pins))

    def refresh_one(self, ei: int) -> None:
        if ei >= len(self.valid) or not self.valid[ei]:
            self.refresh_ids(np.asarray([ei], dtype=np.int64))

    # -- point queries (dict-path compatibility) -------------------------------
    def edge_min_id(self, ei: int) -> int:
        """Minimum pin tau of live edge ``ei`` (INF sentinel when empty)."""
        self.refresh_one(ei)
        return int(self.m1[ei])

    def min_excluding_id(self, ei: int, vi: int) -> int:
        """``min over pins of ei excluding vi`` (INF when vi is the only pin)."""
        self.refresh_one(ei)
        if int(self.witness[ei]) == vi:
            return int(self.m2[ei])
        return int(self.m1[ei])

    def __repr__(self) -> str:
        return (
            f"EdgeMinShadow(valid={int(self.valid.sum())}, "
            f"capacity={len(self.valid)})"
        )


class ArrayMinCache:
    """Label-keyed :class:`~repro.graph.dynamic_hypergraph.MinCache`
    interface over an :class:`EdgeMinShadow`.

    Algorithms written against the dict path (``hhc_local``'s per-vertex
    update, the approximate maintainer) call ``edge_min`` /
    ``min_excluding`` with labels and expect ``float`` results with
    ``math.inf`` for empty minima; this adapter resolves labels through
    the substrate's interners and converts the INF sentinel back.

    ``on_value_change`` is a deliberate no-op: on the array engine the
    maintainer's commit hooks (``_set_tau`` / ``_on_change_hook`` / the
    frontier kernel) dirty the shadow against *dense ids*, which also
    covers the algorithms that run with ``use_min_cache=False``.
    ``enabled=False`` falls back to honest pin scans for the min-cache
    ablation benchmark.
    """

    def __init__(self, sub, shadow: EdgeMinShadow, *, enabled: bool = True,
                 charge=None) -> None:
        self._sub = sub
        self._shadow = shadow
        self.enabled = enabled
        self._charge = charge if charge is not None else (lambda n: None)

    def _scan_excluding(self, e, v) -> float:
        best: float = math.inf
        n = 0
        get = self._shadow.ta.get
        id_of = self._sub.interner.id_of
        for w in self._sub.pins(e):
            n += 1
            if w != v:
                i = id_of(w)
                t = get(i) if i is not None else 0
                if t < best:
                    best = t
        self._charge(n)
        return best

    def edge_min(self, e) -> float:
        if not self.enabled:
            return self._scan_excluding(e, object())
        ei = self._sub.edge_interner.id_of(e)
        if ei is None:
            return math.inf
        self._charge(1)
        m = self._shadow.edge_min_id(ei)
        return math.inf if m >= INF else m

    def min_excluding(self, e, v) -> float:
        if not self.enabled:
            return self._scan_excluding(e, v)
        ei = self._sub.edge_interner.id_of(e)
        if ei is None:
            return math.inf
        vi = self._sub.interner.id_of(v)
        self._charge(1)
        m = self._shadow.min_excluding_id(ei, vi if vi is not None else -1)
        return math.inf if m >= INF else m

    def on_value_change(self, v) -> None:
        # dense-id hooks on the maintainer dirty the shadow; see class docs
        return None

    def invalidate(self, e) -> None:
        ei = self._sub.edge_interner.id_of(e)
        if ei is not None:
            self._shadow.invalidate(ei)

    def clear(self) -> None:
        self._shadow.invalidate_all()
