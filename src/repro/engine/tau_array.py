"""Array-backed tau values with a lazily rebuilt level index.

The maintainers keep ``tau`` as a label-keyed dict (the public API and the
classification callbacks read it) plus, per tau value, a set bucket so the
``mod`` increment sweep touches only affected levels.  On the array engine
a :class:`TauArray` shadows the dict with a dense ``int64`` array indexed
by interned vertex id: the vectorised frontier sweep gathers neighbour tau
straight from it, and the increment sweep walks ``np.unique`` buckets
instead of Python sets.

The level index is *dirty-bucket*: point writes (:meth:`set_`) just store
and flip a dirty flag; the per-level id lists are rebuilt in one
vectorised pass the next time a sweep asks for them.  A batch performs
many point writes but only one sweep, so the rebuild is paid once per
batch instead of two set mutations per tau change.

On array-backed *hypergraphs* the frequent query is not a neighbour's tau
but the minimum tau over the other pins of a hyperedge (Algorithm 2 line
8).  :class:`EdgeMinShadow` keeps a dense per-hyperedge-id shadow of the
first and second order statistics of the pin taus plus one witness pin
achieving the minimum, maintained with dirty-edge invalidation: structural
pin changes and tau commits flip a ``valid`` bit, and the next query (or
the vectorised frontier kernel, in bulk) recomputes exactly the
invalidated edges.  ``min_excluding(e, v)`` then collapses to ``m2 if v is
the witness else m1`` -- correct under ties because the second order
statistic equals the minimum whenever the minimum is shared.
:class:`ArrayMinCache` wraps the shadow in the label-keyed interface of
:class:`~repro.graph.dynamic_hypergraph.MinCache` so every dict-path
algorithm (and the approximate maintainer's bounded convergence) uses it
transparently.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

__all__ = ["TauArray", "EdgeMinShadow", "ArrayMinCache", "INF"]

#: big sentinel standing in for +inf while staying in int64 arithmetic; it
#: exceeds any reachable h-index (bounded by max degree)
INF = np.int64(1) << 60


class TauArray:
    """Dense tau values + live mask + lazy level buckets for one graph."""

    __slots__ = ("arr", "live", "_bucket_levels", "_bucket_ptr", "_bucket_ids", "_dirty")

    def __init__(self, capacity: int = 16) -> None:
        self.arr = np.zeros(capacity, dtype=np.int64)
        self.live = np.zeros(capacity, dtype=bool)
        self._bucket_levels: Optional[np.ndarray] = None
        self._bucket_ptr: Optional[np.ndarray] = None
        self._bucket_ids: Optional[np.ndarray] = None
        self._dirty = True

    @classmethod
    def from_graph(cls, graph, tau: Dict) -> "TauArray":
        """Initialise from an :class:`~repro.engine.array_graph.ArrayGraph`
        and a label-keyed tau dict."""
        t = cls(max(16, graph.interner.capacity))
        id_of = graph.interner.id_of
        for label, value in tau.items():
            i = id_of(label)
            if i is not None:
                t.set_(i, value)
        return t

    # -- point access ---------------------------------------------------------
    def _ensure(self, i: int) -> None:
        cap = len(self.arr)
        if i < cap:
            return
        new_cap = max(cap * 2, i + 1)
        arr = np.zeros(new_cap, dtype=np.int64)
        arr[:cap] = self.arr
        self.arr = arr
        live = np.zeros(new_cap, dtype=bool)
        live[:cap] = self.live
        self.live = live

    def set_(self, i: int, value: int) -> None:
        self._ensure(i)
        self.arr[i] = value
        self.live[i] = True
        self._dirty = True

    def drop(self, i: int) -> None:
        if i < len(self.arr):
            self.live[i] = False
            self.arr[i] = 0
            self._dirty = True

    def get(self, i: int) -> int:
        return int(self.arr[i]) if i < len(self.arr) and self.live[i] else 0

    # -- bulk access ----------------------------------------------------------
    def bulk_set(self, ids: np.ndarray, values: np.ndarray) -> None:
        if len(ids):
            self._ensure(int(ids.max()))
            self.arr[ids] = values
            self.live[ids] = True
            self._dirty = True

    def resync(self, graph, tau: Dict) -> None:
        """Full rebuild from the label-keyed dict (the rollback path)."""
        self.arr[:] = 0
        self.live[:] = False
        id_of = graph.interner.id_of
        for label, value in tau.items():
            i = id_of(label)
            if i is not None:
                self.set_(i, value)
        self._dirty = True

    # -- the dirty-bucket level index -----------------------------------------
    def _rebuild(self) -> None:
        ids = np.nonzero(self.live)[0].astype(np.int64)
        if len(ids) == 0:
            self._bucket_levels = np.zeros(0, dtype=np.int64)
            self._bucket_ptr = np.zeros(1, dtype=np.int64)
            self._bucket_ids = np.zeros(0, dtype=np.int64)
            self._dirty = False
            return
        values = self.arr[ids]
        order = np.argsort(values, kind="stable")
        sorted_vals = values[order]
        levels, first = np.unique(sorted_vals, return_index=True)
        self._bucket_levels = levels
        self._bucket_ptr = np.append(first, len(sorted_vals)).astype(np.int64)
        self._bucket_ids = ids[order]
        self._dirty = False

    def levels(self) -> np.ndarray:
        """Distinct live tau values, ascending."""
        if self._dirty:
            self._rebuild()
        return self._bucket_levels

    def ids_at_level(self, k: int) -> np.ndarray:
        """Dense ids currently at tau value ``k``."""
        if self._dirty:
            self._rebuild()
        pos = np.searchsorted(self._bucket_levels, k)
        if pos >= len(self._bucket_levels) or self._bucket_levels[pos] != k:
            return np.zeros(0, dtype=np.int64)
        return self._bucket_ids[self._bucket_ptr[pos] : self._bucket_ptr[pos + 1]]

    def __repr__(self) -> str:
        return f"TauArray(live={int(self.live.sum())}, capacity={len(self.arr)})"


class EdgeMinShadow:
    """Dense per-hyperedge (min, second-min, witness) of pin taus.

    Indexed by interned hyperedge id.  Entries are recomputed lazily:
    callers invalidate on structural pin changes
    (:meth:`invalidate` / the maintainer's ``_apply_structural``) and on
    tau commits of a pin (:meth:`on_vertex_change` /
    :meth:`on_vertices_changed`), and the next read refreshes -- point
    reads via a scalar scan, the frontier kernel via one vectorised
    :meth:`refresh_ids` pass over every edge it is about to gather.

    The representation is exact under ties: ``witness`` is *a* pin
    achieving ``m1`` and ``m2`` is the second order statistic (not the
    second *distinct* value), so ``min over pins != v`` is ``m2`` when
    ``v == witness`` and ``m1`` otherwise, in every case.  Size-1 edges
    carry ``m2 == INF`` (the empty minimum), mirroring ``math.inf`` on
    the dict path.
    """

    __slots__ = ("hg", "ta", "m1", "m2", "witness", "valid")

    def __init__(self, hg, tau_array: TauArray) -> None:
        self.hg = hg
        self.ta = tau_array
        cap = max(16, hg.edge_interner.capacity)
        self.m1 = np.full(cap, INF, dtype=np.int64)
        self.m2 = np.full(cap, INF, dtype=np.int64)
        self.witness = np.full(cap, -1, dtype=np.int64)
        self.valid = np.zeros(cap, dtype=bool)

    def _ensure(self, i: int) -> None:
        cap = len(self.valid)
        if i < cap:
            return
        new_cap = max(cap * 2, i + 1)
        for name, fill in (("m1", INF), ("m2", INF), ("witness", -1)):
            arr = getattr(self, name)
            grown = np.full(new_cap, fill, dtype=np.int64)
            grown[:cap] = arr
            setattr(self, name, grown)
        valid = np.zeros(new_cap, dtype=bool)
        valid[:cap] = self.valid
        self.valid = valid

    # -- invalidation ---------------------------------------------------------
    def invalidate(self, ei: int) -> None:
        """Pin set of edge ``ei`` changed (or its id was recycled)."""
        if ei < len(self.valid):
            self.valid[ei] = False

    def invalidate_all(self) -> None:
        """Wholesale reset (the rollback / resync path)."""
        self.valid[:] = False

    def on_vertex_change(self, vi: int) -> None:
        """tau of pin ``vi`` committed: dirty its incident edges."""
        starts, counts, pool = self.hg.incidence_arrays()
        if vi >= len(counts):
            return
        s, c = int(starts[vi]), int(counts[vi])
        if c:
            inc = pool[s : s + c]
            self._ensure(int(inc.max()))
            self.valid[inc] = False

    def on_vertices_changed(self, vids: np.ndarray) -> None:
        """Bulk tau commit: dirty every edge incident to ``vids``."""
        from repro.engine.frontier import _gather_ranges

        starts, counts, pool = self.hg.incidence_arrays()
        vids = vids[vids < len(counts)]
        if not len(vids):
            return
        inc, _ = _gather_ranges(starts, counts, pool, vids)
        if len(inc):
            self._ensure(int(inc.max()))
            self.valid[inc] = False

    # -- refresh --------------------------------------------------------------
    def refresh_ids(self, ids: np.ndarray) -> int:
        """Recompute the invalid entries among edge ids ``ids`` in one
        vectorised pass; returns the number of pin reads performed."""
        from repro.engine.frontier import _gather_ranges

        if not len(ids):
            return 0
        self._ensure(int(ids.max()))
        dirty = ids[~self.valid[ids]]
        if not len(dirty):
            return 0
        starts, counts, pool = self.hg.pin_arrays()
        dirty = dirty[(dirty < len(counts)) & (counts[dirty] > 0)]
        if not len(dirty):
            return 0
        pins, ptr = _gather_ranges(starts, counts, pool, dirty)
        ta = self.ta
        ta._ensure(int(pins.max()))
        vals = ta.arr[pins]
        sizes = np.diff(ptr)
        seg = np.repeat(np.arange(len(dirty), dtype=np.int64), sizes)
        order = np.lexsort((vals, seg))
        sv = vals[order]
        sp = pins[order]
        first = ptr[:-1]
        self.m1[dirty] = sv[first]
        self.witness[dirty] = sp[first]
        m2 = np.full(len(dirty), INF, dtype=np.int64)
        has2 = sizes >= 2
        m2[has2] = sv[first[has2] + 1]
        self.m2[dirty] = m2
        self.valid[dirty] = True
        return int(len(pins))

    def refresh_one(self, ei: int) -> None:
        if ei >= len(self.valid) or not self.valid[ei]:
            self.refresh_ids(np.asarray([ei], dtype=np.int64))

    # -- point queries (dict-path compatibility) -------------------------------
    def edge_min_id(self, ei: int) -> int:
        """Minimum pin tau of live edge ``ei`` (INF sentinel when empty)."""
        self.refresh_one(ei)
        return int(self.m1[ei])

    def min_excluding_id(self, ei: int, vi: int) -> int:
        """``min over pins of ei excluding vi`` (INF when vi is the only pin)."""
        self.refresh_one(ei)
        if int(self.witness[ei]) == vi:
            return int(self.m2[ei])
        return int(self.m1[ei])

    def __repr__(self) -> str:
        return (
            f"EdgeMinShadow(valid={int(self.valid.sum())}, "
            f"capacity={len(self.valid)})"
        )


class ArrayMinCache:
    """Label-keyed :class:`~repro.graph.dynamic_hypergraph.MinCache`
    interface over an :class:`EdgeMinShadow`.

    Algorithms written against the dict path (``hhc_local``'s per-vertex
    update, the approximate maintainer) call ``edge_min`` /
    ``min_excluding`` with labels and expect ``float`` results with
    ``math.inf`` for empty minima; this adapter resolves labels through
    the substrate's interners and converts the INF sentinel back.

    ``on_value_change`` is a deliberate no-op: on the array engine the
    maintainer's commit hooks (``_set_tau`` / ``_on_change_hook`` / the
    frontier kernel) dirty the shadow against *dense ids*, which also
    covers the algorithms that run with ``use_min_cache=False``.
    ``enabled=False`` falls back to honest pin scans for the min-cache
    ablation benchmark.
    """

    def __init__(self, sub, shadow: EdgeMinShadow, *, enabled: bool = True,
                 charge=None) -> None:
        self._sub = sub
        self._shadow = shadow
        self.enabled = enabled
        self._charge = charge if charge is not None else (lambda n: None)

    def _scan_excluding(self, e, v) -> float:
        best: float = math.inf
        n = 0
        get = self._shadow.ta.get
        id_of = self._sub.interner.id_of
        for w in self._sub.pins(e):
            n += 1
            if w != v:
                i = id_of(w)
                t = get(i) if i is not None else 0
                if t < best:
                    best = t
        self._charge(n)
        return best

    def edge_min(self, e) -> float:
        if not self.enabled:
            return self._scan_excluding(e, object())
        ei = self._sub.edge_interner.id_of(e)
        if ei is None:
            return math.inf
        self._charge(1)
        m = self._shadow.edge_min_id(ei)
        return math.inf if m >= INF else m

    def min_excluding(self, e, v) -> float:
        if not self.enabled:
            return self._scan_excluding(e, v)
        ei = self._sub.edge_interner.id_of(e)
        if ei is None:
            return math.inf
        vi = self._sub.interner.id_of(v)
        self._charge(1)
        m = self._shadow.min_excluding_id(ei, vi if vi is not None else -1)
        return math.inf if m >= INF else m

    def on_value_change(self, v) -> None:
        # dense-id hooks on the maintainer dirty the shadow; see class docs
        return None

    def invalidate(self, e) -> None:
        ei = self._sub.edge_interner.id_of(e)
        if ei is not None:
            self._shadow.invalidate(ei)

    def clear(self) -> None:
        self._shadow.invalidate_all()
