"""Vectorised frontier convergence (Algorithm 2 on flat arrays).

:func:`hhc_frontier_csr` is the array-engine replacement for the
per-vertex ``_vertex_update`` loop of :func:`repro.core.static.hhc_local`:
each iteration gathers the tau values of *every* frontier vertex's
neighbours in one shot, computes all their h-indices with the existing
:func:`~repro.core.static._segment_h_index` kernel, commits the changes,
and expands the next frontier with ``np.unique`` over the changed
vertices' neighbour ranges.

Semantics: the synchronous (Jacobi) variant of the sweep -- every frontier
vertex reads the tau snapshot from the start of the iteration.  Both
variants converge to kappa from any pointwise-valid initialisation
(Lemma 1 / Section III-A), so the result is oracle-identical to the
asynchronous dict path; only the iteration counts differ.

:func:`hhc_frontier_incidence` is the hypergraph analogue over an
:class:`~repro.engine.array_hypergraph.ArrayHypergraph`'s bipartite
incidence pools: each iteration bulk-refreshes the
:class:`~repro.engine.tau_array.EdgeMinShadow` for every hyperedge the
frontier touches, derives each (vertex, edge) contribution as ``m2`` when
the vertex is the edge's min witness else ``m1`` (Algorithm 2 line 8's
min-over-other-pins, exact under ties), and h-indexes the contributions
per vertex with the same segment kernel.

Execution and accounting both go through the runtime's
``parallel_map_ranges`` seam: each iteration's h-index pass is expressed
as a race-free *chunk kernel* -- ``run_chunk(lo, hi)`` gathers its own
CSR/incidence ranges from the shared read-only tau snapshot (Jacobi
semantics) and writes only the disjoint slice ``new[lo:hi]`` -- with
per-chunk costs read off the gather's CSR prefix sums (``out_ptr``).
Under the :class:`~repro.parallel.simulated.SimulatedRuntime` the kernel
runs serially and is metered exactly as before (same VGC chunking, same
totals); under a :class:`~repro.parallel.threads.ThreadRuntime` the
chunks dispatch to real threads and overlap, since the NumPy gathers,
sorts and reductions release the GIL.  Chunked results are bit-identical
to serial: chunks are disjoint, the per-chunk ``_segment_h_index`` call
clips at a bound that can never alter an h-index (h <= segment size),
and the commit/merge that follows every iteration stays serial.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.static import _segment_h_index
from repro.parallel.runtime import map_ranges

__all__ = ["gather_ranges", "hhc_frontier_csr", "hhc_frontier_incidence"]

#: callback: (changed_ids, old_values, new_values) -- arrays, one call per iteration
CommitHook = Callable[[np.ndarray, np.ndarray, np.ndarray], None]


_IOTA = np.zeros(0, dtype=np.int64)


def _iota(n: int) -> np.ndarray:
    """Read-only ``arange(n)`` served from a growing module-level buffer
    (the convergence loop requests several per iteration).

    Thread-safe for concurrent chunk kernels: the buffer is captured into
    a local before the length check, so a racing grow by another thread
    can only waste an allocation, never hand back a short slice -- and the
    contents are constant (``arange``), so sharing the buffer read-only
    across threads is sound.
    """
    global _IOTA
    buf = _IOTA
    if len(buf) < n:
        buf = np.arange(max(n, 2 * len(buf)), dtype=np.int64)
        _IOTA = buf
    return buf[:n]


def _gather_ranges(starts: np.ndarray, counts: np.ndarray, pool: np.ndarray,
                   ids: np.ndarray):
    """Concatenated neighbour ids of ``ids`` plus the CSR segment layout.

    Returns ``(neighbors, out_ptr)`` where ``neighbors[out_ptr[j]:
    out_ptr[j+1]]`` are the neighbour ids of ``ids[j]``.
    """
    cnt = counts[ids]
    out_ptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(cnt, out=out_ptr[1:])
    total = int(out_ptr[-1])
    if total == 0:
        return np.zeros(0, dtype=np.int64), out_ptr
    # positions: per vertex j, starts[ids[j]] + (0 .. cnt[j]-1)
    pos = np.repeat(starts[ids] - out_ptr[:-1], cnt) + _iota(total)
    return pool[pos], out_ptr


#: public alias -- the columnar bulk kernels (:mod:`repro.engine.columnar`)
#: gather pin/adjacency segments with the same CSR trick.
gather_ranges = _gather_ranges


def _dedup(ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Sorted distinct ids via a reusable bool scratch mask.

    O(len(mask)) flatnonzero beats hash-based ``np.unique`` by an order
    of magnitude on the large, duplicate-heavy frontiers the convergence
    loop produces (the mask is cleared before returning, so one scratch
    array serves every iteration).
    """
    mask[ids] = True
    out = np.flatnonzero(mask)
    mask[out] = False
    return out


def hhc_frontier_csr(
    graph,
    tau,
    frontier: np.ndarray,
    *,
    rt=None,
    on_commit: Optional[CommitHook] = None,
    max_iterations: Optional[int] = None,
) -> int:
    """Run frontier h-index convergence on an array-backed graph.

    Parameters
    ----------
    graph:
        An :class:`~repro.engine.array_graph.ArrayGraph`.
    tau:
        The maintainer's :class:`~repro.engine.tau_array.TauArray`; must be
        pointwise >= kappa on live vertices (Lemma 1).  Updated in place.
    frontier:
        Dense ids of the initially active vertices (duplicates and dead
        ids tolerated).
    rt:
        Optional parallel runtime for work accounting.
    on_commit:
        Called once per iteration with ``(ids, old, new)`` arrays of the
        committed tau changes -- the maintainers sync their label-keyed
        dict and level index from it.
    max_iterations:
        Iteration budget; when exhausted tau remains a pointwise upper
        bound on kappa (values only descend toward kappa from a valid
        start).

    Returns the number of iterations run.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    scratch = np.zeros(len(tau.arr), dtype=bool)
    iterations = 0
    while len(frontier):
        if max_iterations is not None and iterations >= max_iterations:
            break
        # adjacency views can move under mutation between iterations (the
        # commit hook below may trigger structural work); re-read per pass
        starts, counts, pool = graph.adjacency_arrays()
        arr = tau.arr
        live = tau.live
        if len(scratch) < len(arr):
            scratch = np.zeros(len(arr), dtype=bool)
        F = _dedup(frontier[frontier < len(arr)], scratch)
        F = F[(F < len(live)) & live[F] & (counts[F] > 0)]
        if not len(F):
            break
        iterations += 1
        # CSR layout of the whole frontier's gathers up front: the prefix
        # sums both parameterise the chunk costs and let every chunk slice
        # out its own ranges independently
        cnt = counts[F]
        f_starts = starts[F]
        out_ptr = np.zeros(len(F) + 1, dtype=np.int64)
        np.cumsum(cnt, out=out_ptr[1:])
        new = np.empty(len(F), dtype=np.int64)

        def run_chunk(lo, hi, arr=arr, pool=pool, f_starts=f_starts,
                      cnt=cnt, out_ptr=out_ptr, new=new):
            # race-free Jacobi chunk kernel: reads the shared tau snapshot
            # and adjacency pool, writes only the disjoint slice
            # new[lo:hi]; the h-index clip bound is local to the chunk but
            # any bound >= the segment size yields the same h-index
            base = out_ptr[lo]
            local_ptr = out_ptr[lo:hi + 1] - base
            chunk_cnt = cnt[lo:hi]
            pos = np.repeat(f_starts[lo:hi] - local_ptr[:-1], chunk_cnt)
            pos = pos + _iota(int(local_ptr[-1]))
            vals = arr[pool[pos]]
            seg = np.repeat(_iota(hi - lo), chunk_cnt)
            new[lo:hi] = _segment_h_index(vals, seg, local_ptr)

        # per frontier vertex: its gathered neighbours + one h-index
        # evaluation, chunk costs straight off the CSR prefix sums
        map_ranges(
            rt, len(F), run_chunk,
            lambda lo, hi: float(out_ptr[hi] - out_ptr[lo]) + (hi - lo),
            region="frontier_csr",
        )
        old = arr[F]
        changed_mask = new != old
        if not changed_mask.any():
            break
        changed = F[changed_mask]
        new_changed = new[changed_mask]
        tau.bulk_set(changed, new_changed)
        if on_commit is not None:
            on_commit(changed, old[changed_mask], new_changed)
        # descent filter: a neighbour w is only affected by v's drop to
        # ``n`` when tau[w] > n -- otherwise v still contributes at least
        # tau[w] to every h-index threshold w can reach (values only
        # descend from a pointwise-valid start, Lemma 1)
        cnbrs, c_ptr = _gather_ranges(starts, counts, pool, changed)
        rep_new = np.repeat(new_changed, np.diff(c_ptr))
        frontier = cnbrs[arr[cnbrs] > rep_new]
        if rt is not None:
            rt.serial(len(changed))
    return iterations


def hhc_frontier_incidence(
    hg,
    tau,
    shadow,
    frontier: np.ndarray,
    *,
    rt=None,
    on_commit: Optional[CommitHook] = None,
    max_iterations: Optional[int] = None,
) -> int:
    """Frontier h-index convergence on an array-backed hypergraph.

    Parameters
    ----------
    hg:
        An :class:`~repro.engine.array_hypergraph.ArrayHypergraph`.
    tau:
        The maintainer's :class:`~repro.engine.tau_array.TauArray`; must be
        pointwise >= kappa on live vertices (Lemma 1).  Updated in place.
    shadow:
        The maintainer's :class:`~repro.engine.tau_array.EdgeMinShadow`
        bound to ``hg`` and ``tau``; refreshed in bulk per iteration and
        re-invalidated for every edge incident to a committed change.
    frontier:
        Dense vertex ids of the initially active set (duplicates and dead
        ids tolerated).
    rt, on_commit, max_iterations:
        As for :func:`hhc_frontier_csr`.

    Returns the number of iterations run.  Semantics are the synchronous
    (Jacobi) sweep of the two-level relation -- vertex <- h-index over the
    min-tau of the *other* pins of each incident hyperedge -- which shares
    its unique fixpoint (kappa) with the asynchronous dict path.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    scratch = np.zeros(len(tau.arr), dtype=bool)
    iterations = 0
    while len(frontier):
        if max_iterations is not None and iterations >= max_iterations:
            break
        # incidence views can move under mutation; re-read defensively
        v_starts, v_counts, v_pool = hg.incidence_arrays()
        arr = tau.arr
        live = tau.live
        limit = min(len(live), len(v_counts))
        if len(scratch) < len(arr):
            scratch = np.zeros(len(arr), dtype=bool)
        F = _dedup(frontier[frontier < len(arr)], scratch)
        F = F[F < limit]
        F = F[live[F] & (v_counts[F] > 0)]
        if not len(F):
            break
        iterations += 1
        # the incidence gather and shadow refresh stay serial: the refresh
        # mutates shared shadow state, and the dirty-edge set needs the
        # whole gather.  Only the pure contribution + h-index pass chunks.
        inc, out_ptr = _gather_ranges(v_starts, v_counts, v_pool, F)
        dirty = np.unique(inc)
        pin_reads = shadow.refresh_ids(dirty)
        if rt is not None and pin_reads and len(dirty):
            # the shadow refresh scans pins grouped by dirty edge; spread
            # its cost uniformly over the refreshed edges as one region
            per_edge = pin_reads / len(dirty)
            rt.parallel_ranges(
                len(dirty),
                lambda lo, hi: per_edge * (hi - lo),
                region="shadow_refresh",
            )
        # read the shadow columns after the refresh (it may reallocate)
        witness = shadow.witness
        m1 = shadow.m1
        m2 = shadow.m2
        new = np.empty(len(F), dtype=np.int64)

        def run_chunk(lo, hi, F=F, inc=inc, out_ptr=out_ptr, new=new,
                      witness=witness, m1=m1, m2=m2):
            # race-free Jacobi chunk kernel over the refreshed shadow:
            # contribution of edge e to its pin v is the min tau over the
            # *other* pins -- the second order statistic when v is the min
            # witness, else the min -- then one h-index per vertex; writes
            # only the disjoint slice new[lo:hi]
            base = out_ptr[lo]
            local_ptr = out_ptr[lo:hi + 1] - base
            inc_c = inc[base:out_ptr[hi]]
            chunk_cnt = np.diff(local_ptr)
            owner = np.repeat(F[lo:hi], chunk_cnt)
            contrib = np.where(witness[inc_c] == owner, m2[inc_c], m1[inc_c])
            seg = np.repeat(_iota(hi - lo), chunk_cnt)
            new[lo:hi] = _segment_h_index(contrib, seg, local_ptr)

        # per frontier vertex: its incidence contributions + one h-index
        # evaluation, chunked off the CSR prefix sums
        map_ranges(
            rt, len(F), run_chunk,
            lambda lo, hi: float(out_ptr[hi] - out_ptr[lo]) + (hi - lo),
            region="frontier_incidence",
        )
        old = arr[F]
        changed_mask = new != old
        if not changed_mask.any():
            break
        changed = F[changed_mask]
        new_changed = new[changed_mask]
        tau.bulk_set(changed, new_changed)
        shadow.on_vertices_changed(changed)
        if on_commit is not None:
            on_commit(changed, old[changed_mask], new_changed)
        # next frontier: pins sharing a hyperedge with a changed vertex,
        # filtered by the descent rule -- a pin w is only affected by
        # v's drop to ``n`` when tau[w] > n (v still holds every edge
        # minimum at or above tau[w] otherwise).  Edges are gathered per
        # changed vertex (duplicates kept) so each pin aligns with the
        # dropping vertex's new value.
        cinc, ci_ptr = _gather_ranges(v_starts, v_counts, v_pool, changed)
        rep_edge_new = np.repeat(new_changed, np.diff(ci_ptr))
        e_starts, e_counts, e_pool = hg.pin_arrays()
        cpins, cp_ptr = _gather_ranges(e_starts, e_counts, e_pool, cinc)
        rep_pin_new = np.repeat(rep_edge_new, np.diff(cp_ptr))
        frontier = cpins[arr[cpins] > rep_pin_new]
        if rt is not None:
            rt.serial(len(changed))
    return iterations
