"""Bulk MaintainH: the array engine's zero-``Change`` batch pipeline.

:func:`maintain_h_columnar` is the columnar twin of
:meth:`~repro.core.base.MaintainerBase.maintain_h` plus ``mod``'s
classification callback (:mod:`repro.core.pin_cases`), fused into a
handful of vectorised passes over a
:class:`~repro.graph.columnar.ColumnarBatch`:

1. **Precheck** -- resolve every unit's interned ids and verify the
   batch is *plain*: all units distinct, every deletion present, every
   insertion absent, labels already interned or internable.  Anything
   else returns ``None`` before the first mutation and the caller falls
   back to the per-``Change`` reference path (which remains the
   semantics of record).
2. **Delete phase** -- classify all deletions against the pre-batch tau
   (for hypergraphs: surviving-pin minima per edge via
   ``np.minimum.reduceat`` plus a segmented suffix-exclusive min over
   later same-edge deletions, reproducing the sequential processing
   order), then splice them out of the substrate in bulk
   (``bulk_remove_edge_ids`` / ``bulk_remove_pin_ids``).
3. **Insert phase** -- classify all insertions against the post-delete
   tau (segmented prefix-exclusive min over earlier same-edge
   insertions plus the surviving-pin minima), then splice them in
   (``bulk_add_edges`` / ``bulk_add_pins``), registering freshly
   interned vertices at tau 0 exactly as the reference path does.

A plain batch executes deletions before insertions regardless of its
interleaving; that reordering is itself a valid batch with the same
final structure, and ``mod`` is exact for every valid batch (tau equals
kappa on exit), so the maintained state is identical -- only the
intermediate I/D records differ.  Order-sensitive batches (a unit
changed twice) are exactly what the precheck rejects.

Rollback is journalled as :class:`ColumnarJournalEntry` slices -- array
columns with an ``undo`` method -- instead of per-``Change`` records, so
the transactional template stays all-or-nothing without materialising
Python objects on the success path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.engine.frontier import gather_ranges
from repro.engine.tau_array import INF
from repro.parallel.runtime import map_ranges
from repro.structures.level_accumulator import LevelAccumulator

__all__ = ["ColumnarJournalEntry", "maintain_h_columnar"]

_EMPTY = np.zeros(0, dtype=np.int64)


class ColumnarJournalEntry:
    """One columnar phase's structural changes, undoable as a slice.

    ``col_a`` / ``col_b`` are the label columns of the applied units
    (graph endpoints, or hyperedge / pin-vertex labels); ``insert`` is
    the whole phase's direction.  :meth:`undo` re-applies the inverse --
    the transactional rollback duck-types on it, so a journal may mix
    these entries with per-``Change`` records freely.
    """

    __slots__ = ("is_hyper", "col_a", "col_b", "insert")

    def __init__(self, is_hyper: bool, col_a: np.ndarray, col_b: np.ndarray,
                 insert: bool) -> None:
        self.is_hyper = is_hyper
        self.col_a = col_a
        self.col_b = col_b
        self.insert = insert

    def __len__(self) -> int:
        return len(self.col_a)

    def undo(self, sub) -> None:
        a = self.col_a.tolist()
        b = self.col_b.tolist()
        if self.insert:
            remove = sub.remove_pin if self.is_hyper else sub.remove_edge
            for x, y in zip(a, b):
                remove(x, y)
        else:
            add = sub.add_pin if self.is_hyper else sub.add_edge
            for x, y in zip(reversed(a), reversed(b)):
                add(x, y)

    def __repr__(self) -> str:
        kind = "hyper" if self.is_hyper else "graph"
        sign = "+" if self.insert else "-"
        return f"ColumnarJournalEntry({kind}, {sign}{len(self.col_a)})"


def _acc_add(acc: LevelAccumulator, levels: np.ndarray) -> int:
    """Fold an array of per-record levels into a level accumulator."""
    if not len(levels):
        return 0
    uq, counts = np.unique(levels, return_counts=True)
    for lv, c in zip(uq.tolist(), counts.tolist()):
        acc.add(lv, c)
    return int(len(levels))


def _distinct_units(col_a: np.ndarray, col_b: np.ndarray) -> bool:
    """True when no ``(a, b)`` unit occurs twice (any directions)."""
    n = len(col_a)
    if n < 2:
        return True
    order = np.lexsort((col_b, col_a))
    a_s = col_a[order]
    b_s = col_b[order]
    return not bool(np.any((a_s[1:] == a_s[:-1]) & (b_s[1:] == b_s[:-1])))


def maintain_h_columnar(backend, cb, *, conservative: bool = True):
    """Run the columnar MaintainH + classification on ``backend``'s
    maintainer.

    Returns ``(I, D, touched_ids)`` -- the classification accumulators
    and the dense ids of structurally touched vertices -- or ``None``
    when the batch is not plain (the caller then runs the per-``Change``
    reference path; nothing has been mutated).
    """
    m = backend.m
    if cb.is_hyper != bool(getattr(m.sub, "is_hypergraph", False)):
        return None
    if cb.is_hyper:
        return _maintain_h_hyper(backend, cb, conservative)
    return _maintain_h_graph(backend, cb)


# -- graphs -------------------------------------------------------------------

def _maintain_h_graph(backend, cb):
    m = backend.m
    g = m.sub
    ta = backend.tau_array
    rt = m.rt

    n = len(cb)
    if not n:
        return LevelAccumulator(), LevelAccumulator(), _EMPTY
    # canonical order (a < b) is the ColumnarBatch invariant; a
    # self-loop or swapped row falls back so the reference path raises
    # its usual errors
    if bool(np.any(cb.col_a >= cb.col_b)):
        return None
    if not _distinct_units(cb.col_a, cb.col_b):
        return None

    du, dv = cb.deletions_columns()
    iu, iv = cb.insertions_columns()
    id_of = g.interner.id_of
    has_edge = g.has_graph_edge
    nd = len(du)
    dui = np.empty(nd, dtype=np.int64)
    dvi = np.empty(nd, dtype=np.int64)
    for k, (u, v) in enumerate(zip(du.tolist(), dv.tolist())):
        ui = id_of(u)
        vi = id_of(v)
        if ui is None or vi is None or not has_edge(u, v):
            return None  # absent deletion: the reference path skips it
        dui[k] = ui
        dvi[k] = vi
    for u, v in zip(iu.tolist(), iv.tolist()):
        if has_edge(u, v):
            return None  # present insertion: the reference path skips it

    # -- committed to the fast path: no fallback below this line --------
    journal = m._txn_journal
    # metering mirrors the reference path: one serial bookkeeping unit
    # per pin record, plus the two-pin classification context per record
    # (4 units per edge, split across the delete/insert classify regions
    # below so the chunk kernels execute under the same accounting)
    rt.serial(2 * n)

    I = LevelAccumulator()
    D = LevelAccumulator()
    emitted = 0
    touched_parts: List[np.ndarray] = []

    if nd:
        arr = ta.arr
        # both endpoint records classify: the min endpoint records
        # D[min] + I[max]; the max endpoint records nothing -- except at
        # a tie, where both records emit D + I (classify_delete's tie
        # case, applied per endpoint).  Pure elementwise chunk kernel:
        # reads the pre-batch tau snapshot, writes disjoint slices.
        a = np.empty(nd, dtype=np.int64)
        b = np.empty(nd, dtype=np.int64)
        tie = np.empty(nd, dtype=bool)

        def classify_deletes(lo, hi, arr=arr, a=a, b=b, tie=tie):
            tu = arr[dui[lo:hi]]
            tv = arr[dvi[lo:hi]]
            np.minimum(tu, tv, out=a[lo:hi])
            np.maximum(tu, tv, out=b[lo:hi])
            np.equal(tu, tv, out=tie[lo:hi])

        map_ranges(
            rt, nd, classify_deletes, lambda lo, hi: 4.0 * (hi - lo),
            region="maintain_h_columnar",
        )
        emitted += _acc_add(D, np.concatenate((a, a[tie])))
        emitted += _acc_add(I, np.concatenate((b, b[tie])))
        dropped = g.bulk_remove_edge_ids(dui, dvi)
        for i, label in dropped:
            ta.drop(i)
            m._drop_vertex(label)
        if journal is not None:
            journal.append(ColumnarJournalEntry(False, du, dv, False))
        touched_parts.append(dui)
        touched_parts.append(dvi)

    if len(iu):
        iui, ivi, created = g.bulk_add_edges(iu, iv)
        if created:
            tau = m.tau
            bucket = m._level_index.setdefault(0, set())
            delta = m._view_delta
            for i, label in created:
                if delta is not None and label not in delta:
                    delta[label] = None  # entered the decomposition
                tau[label] = 0
                bucket.add(label)
                ta.set_(i, 0)
        arr = ta.arr  # may have been reallocated registering new ids
        # per edge: the min endpoint records I[min] (new-edge semantics,
        # so no deletion record); at a tie both records emit
        ni_ = len(iui)
        a = np.empty(ni_, dtype=np.int64)
        tie = np.empty(ni_, dtype=bool)

        def classify_inserts(lo, hi, arr=arr, a=a, tie=tie):
            tu = arr[iui[lo:hi]]
            tv = arr[ivi[lo:hi]]
            np.minimum(tu, tv, out=a[lo:hi])
            np.equal(tu, tv, out=tie[lo:hi])

        map_ranges(
            rt, ni_, classify_inserts, lambda lo, hi: 4.0 * (hi - lo),
            region="maintain_h_columnar",
        )
        emitted += _acc_add(I, np.concatenate((a, a[tie])))
        if journal is not None:
            journal.append(ColumnarJournalEntry(False, iu, iv, True))
        touched_parts.append(iui)
        touched_parts.append(ivi)

    rt.serial(emitted)
    touched = (
        np.unique(np.concatenate(touched_parts)) if touched_parts else _EMPTY
    )
    return I, D, touched


# -- hypergraphs --------------------------------------------------------------

def _maintain_h_hyper(backend, cb, conservative: bool):
    m = backend.m
    h = m.sub
    ta = backend.tau_array
    shadow = backend.edge_shadow
    rt = m.rt

    n = len(cb)
    if not n:
        return LevelAccumulator(), LevelAccumulator(), _EMPTY
    if not _distinct_units(cb.col_a, cb.col_b):
        return None

    de, dv = cb.deletions_columns()
    ie, iv = cb.insertions_columns()
    eid_of = h.edge_interner.id_of
    vid_of = h.interner.id_of
    contains = h._epins.contains

    nd = len(de)
    dei = np.empty(nd, dtype=np.int64)
    dvi = np.empty(nd, dtype=np.int64)
    for k, (e, v) in enumerate(zip(de.tolist(), dv.tolist())):
        ei = eid_of(e)
        vi = vid_of(v)
        if ei is None or vi is None or not contains(ei, vi):
            return None  # absent deletion: the reference path skips it
        dei[k] = ei
        dvi[k] = vi
    ni = len(ie)
    # new-edge semantics are decided against the *pre-batch* edge set,
    # exactly like the reference path's new_edges pre-pass
    ins_new = np.empty(ni, dtype=bool)
    for k, (e, v) in enumerate(zip(ie.tolist(), iv.tolist())):
        ei = eid_of(e)
        if ei is None:
            ins_new[k] = True
            continue
        ins_new[k] = False
        vi = vid_of(v)
        if vi is not None and contains(ei, vi):
            return None  # present insertion: the reference path skips it

    # -- committed to the fast path: no fallback below this line --------
    journal = m._txn_journal
    rt.serial(n)

    I = LevelAccumulator()
    D = LevelAccumulator()
    emitted = 0
    touched_parts: List[np.ndarray] = []
    dirty_parts: List[np.ndarray] = []

    if nd:
        # classification context: per affected edge, the minimum tau over
        # pins surviving the whole delete phase; per deletion record, the
        # running minimum additionally covers later same-edge deletions
        # (those pins are still present when this record processes)
        aff = np.unique(dei)
        starts, counts, pool = h.pin_arrays()
        pins, ptr = gather_ranges(starts, counts, pool, aff)
        arr = ta.arr
        del_keys = np.sort((dei << 32) | dvi)
        # per-edge surviving-pin minimum: segment boundaries (ptr) are
        # edge boundaries, so the reduceat chunks cleanly -- each chunk
        # covers whole edges and writes a disjoint slice of surv_min
        surv_min = np.empty(len(aff), dtype=np.int64)

        def surviving_min(lo, hi, arr=arr, surv_min=surv_min):
            base = ptr[lo]
            local_ptr = ptr[lo:hi + 1] - base
            pins_c = pins[base:ptr[hi]]
            owner_c = np.repeat(aff[lo:hi], np.diff(local_ptr))
            deleted_c = np.isin((owner_c << 32) | pins_c, del_keys)
            vals_c = np.where(deleted_c, INF, arr[pins_c])
            surv_min[lo:hi] = np.minimum.reduceat(vals_c, local_ptr[:-1])

        map_ranges(
            rt, len(aff), surviving_min,
            lambda lo, hi: float(ptr[hi] - ptr[lo]),
            region="maintain_h_columnar",
        )
        g_order = np.argsort(dei, kind="stable")
        seg = np.searchsorted(aff, dei[g_order])
        gtv = arr[dvi[g_order]]
        # segmented suffix-exclusive min in batch order: offset each
        # segment into its own disjoint value band so one reversed
        # minimum.accumulate never leaks across segment boundaries
        # (offsets are non-increasing along the scan direction)
        B = int(gtv.max()) + 1
        offs = seg[::-1] * B
        suffix_incl = (np.minimum.accumulate(gtv[::-1] + offs) - offs)[::-1]
        suffix_excl = np.full(nd, INF, dtype=np.int64)
        if nd > 1:
            same = seg[:-1] == seg[1:]
            suffix_excl[:-1][same] = suffix_incl[1:][same]
        m_others = np.minimum(surv_min[seg], suffix_excl)
        rec = gtv <= m_others
        emitted += _acc_add(D, gtv[rec])
        emitted += _acc_add(I, m_others[rec & (m_others < INF)])
        # the suffix-exclusive min scans *across* segment boundaries
        # (later same-edge deletions), so it stays serial; meter its
        # per-record pass (the pin gather is accounted in the map above)
        rt.parallel_ranges(
            nd, lambda lo, hi: float(hi - lo),
            region="maintain_h_columnar",
        )
        dropped_v, _dead_e = h.bulk_remove_pin_ids(dei, dvi)
        for i, label in dropped_v:
            ta.drop(i)
            m._drop_vertex(label)
        if journal is not None:
            journal.append(ColumnarJournalEntry(True, de, dv, False))
        touched_parts.append(pins)
        dirty_parts.append(aff)

    if ni:
        # classify against the post-delete, pre-insert structure: the
        # surviving pins of each target edge plus earlier same-edge
        # insertions of this batch (their pins are present by the time a
        # record processes); fresh vertices contribute tau 0
        tei = np.empty(ni, dtype=np.int64)
        for k, e in enumerate(ie.tolist()):
            j = eid_of(e)
            tei[k] = -1 if j is None else j
        survives = tei >= 0
        aff_i = np.unique(tei[survives])
        arr = ta.arr
        n_gathered = 0
        if len(aff_i):
            starts, counts, pool = h.pin_arrays()
            pins_i, ptr_i = gather_ranges(starts, counts, pool, aff_i)
            # per-edge min over surviving pins; chunks at edge boundaries
            surv_i = np.empty(len(aff_i), dtype=np.int64)

            def insert_surviving_min(lo, hi, arr=arr, surv_i=surv_i):
                base = ptr_i[lo]
                local_ptr = ptr_i[lo:hi + 1] - base
                surv_i[lo:hi] = np.minimum.reduceat(
                    arr[pins_i[base:ptr_i[hi]]], local_ptr[:-1]
                )

            map_ranges(
                rt, len(aff_i), insert_surviving_min,
                lambda lo, hi: float(ptr_i[hi] - ptr_i[lo]),
                region="maintain_h_columnar",
            )
            n_gathered = len(pins_i)
        tv_eff = np.empty(ni, dtype=np.int64)
        for k, v in enumerate(iv.tolist()):
            i = vid_of(v)
            tv_eff[k] = arr[i] if i is not None else 0
        uq_e, inv_e = np.unique(ie, return_inverse=True)
        surv_by_group = np.full(len(uq_e), INF, dtype=np.int64)
        if len(aff_i):
            surv_by_group[inv_e[survives]] = surv_i[
                np.searchsorted(aff_i, tei[survives])
            ]
        g_order = np.argsort(inv_e, kind="stable")
        seg = inv_e[g_order]
        gtv = tv_eff[g_order]
        gnew = ins_new[g_order]
        # segmented prefix-exclusive min in batch order (same disjoint
        # band trick; offsets decrease along the forward scan)
        B = int(gtv.max()) + 1
        offs = (np.int64(len(uq_e) - 1) - seg) * B
        prefix_incl = np.minimum.accumulate(gtv + offs) - offs
        prefix_excl = np.full(ni, INF, dtype=np.int64)
        if ni > 1:
            same = seg[1:] == seg[:-1]
            prefix_excl[1:][same] = prefix_incl[:-1][same]
        m_others = np.minimum(surv_by_group[seg], prefix_excl)
        gains = gtv <= m_others
        emitted += _acc_add(I, gtv[gains])
        drops = (
            (m_others < INF)
            & ~gnew
            & ((gtv < m_others) | ((gtv == m_others) & conservative))
        )
        emitted += _acc_add(D, m_others[drops])
        # the prefix-exclusive min scans across segment boundaries
        # (earlier same-edge insertions): serial, metered per record
        rt.parallel_ranges(
            ni, lambda lo, hi: float(hi - lo),
            region="maintain_h_columnar",
        )
        eids_new, vids_new, created_v, _created_e = h.bulk_add_pins(ie, iv)
        if created_v:
            tau = m.tau
            bucket = m._level_index.setdefault(0, set())
            delta = m._view_delta
            for i, label in created_v:
                if delta is not None and label not in delta:
                    delta[label] = None  # entered the decomposition
                tau[label] = 0
                bucket.add(label)
                ta.set_(i, 0)
        if journal is not None:
            journal.append(ColumnarJournalEntry(True, ie, iv, True))
        touched_parts.append(vids_new)
        if n_gathered:
            touched_parts.append(pins_i)
        dirty_parts.append(eids_new)

    if shadow is not None and dirty_parts:
        dirty = np.unique(np.concatenate(dirty_parts))
        if len(dirty):
            shadow._ensure(int(dirty.max()))
            shadow.valid[dirty] = False

    rt.serial(emitted)
    touched = (
        np.unique(np.concatenate(touched_parts)) if touched_parts else _EMPTY
    )
    return I, D, touched
