"""Fully dynamic flat-array hypergraph: bipartite incidence pools.

:class:`ArrayHypergraph` stores both directions of a hypergraph's
incidence -- vertex -> incident hyperedges and hyperedge -> pins -- in two
:class:`_IncidencePool` instances: ``int64`` member pools addressed by
per-row ``(start, count, capacity)`` triples, the same *dynamic CSR*
layout :class:`~repro.engine.array_graph.ArrayGraph` uses for plain
adjacency.  Each row carries slack; a full row relocates to the pool tail
with doubled capacity (amortised O(1) ``add_pin``), removal swap-removes
within the row (O(1) via the packed position map), and abandoned space is
reclaimed by whole-pool compaction once holes outgrow live data.

Vertex labels and hyperedge labels are arbitrary hashables, each densified
by its own :class:`~repro.engine.interner.VertexInterner` (vertices on
``interner`` -- the attribute name every dense consumer shares with
``ArrayGraph`` -- and hyperedges on ``edge_interner``).  Both follow the
implicit lifecycle of the pin-change model: a vertex or hyperedge is
created by its first pin and released at zero, with its dense id recycled.

Invariants (relied on by the vectorised kernels; see docs/PERFORMANCE.md):

* ``v_pool[v_starts[i] : v_starts[i] + v_counts[i]]`` are exactly the live
  incident hyperedge ids of live vertex ``i``, and symmetrically
  ``e_pool[e_starts[j] : e_starts[j] + e_counts[j]]`` the live pin vertex
  ids of live hyperedge ``j``; entries beyond the count are garbage.
* live vertices have degree >= 1 and live hyperedges pin count >= 1
  (hypersparse: zero-degree rows are released and their ids recycled);
* compaction and relocation never change *which* ids are live, only where
  rows sit in a pool -- dense per-id state (tau arrays, the hyperedge
  min-tau shadow) survives both.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

import numpy as np

from repro.graph.csr import CSRHypergraph
from repro.graph.substrate import Change, EdgeId, Vertex
from repro.engine.interner import VertexInterner

__all__ = ["ArrayHypergraph"]

_MIN_BLOCK = 4


class _IncidencePool:
    """One direction of the incidence: rows of member ids in a flat pool.

    The row/member id spaces are independent (vertex rows hold hyperedge
    ids and vice versa); ``_pos`` packs ``(row << 32) | member`` so both
    membership tests and swap-removal are O(1).
    """

    __slots__ = (
        "_starts", "_counts", "_caps", "_pool", "_tail", "_holes", "_pos",
        "_slack", "_compact_threshold", "compactions", "relocations",
    )

    def __init__(self, *, slack: float = 0.25, compact_threshold: float = 0.5) -> None:
        cap = 16
        self._starts = np.zeros(cap, dtype=np.int64)
        self._counts = np.zeros(cap, dtype=np.int64)
        self._caps = np.zeros(cap, dtype=np.int64)
        self._pool = np.zeros(64, dtype=np.int64)
        self._tail = 0          # next free pool offset
        self._holes = 0         # abandoned pool capacity
        #: packed (row << 32 | member) -> offset of member inside row
        self._pos: Dict[int, int] = {}
        self._slack = slack
        self._compact_threshold = compact_threshold
        self.compactions = 0
        self.relocations = 0

    # -- row plumbing ---------------------------------------------------------
    def ensure_row(self, i: int) -> None:
        cap = len(self._starts)
        if i < cap:
            return
        new_cap = max(cap * 2, i + 1)
        for name in ("_starts", "_counts", "_caps"):
            arr = getattr(self, name)
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[:cap] = arr
            setattr(self, name, grown)

    def reset_row(self, i: int) -> None:
        """Fresh (possibly recycled) row: zero its block descriptor."""
        self.ensure_row(i)
        self._starts[i] = 0
        self._counts[i] = 0
        self._caps[i] = 0

    def release_row(self, i: int) -> None:
        self._holes += int(self._caps[i])
        self._caps[i] = 0
        self._starts[i] = 0

    # -- pool management ------------------------------------------------------
    def _pool_reserve(self, extra: int, live_rows_fn) -> None:
        need = self._tail + extra
        if need <= len(self._pool):
            return
        if self._holes > self._compact_threshold * max(1, self._tail - self._holes):
            # live rows are materialised only here -- the O(1) add path
            # never pays for the scan
            self.compact(live_rows_fn())
            need = self._tail + extra
        if need > len(self._pool):
            new_len = max(len(self._pool) * 2, need)
            grown = np.zeros(new_len, dtype=np.int64)
            grown[: self._tail] = self._pool[: self._tail]
            self._pool = grown

    def _relocate(self, i: int, new_cap: int, live_rows_fn) -> None:
        """Move row ``i`` to the pool tail with ``new_cap`` room."""
        self._pool_reserve(new_cap, live_rows_fn)
        s, c = int(self._starts[i]), int(self._counts[i])
        self._pool[self._tail : self._tail + c] = self._pool[s : s + c]
        self._holes += int(self._caps[i])
        self._starts[i] = self._tail
        self._caps[i] = new_cap
        self._tail += new_cap
        self.relocations += 1

    def compact(self, live_rows: np.ndarray) -> None:
        """Repack the pool: live rows contiguous, fresh proportional slack."""
        live = live_rows[np.argsort(self._starts[live_rows], kind="stable")]
        counts = self._counts[live]
        new_caps = np.maximum(
            _MIN_BLOCK, counts + (counts * self._slack).astype(np.int64) + 1
        )
        new_starts = np.zeros(len(live) + 1, dtype=np.int64)
        np.cumsum(new_caps, out=new_starts[1:])
        needed = int(new_starts[-1])
        new_pool = np.zeros(max(64, needed), dtype=np.int64)
        for pos, i in enumerate(live):
            i = int(i)
            s, c = int(self._starts[i]), int(self._counts[i])
            t = int(new_starts[pos])
            new_pool[t : t + c] = self._pool[s : s + c]
            self._starts[i] = t
            self._caps[i] = int(new_caps[pos])
        self._pool = new_pool
        self._tail = needed
        self._holes = 0  # slack is reserved room, not a hole
        self.compactions += 1

    def needs_compaction(self) -> bool:
        return self._holes > self._compact_threshold * max(64, self._tail - self._holes)

    # -- member primitives ----------------------------------------------------
    @staticmethod
    def _key(row: int, member: int) -> int:
        return (row << 32) | member

    def contains(self, row: int, member: int) -> bool:
        return self._key(row, member) in self._pos

    def add(self, row: int, member: int, live_rows_fn) -> None:
        c, cap = int(self._counts[row]), int(self._caps[row])
        if c == cap:
            self._relocate(row, max(_MIN_BLOCK, cap * 2), live_rows_fn)
        self._pool[int(self._starts[row]) + c] = member
        self._pos[self._key(row, member)] = c
        self._counts[row] = c + 1

    def remove(self, row: int, member: int) -> None:
        p = self._pos.pop(self._key(row, member))
        last = int(self._counts[row]) - 1
        s = int(self._starts[row])
        if p != last:
            w = int(self._pool[s + last])
            self._pool[s + p] = w
            self._pos[self._key(row, w)] = p
        self._counts[row] = last

    # -- bulk splices (the columnar fast path) --------------------------------
    def bulk_add_grouped(self, rows: np.ndarray, members: np.ndarray,
                         live_rows_fn) -> None:
        """Insert ``(rows[k], members[k])`` memberships grouped per row:
        one capacity reservation and one pool-slice write per touched row.
        Preconditions: rows exist, no membership present, no duplicates."""
        order = np.argsort(rows, kind="stable")
        rows_s = rows[order]
        mem_s = members[order]
        bounds = np.flatnonzero(
            np.r_[True, rows_s[1:] != rows_s[:-1], True]
        ).tolist()
        for gi in range(len(bounds) - 1):
            lo, hi = bounds[gi], bounds[gi + 1]
            r = int(rows_s[lo])
            k = hi - lo
            c = int(self._counts[r])
            cap = int(self._caps[r])
            if c + k > cap:
                new_cap = max(_MIN_BLOCK, cap)
                while new_cap < c + k:
                    new_cap *= 2
                self._relocate(r, new_cap, live_rows_fn)
            s = int(self._starts[r])
            block = mem_s[lo:hi]
            self._pool[s + c : s + c + k] = block
            self._pos.update(
                zip(((r << 32) | block).tolist(), range(c, c + k))
            )
            self._counts[r] = c + k

    def bulk_remove_grouped(self, rows: np.ndarray, members: np.ndarray) -> None:
        """Delete memberships grouped per row: one hole-filling splice per
        touched row instead of one swap-remove per membership.
        Preconditions: every membership present, no duplicates."""
        order = np.argsort(rows, kind="stable")
        rows_s = rows[order]
        mem_s = members[order]
        bounds = np.flatnonzero(
            np.r_[True, rows_s[1:] != rows_s[:-1], True]
        ).tolist()
        pos = self._pos
        pool = self._pool
        for gi in range(len(bounds) - 1):
            lo, hi = bounds[gi], bounds[gi + 1]
            r = int(rows_s[lo])
            k = hi - lo
            s = int(self._starts[r])
            c = int(self._counts[r])
            new_c = c - k
            removed = [pos.pop((r << 32) | m) for m in mem_s[lo:hi].tolist()]
            if new_c:
                in_tail = {p for p in removed if p >= new_c}
                holes = sorted(p for p in removed if p < new_c)
                if holes:
                    movers = (q for q in range(new_c, c) if q not in in_tail)
                    for h, q in zip(holes, movers):
                        w = int(pool[s + q])
                        pool[s + h] = w
                        pos[(r << 32) | w] = h
            self._counts[r] = new_c

    # -- views ----------------------------------------------------------------
    def count(self, row: int) -> int:
        return int(self._counts[row])

    def members(self, row: int) -> np.ndarray:
        s, c = int(self._starts[row]), int(self._counts[row])
        return self._pool[s : s + c]

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._starts, self._counts, self._pool

    def stats(self, live_rows: np.ndarray) -> Dict[str, int]:
        used = int(self._counts[live_rows].sum()) if len(live_rows) else 0
        return {
            "pool_len": len(self._pool),
            "tail": self._tail,
            "used": used,
            "slack": self._tail - self._holes - used,
            "holes": self._holes,
            "compactions": self.compactions,
            "relocations": self.relocations,
        }


class ArrayHypergraph:
    """Dynamic hypergraph over flat numpy incidence pools.

    >>> h = ArrayHypergraph.from_hyperedges({"e1": [1, 2, 3], "e2": [3, 4]})
    >>> h.degree(3)
    2
    >>> sorted(h.neighbors(3))
    [1, 2, 4]
    >>> removed = h.remove_pin("e2", 4)
    >>> h.pin_count("e2")
    1
    """

    is_hypergraph = True
    #: marks this substrate as eligible for the vectorised engine
    is_array_backed = True

    def __init__(self, *, slack: float = 0.25, compact_threshold: float = 0.5) -> None:
        self.interner = VertexInterner()        # vertex labels
        self.edge_interner = VertexInterner()   # hyperedge labels
        self._vinc = _IncidencePool(slack=slack, compact_threshold=compact_threshold)
        self._epins = _IncidencePool(slack=slack, compact_threshold=compact_threshold)
        self._num_pins = 0
        self._slack = slack
        self._compact_threshold = compact_threshold

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_hyperedges(
        cls, hyperedges: "Mapping[EdgeId, Iterable[Vertex]] | Iterable[Iterable[Vertex]]",
        **kwargs,
    ) -> "ArrayHypergraph":
        """Build from ``{edge_id: pins}`` or a plain iterable of pin lists
        (edges then get ids ``0, 1, 2, ...``)."""
        h = cls(**kwargs)
        items: Iterable[Tuple[EdgeId, Iterable[Vertex]]]
        if isinstance(hyperedges, Mapping):
            items = hyperedges.items()
        else:
            items = enumerate(hyperedges)
        for e, pins in items:
            for v in pins:
                h.add_pin(e, v)
        return h

    @classmethod
    def from_hypergraph(cls, other, **kwargs) -> "ArrayHypergraph":
        """Convert any hypergraph substrate (e.g. a ``DynamicHypergraph``)."""
        h = cls(**kwargs)
        for e, pins in other.hyperedges():
            for v in pins:
                h.add_pin(e, v)
        return h

    def copy(self) -> "ArrayHypergraph":
        h = ArrayHypergraph(slack=self._slack, compact_threshold=self._compact_threshold)
        for e, pins in self.hyperedges():
            for v in pins:
                h.add_pin(e, v)
        return h

    # -- id plumbing ----------------------------------------------------------
    def _intern_vertex(self, label: Vertex) -> int:
        known = label in self.interner
        i = self.interner.intern(label)
        if not known:
            # the id may be recycled: reset its incidence row
            self._vinc.reset_row(i)
        return i

    def _intern_edge(self, label: EdgeId) -> int:
        known = label in self.edge_interner
        j = self.edge_interner.intern(label)
        if not known:
            self._epins.reset_row(j)
        return j

    # -- mutation ---------------------------------------------------------------
    def add_pin(self, e: EdgeId, v: Vertex) -> bool:
        """Insert pin (e, v); creates ``e``/``v`` implicitly.  False if present."""
        ei = self.edge_interner.id_of(e)
        vi = self.interner.id_of(v)
        if ei is not None and vi is not None and self._epins.contains(ei, vi):
            return False
        ei = self._intern_edge(e)
        vi = self._intern_vertex(v)
        self._vinc.add(vi, ei, self.live_ids)
        self._epins.add(ei, vi, self.live_edge_ids)
        self._num_pins += 1
        return True

    def remove_pin(self, e: EdgeId, v: Vertex) -> bool:
        """Delete pin (e, v); destroys ``e``/``v`` at zero.  False if absent."""
        ei = self.edge_interner.id_of(e)
        vi = self.interner.id_of(v)
        if ei is None or vi is None or not self._epins.contains(ei, vi):
            return False
        self._vinc.remove(vi, ei)
        self._epins.remove(ei, vi)
        self._num_pins -= 1
        # implicit lifecycle: rows at zero leave their interner
        if not self._vinc.count(vi):
            self._vinc.release_row(vi)
            self.interner.release(v)
        if not self._epins.count(ei):
            self._epins.release_row(ei)
            self.edge_interner.release(e)
        if self._vinc.needs_compaction():
            self._vinc.compact(self.live_ids())
        if self._epins.needs_compaction():
            self._epins.compact(self.live_edge_ids())
        return True

    # -- bulk mutation (the columnar fast path) -------------------------------
    def bulk_remove_pin_ids(self, eids: np.ndarray, vids: np.ndarray):
        """Delete pins given as parallel dense-id arrays with grouped
        incidence splices.  Preconditions (the columnar precheck's job):
        every pin present, no duplicates.  Returns ``(dropped_vertices,
        dead_edges)`` as ``(id, label)`` pair lists for rows whose count
        hit zero (released, ids recycled)."""
        nd = len(eids)
        dropped_v: List[Tuple[int, object]] = []
        dead_e: List[Tuple[int, object]] = []
        if not nd:
            return dropped_v, dead_e
        self._vinc.bulk_remove_grouped(vids, eids)
        self._epins.bulk_remove_grouped(eids, vids)
        self._num_pins -= nd
        v_label_of = self.interner.label_of
        for i in np.unique(vids).tolist():
            if not self._vinc.count(i):
                label = v_label_of(i)
                self._vinc.release_row(i)
                self.interner.release(label)
                dropped_v.append((i, label))
        e_label_of = self.edge_interner.label_of
        for j in np.unique(eids).tolist():
            if not self._epins.count(j):
                label = e_label_of(j)
                self._epins.release_row(j)
                self.edge_interner.release(label)
                dead_e.append((j, label))
        if self._vinc.needs_compaction():
            self._vinc.compact(self.live_ids())
        if self._epins.needs_compaction():
            self._epins.compact(self.live_edge_ids())
        return dropped_v, dead_e

    def bulk_add_pins(self, e_labels: np.ndarray, v_labels: np.ndarray):
        """Insert absent pins given as parallel label arrays: batched
        interning of both id spaces plus grouped incidence splices.
        Preconditions: no duplicates, no pin present.  Returns
        ``(eids, vids, created_vertices, created_edges)``; the created
        lists hold ``(id, label)`` pairs interned fresh by this call."""
        n = len(e_labels)
        created_v: List[Tuple[int, object]] = []
        created_e: List[Tuple[int, object]] = []
        if not n:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, created_v, created_e
        eids = np.empty(n, dtype=np.int64)
        vids = np.empty(n, dtype=np.int64)
        e_interner = self.edge_interner
        for k, lab in enumerate(e_labels.tolist()):
            known = lab in e_interner
            j = e_interner.intern(lab)
            if not known:
                self._epins.reset_row(j)
                created_e.append((j, lab))
            eids[k] = j
        v_interner = self.interner
        for k, lab in enumerate(v_labels.tolist()):
            known = lab in v_interner
            i = v_interner.intern(lab)
            if not known:
                self._vinc.reset_row(i)
                created_v.append((i, lab))
            vids[k] = i
        self._vinc.bulk_add_grouped(vids, eids, self.live_ids)
        self._epins.bulk_add_grouped(eids, vids, self.live_edge_ids)
        self._num_pins += n
        return eids, vids, created_v, created_e

    def add_hyperedge(self, e: EdgeId, pins: Iterable[Vertex]) -> None:
        for v in pins:
            self.add_pin(e, v)

    def remove_hyperedge(self, e: EdgeId) -> None:
        for v in self.pins(e):
            self.remove_pin(e, v)

    # -- Substrate protocol ----------------------------------------------------
    def vertices(self) -> Iterator[Vertex]:
        return self.interner.labels()

    def num_vertices(self) -> int:
        return len(self.interner)

    def num_edges(self) -> int:
        return len(self.edge_interner)

    def num_pins(self) -> int:
        return self._num_pins

    def has_vertex(self, v: Vertex) -> bool:
        return v in self.interner

    def has_edge(self, e: EdgeId) -> bool:
        return e in self.edge_interner

    def has_pin(self, e: EdgeId, v: Vertex) -> bool:
        ei = self.edge_interner.id_of(e)
        vi = self.interner.id_of(v)
        return ei is not None and vi is not None and self._epins.contains(ei, vi)

    def degree(self, v: Vertex) -> int:
        i = self.interner.id_of(v)
        return self._vinc.count(i) if i is not None else 0

    def incident(self, v: Vertex) -> List[EdgeId]:
        i = self.interner.id_of(v)
        if i is None:
            return []
        label_of = self.edge_interner.label_of
        return [label_of(int(e)) for e in self._vinc.members(i)]

    def pins(self, e: EdgeId) -> List[Vertex]:
        j = self.edge_interner.id_of(e)
        if j is None:
            return []
        label_of = self.interner.label_of
        return [label_of(int(p)) for p in self._epins.members(j)]

    def pin_count(self, e: EdgeId) -> int:
        j = self.edge_interner.id_of(e)
        return self._epins.count(j) if j is not None else 0

    def neighbors(self, v: Vertex) -> List[Vertex]:
        i = self.interner.id_of(v)
        if i is None:
            return []
        inc = self._vinc.members(i)
        if not len(inc):
            return []
        e_starts, e_counts, e_pool = self._epins.arrays()
        out: List[Vertex] = []
        seen = {i}
        label_of = self.interner.label_of
        for e in inc:
            s, c = int(e_starts[e]), int(e_counts[e])
            for p in e_pool[s : s + c]:
                p = int(p)
                if p not in seen:
                    seen.add(p)
                    out.append(label_of(p))
        return out

    def apply(self, change: Change) -> bool:
        if change.insert:
            return self.add_pin(change.edge, change.vertex)
        return self.remove_pin(change.edge, change.vertex)

    # -- conveniences ----------------------------------------------------------
    def hyperedges(self) -> Iterator[Tuple[EdgeId, List[Vertex]]]:
        label_of = self.interner.label_of
        for e, j in self.edge_interner.items():
            yield e, [label_of(int(p)) for p in self._epins.members(j)]

    def edge_ids(self) -> Iterator[EdgeId]:
        return self.edge_interner.labels()

    def max_degree(self) -> int:
        if not len(self.interner):
            return 0
        return int(self._vinc._counts[self.live_ids()].max())

    def max_pin_count(self) -> int:
        if not len(self.edge_interner):
            return 0
        return int(self._epins._counts[self.live_edge_ids()].max())

    # -- dense views for the vectorised engine --------------------------------
    def incidence_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, counts, pool)`` of vertex -> incident hyperedge ids.

        Live views, not copies; valid until the next structural mutation
        (relocation or compaction may move rows).
        """
        return self._vinc.arrays()

    def pin_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, counts, pool)`` of hyperedge -> pin vertex ids."""
        return self._epins.arrays()

    def live_ids(self) -> np.ndarray:
        """Dense ids of all live vertices (unsorted)."""
        return np.fromiter(
            (i for _, i in self.interner.items()), dtype=np.int64, count=len(self.interner)
        )

    def live_edge_ids(self) -> np.ndarray:
        """Dense ids of all live hyperedges (unsorted)."""
        return np.fromiter(
            (j for _, j in self.edge_interner.items()),
            dtype=np.int64,
            count=len(self.edge_interner),
        )

    def ids_of(self, labels: Iterable[Vertex]) -> np.ndarray:
        """Dense vertex ids of the given labels, skipping absent ones."""
        id_of = self.interner.id_of
        return np.fromiter(
            (i for i in (id_of(l) for l in labels) if i is not None), dtype=np.int64
        )

    def snapshot_csr(self) -> CSRHypergraph:
        """Freeze into a :class:`CSRHypergraph` (labels repr-sorted, matching
        ``CSRHypergraph.from_hypergraph``) in O(n + m + pins)."""
        vpairs = sorted(self.interner.items(), key=lambda kv: repr(kv[0]))
        epairs = sorted(self.edge_interner.items(), key=lambda kv: repr(kv[0]))
        vlabels = [lbl for lbl, _ in vpairs]
        elabels = [lbl for lbl, _ in epairs]
        vids = np.fromiter((i for _, i in vpairs), dtype=np.int64, count=len(vpairs))
        eids = np.fromiter((j for _, j in epairs), dtype=np.int64, count=len(epairs))
        n, m = len(vlabels), len(elabels)

        vdeg = self._vinc._counts[vids] if n else np.zeros(0, dtype=np.int64)
        esz = self._epins._counts[eids] if m else np.zeros(0, dtype=np.int64)
        v_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(vdeg, out=v_indptr[1:])
        e_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(esz, out=e_indptr[1:])

        # dense-id -> csr-position remaps for both id spaces
        vremap = np.zeros(max(1, self.interner.capacity), dtype=np.int64)
        vremap[vids] = np.arange(n, dtype=np.int64)
        eremap = np.zeros(max(1, self.edge_interner.capacity), dtype=np.int64)
        eremap[eids] = np.arange(m, dtype=np.int64)

        v_edges = np.empty(int(v_indptr[-1]), dtype=np.int64)
        for pos in range(n):
            v_edges[v_indptr[pos] : v_indptr[pos + 1]] = eremap[
                self._vinc.members(int(vids[pos]))
            ]
        e_pins = np.empty(int(e_indptr[-1]), dtype=np.int64)
        for pos in range(m):
            e_pins[e_indptr[pos] : e_indptr[pos + 1]] = vremap[
                self._epins.members(int(eids[pos]))
            ]
        return CSRHypergraph(n, m, v_indptr, v_edges, e_indptr, e_pins, vlabels, elabels)

    # -- diagnostics ----------------------------------------------------------
    def pool_stats(self) -> Dict[str, Dict[str, int]]:
        """Occupancy counters for both incidence directions."""
        return {
            "vertex": self._vinc.stats(self.live_ids()),
            "edge": self._epins.stats(self.live_edge_ids()),
        }

    def __contains__(self, v: Vertex) -> bool:
        return v in self.interner

    def __repr__(self) -> str:
        return (
            f"ArrayHypergraph(|V|={self.num_vertices()}, "
            f"|E|={self.num_edges()}, pins={self._num_pins})"
        )
