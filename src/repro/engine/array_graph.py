"""Fully dynamic flat-array adjacency: the CSR-backed substrate.

:class:`ArrayGraph` stores the adjacency of a simple undirected graph in a
single ``int64`` neighbour pool addressed by per-vertex ``(start, count,
capacity)`` triples -- a *dynamic* CSR.  Each vertex block carries slack:
inserting a neighbour into a full block relocates it to the pool tail with
doubled capacity (amortised O(1)), deletion swap-removes within the block
(O(1) via the arc position map), and abandoned block space is reclaimed by
periodic whole-pool compaction once holes outgrow live data.

Labels stay arbitrary hashable values: a shared
:class:`~repro.engine.interner.VertexInterner` maps them to dense ids (the
array indices) with free-list recycling, so the structure presents exactly
the :class:`~repro.graph.substrate.Substrate` protocol -- every existing
maintenance algorithm runs on it unchanged -- while the vectorised engine
(:mod:`repro.engine.frontier`) reads the dense arrays directly.

Invariants (relied on by the frontier kernels; see docs/PERFORMANCE.md):

* ``pool[starts[i] : starts[i] + counts[i]]`` are exactly the live
  neighbour ids of live vertex ``i``; entries beyond ``counts[i]`` within
  the block are garbage.
* live vertices have ``counts[i] >= 1`` (hypersparse: degree-0 vertices
  are released, and their interned id recycled);
* ``_pos[(u << 32) | v]`` is the offset of ``v`` inside ``u``'s block
  (both directions stored), doubling as the O(1) edge membership test;
* compaction and relocation never change *which* ids are live, only where
  blocks sit in the pool -- dense per-id state (tau arrays) survives.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.substrate import Change, EdgeId, Vertex, edge_id
from repro.engine.interner import VertexInterner

__all__ = ["ArrayGraph"]

_MIN_BLOCK = 4
_EMPTY_I64 = np.zeros(0, dtype=np.int64)


class ArrayGraph:
    """Dynamic simple undirected graph over flat numpy arrays.

    >>> g = ArrayGraph.from_edges([(1, 2), (2, 3)])
    >>> g.degree(2)
    2
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> removed = g.remove_edge(1, 2)
    >>> g.has_vertex(1)
    False
    """

    is_hypergraph = False
    #: marks this substrate as eligible for the vectorised engine
    is_array_backed = True

    def __init__(self, *, slack: float = 0.25, compact_threshold: float = 0.5) -> None:
        self.interner = VertexInterner()
        cap = 16
        self._starts = np.zeros(cap, dtype=np.int64)
        self._counts = np.zeros(cap, dtype=np.int64)
        self._caps = np.zeros(cap, dtype=np.int64)
        self._pool = np.zeros(64, dtype=np.int64)
        self._tail = 0          # next free pool offset
        self._holes = 0         # abandoned pool capacity
        self._num_edges = 0
        #: arc (u_id << 32 | v_id) -> offset of v inside u's block
        self._pos: Dict[int, int] = {}
        self._slack = slack
        self._compact_threshold = compact_threshold
        self.compactions = 0
        self.relocations = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Vertex, Vertex]], **kwargs) -> "ArrayGraph":
        g = cls(**kwargs)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    @classmethod
    def from_graph(cls, other, **kwargs) -> "ArrayGraph":
        """Convert any graph substrate (e.g. a ``DynamicGraph``)."""
        g = cls(**kwargs)
        for u, v in other.edges():
            g.add_edge(u, v)
        return g

    def copy(self) -> "ArrayGraph":
        g = ArrayGraph(slack=self._slack, compact_threshold=self._compact_threshold)
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    # -- id plumbing ----------------------------------------------------------
    def _ensure_vertex_capacity(self, i: int) -> None:
        cap = len(self._starts)
        if i < cap:
            return
        new_cap = max(cap * 2, i + 1)
        for name in ("_starts", "_counts", "_caps"):
            arr = getattr(self, name)
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[:cap] = arr
            setattr(self, name, grown)

    def _intern(self, label: Vertex) -> int:
        known = label in self.interner
        i = self.interner.intern(label)
        if not known:
            self._ensure_vertex_capacity(i)
            # the id may be recycled: reset its block descriptor
            self._starts[i] = 0
            self._counts[i] = 0
            self._caps[i] = 0
        return i

    def _release(self, i: int) -> None:
        self._holes += int(self._caps[i])
        self._caps[i] = 0
        self._starts[i] = 0
        self.interner.release(self.interner.label_of(i))

    # -- pool management ------------------------------------------------------
    def _pool_reserve(self, extra: int) -> None:
        need = self._tail + extra
        if need <= len(self._pool):
            return
        if self._holes > self._compact_threshold * max(1, self._tail - self._holes):
            self._compact()
            need = self._tail + extra
        if need > len(self._pool):
            new_len = max(len(self._pool) * 2, need)
            grown = np.zeros(new_len, dtype=np.int64)
            grown[: self._tail] = self._pool[: self._tail]
            self._pool = grown

    def _relocate(self, i: int, new_cap: int) -> None:
        """Move vertex ``i``'s block to the pool tail with ``new_cap`` room."""
        self._pool_reserve(new_cap)
        s, c = int(self._starts[i]), int(self._counts[i])
        self._pool[self._tail : self._tail + c] = self._pool[s : s + c]
        self._holes += int(self._caps[i])
        self._starts[i] = self._tail
        self._caps[i] = new_cap
        self._tail += new_cap
        self.relocations += 1

    def _compact(self) -> None:
        """Repack the pool: live blocks contiguous, fresh proportional slack."""
        live = self.live_ids()
        live = live[np.argsort(self._starts[live], kind="stable")]  # keep locality
        counts = self._counts[live]
        new_caps = np.maximum(
            _MIN_BLOCK, counts + (counts * self._slack).astype(np.int64) + 1
        )
        new_starts = np.zeros(len(live) + 1, dtype=np.int64)
        np.cumsum(new_caps, out=new_starts[1:])
        needed = int(new_starts[-1])
        new_pool = np.zeros(max(64, needed), dtype=np.int64)
        for pos, i in enumerate(live):
            i = int(i)
            s, c = int(self._starts[i]), int(self._counts[i])
            t = int(new_starts[pos])
            new_pool[t : t + c] = self._pool[s : s + c]
            self._starts[i] = t
            self._caps[i] = int(new_caps[pos])
        self._pool = new_pool
        self._tail = needed
        self._holes = 0  # slack is reserved room, not a hole
        self.compactions += 1

    # -- arc primitives -------------------------------------------------------
    @staticmethod
    def _key(u: int, v: int) -> int:
        return (u << 32) | v

    def _add_arc(self, u: int, v: int) -> None:
        c, cap = int(self._counts[u]), int(self._caps[u])
        if c == cap:
            self._relocate(u, max(_MIN_BLOCK, cap * 2))
        self._pool[int(self._starts[u]) + c] = v
        self._pos[self._key(u, v)] = c
        self._counts[u] = c + 1

    def _remove_arc(self, u: int, v: int) -> None:
        p = self._pos.pop(self._key(u, v))
        last = int(self._counts[u]) - 1
        s = int(self._starts[u])
        if p != last:
            w = int(self._pool[s + last])
            self._pool[s + p] = w
            self._pos[self._key(u, w)] = p
        self._counts[u] = last

    # -- graph-level mutation -------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert edge {u, v}.  Returns False if already present."""
        if u == v:
            raise ValueError(f"self-loop {u!r} not allowed")
        ui = self.interner.id_of(u)
        vi = self.interner.id_of(v)
        if ui is not None and vi is not None and self._key(ui, vi) in self._pos:
            return False
        ui = self._intern(u)
        vi = self._intern(v)
        self._add_arc(ui, vi)
        self._add_arc(vi, ui)
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete edge {u, v}.  Returns False if absent."""
        ui = self.interner.id_of(u)
        vi = self.interner.id_of(v)
        if ui is None or vi is None or self._key(ui, vi) not in self._pos:
            return False
        self._remove_arc(ui, vi)
        self._remove_arc(vi, ui)
        # implicit vertex deletion at degree zero (hypersparse model)
        if not self._counts[ui]:
            self._release(ui)
        if not self._counts[vi]:
            self._release(vi)
        self._num_edges -= 1
        if self._holes > self._compact_threshold * max(64, self._tail - self._holes):
            self._compact()
        return True

    # -- bulk mutation (the columnar fast path) -------------------------------
    def bulk_remove_edge_ids(self, uids: np.ndarray, vids: np.ndarray) -> List[Tuple[int, object]]:
        """Delete edges given as parallel dense-id arrays, grouped per
        endpoint: one hole-filling splice per touched adjacency block
        instead of two swap-removes per edge.

        Preconditions (the columnar precheck's job): every edge present,
        no duplicates.  Returns ``(id, label)`` pairs of vertices whose
        degree hit zero (released, ids recycled).
        """
        nd = len(uids)
        if not nd:
            return []
        src = np.concatenate((uids, vids))
        tgt = np.concatenate((vids, uids))
        order = np.argsort(src, kind="stable")
        src_s = src[order]
        tgt_s = tgt[order]
        bounds = np.flatnonzero(
            np.r_[True, src_s[1:] != src_s[:-1], True]
        ).tolist()
        pos = self._pos
        pool = self._pool
        starts = self._starts
        counts = self._counts
        for gi in range(len(bounds) - 1):
            lo, hi = bounds[gi], bounds[gi + 1]
            u = int(src_s[lo])
            k = hi - lo
            s = int(starts[u])
            c = int(counts[u])
            new_c = c - k
            removed = [pos.pop((u << 32) | t) for t in tgt_s[lo:hi].tolist()]
            if new_c:
                in_tail = {p for p in removed if p >= new_c}
                holes = sorted(p for p in removed if p < new_c)
                if holes:
                    movers = (q for q in range(new_c, c) if q not in in_tail)
                    for h, q in zip(holes, movers):
                        w = int(pool[s + q])
                        pool[s + h] = w
                        pos[(u << 32) | w] = h
            counts[u] = new_c
        self._num_edges -= nd
        dropped: List[Tuple[int, object]] = []
        dead = np.unique(src)
        dead = dead[counts[dead] == 0]
        label_of = self.interner.label_of
        for i in dead.tolist():
            label = label_of(i)
            self._release(i)
            dropped.append((i, label))
        if self._holes > self._compact_threshold * max(64, self._tail - self._holes):
            self._compact()
        return dropped

    def bulk_add_edges(self, u_labels: np.ndarray, v_labels: np.ndarray):
        """Insert absent edges given as parallel label arrays: batched
        interning plus one capacity reservation and one pool-slice write
        per touched adjacency block.

        Preconditions: no duplicates, no edge present, no self-loops.
        Returns ``(uids, vids, created)`` where ``created`` holds
        ``(id, label)`` pairs of vertices interned fresh by this call.
        """
        n = len(u_labels)
        created: List[Tuple[int, object]] = []
        if not n:
            return _EMPTY_I64, _EMPTY_I64, created
        interner = self.interner
        uids = np.empty(n, dtype=np.int64)
        vids = np.empty(n, dtype=np.int64)
        for out, labels in ((uids, u_labels), (vids, v_labels)):
            for k, lab in enumerate(labels.tolist()):
                known = lab in interner
                i = interner.intern(lab)
                if not known:
                    self._ensure_vertex_capacity(i)
                    self._starts[i] = 0
                    self._counts[i] = 0
                    self._caps[i] = 0
                    created.append((i, lab))
                out[k] = i
        src = np.concatenate((uids, vids))
        tgt = np.concatenate((vids, uids))
        order = np.argsort(src, kind="stable")
        src_s = src[order]
        tgt_s = tgt[order]
        bounds = np.flatnonzero(
            np.r_[True, src_s[1:] != src_s[:-1], True]
        ).tolist()
        for gi in range(len(bounds) - 1):
            lo, hi = bounds[gi], bounds[gi + 1]
            u = int(src_s[lo])
            k = hi - lo
            c = int(self._counts[u])
            cap = int(self._caps[u])
            if c + k > cap:
                new_cap = max(_MIN_BLOCK, cap)
                while new_cap < c + k:
                    new_cap *= 2
                self._relocate(u, new_cap)
            s = int(self._starts[u])
            block = tgt_s[lo:hi]
            self._pool[s + c : s + c + k] = block
            self._pos.update(
                zip(((u << 32) | block).tolist(), range(c, c + k))
            )
            self._counts[u] = c + k
        self._num_edges += n
        return uids, vids, created

    def has_graph_edge(self, u: Vertex, v: Vertex) -> bool:
        ui = self.interner.id_of(u)
        vi = self.interner.id_of(v)
        return ui is not None and vi is not None and self._key(ui, vi) in self._pos

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Each edge once, as its canonical id."""
        label_of = self.interner.label_of
        for lbl, i in self.interner.items():
            s, c = int(self._starts[i]), int(self._counts[i])
            for w in self._pool[s : s + c]:
                wl = label_of(int(w))
                if lbl <= wl:
                    yield (lbl, wl)

    def edge_list(self) -> List[Tuple[Vertex, Vertex]]:
        return sorted(self.edges())

    # -- Substrate protocol ---------------------------------------------------
    def vertices(self) -> Iterator[Vertex]:
        return self.interner.labels()

    def num_vertices(self) -> int:
        return len(self.interner)

    def num_edges(self) -> int:
        return self._num_edges

    def num_pins(self) -> int:
        return 2 * self._num_edges

    def has_vertex(self, v: Vertex) -> bool:
        return v in self.interner

    def has_edge(self, e: EdgeId) -> bool:
        u, v = e
        return self.has_graph_edge(u, v)

    def has_pin(self, e: EdgeId, v: Vertex) -> bool:
        return v in e and self.has_edge(e)

    def degree(self, v: Vertex) -> int:
        i = self.interner.id_of(v)
        return int(self._counts[i]) if i is not None else 0

    def incident(self, v: Vertex) -> Iterator[EdgeId]:
        for w in self.neighbors(v):
            yield edge_id(v, w)

    def pins(self, e: EdgeId) -> Tuple[Vertex, Vertex]:
        return e

    def pin_count(self, e: EdgeId) -> int:
        return 2

    def neighbors(self, v: Vertex) -> List[Vertex]:
        i = self.interner.id_of(v)
        if i is None:
            return []
        s, c = int(self._starts[i]), int(self._counts[i])
        label_of = self.interner.label_of
        return [label_of(int(w)) for w in self._pool[s : s + c]]

    def apply(self, change: Change) -> bool:
        """Apply a pin change (see ``DynamicGraph.apply``: either pin
        change of a graph edge pair moves the whole edge; the twin is a
        structural no-op)."""
        u, v = change.edge
        if change.vertex not in (u, v):
            raise ValueError(f"pin {change.vertex!r} not an endpoint of {change.edge!r}")
        if change.insert:
            return self.add_edge(u, v)
        return self.remove_edge(u, v)

    # -- dense views for the vectorised engine --------------------------------
    def adjacency_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, counts, pool)`` -- live views, not copies.

        Valid until the next structural mutation (relocation or compaction
        may move blocks).
        """
        return self._starts, self._counts, self._pool

    def live_ids(self) -> np.ndarray:
        """Dense ids of all live vertices (unsorted)."""
        return np.fromiter(
            (i for _, i in self.interner.items()), dtype=np.int64, count=len(self.interner)
        )

    def ids_of(self, labels: Iterable[Vertex]) -> np.ndarray:
        """Dense ids of the given labels, skipping absent ones."""
        id_of = self.interner.id_of
        return np.fromiter(
            (i for i in (id_of(l) for l in labels) if i is not None), dtype=np.int64
        )

    def neighbor_ids(self, i: int) -> np.ndarray:
        s, c = int(self._starts[i]), int(self._counts[i])
        return self._pool[s : s + c]

    def snapshot_csr(self) -> CSRGraph:
        """Freeze into a :class:`CSRGraph` (labels sorted) in O(n + m)."""
        pairs = sorted(self.interner.items())
        labels = [lbl for lbl, _ in pairs]
        ids = np.fromiter((i for _, i in pairs), dtype=np.int64, count=len(pairs))
        n = len(labels)
        degs = self._counts[ids] if n else np.zeros(0, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degs, out=indptr[1:])
        # dense-id -> csr-position remap
        remap = np.zeros(self.interner.capacity, dtype=np.int64)
        remap[ids] = np.arange(n, dtype=np.int64)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for pos in range(n):
            i = int(ids[pos])
            s, c = int(self._starts[i]), int(self._counts[i])
            indices[indptr[pos] : indptr[pos + 1]] = remap[self._pool[s : s + c]]
        return CSRGraph(n, indptr, indices, labels)

    # -- diagnostics ----------------------------------------------------------
    def pool_stats(self) -> Dict[str, int]:
        """Occupancy counters (used / slack / holes / compactions)."""
        used = int(self._counts[self.live_ids()].sum()) if len(self.interner) else 0
        return {
            "pool_len": len(self._pool),
            "tail": self._tail,
            "used": used,
            "slack": self._tail - self._holes - used,
            "holes": self._holes,
            "compactions": self.compactions,
            "relocations": self.relocations,
        }

    def max_degree(self) -> int:
        if not len(self.interner):
            return 0
        return int(self._counts[self.live_ids()].max())

    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for _, i in self.interner.items():
            d = int(self._counts[i])
            hist[d] = hist.get(d, 0) + 1
        return hist

    def __contains__(self, v: Vertex) -> bool:
        return v in self.interner

    def __repr__(self) -> str:
        return f"ArrayGraph(|V|={self.num_vertices()}, |E|={self._num_edges})"
