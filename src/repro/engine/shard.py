"""Per-node shard substrates and halo tau import/export kernels.

A :class:`ShardSubstrate` is what one cluster node actually holds in the
sharded distributed layer (:mod:`repro.distributed.core`): a genuine
substrate -- :class:`~repro.graph.dynamic_graph.DynamicGraph` /
:class:`~repro.graph.dynamic_hypergraph.DynamicHypergraph` on the dict
backend, :class:`~repro.engine.array_graph.ArrayGraph` /
:class:`~repro.engine.array_hypergraph.ArrayHypergraph` on the array
backend -- restricted to the node's *owned* vertices plus the **ghost /
halo ring**: the boundary neighbours that co-occur with an owned vertex
in some unit (graph edge, hyperedge).  Shard invariants:

* every unit incident to an owned vertex is present in full, so an owned
  vertex's shard degree equals its global degree and its h-index
  recomputation never needs the wire;
* every non-owned (*ghost*) vertex in the shard carries an owner-stamped
  read-only tau in ``halo`` -- the shard never writes a ghost's value
  except by importing a :class:`HaloDelta` from its owner;
* ``tau`` holds authoritative values for owned vertices only.  No node
  holds a whole-graph replica: shard size is owned + boundary, and total
  memory across nodes is ``|V| * replication_factor``.

:class:`HaloDelta` is the wire format of boundary traffic: the changed
``(vertex, tau)`` pairs for one destination, packed as parallel ``int64``
arrays when labels are integers (``nbytes`` is then the real array size),
falling back to lists for exotic labels.  Supersteps exchange *only*
these deltas -- value maps never cross the wire after the one
boundary-sized initial exchange (:func:`initial_halo_exports`).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Set, Tuple

import numpy as np

__all__ = ["ShardSubstrate", "HaloDelta", "build_shards", "initial_halo_exports"]

Vertex = Hashable

#: wire size of one (int64 id, int64 value) delta entry
DELTA_ENTRY_BYTES = 16


class HaloDelta:
    """Changed ``(vertex, tau)`` pairs bound for one destination node.

    The payload of every boundary message: packed as two parallel
    ``int64`` arrays when every label is an integer (the columnar / array
    engine case -- ``nbytes`` is then the genuine array footprint), as
    plain lists otherwise.
    """

    __slots__ = ("labels", "values")

    def __init__(self, labels, values) -> None:
        self.labels = labels
        self.values = values

    @classmethod
    def pack(cls, pairs: List[Tuple[Vertex, int]]) -> "HaloDelta":
        labels = [v for v, _ in pairs]
        values = [t for _, t in pairs]
        if all(type(v) is int for v in labels):
            return cls(np.array(labels, dtype=np.int64),
                       np.array(values, dtype=np.int64))
        return cls(labels, values)

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def nbytes(self) -> int:
        if isinstance(self.labels, np.ndarray):
            return int(self.labels.nbytes + self.values.nbytes)
        return len(self.labels) * DELTA_ENTRY_BYTES

    def items(self) -> Iterator[Tuple[Vertex, int]]:
        if isinstance(self.labels, np.ndarray):
            return zip(self.labels.tolist(), self.values.tolist())
        return zip(self.labels, self.values)

    def __repr__(self) -> str:
        return f"HaloDelta(n={len(self)}, nbytes={self.nbytes})"


class ShardSubstrate:
    """One node's shard: owned vertices + ghost ring over a real substrate.

    ``owner`` is the global ownership function (partition lookup with the
    stable new-vertex rule); the shard uses it to distinguish owned from
    ghost and to address boundary deltas.
    """

    __slots__ = ("node", "local", "owner", "tau", "halo", "halo_stamp")

    def __init__(self, node: int, local, owner: Callable[[Vertex], int]) -> None:
        self.node = node
        self.local = local
        self.owner = owner
        #: authoritative values of owned vertices
        self.tau: Dict[Vertex, int] = {}
        #: owner-stamped read-only values of ghost vertices
        self.halo: Dict[Vertex, int] = {}
        #: superstep stamp of each ghost's last import (staleness audits)
        self.halo_stamp: Dict[Vertex, int] = {}

    # -- ownership and values -------------------------------------------------
    def is_owned(self, v: Vertex) -> bool:
        return self.owner(v) == self.node

    def value_of(self, v: Vertex) -> int:
        """The shard's current view of tau(v): authoritative for owned
        vertices, halo (stale by at most one superstep) for ghosts."""
        got = self.tau.get(v)
        if got is not None:
            return got
        return self.halo.get(v, 0)

    class _ValueView:
        """Read-only mapping facade over (tau | halo), for the classifier."""

        __slots__ = ("_shard",)

        def __init__(self, shard: "ShardSubstrate") -> None:
            self._shard = shard

        def get(self, v: Vertex, default: int = 0) -> int:
            s = self._shard
            got = s.tau.get(v)
            if got is not None:
                return got
            return s.halo.get(v, default)

    def values(self) -> "ShardSubstrate._ValueView":
        return ShardSubstrate._ValueView(self)

    # -- ghost bookkeeping ----------------------------------------------------
    def register(self, v: Vertex, *, value: int = 0, stamp: int = 0) -> None:
        """Record ``v``'s value after a structural change added it to the
        shard: owned vertices get an authoritative tau entry, ghosts an
        owner-stamped halo entry.  Existing entries are left alone."""
        if self.is_owned(v):
            self.tau.setdefault(v, value)
        elif v not in self.halo:
            self.halo[v] = value
            self.halo_stamp[v] = stamp

    def set_halo(self, v: Vertex, value: int, *, stamp: int) -> None:
        """Import one owner-stamped ghost value (delta application)."""
        self.halo[v] = value
        self.halo_stamp[v] = stamp

    def import_delta(self, delta: HaloDelta, *, stamp: int) -> List[Vertex]:
        """Apply a boundary delta; returns the ghost vertices whose value
        changed (still present in the shard) for neighbour activation."""
        touched: List[Vertex] = []
        has_vertex = self.local.has_vertex
        for v, value in delta.items():
            if not has_vertex(v):
                continue
            self.halo[v] = value
            self.halo_stamp[v] = stamp
            touched.append(v)
        return touched

    def forget(self, v: Vertex) -> None:
        """Drop all value state for a vertex that left the shard."""
        self.tau.pop(v, None)
        self.halo.pop(v, None)
        self.halo_stamp.pop(v, None)

    def gc(self, candidates: Iterable[Vertex]) -> None:
        """Forget every candidate no longer structurally present."""
        has_vertex = self.local.has_vertex
        for v in candidates:
            if not has_vertex(v):
                self.forget(v)

    # -- boundary addressing ----------------------------------------------------
    def delta_dests(self, v: Vertex) -> Set[int]:
        """Nodes holding ``v`` as a ghost: the owners of v's foreign
        neighbours (each such node's shard contains the crossing unit,
        hence v).  Computable entirely from the shard -- the owner needs
        no global directory to address its boundary deltas."""
        node = self.node
        owner = self.owner
        dests: Set[int] = set()
        for w in self.local.neighbors(v):
            dst = owner(w)
            if dst != node:
                dests.add(dst)
        return dests

    # -- accounting ----------------------------------------------------------
    @property
    def num_owned(self) -> int:
        return len(self.tau)

    @property
    def num_ghosts(self) -> int:
        return len(self.halo)

    def footprint(self) -> Dict[str, int]:
        """Shard memory summary (the no-full-replica audit surface)."""
        return {
            "owned": len(self.tau),
            "ghosts": len(self.halo),
            "vertices": self.local.num_vertices(),
            "edges": self.local.num_edges(),
            "pins": self.local.num_pins(),
        }

    def __repr__(self) -> str:
        return (f"ShardSubstrate(node={self.node}, owned={len(self.tau)}, "
                f"ghosts={len(self.halo)})")


def _empty_local(is_hyper: bool, backend: str):
    if backend == "array":
        if is_hyper:
            from repro.engine.array_hypergraph import ArrayHypergraph

            return ArrayHypergraph()
        from repro.engine.array_graph import ArrayGraph

        return ArrayGraph()
    if backend != "dict":
        raise ValueError(f"unknown shard backend {backend!r}")
    if is_hyper:
        from repro.graph.dynamic_hypergraph import DynamicHypergraph

        return DynamicHypergraph()
    from repro.graph.dynamic_graph import DynamicGraph

    return DynamicGraph()


def build_shards(sub, owner: Callable[[Vertex], int], nodes: int, *,
                 backend: str = "dict") -> List[ShardSubstrate]:
    """Cut ``sub`` into per-node shards under the ``owner`` map.

    One pass over the units: a graph edge lands in its two endpoint
    owners' shards; a hyperedge lands *in full* in the shard of every
    node owning at least one pin (so each host can classify and
    recompute without remote pin lookups).  Owned taus are seeded from
    shard-local degrees -- exact, because an owned vertex's incident
    units are all present.  Ghost halos are registered at 0 and filled
    by the initial boundary exchange (:func:`initial_halo_exports`).

    ``sub`` is read once and not retained: the returned shards are the
    only structural state the distributed layer keeps.
    """
    is_hyper = bool(getattr(sub, "is_hypergraph", False))
    shards = [ShardSubstrate(n, _empty_local(is_hyper, backend), owner)
              for n in range(nodes)]
    if is_hyper:
        for e, pins in sub.hyperedges():
            pins = tuple(pins)
            hosts = {owner(p) for p in pins}
            for n in hosts:
                local = shards[n].local
                for p in pins:
                    local.add_pin(e, p)
    else:
        if backend == "array":
            _bulk_build_graph_shards(sub, owner, shards)
        else:
            for u, v in sub.edges():
                nu, nv = owner(u), owner(v)
                shards[nu].local.add_edge(u, v)
                if nv != nu:
                    shards[nv].local.add_edge(u, v)
    # seed values: owned = shard-local degree (== global), ghosts = 0
    for shard in shards:
        node = shard.node
        local = shard.local
        for v in local.vertices():
            if owner(v) == node:
                shard.tau[v] = local.degree(v)
            else:
                shard.halo[v] = 0
                shard.halo_stamp[v] = 0
    return shards


def _bulk_build_graph_shards(sub, owner, shards: List[ShardSubstrate]) -> None:
    """Array-backend graph shard construction: group edges per node and
    splice each shard's adjacency with one bulk insert (no per-edge
    Python on the hot path) when labels are integers."""
    per_node_u: List[List[int]] = [[] for _ in shards]
    per_node_v: List[List[int]] = [[] for _ in shards]
    all_int = True
    fallback_edges = []
    for u, v in sub.edges():
        if all_int and not (type(u) is int and type(v) is int):
            all_int = False
        fallback_edges.append((u, v))
        nu, nv = owner(u), owner(v)
        per_node_u[nu].append(u)
        per_node_v[nu].append(v)
        if nv != nu:
            per_node_u[nv].append(u)
            per_node_v[nv].append(v)
    if all_int:
        for shard, us, vs in zip(shards, per_node_u, per_node_v):
            if us:
                shard.local.bulk_add_edges(np.array(us, dtype=np.int64),
                                           np.array(vs, dtype=np.int64))
    else:
        for u, v in fallback_edges:
            nu, nv = owner(u), owner(v)
            shards[nu].local.add_edge(u, v)
            if nv != nu:
                shards[nv].local.add_edge(u, v)


def initial_halo_exports(shard: ShardSubstrate) -> Dict[int, HaloDelta]:
    """The one boundary-sized seeding message per destination: every owned
    vertex's value, addressed to each node holding it as a ghost.  This
    replaces the old quadratic replica seeding (every node learning every
    remote degree): total volume is the ghost-copy count, i.e.
    ``|V| * (replication_factor - 1)``, not ``nodes * |V|``."""
    per_dst: Dict[int, List[Tuple[Vertex, int]]] = {}
    for v, value in shard.tau.items():
        for dst in shard.delta_dests(v):
            per_dst.setdefault(dst, []).append((v, value))
    return {dst: HaloDelta.pack(pairs) for dst, pairs in sorted(per_dst.items())}
