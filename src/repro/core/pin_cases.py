"""Pin-change case analysis (Section IV-B, Figs. 4 and 5).

A stream of *pin* changes is strictly harder than hyperedge changes: a
single pin deletion can simultaneously *decrease* the core value of the
vertex losing the pin and *increase* the core values of the remaining pins
(if the deleted pin was exactly the hyperedge's binding minimum); pin
insertions mirror this.  The ``mod`` maintainer classifies every pin change
into the paper's four cases and emits per-level insertion/deletion records
(the ``I``/``D`` maps of Algorithm 4) plus the vertices to activate.

The classification below is expressed against the tau values current when
the change is processed (== kappa at batch start, since ``mod`` defers all
tau updates until after ``MaintainH``), with ``m_others`` the minimum tau
over the hyperedge's *other* pins:

Deletion of pin ``(e, v)`` (cases as named in the paper):

* **Case 1** -- ``e`` no longer exists (last pin removed): the losing
  vertex records a deletion at its level; nobody can gain.
* **Case 2** -- ``tau[v] < m_others``: ``v`` was the unique binding
  minimum.  ``v`` records a deletion at ``tau[v]``; the remaining pins may
  gain, recorded as an insertion at ``m_others`` (the new binding level --
  only pins sitting exactly at that level can rise, see DESIGN.md).
* **Case 3** -- ``tau[v] > m_others``: the edge's contribution to ``v``
  was below ``tau[v]`` and is unchanged for everyone else; no records.
* **Case 4** -- ``tau[v] == m_others`` (min range overlap): ``v`` loses a
  counting element, recorded as a deletion; the remaining tied pins may
  gain *mutually* (a rise invisible to stale values -- the Lemma 1 trap),
  so the gain at ``m_others`` is always recorded.

Insertions swap the roles (the paper: "For insertions, the deletions and
insertion changes are swapped"):

* new-edge pin insertion (the edge was created by this batch): the pin
  gains iff no other pin sits strictly below it -- exactly Algorithm 4's
  ``f-mod`` guard;
* pin insertion into a pre-existing edge with ``tau[v] < m_others``
  additionally lowers the edge's binding minimum, so the other pins may
  *drop*: recorded as a deletion at ``m_others``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, List, Sequence, Tuple

from repro.graph.substrate import Change

__all__ = ["PinCaseResult", "classify_insert", "classify_delete", "CASE_NAMES"]

Vertex = Hashable

CASE_NAMES = {
    1: "edge-removed",
    2: "min-below-rest",
    3: "above-min",
    4: "min-overlap",
}


@dataclass
class PinCaseResult:
    """Records emitted for one pin change.

    ``inserts`` / ``deletes`` are (level, count) pairs destined for the
    ``I`` / ``D`` accumulators; ``case`` is the paper's case number (for
    insertions, the number of the mirrored deletion case).
    """

    case: int
    inserts: List[Tuple[int, int]] = field(default_factory=list)
    deletes: List[Tuple[int, int]] = field(default_factory=list)


def _min_over(tau, pins: Sequence[Vertex], excluding: Vertex) -> float:
    m: float = math.inf
    for w in pins:
        if w != excluding:
            t = tau.get(w, 0)
            if t < m:
                m = t
    return m


def classify_delete(tau, change: Change, pins_before: Sequence[Vertex],
                    *, conservative: bool = True) -> PinCaseResult:
    """Classify pin deletion ``(change.edge, change.vertex)``.

    ``pins_before`` is the pin tuple before removal (including the pin).
    """
    v = change.vertex
    tv = tau.get(v, 0)
    m_others = _min_over(tau, pins_before, v)

    if m_others == math.inf:
        # Case 1: v was the last pin; the hyperedge disappears with it.
        return PinCaseResult(1, deletes=[(tv, 1)])

    if tv < m_others:
        # Case 2: v was the unique binding minimum.
        res = PinCaseResult(2, deletes=[(tv, 1)])
        res.inserts.append((int(m_others), 1))
        return res

    if tv > m_others:
        # Case 3: the edge never counted for v and its minimum is intact.
        return PinCaseResult(3)

    # Case 4: tie -- v counted and loses the element.  The remaining tied
    # pins may *gain*: the rise is mutual (each supports the other at the
    # next level), so it is invisible to an h-index step over the current
    # values -- without the gain record the fixpoint is Lemma-1-stuck
    # below the new kappa.  Found by the property suite
    # (tests/test_property_maintenance.py); the record is therefore
    # unconditional, not merely conservative.
    res = PinCaseResult(4, deletes=[(tv, 1)])
    res.inserts.append((int(m_others), 1))
    return res


def classify_insert(tau, change: Change, pins_now: Sequence[Vertex],
                    *, edge_is_new: bool, conservative: bool = True) -> PinCaseResult:
    """Classify pin insertion ``(change.edge, change.vertex)``.

    ``pins_now`` is the pin tuple after insertion.  ``edge_is_new`` says
    whether the hyperedge itself was created within the current batch
    (then every pin's list grows and nobody can drop).
    """
    v = change.vertex
    tv = tau.get(v, 0)
    m_others = _min_over(tau, pins_now, v)

    if m_others == math.inf:
        # singleton new hyperedge: v gains an unconditional element
        return PinCaseResult(1, inserts=[(tv, 1)])

    if tv < m_others:
        # mirrored Case 2: v gains a counting element; if the edge already
        # existed, its binding minimum just dropped to tau[v], so the other
        # pins may lose a counting element.
        res = PinCaseResult(2, inserts=[(tv, 1)])
        if not edge_is_new:
            res.deletes.append((int(m_others), 1))
        return res

    if tv > m_others:
        # mirrored Case 3: the new element sits below tau[v] (no gain for
        # v) and above the minimum (no change for others).
        return PinCaseResult(3)

    # mirrored Case 4: tie.  v gains a counting element (the f-mod guard
    # admits non-strict minima); others keep their minimum.
    res = PinCaseResult(4, inserts=[(tv, 1)])
    if conservative and not edge_is_new:
        res.deletes.append((int(m_others), 1))
    return res
