"""The sequential traversal maintenance baseline (Sariyuce et al. [11]).

This is the classic single-edge streaming algorithm the paper's related
work opens with (Section II-D): on an edge change, traverse the *subcore*
-- the connected region of vertices sharing the smaller endpoint's core
value -- and repair core values locally.

* **Insertion** of ``{u, v}`` with ``k = min(kappa[u], kappa[v])``: only
  vertices with ``kappa == k`` connected to the root(s) through
  ``kappa == k`` vertices can rise, and by exactly one.  Collect that
  candidate set, then iteratively evict candidates whose *core degree*
  (neighbours with ``kappa > k`` plus surviving candidates) is at most
  ``k``; survivors rise to ``k + 1``.
* **Deletion** with ``k = min`` over the endpoints: only the subcore can
  fall, by exactly one.  Iteratively evict subcore vertices whose support
  (neighbours with ``kappa >= k``) falls below ``k``.

Graphs only -- the traversal argument relies on single-edge subcore
locality, which is the property the paper's batch algorithms are built to
escape.  For batches, changes are processed one at a time; that throughput
cliff versus ``mod``/``setmb`` on large batches is the motivating gap.

Besides its baseline role, this maintainer is the test-suite's *second*
independent oracle for dynamic streams (peeling being the first).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Optional, Set

from repro.core.base import MaintainerBase
from repro.graph.substrate import Change

__all__ = ["TraversalMaintainer"]

Vertex = Hashable


class TraversalMaintainer(MaintainerBase):
    """Sequential subcore-traversal maintenance for dynamic graphs."""

    algorithm = "traversal"

    def __init__(self, sub, rt=None, *, tau=None) -> None:
        if getattr(sub, "is_hypergraph", False):
            raise TypeError("the traversal baseline is defined for graphs only")
        super().__init__(sub, rt, tau=tau, use_min_cache=False)

    # -- subcore collection ---------------------------------------------------------
    def _subcore(self, roots, k: int) -> Set[Vertex]:
        """Vertices with kappa == k reachable from roots through kappa == k."""
        sub, tau, rt = self.sub, self.tau, self.rt
        seen: Set[Vertex] = set()
        stack = [r for r in roots if tau.get(r) == k]
        seen.update(stack)
        while stack:
            v = stack.pop()
            rt.serial(sub.degree(v))
            for w in sub.neighbors(v):
                if w not in seen and tau.get(w) == k:
                    seen.add(w)
                    stack.append(w)
        return seen

    # -- single-change repairs ----------------------------------------------------------
    def _insert_repair(self, u: Vertex, v: Vertex) -> None:
        tau, sub, rt = self.tau, self.sub, self.rt
        k = min(tau.get(u, 0), tau.get(v, 0))
        roots = [w for w in (u, v) if tau.get(w, 0) == k]
        candidates = self._subcore(roots, k)
        if not candidates:
            return
        # core degree: neighbours that could support a rise to k + 1
        cd: Dict[Vertex, int] = {}
        for s in candidates:
            rt.serial(sub.degree(s))
            cd[s] = sum(
                1 for w in sub.neighbors(s) if tau.get(w, 0) > k or w in candidates
            )
        # evict until every survivor could sit in a (k+1)-core
        queue = deque(s for s in candidates if cd[s] <= k)
        evicted: Set[Vertex] = set(queue)
        while queue:
            s = queue.popleft()
            rt.serial(sub.degree(s))
            for w in sub.neighbors(s):
                if w in candidates and w not in evicted:
                    cd[w] -= 1
                    if cd[w] <= k:
                        evicted.add(w)
                        queue.append(w)
        for s in candidates - evicted:
            self._set_tau(s, k + 1)

    def _delete_repair(self, u: Vertex, v: Vertex) -> None:
        """Called after the edge is structurally gone; endpoints may be too."""
        tau, sub, rt = self.tau, self.sub, self.rt
        levels = sorted({tau[w] for w in (u, v) if w in tau})
        for k in levels:
            roots = [w for w in (u, v) if tau.get(w) == k]
            if not roots:
                continue
            region = self._subcore(roots, k)
            if not region:
                continue
            support: Dict[Vertex, int] = {}
            for s in region:
                rt.serial(sub.degree(s))
                support[s] = sum(1 for w in sub.neighbors(s) if tau.get(w, 0) >= k)
            queue = deque(s for s in region if support[s] < k)
            dropped: Set[Vertex] = set(queue)
            while queue:
                s = queue.popleft()
                rt.serial(sub.degree(s))
                for w in sub.neighbors(s):
                    if w in region and w not in dropped:
                        support[w] -= 1
                        if support[w] < k:
                            dropped.add(w)
                            queue.append(w)
            for s in dropped:
                self._set_tau(s, k - 1)

    # -- batch interface ------------------------------------------------------------------
    def _apply_batch(self, batch) -> None:
        """Process changes one at a time (this baseline has no batching)."""
        sub = self.sub
        seen_edges: Set = set()
        for change in batch:
            self.rt.serial(1)
            self._fault_point(change)
            u, v = change.edge
            if change.insert:
                if not self._apply_structural(change):
                    continue
                for p in (u, v):
                    if p not in self.tau:
                        self._set_tau(p, 0)
                # a fresh endpoint with one edge sits at kappa >= 1 iff it
                # has any neighbour; lift 0-valued endpoints first so the
                # min-level logic sees consistent values
                for p in (u, v):
                    if self.tau[p] == 0:
                        self._set_tau(p, 1)
                self._insert_repair(u, v)
            else:
                if not self._apply_structural(change):
                    continue
                self._delete_repair(u, v)
                for p in (u, v):
                    if not sub.has_vertex(p):
                        self._drop_vertex(p)
            seen_edges.add(change.edge)
        self.batches_processed += 1
