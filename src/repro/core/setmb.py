"""``setmb``: the set algorithm over 64-change mini-batches (Section IV-C).

The paper's evaluated variant: the per-vertex ``U``/``P`` id-sets are fixed
64-bit words ("fixed-size pre-allocated bit vectors coupled with
mini-batches ... with batch sizes of 64"), so all set algebra in the hot
loop is single-word bit operations.  A batch is split into mini-batches at
boundaries that keep the number of *distinct changed hyperedges* per
mini-batch at or below 64 (ids are per-hyperedge); each mini-batch runs the
generic :class:`~repro.core.set_alg.SetEngine` to quiescence, and a final
frontier convergence pass over everything the batch touched seals the
fixpoint ("mini-batches stopped iterating when [the pending sets] became
empty for all vertices with a final batch iteration to converge tau").
"""

from __future__ import annotations

from typing import Hashable, List, Set

from repro.core.set_alg import SetEngine, SetMaintainer
from repro.structures.bitset64 import WIDTH, Bitset64

__all__ = ["SetMBMaintainer", "BitsetOps", "split_minibatches"]

Vertex = Hashable


class BitsetOps:
    """Id-set operations over single 64-bit words."""

    @staticmethod
    def empty() -> Bitset64:
        return Bitset64()

    @staticmethod
    def add(s: Bitset64, i: int) -> None:
        s.add(i)

    @staticmethod
    def union_update(s: Bitset64, other: Bitset64) -> None:
        s.union_update(other)

    @staticmethod
    def difference(a: Bitset64, b: Bitset64) -> Bitset64:
        return a - b

    @staticmethod
    def union(a: Bitset64, b: Bitset64) -> Bitset64:
        return a | b

    @staticmethod
    def size(s: Bitset64) -> int:
        return len(s)

    @staticmethod
    def is_empty(s: Bitset64) -> bool:
        return not s

    @staticmethod
    def copy(s: Bitset64) -> Bitset64:
        return s.copy()

    @staticmethod
    def clear(s: Bitset64) -> None:
        s.clear()


def split_minibatches(batch, width: int = WIDTH) -> List[list]:
    """Split a batch so each piece touches at most ``width`` distinct
    hyperedges (one id per hyperedge; graph edges are hyperedges too).

    Changes keep their order; a mini-batch closes when admitting the next
    change would introduce a 65th distinct hyperedge.
    """
    pieces: List[list] = []
    current: list = []
    edges: Set = set()
    for change in batch:
        if change.edge not in edges and len(edges) == width:
            pieces.append(current)
            current, edges = [], set()
        current.append(change)
        edges.add(change.edge)
    if current:
        pieces.append(current)
    return pieces


class SetMBMaintainer(SetMaintainer):
    """Mini-batched set maintenance with single-word bitsets."""

    algorithm = "setmb"

    def __init__(self, sub, rt=None, *, tau=None, minibatch_width: int = WIDTH) -> None:
        super().__init__(sub, rt, tau=tau)
        if not 1 <= minibatch_width <= WIDTH:
            raise ValueError(f"minibatch width must be in [1, {WIDTH}]")
        self.minibatch_width = minibatch_width
        self.last_minibatches = 0

    def _apply_batch(self, batch) -> None:
        from repro.graph.batch import Batch

        pieces = split_minibatches(batch, self.minibatch_width)
        self.last_minibatches = len(pieces)
        total_iters = 0
        changed = set()
        for piece in pieces:
            engine = self._run_batch(Batch(piece), ops=BitsetOps)
            total_iters += engine.iterations
            changed.update(engine.changed)
        self.last_iterations = total_iters
        # the paper's "final batch iteration to converge tau": one frontier
        # pass seeded with everything the mini-batches actually moved (a
        # no-op sweep when the engines already reached the fixpoint)
        frontier = {v for v in changed if self.sub.has_vertex(v)}
        if frontier:
            self.converge(frontier)
        self.batches_processed += 1
