"""Cores and subcores materialised from core values.

Core *values* are what the maintenance algorithms keep current; actual
cores (Definition 1's maximal connected subgraphs) are derived on demand
with disjoint-set forests, following paper reference [10] ("Using
disjoint-set forests, cores can be maintained from k-core values
quickly").

* :func:`k_core_components` -- the connected k-cores for a given k.
* :func:`subcores` -- the paper's *subcores* (Section II-D): connected
  regions of equal core value, the unit the traversal algorithm walks.
* :func:`core_hierarchy` -- every (k, component) pair, k ascending; the
  containment structure used to gauge a dataset's "complexity of core
  hierarchy" (Section V-A).

For hypergraphs, connectivity follows shared hyperedges *among surviving
vertices*: inside a k-core, two vertices are connected if some hyperedge
contains both (any hyperedge with a sub-k pin is peeled, see Section
II-A, and therefore never links survivors).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.peel import peel
from repro.structures.disjoint_set import DisjointSet

__all__ = ["k_core_components", "subcores", "core_hierarchy", "core_sizes"]

Vertex = Hashable


def _union_within(sub, members: Set[Vertex], dsu: DisjointSet, *,
                  require_all_pins: bool) -> None:
    """Union vertices of ``members`` that share a hyperedge.

    ``require_all_pins``: in an induced subhypergraph a hyperedge survives
    only if *every* pin survives; edges with outside pins do not connect.
    """
    seen_edges = set()
    for v in members:
        for e in sub.incident(v):
            if e in seen_edges:
                continue
            seen_edges.add(e)
            pins = [w for w in sub.pins(e)]
            if require_all_pins and not all(w in members for w in pins):
                continue
            inside = [w for w in pins if w in members]
            for a, b in zip(inside, inside[1:]):
                dsu.union(a, b)


def k_core_components(sub, k: int, kappa: Optional[Dict[Vertex, int]] = None
                      ) -> List[Set[Vertex]]:
    """The connected k-cores of ``sub`` (Definition 1), as vertex sets."""
    if kappa is None:
        kappa = peel(sub)
    members = {v for v, c in kappa.items() if c >= k}
    if not members:
        return []
    dsu = DisjointSet(members)
    _union_within(sub, members, dsu, require_all_pins=getattr(sub, "is_hypergraph", False))
    return sorted((set(g) for g in dsu.groups().values()), key=lambda s: (-len(s), repr(min(s, key=repr))))


def subcores(sub, kappa: Optional[Dict[Vertex, int]] = None) -> List[Tuple[int, Set[Vertex]]]:
    """Connected regions of equal core value (Section II-D's subcores)."""
    if kappa is None:
        kappa = peel(sub)
    out: List[Tuple[int, Set[Vertex]]] = []
    by_level: Dict[int, Set[Vertex]] = {}
    for v, c in kappa.items():
        by_level.setdefault(c, set()).add(v)
    for k, members in sorted(by_level.items()):
        dsu = DisjointSet(members)
        # subcores connect through same-value vertices (shared edge among
        # members); hyperedge survival is not required here -- the walk is
        # over the full structure restricted to the level
        _union_within(sub, members, dsu, require_all_pins=False)
        for group in dsu.groups().values():
            out.append((k, set(group)))
    return out


def core_hierarchy(sub, kappa: Optional[Dict[Vertex, int]] = None
                   ) -> Dict[int, List[Set[Vertex]]]:
    """All connected k-cores for every k from 1 to the degeneracy."""
    if kappa is None:
        kappa = peel(sub)
    top = max(kappa.values(), default=0)
    return {k: k_core_components(sub, k, kappa) for k in range(1, top + 1)}


def core_sizes(sub, kappa: Optional[Dict[Vertex, int]] = None) -> Dict[int, int]:
    """``{k: number of vertices with core value >= k}`` -- the shell profile."""
    if kappa is None:
        kappa = peel(sub)
    top = max(kappa.values(), default=0)
    out = {}
    for k in range(1, top + 1):
        out[k] = sum(1 for c in kappa.values() if c >= k)
    return out
