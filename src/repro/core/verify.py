"""Result verification helpers (the paper checked against Ligra; we check
against peeling).

:func:`verify_kappa` recomputes core values from scratch with the
independent peeling oracle and reports any divergence -- the test-suite's
workhorse and a debugging aid for users running their own change streams.

For periodic production audits (see
:class:`~repro.resilience.supervisor.ResilientMaintainer`), ``sample=``
restricts the comparison to a random vertex subset: the audit stays cheap
on the reporting side, a clean sample raises confidence, and a corrupted
entry is caught as soon as a draw includes it -- repeated audits with an
advancing ``rng`` cover the vertex set over time.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.core.peel import peel

__all__ = ["VerificationError", "verify_kappa", "diff_kappa"]

Vertex = Hashable


class VerificationError(AssertionError):
    """Maintained core values diverged from the from-scratch oracle."""

    def __init__(self, mismatches: List[Tuple[Vertex, int, int]]) -> None:
        self.mismatches = mismatches
        preview = ", ".join(
            f"{v!r}: maintained={got} oracle={want}"
            for v, got, want in mismatches[:8]
        )
        more = f" (+{len(mismatches) - 8} more)" if len(mismatches) > 8 else ""
        super().__init__(f"{len(mismatches)} core value mismatches: {preview}{more}")


def diff_kappa(maintained: Dict[Vertex, int], oracle: Dict[Vertex, int]
               ) -> List[Tuple[Vertex, int, int]]:
    """(vertex, maintained, oracle) triples where the two disagree.

    A vertex missing on either side is compared as 0 (degree-0 vertices
    are implicitly absent).
    """
    out: List[Tuple[Vertex, int, int]] = []
    for v in maintained.keys() | oracle.keys():
        got = maintained.get(v, 0)
        want = oracle.get(v, 0)
        if got != want:
            out.append((v, got, want))
    out.sort(key=lambda t: repr(t[0]))
    return out


def verify_kappa(
    maintainer,
    *,
    raise_on_mismatch: bool = True,
    sample: Optional[int] = None,
    rng: Union[random.Random, int, None] = None,
) -> List[Tuple[Vertex, int, int]]:
    """Compare a maintainer's values against fresh peeling.

    Parameters
    ----------
    raise_on_mismatch:
        Raise :class:`VerificationError` when the comparison finds any
        divergence (default); pass ``False`` to get the list back.
    sample:
        Compare only this many uniformly drawn vertices instead of all
        of them (``None``, the default, checks everything).  A sampled
        pass can miss a localised corruption; repeated draws converge on
        detection (see module docstring).
    rng:
        :class:`random.Random` (advanced across calls by the caller) or an
        int seed; only meaningful with ``sample``.

    Returns the mismatch list (empty when correct).
    """
    maintained = maintainer.kappa()
    oracle = peel(maintainer.sub)
    if sample is not None:
        if sample < 0:
            raise ValueError("sample must be >= 0")
        if rng is None:
            rng = random.Random()
        elif isinstance(rng, int):
            rng = random.Random(rng)
        universe = sorted(maintained.keys() | oracle.keys(), key=repr)
        if sample < len(universe):
            chosen = set(rng.sample(universe, sample))
            maintained = {v: k for v, k in maintained.items() if v in chosen}
            oracle = {v: k for v, k in oracle.items() if v in chosen}
    mismatches = diff_kappa(maintained, oracle)
    if mismatches and raise_on_mismatch:
        raise VerificationError(mismatches)
    return mismatches
