"""Result verification helpers (the paper checked against Ligra; we check
against peeling).

:func:`verify_kappa` recomputes core values from scratch with the
independent peeling oracle and reports any divergence -- the test-suite's
workhorse and a debugging aid for users running their own change streams.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.core.peel import peel

__all__ = ["VerificationError", "verify_kappa", "diff_kappa"]

Vertex = Hashable


class VerificationError(AssertionError):
    """Maintained core values diverged from the from-scratch oracle."""

    def __init__(self, mismatches: List[Tuple[Vertex, int, int]]) -> None:
        self.mismatches = mismatches
        preview = ", ".join(
            f"{v!r}: maintained={got} oracle={want}"
            for v, got, want in mismatches[:8]
        )
        more = f" (+{len(mismatches) - 8} more)" if len(mismatches) > 8 else ""
        super().__init__(f"{len(mismatches)} core value mismatches: {preview}{more}")


def diff_kappa(maintained: Dict[Vertex, int], oracle: Dict[Vertex, int]
               ) -> List[Tuple[Vertex, int, int]]:
    """(vertex, maintained, oracle) triples where the two disagree.

    A vertex missing on either side is compared as 0 (degree-0 vertices
    are implicitly absent).
    """
    out: List[Tuple[Vertex, int, int]] = []
    for v in maintained.keys() | oracle.keys():
        got = maintained.get(v, 0)
        want = oracle.get(v, 0)
        if got != want:
            out.append((v, got, want))
    out.sort(key=lambda t: repr(t[0]))
    return out


def verify_kappa(maintainer, *, raise_on_mismatch: bool = True
                 ) -> List[Tuple[Vertex, int, int]]:
    """Compare a maintainer's values against fresh peeling.

    Returns the mismatch list (empty when correct); raises
    :class:`VerificationError` by default when non-empty.
    """
    mismatches = diff_kappa(maintainer.kappa(), peel(maintainer.sub))
    if mismatches and raise_on_mismatch:
        raise VerificationError(mismatches)
    return mismatches
