"""Analytics over a maintained decomposition.

The whole point of *maintaining* core values (the paper's §I framing) is
that queries answer instantly from the maintained state: "Cores themselves
can then be efficiently computed from the values [10]."  This module is
that query layer.  Every function takes either a maintainer (anything with
``sub`` and ``kappa()``) or an explicit ``(sub, kappa)`` pair, touches no
algorithm internals, and does work proportional to its answer where
possible.

* :func:`core_spectrum` -- vertices per core value (the shell sizes).
* :func:`shell` -- the k-shell of a vertex (its subcore's level set).
* :func:`densest_core` -- the innermost (degeneracy) core, the classic
  dense-region answer the paper's intro motivates.
* :func:`degeneracy_ordering` -- a smallest-last vertex ordering derived
  from maintained values.
* :func:`core_containment_tree` -- the nesting structure of connected
  k-cores across levels ("complexity of core hierarchy", §V-A).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.peel import peel
from repro.core.subcore import k_core_components
from repro.structures.bucket_queue import BucketQueue

__all__ = [
    "core_spectrum",
    "shell",
    "densest_core",
    "degeneracy_ordering",
    "core_containment_tree",
    "CoreNode",
    "vertices_with_core_at_least",
    "top_k_densest",
]

Vertex = Hashable


def _unpack(source, kappa: Optional[Dict[Vertex, int]]):
    if kappa is not None:
        return source, kappa
    if hasattr(source, "sub") and hasattr(source, "kappa"):
        return source.sub, source.kappa()
    return source, peel(source)


def core_spectrum(source, kappa: Optional[Dict[Vertex, int]] = None) -> Dict[int, int]:
    """``{k: number of vertices with core value exactly k}``.

    >>> from repro.graph import DynamicGraph
    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> core_spectrum(g)
    {1: 1, 2: 3}
    """
    _, kappa = _unpack(source, kappa)
    out: Dict[int, int] = {}
    for k in kappa.values():
        out[k] = out.get(k, 0) + 1
    return dict(sorted(out.items()))


def shell(source, v: Vertex, kappa: Optional[Dict[Vertex, int]] = None) -> Set[Vertex]:
    """The k-shell containing ``v``: all vertices sharing its core value
    and connected to it through them (the paper's *subcore*, §II-D)."""
    sub, kappa = _unpack(source, kappa)
    if v not in kappa:
        return set()
    k = kappa[v]
    seen = {v}
    stack = [v]
    while stack:
        x = stack.pop()
        for w in sub.neighbors(x):
            if w not in seen and kappa.get(w) == k:
                seen.add(w)
                stack.append(w)
    return seen


def vertices_with_core_at_least(source, k: int,
                                kappa: Optional[Dict[Vertex, int]] = None
                                ) -> Set[Vertex]:
    """All vertices with core value >= ``k`` (the k-core's vertex set).

    When ``source`` exposes a level index (a maintainer, or a serve-layer
    :class:`~repro.serve.view.ReadView`), the answer is assembled from the
    populated level buckets -- work proportional to the answer, never a
    scan over V; otherwise one pass over ``kappa``.

    >>> from repro.graph import DynamicGraph
    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> sorted(vertices_with_core_at_least(g, 2))
    [0, 1, 2]
    """
    if kappa is None and hasattr(source, "levels") \
            and hasattr(source, "vertices_at_level"):
        out: Set[Vertex] = set()
        for level in list(source.levels()):
            if level >= k:
                out.update(source.vertices_at_level(level))
        return out
    _, kappa = _unpack(source, kappa)
    return {v for v, kv in kappa.items() if kv >= k}


def top_k_densest(source, n: int = 1,
                  kappa: Optional[Dict[Vertex, int]] = None
                  ) -> List[Tuple[int, Set[Vertex]]]:
    """The ``n`` innermost connected cores, densest first.

    Walks core levels downward from the degeneracy and reports each
    connected k-core component as ``(k, vertices)`` until ``n`` are
    collected -- the serve layer's "give me the densest regions" query.
    Components of a higher level nest inside lower-level ones (that is
    the core hierarchy); :func:`core_containment_tree` exposes the full
    nesting when needed.
    """
    sub, kappa = _unpack(source, kappa)
    if not kappa or n <= 0:
        return []
    out: List[Tuple[int, Set[Vertex]]] = []
    for k in range(max(kappa.values()), 0, -1):
        comps = k_core_components(sub, k, kappa)
        comps.sort(key=len, reverse=True)
        for comp in comps:
            out.append((k, comp))
            if len(out) == n:
                return out
    return out


def densest_core(source, kappa: Optional[Dict[Vertex, int]] = None
                 ) -> Tuple[int, List[Set[Vertex]]]:
    """The innermost cores: ``(degeneracy, connected components)``."""
    sub, kappa = _unpack(source, kappa)
    if not kappa:
        return 0, []
    top = max(kappa.values())
    return top, k_core_components(sub, top, kappa)


def degeneracy_ordering(source, kappa: Optional[Dict[Vertex, int]] = None
                        ) -> List[Vertex]:
    """A smallest-last (peel) ordering consistent with the maintained
    values: vertices appear level by level, within a level in a valid
    elimination order.  Useful for greedy colouring and sparsification."""
    sub, kappa = _unpack(source, kappa)
    queue = BucketQueue()
    for v in kappa:
        queue.push(v, sub.degree(v))
    removed: Set[Vertex] = set()
    order: List[Vertex] = []
    removed_edges: Set = set()
    while queue:
        v, _ = queue.pop_min()
        order.append(v)
        removed.add(v)
        for e in sub.incident(v):
            if e in removed_edges:
                continue
            removed_edges.add(e)
            for w in sub.pins(e):
                if w != v and w not in removed and w in queue:
                    queue.decrease(w, queue.priority(w) - 1)
    return order


class CoreNode:
    """One connected k-core in the containment tree."""

    __slots__ = ("k", "vertices", "children")

    def __init__(self, k: int, vertices: Set[Vertex]) -> None:
        self.k = k
        self.vertices = vertices
        self.children: List["CoreNode"] = []

    def __repr__(self) -> str:
        return f"CoreNode(k={self.k}, |V|={len(self.vertices)}, children={len(self.children)})"

    def depth(self) -> int:
        return 1 + max((c.depth() for c in self.children), default=0)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()


def core_containment_tree(source, kappa: Optional[Dict[Vertex, int]] = None
                          ) -> List[CoreNode]:
    """The nesting forest of connected k-cores, k ascending.

    A (k+1)-core component is always contained in exactly one k-core
    component; the forest's roots are the 1-core components and its depth
    is the paper's "complexity of core hierarchy" (§V-A).
    """
    sub, kappa = _unpack(source, kappa)
    if not kappa:
        return []
    top = max(kappa.values())
    levels: Dict[int, List[CoreNode]] = {}
    for k in range(1, top + 1):
        comps = k_core_components(sub, k, kappa)
        levels[k] = [CoreNode(k, comp) for comp in comps]
    # link children to parents level by level
    for k in range(2, top + 1):
        for child in levels[k]:
            probe = next(iter(child.vertices))
            for parent in levels[k - 1]:
                if probe in parent.vertices:
                    parent.children.append(child)
                    break
    return levels.get(1, [])
