"""The hybrid maintainer (the paper's future work, Section VI).

    "Future work includes combining the two approaches into a hybrid
    approach that can provide both low latencies for small batches but
    addresses high variance."

The observation driving it (Section V-B): ``setmb`` wins on small batches
but with heavy-tailed latencies on large ones; ``mod`` has flat, predictable
latency that barely grows with batch size.  The hybrid therefore routes by
batch size with a configurable crossover threshold, and optionally applies
the paper's second suggestion -- changes that would make ``mod`` increment
many levels (low-core-value insertions hitting populous levels) are split
out and run through ``setmb`` -- via ``split_hot_levels``.

Both engines share one tau mapping, level index and substrate, so routing
is free of synchronisation cost.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.base import MaintainerBase
from repro.core.mod import ModMaintainer
from repro.core.setmb import SetMBMaintainer
from repro.graph.batch import Batch

__all__ = ["HybridMaintainer"]

Vertex = Hashable


class HybridMaintainer(MaintainerBase):
    """Route small batches to ``setmb`` and large ones to ``mod``.

    Parameters
    ----------
    threshold:
        Batches with at most this many changes go to ``setmb``.
    split_hot_levels:
        When routing to ``mod``, peel off changes whose minimum-pin level
        holds more than ``hot_level_fraction`` of all vertices and run them
        through ``setmb`` afterwards, bounding ``mod``'s worst-case
        increment blast radius.
    """

    algorithm = "hybrid"

    def __init__(
        self,
        sub,
        rt=None,
        *,
        tau: Optional[Dict[Vertex, int]] = None,
        threshold: int = 64,
        split_hot_levels: bool = False,
        hot_level_fraction: float = 0.5,
        use_min_cache: bool = True,
    ) -> None:
        super().__init__(sub, rt, tau=tau, use_min_cache=use_min_cache)
        self.threshold = threshold
        self.split_hot_levels = split_hot_levels
        self.hot_level_fraction = hot_level_fraction
        # the sub-maintainers adopt this instance's state wholesale
        self._mod = ModMaintainer.__new__(ModMaintainer)
        self._setmb = SetMBMaintainer.__new__(SetMBMaintainer)
        self._adopt(self._mod)
        self._adopt(self._setmb)
        self._mod.increment_policy = "paper"
        self._mod.conservative_cases = True
        self._mod.activate_deletion_levels = True
        self._mod.last_resolution = None
        self._setmb.minibatch_width = 64
        self._setmb.last_minibatches = 0
        self._setmb.last_iterations = 0
        self.routed_to_mod = 0
        self.routed_to_setmb = 0

    def _adopt(self, child: MaintainerBase) -> None:
        """Share this maintainer's live state with a child engine."""
        child.sub = self.sub
        child.rt = self.rt
        child.tau = self.tau
        child.min_cache = self.min_cache
        child.use_min_cache = self.use_min_cache
        child._level_index = self._level_index
        child.backend = self.backend
        child.batches_processed = 0
        # validation and transactions live at the hybrid level; children
        # inherit the live journal/fault hook per batch (see _apply_batch)
        child.transactional = False
        child.validate_batches = False
        child.fault_hook = None
        child.view_publisher = None
        child._view_delta = None
        child._txn_journal = None
        child._fault_index = 0

    def _set_engine(self, engine: str) -> None:
        super()._set_engine(engine)
        # the children adopted the parent's backend by reference; keep
        # them on the same engine after a forced switch
        for child in (self._mod, self._setmb):
            child.backend = self.backend
            child.min_cache = self.min_cache

    def _hot_levels(self) -> set:
        n = max(1, len(self.tau))
        return {
            k for k, bucket in self._level_index.items()
            if len(bucket) > self.hot_level_fraction * n
        }

    def _min_pin_level(self, change) -> int:
        pins = list(self.sub.pins(change.edge)) or [change.vertex]
        return min(self.tau.get(p, 0) for p in pins + [change.vertex])

    def _apply_batch(self, batch) -> None:
        # the child engines mutate shared state inside *this* maintainer's
        # transaction: hand them the live journal and chaos hook
        for child in (self._mod, self._setmb):
            child._txn_journal = self._txn_journal
            child.fault_hook = self.fault_hook
            child._view_delta = self._view_delta
        n = len(batch)
        if n <= self.threshold:
            self._setmb.apply_batch(batch)
            self.routed_to_setmb += 1
        elif self.split_hot_levels:
            hot = self._hot_levels()
            cool, deferred = [], []
            for change in batch:
                self.rt.serial(1)
                if change.insert and self._min_pin_level(change) in hot:
                    deferred.append(change)
                else:
                    cool.append(change)
            if cool:
                self._mod.apply_batch(Batch(cool))
                self.routed_to_mod += 1
            if deferred:
                for piece_start in range(0, len(deferred), self.threshold):
                    self._setmb.apply_batch(
                        Batch(deferred[piece_start:piece_start + self.threshold])
                    )
                self.routed_to_setmb += 1
        else:
            self._mod.apply_batch(batch)
            self.routed_to_mod += 1
        self.batches_processed += 1
