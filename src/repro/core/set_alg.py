"""The ``set`` maintainer (Algorithm 5): mixed initialisation + convergence.

Where ``mod`` raises tau levels up front and then converges, ``set``
interleaves the two: every batch change gets an id, each affected vertex
remembers which ids it has not yet *processed* (``U``) and which it has
(``P``), and the h-index step reads each neighbour's tau **boosted by the
number of changes the neighbour has not yet incorporated**::

    t = tau[n] + |U[n]  u  (U_x \\ P[n])|          (Algorithm 5 line 12)

A change's influence therefore spreads exactly as far as it can still
raise somebody's h-index; once the frontier of an update stops changing
tau values it stops propagating, which is the paper's correctness
argument.  Vertices stay active for one extra quiet iteration
(time-to-live 2, line 2) to absorb updates that land while they are being
processed.

Implementation notes
--------------------
* The engine is generic over the id-set representation.  ``set`` uses
  Python sets with unbounded ids; ``setmb`` (:mod:`repro.core.setmb`)
  reuses this engine with single-word
  :class:`~repro.structures.bitset64.Bitset64` sets over <= 64 ids per
  mini-batch.
* **Level-tagged ids.**  Line 12 as printed boosts *every* neighbour by
  the full pending-set size, which would let a single insertion's id flood
  the entire structure through unrelated core levels (each optimistic rise
  propagating further) -- incompatible with the paper's own "allows for a
  small part of the graph to be visited" and its orders-of-magnitude
  single-change latency wins.  We therefore tag each id with the minimum
  tau level of its hyperedge at record time: a pending id contributes +1
  to neighbour ``n`` only if ``tau[n]`` lies within the id's *reach*
  ``[level - batch_deletions, level + batch_insertions]``.  This is the
  sharpest sound window -- an insertion raises only vertices at its
  effective minimum level, which batch interactions can shift by at most
  one per other change (Section IV-A makes the same argument for ``mod``'s
  increments) -- and restores the locality the paper measures while
  remaining conservative for multi-change batches.
* Deletions carry no ids in the paper's Algorithm 5 because on graphs a
  deletion can only lower core values, which plain convergence-from-above
  handles.  On *pin* streams a deletion can raise the remaining pins of
  the hyperedge (Section IV-B), so this implementation assigns ids to
  binding-minimum pin deletions as well, boosting the remaining pins --
  without this the Lemma 1 trap bites (see
  ``tests/test_set_family.py::test_pin_deletion_gain_requires_boost``).
* We also activate every pin of a changed hyperedge, not only the changed
  pin: a pin insertion into an existing hyperedge can lower the other
  pins, and they must re-evaluate.  (On graphs both endpoints receive
  callbacks anyway, so this only matters for hypergraphs.)
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.base import MaintainerBase
from repro.graph.substrate import Change
from repro.structures.hindex import h_index_counting_scratch

__all__ = ["SetMaintainer", "SetEngine", "PySetOps"]

Vertex = Hashable


class PySetOps:
    """Unbounded id-sets backed by Python ``set``."""

    @staticmethod
    def empty() -> set:
        return set()

    @staticmethod
    def add(s: set, i: int) -> None:
        s.add(i)

    @staticmethod
    def union_update(s: set, other: set) -> None:
        s.update(other)

    @staticmethod
    def difference(a: set, b: set) -> set:
        return a - b

    @staticmethod
    def union(a: set, b: set) -> set:
        return a | b

    @staticmethod
    def size(s: set) -> int:
        return len(s)

    @staticmethod
    def is_empty(s: set) -> bool:
        return not s

    @staticmethod
    def copy(s: set) -> set:
        return set(s)

    @staticmethod
    def clear(s: set) -> None:
        s.clear()


class SetEngine:
    """The Algorithm 5 iteration, generic over the id-set representation.

    One engine instance handles one batch (or one mini-batch for
    ``setmb``); ids are dense integers assigned per distinct changed
    hyperedge, resetting per batch as the paper's ``id`` function does.
    """

    def __init__(self, maintainer: MaintainerBase, ops=PySetOps) -> None:
        self.m = maintainer
        self.ops = ops
        self.U: Dict[Vertex, object] = {}
        self.P: Dict[Vertex, object] = {}
        self.A: Dict[Vertex, int] = {}
        #: vertices whose tau changed during this engine's run
        self.changed: set = set()
        self._edge_ids: Dict[object, int] = {}
        #: tau level of each id's hyperedge minimum at record time
        self.id_level: List[int] = []
        #: reach of an id above its level (grows with recorded insertions)
        self.slack_up = 0
        #: reach below (grows with batch deletions)
        self.slack_down = 0
        #: per-id count of U sets currently holding it -- an id is *live*
        #: while any vertex has yet to process it, and tau decreases into a
        #: range a live id could still lift are deferred (see run())
        self.live_ids: Dict[int, int] = {}
        self.iterations = 0

    # -- id management -----------------------------------------------------------
    def edge_id(self, edge, level: int) -> int:
        """Dense id per distinct hyperedge ("resets each batch and
        increments on distinct e_a inputs"), tagged with its record level."""
        eid = self._edge_ids.get(edge)
        if eid is None:
            eid = len(self._edge_ids)
            self._edge_ids[edge] = eid
            self.id_level.append(level)
            self.slack_up += 1
        else:
            # the same hyperedge changed again at a (possibly) lower level:
            # widen its reach downward, never upward
            if level < self.id_level[eid]:
                self.id_level[eid] = level
        return eid

    @property
    def distinct_edges(self) -> int:
        return len(self._edge_ids)

    # -- callback bookkeeping ------------------------------------------------------
    def _u_of(self, v: Vertex):
        s = self.U.get(v)
        if s is None:
            s = self.ops.empty()
            self.U[v] = s
        return s

    def _p_of(self, v: Vertex):
        s = self.P.get(v)
        if s is None:
            s = self.ops.empty()
            self.P[v] = s
        return s

    def activate(self, v: Vertex, ttl: int = 2) -> None:
        self.A[v] = max(self.A.get(v, 0), ttl)

    def _add_id(self, v: Vertex, eid: int) -> None:
        u = self._u_of(v)
        if eid not in u:
            self.ops.add(u, eid)
            self.live_ids[eid] = self.live_ids.get(eid, 0) + 1

    def record_insert(self, v: Vertex, edge, level: int) -> None:
        """f-set for an insertion: maximum TTL, remember the change id.

        ``level`` is the minimum tau over the hyperedge's pins at record
        time -- the level the insertion can actually lift.
        """
        self.activate(v)
        self._add_id(v, self.edge_id(edge, level))

    def record_delete(self, v: Vertex) -> None:
        self.activate(v)
        self.slack_down += 1

    def record_gain_from_delete(self, gainers: Iterable[Vertex], edge, level: int) -> None:
        """Binding-minimum pin deletion: remaining pins may rise (see
        module docstring).  ``level`` is the new binding minimum."""
        eid = self.edge_id(edge, level)
        for w in gainers:
            self.activate(w)
            self._add_id(w, eid)

    # -- id reach ---------------------------------------------------------------------
    def _finalize_reaches(self) -> List[int]:
        """Upper reach of every id by the level cascade bound.

        An id recorded at level ``k`` lifts vertices at its *effective*
        level, which other batch insertions can push upward -- but only
        stepwise: the effective level reaches ``r`` only if enough other
        ids sit in ``[k, r)``.  The fixpoint ``r = k + #{ids with level in
        [k, r]}`` is therefore a sound per-id ceiling, far tighter than
        ``k + |batch|`` when the batch's levels are spread out.
        """
        levels = sorted(self.id_level)
        n = len(levels)
        reach: List[int] = []
        for k in self.id_level:
            r = k
            while True:
                lo = bisect.bisect_left(levels, k)
                hi = bisect.bisect_right(levels, r)
                r2 = k + (hi - lo)
                if r2 == r:
                    break
                r = r2
            reach.append(r)
        self.m.rt.serial(n)
        return reach

    # -- the mixed convergence loop ----------------------------------------------------
    def run(self) -> int:
        """Iterate to quiescence; returns the iteration count."""
        m = self.m
        sub, rt, tau = m.sub, m.rt, m.tau
        ops = self.ops
        empty = ops.empty()
        id_reach = self._finalize_reaches()

        def retire_id_copies(x):
            ux = self.U.get(x)
            if ux is None:
                return
            for i in list(ux):
                c = self.live_ids.get(i, 0) - 1
                if c > 0:
                    self.live_ids[i] = c
                else:
                    self.live_ids.pop(i, None)
            ops.clear(ux)

        def live_id_could_lift(lo: int, hi: int) -> bool:
            # is any still-undrained id able to lift a value in (lo, hi]?
            for i, count in self.live_ids.items():
                if count > 0 and self.id_level[i] - self.slack_down <= hi \
                        and id_reach[i] >= lo + 1:
                    return True
            return False

        while True:
            worklist = [x for x, ttl in self.A.items() if ttl > 0 and sub.has_vertex(x)]
            # drop stale entries for vertices that left the substrate --
            # including their undrained ids, which must not pin the live set
            for x in list(self.A):
                if not sub.has_vertex(x):
                    retire_id_copies(x)
                    del self.A[x]
            if not worklist:
                break
            ttl_snapshot = {x: self.A[x] for x in worklist}
            self.iterations += 1

            id_level = self.id_level
            lo_slack = self.slack_down

            def boost(tn: int, pending) -> int:
                # count pending ids whose reach covers tau[n]; each id can
                # lift a vertex by at most one
                b = 0
                for i in pending:
                    if id_level[i] - lo_slack <= tn <= id_reach[i]:
                        b += 1
                return b

            def step(x):
                Ux = ops.copy(self.U.get(x, empty))
                ux_empty = ops.is_empty(Ux)
                L: List[float] = []
                work = 0
                saw_boost = False
                for e in sub.incident(x):
                    mval: float = math.inf
                    for n in sub.pins(e):
                        if n == x:
                            continue
                        work += 1
                        Un = self.U.get(n)
                        tn = tau.get(n, 0)
                        if (Un is None or ops.is_empty(Un)) and ux_empty:
                            t = tn  # hot path: nothing pending anywhere
                        else:
                            pending = ops.union(
                                Un if Un is not None else empty,
                                ops.difference(Ux, self.P.get(n, empty)),
                            )
                            b = boost(tn, pending) if pending else 0
                            if b:
                                saw_boost = True
                            t = tn + b
                        if t < mval:
                            mval = t
                    L.append(mval)
                rt.charge(work + len(L))
                return (x, h_index_counting_scratch(L), Ux, saw_boost)

            results = rt.parallel_for(worklist, step, region="set_iterate")

            for x, new_tau, Ux, saw_boost in results:
                rt.serial(1)
                cur = tau.get(x, 0)
                if new_tau < cur and live_id_could_lift(new_tau, cur):
                    # defer the decrease: an undrained insertion id could
                    # still lift this range, and committing the dip first
                    # would let a mixed batch's deletion cascade undercut
                    # the very values the insertion wave needs (a descent
                    # below the *final* kappa can never recover, Lemma 1).
                    # The id count is strictly draining, so deferral ends.
                    self.activate(x, 1)
                elif new_tau != cur:
                    # propagate the unprocessed ids outwards (lines 17-19)
                    for e in sub.incident(x):
                        for n in sub.pins(e):
                            if n == x:
                                continue
                            if not ops.is_empty(Ux):
                                delta = ops.difference(
                                    ops.difference(Ux, self._p_of(n)),
                                    self._u_of(n),
                                )
                                if not ops.is_empty(delta):
                                    ops.union_update(self._u_of(n), delta)
                                    for i in delta:
                                        self.live_ids[i] = \
                                            self.live_ids.get(i, 0) + 1
                            self.activate(n)
                            rt.serial(1)
                    m._set_tau(x, new_tau)
                    self.changed.add(x)
                    self.activate(x)
                else:
                    if saw_boost or not ops.is_empty(Ux):
                        # tau held steady, but this pass either consumed new
                        # change ids or computed with a neighbour's pending
                        # boost still inflating the h-index -- in both
                        # cases the value is provisional; stay active until
                        # the pending sets drain and the result is grounded
                        # in settled values (found by hypothesis twice: the
                        # serialised merge otherwise retires vertices whose
                        # quiet answer rested on optimism)
                        self.A[x] = max(self.A.get(x, 1), 1)
                    else:
                        # decrement relative to the pre-iteration snapshot,
                        # but a mid-merge reactivation (A raised above the
                        # snapshot by a neighbour's change) must survive
                        cur = self.A.get(x, 0)
                        self.A[x] = cur if cur > ttl_snapshot[x] else ttl_snapshot[x] - 1
                # lines 24-25: the snapshot is now processed; drained
                # copies leave the live-id census
                uxcur = self.U.get(x, empty)
                for i in Ux:
                    if i in uxcur:
                        c = self.live_ids.get(i, 0) - 1
                        if c > 0:
                            self.live_ids[i] = c
                        else:
                            self.live_ids.pop(i, None)
                ops.union_update(self._p_of(x), Ux)
                self.U[x] = ops.difference(uxcur, Ux)
        return self.iterations


class SetMaintainer(MaintainerBase):
    """Batch maintenance via Algorithm 5 with unbounded id-sets."""

    algorithm = "set"

    def __init__(self, sub, rt=None, *, tau=None, use_min_cache: bool = False) -> None:
        # Algorithm 5 reads pin values through the change bookkeeping, so
        # the hyperedge min cache does not apply (Section V: setmb "will
        # require caching values on hyperedges to be competitive").
        super().__init__(sub, rt, tau=tau, use_min_cache=use_min_cache)
        self.last_iterations = 0

    def _run_batch(self, batch, ops=PySetOps) -> SetEngine:
        engine = SetEngine(self, ops)
        tau = self.tau

        def f_set(change: Change, context_pins: Tuple[Vertex, ...]) -> None:
            self.rt.charge(len(context_pins))
            v = change.vertex
            if change.insert:
                level = min(tau.get(w, 0) for w in context_pins)
                engine.record_insert(v, change.edge, level)
                # an insertion into an existing edge may lower the others
                for w in context_pins:
                    if w != v:
                        engine.activate(w)
            else:
                engine.record_delete(v)
                if getattr(self.sub, "is_hypergraph", False):
                    tv = tau.get(v, 0)
                    others = [w for w in context_pins if w != v]
                    m_others = min((tau.get(w, 0) for w in others), default=math.inf)
                    if others and tv <= m_others:
                        engine.record_gain_from_delete(others, change.edge, int(m_others))
                    else:
                        for w in others:
                            engine.activate(w)
                else:
                    for w in context_pins:
                        if w != v:
                            engine.activate(w)

        touched = self.maintain_h(batch, f_set)
        for v in touched:
            if self.sub.has_vertex(v):
                engine.activate(v)
        engine.run()
        self.last_iterations = engine.iterations
        return engine

    def _apply_batch(self, batch) -> None:
        self._run_batch(batch)
        self.batches_processed += 1
