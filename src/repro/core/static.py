"""Static h-index algorithms (Section III, Algorithms 1 and 2).

:func:`hhc_local` is the paper's ``hhcLocal``: the asynchronous local
h-index computation extended to hypergraphs, with optional tau
initialisation and an explicit frontier.  It is both the from-scratch
static algorithm (initialise tau to degrees, frontier = all vertices) and
the convergence engine the ``mod`` maintainer "continues" after its
increments (Algorithm 4 line 18).

For a vertex ``v``, one update step builds the list ``L`` with one entry
per incident hyperedge ``e``: the minimum tau over the *other* pins of
``e`` (Algorithm 2 line 8; ``inf`` for singleton hyperedges) and sets
``tau[v]`` to the h-index of ``L``.  On plain graphs the entry is simply
the neighbour's tau, recovering Algorithm 1.

:func:`static_hindex_csr` / :func:`static_hindex_csr_hypergraph` are
vectorised synchronous variants over frozen CSR snapshots; they are the
fast path for initialising large synthetic datasets and the "recompute
from scratch" competitor in the latency benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Optional, Set

import numpy as np

from repro.graph.dynamic_hypergraph import MinCache
from repro.parallel.runtime import ParallelRuntime, SerialRuntime
from repro.structures.hindex import h_index_counting, h_index_counting_scratch

__all__ = [
    "hhc_local",
    "static_hindex",
    "static_hindex_sync",
    "static_hindex_csr",
    "static_hindex_csr_hypergraph",
]

Vertex = Hashable


def _vertex_update(sub, tau: Dict[Vertex, int], v: Vertex, rt: ParallelRuntime,
                   min_cache: Optional[MinCache]) -> int:
    """One h-index step for ``v``; returns the new value (not stored)."""
    L = []
    if min_cache is not None:
        for e in sub.incident(v):
            L.append(min_cache.min_excluding(e, v))
        rt.charge(len(L))
    else:
        for e in sub.incident(v):
            m: float = math.inf
            n = 0
            for w in sub.pins(e):
                n += 1
                if w != v:
                    t = tau.get(w, 0)
                    if t < m:
                        m = t
            rt.charge(n)
            L.append(m)
    rt.charge(len(L))  # the h-index evaluation itself
    # scratch variant: this runs once per frontier vertex per iteration,
    # so the reusable histogram pays off (see repro.structures.hindex)
    return h_index_counting_scratch(L)


def hhc_local(
    sub,
    rt: Optional[ParallelRuntime] = None,
    tau: Optional[Dict[Vertex, int]] = None,
    frontier: Optional[Iterable[Vertex]] = None,
    min_cache: Optional[MinCache] = None,
    on_change=None,
    max_iterations: Optional[int] = None,
    residual: Optional[Set[Vertex]] = None,
) -> Dict[Vertex, int]:
    """Algorithm 2 (``hhcLocal``): frontier h-index convergence.

    Parameters
    ----------
    sub:
        Graph or hypergraph substrate.
    rt:
        Parallel runtime; defaults to a fresh :class:`SerialRuntime`.
    tau:
        Optional initial local values (mutated in place and returned).
        Must be pointwise >= the true core values for correctness
        (Lemma 1); when omitted, initialised to degrees.
    frontier:
        Optional initial active set ``A``; defaults to all vertices.
    min_cache:
        Optional cached-hyperedge-minimum accelerator; must be bound to the
        same ``tau`` mapping.
    on_change:
        Optional callback ``(v, old, new)`` invoked (serially) for every
        committed tau change -- the maintainers use it to keep their level
        index in sync.
    max_iterations:
        Iteration budget; ``None`` means run to convergence.  When the
        budget stops iteration early, ``tau`` is a pointwise *upper bound*
        on kappa (values only ever descend toward kappa from a valid
        initialisation) -- the property the approximate maintainer builds
        on.
    residual:
        Optional set that receives the still-active frontier when the
        iteration budget ran out (empty on full convergence).  Resuming
        ``hhc_local`` later with this frontier completes the computation.

    Returns ``tau`` (== kappa on full convergence with valid preconditions).
    """
    if rt is None:
        rt = SerialRuntime()
    if tau is None:
        tau = {v: sub.degree(v) for v in sub.vertices()}
        rt.serial(len(tau))
    if frontier is None:
        active: Set[Vertex] = set(tau)
    else:
        active = {v for v in frontier if sub.has_vertex(v)}

    if residual is not None:
        residual.clear()
    iterations = 0
    while active:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            if residual is not None:
                residual.update(active)
            break
        worklist = list(active)

        def step(v):
            if not sub.has_vertex(v):
                return None
            new = _vertex_update(sub, tau, v, rt, min_cache)
            old = tau.get(v, 0)
            if new != old:
                # asynchronous write: later tasks in this sweep see it
                tau[v] = new
                return (v, old, new)
            return None

        results = rt.parallel_for(worklist, step, region="hhc_local")

        active = set()
        for res in results:
            if res is None:
                continue
            v, old, new = res
            if min_cache is not None:
                min_cache.on_value_change(v)
            if on_change is not None:
                on_change(v, old, new)
            active.add(v)
            nbrs = sub.neighbors(v)
            active.update(nbrs)
            rt.serial(1)
    return tau


def static_hindex(sub, rt: Optional[ParallelRuntime] = None) -> Dict[Vertex, int]:
    """Core values from scratch via :func:`hhc_local` (degree init)."""
    return hhc_local(sub, rt)


def static_hindex_sync(sub, rt: Optional[ParallelRuntime] = None) -> Dict[Vertex, int]:
    """The *synchronous* variant of Algorithm 1.

    Section III-A: "In the synchronous version each vertex considers its
    neighbor's values from the previous time step."  Every sweep reads a
    frozen snapshot of tau (Jacobi iteration), unlike :func:`hhc_local`'s
    asynchronous latest-value reads (Gauss-Seidel).  Both converge to
    kappa; the synchronous one typically needs more sweeps but is
    trivially deterministic under any execution order, which is why it is
    the form distributed implementations use [23].
    """
    if rt is None:
        rt = SerialRuntime()
    tau: Dict[Vertex, int] = {v: sub.degree(v) for v in sub.vertices()}
    rt.serial(len(tau))
    vertices = list(tau)
    while True:
        frozen = dict(tau)

        def step(v):
            new = _vertex_update(sub, frozen, v, rt, None)
            return (v, new) if new != frozen[v] else None

        results = rt.parallel_for(vertices, step, region="hhc_sync")
        changed = [r for r in results if r is not None]
        for v, new in changed:
            tau[v] = new
        rt.serial(len(changed))
        if not changed:
            return tau


# ---------------------------------------------------------------------------
# vectorised CSR variants
# ---------------------------------------------------------------------------

def _segment_h_index(values: np.ndarray, seg: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment h-index of ``values`` grouped by ``seg`` (CSR layout).

    Sort each segment descending; with ranks 1..len within the segment, the
    h-index equals the number of positions where value >= rank (the
    predicate is prefix-closed for a descending sort).

    ``seg`` must be non-decreasing and consistent with ``indptr`` (the
    callers build it with ``repeat(arange, diff(indptr))``).  The per-
    segment descending sort is realised as one direct in-place sort of a
    combined integer key ``seg * K + (K-1-value)``: values are first
    clipped to the largest segment size, which never changes an h-index
    (h <= segment size), and keeps the key range small.  A single-key
    ``ndarray.sort`` is several times faster than the indirect two-key
    ``np.lexsort`` it replaces.
    """
    n_seg = len(indptr) - 1
    if len(values) == 0:
        return np.zeros(n_seg, dtype=np.int64)
    sizes = np.diff(indptr)
    K = int(sizes.max()) + 1
    clipped = np.minimum(values, K - 1)
    combined = seg * K + (K - 1 - clipped)
    combined.sort()
    vs = (K - 1) - (combined % K)
    ranks = np.arange(1, len(values) + 1, dtype=np.int64) - np.repeat(indptr[:-1], sizes)
    ok = (vs >= ranks).astype(np.int64)
    # reduceat rejects offsets == len(ok) (trailing empty segments); clip
    # them back -- the diff == 0 mask zeroes those slots anyway
    out = np.add.reduceat(ok, np.minimum(indptr[:-1], len(ok) - 1))
    out[sizes == 0] = 0
    return out


def static_hindex_csr(csr) -> np.ndarray:
    """Synchronous h-index iteration on a :class:`CSRGraph` snapshot.

    Returns the dense kappa array (index order = ``csr.labels``).
    """
    tau = np.diff(csr.indptr).astype(np.int64)
    seg = np.repeat(np.arange(csr.n, dtype=np.int64), np.diff(csr.indptr))
    while True:
        gathered = tau[csr.indices]
        new = _segment_h_index(gathered, seg, csr.indptr)
        if np.array_equal(new, tau):
            return tau
        tau = new


def static_hindex_csr_hypergraph(csrh) -> np.ndarray:
    """Synchronous h-index iteration on a :class:`CSRHypergraph` snapshot.

    Per iteration: compute each hyperedge's minimum and second minimum of
    pin tau values, derive the min-excluding-self contribution for every
    pin, then take per-vertex h-indices of the contributions.
    """
    n, m = csrh.n, csrh.m
    tau = np.diff(csrh.v_indptr).astype(np.int64)
    e_sizes = np.diff(csrh.e_indptr)
    e_seg = np.repeat(np.arange(m, dtype=np.int64), e_sizes)
    v_seg = np.repeat(np.arange(n, dtype=np.int64), np.diff(csrh.v_indptr))
    # big sentinel standing in for +inf while staying in integer arithmetic;
    # it exceeds any reachable h-index (bounded by max degree)
    INF = np.int64(1 << 60)

    # map each (vertex, edge) incidence pair in the vertex-side CSR to the
    # pin's position so the per-edge mins can be gathered back
    while True:
        pin_vals = tau[csrh.e_pins]
        # per-edge min and argmin
        emin = np.full(m, INF, dtype=np.int64)
        np.minimum.at(emin, e_seg, pin_vals)
        # count of pins achieving the min, to decide ties
        is_min = pin_vals == emin[e_seg]
        min_count = np.zeros(m, dtype=np.int64)
        np.add.at(min_count, e_seg, is_min.astype(np.int64))
        # second minimum: min over pins strictly above the min
        above = np.where(is_min, INF, pin_vals)
        emin2 = np.full(m, INF, dtype=np.int64)
        np.minimum.at(emin2, e_seg, above)

        # contribution of edge e to pin v: min over the *other* pins
        contrib = np.where(
            (pin_vals == emin[e_seg]) & (min_count[e_seg] == 1),
            emin2[e_seg],
            emin[e_seg],
        )
        # scatter contributions from edge-side CSR into vertex-side order:
        # build per-vertex value lists by sorting incidence pairs by vertex
        pair_vertex = csrh.e_pins
        order = np.argsort(pair_vertex, kind="stable")
        gathered = contrib[order]
        new = _segment_h_index(np.minimum(gathered, INF), v_seg, csrh.v_indptr)
        if np.array_equal(new, tau):
            return tau
        tau = new
