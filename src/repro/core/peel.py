"""Peeling: the classic O(n + m) k-core decomposition (Section II-B).

Peeling iteratively removes a vertex of minimum current degree; the running
maximum of removal degrees is the removed vertex's core value (Matula &
Beck [2]).  In hypergraphs the removal of a vertex peels every hyperedge it
pins -- an induced subhypergraph cannot split hyperedges (Section II-A) --
so the other pins each lose one degree, which is Shun's [25] hypergraph
peeling.

One generic implementation covers both cases through the substrate
protocol (a graph edge is a two-pin hyperedge).  This module shares no code
with the h-index path, which is why the test-suite uses it as the
independent correctness oracle for every maintenance algorithm.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.structures.bucket_queue import BucketQueue

__all__ = ["peel", "core_numbers", "k_core_vertices", "degeneracy"]

Vertex = Hashable


def peel(sub) -> Dict[Vertex, int]:
    """Core value of every vertex of ``sub`` by peeling.

    Returns ``{vertex: kappa}``; vertices absent from the substrate
    (degree 0) do not appear.

    >>> from repro.graph import DynamicGraph
    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> peel(g)[0], peel(g)[3]
    (2, 1)
    """
    queue = BucketQueue()
    for v in sub.vertices():
        queue.push(v, sub.degree(v))

    kappa: Dict[Vertex, int] = {}
    removed_v: Set[Vertex] = set()
    removed_e: Set = set()
    k = 0
    while queue:
        v, d = queue.pop_min()
        k = max(k, d)
        kappa[v] = k
        removed_v.add(v)
        for e in sub.incident(v):
            if e in removed_e:
                continue
            removed_e.add(e)
            for w in sub.pins(e):
                if w is not v and w != v and w not in removed_v:
                    queue.decrease(w, queue.priority(w) - 1)
    return kappa


def core_numbers(sub) -> Dict[Vertex, int]:
    """Alias of :func:`peel` matching networkx's ``core_number`` naming."""
    return peel(sub)


def k_core_vertices(sub, k: int, kappa: Optional[Dict[Vertex, int]] = None) -> Set[Vertex]:
    """Vertices belonging to some k-core (i.e. with core value >= k)."""
    if kappa is None:
        kappa = peel(sub)
    return {v for v, c in kappa.items() if c >= k}


def degeneracy(sub, kappa: Optional[Dict[Vertex, int]] = None) -> int:
    """The largest k with a non-empty k-core (0 for the empty substrate)."""
    if kappa is None:
        kappa = peel(sub)
    return max(kappa.values(), default=0)
