"""The public facade: pick a maintenance algorithm by name.

    >>> from repro import CoreMaintainer, DynamicGraph
    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> m = CoreMaintainer(g, algorithm="mod")
    >>> m.insert_edge(2, 3)
    >>> m.kappa()[3]
    1

``CoreMaintainer`` wraps the algorithm classes with graph-friendly
conveniences (``insert_edge``/``remove_edge``/``insert_hyperedge``/...)
while exposing the underlying maintainer for full control.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Type

from repro.core.approx import ApproximateModMaintainer
from repro.core.backend import wrap_substrate
from repro.core.base import MaintainerBase
from repro.core.hybrid import HybridMaintainer
from repro.core.mod import ModMaintainer
from repro.core.order import OrderMaintainer
from repro.core.set_alg import SetMaintainer
from repro.core.setmb import SetMBMaintainer
from repro.core.traversal import TraversalMaintainer
from repro.graph.batch import Batch
from repro.graph.substrate import Change, graph_edge_changes, hyperedge_changes

__all__ = ["CoreMaintainer", "ALGORITHMS", "make_maintainer"]

Vertex = Hashable

ALGORITHMS: Dict[str, Type[MaintainerBase]] = {
    "mod": ModMaintainer,
    "set": SetMaintainer,
    "setmb": SetMBMaintainer,
    "hybrid": HybridMaintainer,
    "traversal": TraversalMaintainer,
    "order": OrderMaintainer,
    "mod-approx": ApproximateModMaintainer,
}


def make_maintainer(sub, algorithm: str = "mod", rt=None, **kwargs) -> MaintainerBase:
    """Instantiate the named maintenance algorithm over ``sub``.

    ``transactional=`` / ``validate=`` (both default ``True``) control the
    base class's all-or-nothing batch application and pre-flight batch
    validation.  ``engine=`` picks the execution path for the hot loops:
    ``"auto"`` (default) uses the vectorised flat-array engine whenever
    ``sub`` is array-backed (an :class:`~repro.engine.ArrayGraph` or
    :class:`~repro.engine.ArrayHypergraph`), ``"array"`` requires it,
    ``"dict"`` forces the hash-based path.  The remaining kwargs go to the
    algorithm class.
    """
    transactional = kwargs.pop("transactional", True)
    validate = kwargs.pop("validate", True)
    engine = kwargs.pop("engine", "auto")
    try:
        cls = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    m = cls(sub, rt, **kwargs)
    m.transactional = transactional
    m.validate_batches = validate
    m._set_engine(engine)
    return m


class CoreMaintainer:
    """High-level dynamic k-core decomposition over a graph or hypergraph.

    Parameters
    ----------
    sub:
        A :class:`~repro.graph.DynamicGraph` or
        :class:`~repro.graph.DynamicHypergraph` (mutate it only through
        this object once maintenance starts).
    algorithm:
        One of ``mod`` / ``set`` / ``setmb`` / ``hybrid`` / ``traversal``
        / ``order``.
    rt:
        Optional parallel runtime (serial by default).
    threads:
        Convenience alternative to ``rt``: build and *own* a
        :class:`~repro.parallel.threads.ThreadRuntime` with this many
        workers — the engine's chunk kernels then dispatch to a real
        thread pool (see ``parallel_map_ranges``).  The pool is released
        by :meth:`close` (or the context-manager exit).  Mutually
        exclusive with ``rt``.
    engine:
        ``"auto"`` (default) -- use the vectorised flat-array engine when
        the substrate is array-backed; ``"array"`` -- convert a plain
        :class:`~repro.graph.DynamicGraph` into an
        :class:`~repro.engine.ArrayGraph` (or a
        :class:`~repro.graph.DynamicHypergraph` into an
        :class:`~repro.engine.ArrayHypergraph`) up front -- the maintainer
        then owns the converted substrate; read it back via :attr:`sub` --
        and run the vectorised path; ``"dict"`` -- force the hash-based
        path.
    resilient:
        Wrap the algorithm in a
        :class:`~repro.resilience.supervisor.ResilientMaintainer`:
        failing batches are retried (``max_retries``) and then
        quarantined instead of raising, and ``audit_every`` > 0 enables
        periodic sampled drift audits with self-healing.  ``apply_batch``
        then returns a :class:`~repro.resilience.supervisor.BatchReport`.
    durable:
        Data directory for crash durability.  Wraps the stack (outermost,
        above the supervisor when both are requested) in a
        :class:`~repro.resilience.durability.durable.DurableMaintainer`:
        every batch is write-ahead logged before it is applied, periodic
        atomic checkpoints are taken, and a crashed session is rebuilt
        from the directory via :meth:`CoreMaintainer.recover`.
    durability:
        Optional dict of :class:`DurableMaintainer` knobs
        (``sync_policy`` / ``checkpoint_every`` / ``retain_checkpoints``
        / ``segment_max_bytes``), used only with ``durable=``.
    replicas:
        Replicate to this many hot standbys (or attach a sequence of
        existing :class:`~repro.replication.replica.Replica` objects).
        Requires ``durable=`` -- replication ships the primary's WAL.
        Wraps the stack (outermost) in a
        :class:`~repro.replication.primary.ReplicatedMaintainer`; read
        routing is on :attr:`replica_set`.
    replication:
        Optional dict of :class:`ReplicatedMaintainer` knobs (``spec`` /
        ``clock`` / ``fault_plans`` / ``heartbeat_every`` /
        ``divergence_every`` / ...), used only with ``replicas=``.
    kwargs:
        Forwarded to the algorithm class (plus ``transactional=`` /
        ``validate=``, see :func:`make_maintainer`).
    """

    def __init__(
        self,
        sub,
        algorithm: str = "mod",
        rt=None,
        *,
        threads: Optional[int] = None,
        engine: str = "auto",
        resilient: bool = False,
        max_retries: int = 1,
        audit_every: int = 0,
        audit_sample: Optional[int] = 32,
        resilience_seed: int = 0,
        durable=None,
        durability: Optional[Dict] = None,
        replicas=None,
        replication: Optional[Dict] = None,
        **kwargs,
    ) -> None:
        self._owned_rt = None
        if threads is not None:
            if rt is not None:
                raise ValueError("pass rt= or threads=, not both")
            from repro.parallel.threads import ThreadRuntime

            rt = ThreadRuntime(threads)
            self._owned_rt = rt
        sub = wrap_substrate(sub, engine)
        kwargs["engine"] = engine
        if resilient:
            from repro.resilience.supervisor import ResilientMaintainer

            self.impl = ResilientMaintainer(
                sub, algorithm, rt,
                max_retries=max_retries,
                audit_every=audit_every,
                audit_sample=audit_sample,
                seed=resilience_seed,
                **kwargs,
            )
        else:
            if audit_every:
                raise ValueError("audit_every requires resilient=True")
            self.impl = make_maintainer(sub, algorithm, rt, **kwargs)
        if durability and durable is None:
            raise ValueError("durability= options require durable=<directory>")
        if durable is not None:
            from repro.resilience.durability.durable import DurableMaintainer

            self.impl = DurableMaintainer(self.impl, durable, **(durability or {}))
        if replication and replicas is None:
            raise ValueError("replication= options require replicas=")
        if replicas is not None:
            if durable is None:
                raise ValueError(
                    "replicas= requires durable=<directory>: replication "
                    "ships the primary's write-ahead log"
                )
            from repro.replication.primary import ReplicatedMaintainer

            self.impl = ReplicatedMaintainer(
                self.impl, replicas=replicas, **(replication or {})
            )
        #: RecoveryReport when this instance came from :meth:`recover`
        self.last_recovery = None

    # -- recovery ----------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory,
        rt=None,
        *,
        algorithm: Optional[str] = None,
        engine: str = "auto",
        durability: Optional[Dict] = None,
        **kwargs,
    ) -> "CoreMaintainer":
        """Rebuild a durable session from its data directory after a crash.

        Scans checkpoint + WAL, repairs any torn tail, replays the
        committed suffix, and returns a live durable ``CoreMaintainer``
        over the same directory; the
        :class:`~repro.resilience.durability.recovery.RecoveryReport` is
        on :attr:`last_recovery`.  Recovery is *strict* by default: if a
        committed batch fails to replay or the WAL has a gap, it raises
        :class:`~repro.resilience.durability.errors.DurabilityError`
        instead of returning a silently-diverged state; pass
        ``strict=False`` to keep the partial state (a ``RuntimeWarning``
        is emitted and the report records what was lost).
        """
        from repro.resilience.durability.recovery import RecoveryManager

        manager = RecoveryManager(
            directory, rt, algorithm=algorithm, engine=engine, **kwargs
        )
        durable_impl, report = manager.resume(**(durability or {}))
        self = cls.__new__(cls)
        self.impl = durable_impl
        self.last_recovery = report
        self._owned_rt = None  # a recovered session never owns its runtime
        return self

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Release resources this facade owns: the thread pool when
        constructed with ``threads=`` (idempotent; a caller-supplied
        ``rt=`` is never touched)."""
        owned = getattr(self, "_owned_rt", None)
        if owned is not None:
            owned.close()

    def __enter__(self) -> "CoreMaintainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- queries -----------------------------------------------------------------
    @property
    def sub(self):
        return self.impl.sub

    @property
    def algorithm(self) -> str:
        return self.impl.algorithm

    def _algorithm_impl(self):
        """Unwrap durable/supervisor layers down to the algorithm."""
        impl = self.impl
        seen = 0
        while hasattr(impl, "impl") and seen < 4:
            impl = impl.impl
            seen += 1
        return impl

    @property
    def engine(self) -> str:
        """``"array"`` when the vectorised flat-array path is active."""
        return self._algorithm_impl().engine

    @property
    def rt(self):
        """The parallel runtime the algorithm charges work to."""
        return self._algorithm_impl().rt

    @property
    def resilient(self) -> bool:
        return hasattr(self.impl, "quarantine")

    @property
    def durable(self) -> bool:
        """Whether batches are write-ahead logged to disk."""
        return getattr(self.impl, "wal", None) is not None

    @property
    def replicated(self) -> bool:
        """Whether batches are shipped to hot standbys."""
        return hasattr(self.impl, "sync_replicas")

    @property
    def replica_set(self):
        """Bounded-staleness read router (``None`` unless replicated)."""
        return self.impl.replica_set if self.replicated else None

    @property
    def replicas(self):
        """The hot standbys (``[]`` unless replicated)."""
        return list(self.impl.replicas) if self.replicated else []

    def sync_replicas(self, max_rounds: Optional[int] = None) -> int:
        """Drain replication until every standby is caught up (no-op
        rounds=0 when not replicated)."""
        if not self.replicated:
            return 0
        return self.impl.sync_replicas(max_rounds)

    @property
    def resilience_stats(self) -> Optional[Dict[str, int]]:
        """Retry/quarantine/audit counters (``None`` unless resilient)."""
        return dict(self.impl.stats) if self.resilient else None

    @property
    def quarantined_batches(self):
        """Structured reports of poisoned batches (``[]`` unless resilient)."""
        return list(getattr(self.impl, "quarantine", ()))

    def kappa(self) -> Dict[Vertex, int]:
        """Current core values (vertices with degree 0 excluded)."""
        return self.impl.kappa()

    def kappa_of(self, v: Vertex) -> int:
        return self.impl.kappa_of(v)

    def k_core(self, k: int):
        """The connected k-cores at the current state."""
        from repro.core.subcore import k_core_components

        return k_core_components(self.sub, k, self.impl.tau)

    def spectrum(self):
        """Vertices per core value (see :func:`repro.core.queries.core_spectrum`)."""
        from repro.core.queries import core_spectrum

        return core_spectrum(self.sub, self.impl.tau)

    def densest(self):
        """``(degeneracy, components)`` of the innermost cores."""
        from repro.core.queries import densest_core

        return densest_core(self.sub, self.impl.tau)

    def shell_of(self, v: Vertex):
        """The subcore (same-value connected region) containing ``v``."""
        from repro.core.queries import shell

        return shell(self.sub, v, self.impl.tau)

    def checkpoint(self):
        """Snapshot ``(substrate, tau, stream position)``; see
        :mod:`repro.resilience.checkpoint`."""
        from repro.resilience.checkpoint import take_checkpoint

        return take_checkpoint(self)

    def serve(self, **options):
        """Build a :class:`~repro.serve.server.CoreServer` in front of
        this maintainer: snapshot-isolated reads, admission-controlled
        writes, deadlines, subscriptions (see docs/SERVING.md).  Writes
        submitted to the server flow through this instance's full
        wrapper stack (resilience / durability / replication)."""
        from repro.serve.server import CoreServer

        return CoreServer(self, **options)

    # -- updates -----------------------------------------------------------------
    def apply_batch(self, batch: Batch):
        """Apply one batch.  Returns the supervisor's
        :class:`~repro.resilience.supervisor.BatchReport` when resilient,
        else ``None``."""
        return self.impl.apply_batch(batch)

    def apply_changes(self, changes: Iterable[Change]):
        return self.impl.apply_batch(Batch(list(changes)))

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        self.impl.apply_batch(Batch(graph_edge_changes(u, v, True)))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        self.impl.apply_batch(Batch(graph_edge_changes(u, v, False)))

    def insert_edges(self, edges: Iterable[tuple]) -> None:
        """One batch inserting every (u, v) pair."""
        b = Batch()
        for u, v in edges:
            b.extend(graph_edge_changes(u, v, True))
        self.impl.apply_batch(b)

    def remove_edges(self, edges: Iterable[tuple]) -> None:
        b = Batch()
        for u, v in edges:
            b.extend(graph_edge_changes(u, v, False))
        self.impl.apply_batch(b)

    def insert_pin(self, edge, vertex: Vertex) -> None:
        self.impl.apply_batch(Batch([Change(edge, vertex, True)]))

    def remove_pin(self, edge, vertex: Vertex) -> None:
        self.impl.apply_batch(Batch([Change(edge, vertex, False)]))

    def insert_hyperedge(self, edge, pins: Iterable[Vertex]) -> None:
        self.impl.apply_batch(Batch(hyperedge_changes(edge, pins, True)))

    def remove_hyperedge(self, edge) -> None:
        pins = list(self.sub.pins(edge))
        self.impl.apply_batch(Batch(hyperedge_changes(edge, pins, False)))

    def __repr__(self) -> str:
        return f"CoreMaintainer({self.algorithm!r}, {self.sub!r})"
