"""The public facade: pick a maintenance algorithm by name.

    >>> from repro import CoreMaintainer, DynamicGraph
    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> m = CoreMaintainer(g, algorithm="mod")
    >>> m.insert_edge(2, 3)
    >>> m.kappa()[3]
    1

``CoreMaintainer`` wraps the algorithm classes with graph-friendly
conveniences (``insert_edge``/``remove_edge``/``insert_hyperedge``/...)
while exposing the underlying maintainer for full control.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Type

from repro.core.approx import ApproximateModMaintainer
from repro.core.base import MaintainerBase
from repro.core.hybrid import HybridMaintainer
from repro.core.mod import ModMaintainer
from repro.core.order import OrderMaintainer
from repro.core.set_alg import SetMaintainer
from repro.core.setmb import SetMBMaintainer
from repro.core.traversal import TraversalMaintainer
from repro.graph.batch import Batch
from repro.graph.substrate import Change, graph_edge_changes, hyperedge_changes

__all__ = ["CoreMaintainer", "ALGORITHMS", "make_maintainer"]

Vertex = Hashable

ALGORITHMS: Dict[str, Type[MaintainerBase]] = {
    "mod": ModMaintainer,
    "set": SetMaintainer,
    "setmb": SetMBMaintainer,
    "hybrid": HybridMaintainer,
    "traversal": TraversalMaintainer,
    "order": OrderMaintainer,
    "mod-approx": ApproximateModMaintainer,
}


def make_maintainer(sub, algorithm: str = "mod", rt=None, **kwargs) -> MaintainerBase:
    """Instantiate the named maintenance algorithm over ``sub``."""
    try:
        cls = ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return cls(sub, rt, **kwargs)


class CoreMaintainer:
    """High-level dynamic k-core decomposition over a graph or hypergraph.

    Parameters
    ----------
    sub:
        A :class:`~repro.graph.DynamicGraph` or
        :class:`~repro.graph.DynamicHypergraph` (mutate it only through
        this object once maintenance starts).
    algorithm:
        One of ``mod`` / ``set`` / ``setmb`` / ``hybrid`` / ``traversal``
        / ``order``.
    rt:
        Optional parallel runtime (serial by default).
    kwargs:
        Forwarded to the algorithm class.
    """

    def __init__(self, sub, algorithm: str = "mod", rt=None, **kwargs) -> None:
        self.impl = make_maintainer(sub, algorithm, rt, **kwargs)

    # -- queries -----------------------------------------------------------------
    @property
    def sub(self):
        return self.impl.sub

    @property
    def algorithm(self) -> str:
        return self.impl.algorithm

    def kappa(self) -> Dict[Vertex, int]:
        """Current core values (vertices with degree 0 excluded)."""
        return self.impl.kappa()

    def kappa_of(self, v: Vertex) -> int:
        return self.impl.kappa_of(v)

    def k_core(self, k: int):
        """The connected k-cores at the current state."""
        from repro.core.subcore import k_core_components

        return k_core_components(self.sub, k, self.impl.tau)

    def spectrum(self):
        """Vertices per core value (see :func:`repro.core.queries.core_spectrum`)."""
        from repro.core.queries import core_spectrum

        return core_spectrum(self.sub, self.impl.tau)

    def densest(self):
        """``(degeneracy, components)`` of the innermost cores."""
        from repro.core.queries import densest_core

        return densest_core(self.sub, self.impl.tau)

    def shell_of(self, v: Vertex):
        """The subcore (same-value connected region) containing ``v``."""
        from repro.core.queries import shell

        return shell(self.sub, v, self.impl.tau)

    # -- updates -----------------------------------------------------------------
    def apply_batch(self, batch: Batch) -> None:
        self.impl.apply_batch(batch)

    def apply_changes(self, changes: Iterable[Change]) -> None:
        self.impl.apply_batch(Batch(list(changes)))

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        self.impl.apply_batch(Batch(graph_edge_changes(u, v, True)))

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        self.impl.apply_batch(Batch(graph_edge_changes(u, v, False)))

    def insert_edges(self, edges: Iterable[tuple]) -> None:
        """One batch inserting every (u, v) pair."""
        b = Batch()
        for u, v in edges:
            b.extend(graph_edge_changes(u, v, True))
        self.impl.apply_batch(b)

    def remove_edges(self, edges: Iterable[tuple]) -> None:
        b = Batch()
        for u, v in edges:
            b.extend(graph_edge_changes(u, v, False))
        self.impl.apply_batch(b)

    def insert_pin(self, edge, vertex: Vertex) -> None:
        self.impl.apply_batch(Batch([Change(edge, vertex, True)]))

    def remove_pin(self, edge, vertex: Vertex) -> None:
        self.impl.apply_batch(Batch([Change(edge, vertex, False)]))

    def insert_hyperedge(self, edge, pins: Iterable[Vertex]) -> None:
        self.impl.apply_batch(Batch(hyperedge_changes(edge, pins, True)))

    def remove_hyperedge(self, edge) -> None:
        pins = list(self.sub.pins(edge))
        self.impl.apply_batch(Batch(hyperedge_changes(edge, pins, False)))

    def __repr__(self) -> str:
        return f"CoreMaintainer({self.algorithm!r}, {self.sub!r})"
