"""The execution-backend seam between maintainers and engines.

Every maintenance algorithm is written against
:class:`~repro.core.base.MaintainerBase`'s label-keyed state -- the
``tau`` dict, the level index, the substrate protocol.  *How* the hot
loops execute -- per-vertex Python iteration over hash containers, or
whole-frontier vectorised NumPy sweeps over dense arrays -- is the
execution backend's business, and this module is the one place that
business lives:

* :class:`ExecutionBackend` -- the protocol.  A backend owns the dense
  tau shadow (if any), min-cache construction, the structural-change
  capture hooks, frontier-convergence dispatch, ``mod``'s level sweep,
  and rollback resynchronisation.
* :class:`DictBackend` -- the reference implementation: pure hash-based
  execution, one vertex at a time through the runtime's
  ``parallel_for``.  Works on every substrate.
* :class:`ArrayBackend` -- the flat-array engine: a dense
  :class:`~repro.engine.tau_array.TauArray` shadow (plus an
  :class:`~repro.engine.tau_array.EdgeMinShadow` on hypergraphs) and the
  vectorised frontier kernels of :mod:`repro.engine.frontier`, metered
  as chunked parallel regions through
  :meth:`~repro.parallel.runtime.ParallelRuntime.parallel_ranges`.
  Requires an array-backed substrate
  (:class:`~repro.engine.ArrayGraph` /
  :class:`~repro.engine.ArrayHypergraph`).

:func:`select_backend` is the single policy point mapping an ``engine=``
knob (``"auto"`` / ``"array"`` / ``"dict"``) to a backend instance, and
:func:`wrap_substrate` is the single conversion point lifting a plain
dict substrate into its array twin -- ``make_maintainer``, the
``CoreMaintainer`` facade, checkpoint restore, WAL recovery and the eval
harness all go through these two functions instead of growing their own
engine plumbing.

Both backends maintain the invariant that the label-keyed ``tau`` dict
and level index stay the source of truth; the array backend's dense
state is a shadow kept in sync at commit points and rebuilt wholesale on
transactional rollback.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.static import hhc_local
from repro.engine.array_graph import ArrayGraph
from repro.engine.array_hypergraph import ArrayHypergraph
from repro.engine.columnar import maintain_h_columnar
from repro.engine.frontier import hhc_frontier_csr, hhc_frontier_incidence
from repro.engine.tau_array import ArrayMinCache, EdgeMinShadow, TauArray
from repro.graph.columnar import ColumnarBatch
from repro.graph.dynamic_hypergraph import MinCache
from repro.graph.substrate import Change

__all__ = [
    "ExecutionBackend",
    "DictBackend",
    "ArrayBackend",
    "select_backend",
    "wrap_substrate",
]

Vertex = Hashable


class ExecutionBackend:
    """Protocol every execution backend implements.

    A backend is *bound* to exactly one maintainer (:meth:`bind`) and
    thereafter reads the maintainer's shared state (``sub`` / ``rt`` /
    ``tau`` / ``_level_index``) directly; the hybrid maintainer's child
    engines share their parent's backend instance the same way they
    share ``tau``.
    """

    #: engine tag, surfaced as ``MaintainerBase.engine``
    name: str = "none"

    m = None  # the bound maintainer

    # -- lifecycle ------------------------------------------------------------
    def bind(self, maintainer) -> "ExecutionBackend":
        """Attach to ``maintainer``'s live state; returns ``self``."""
        self.m = maintainer
        return self

    def make_min_cache(self):
        """Build the hyperedge min cache appropriate for this backend."""
        raise NotImplementedError

    # -- tau commit hooks -----------------------------------------------------
    def on_tau_commit(self, v: Vertex, new: int) -> None:
        """``tau[v]`` committed (dict + level index already updated)."""
        raise NotImplementedError

    # -- structural-change hooks ----------------------------------------------
    def pre_structural(self, change: Change):
        """Capture backend state *before* ``change`` mutates the
        substrate; the returned token is handed to
        :meth:`post_structural` when the change actually applied."""
        raise NotImplementedError

    def post_structural(self, change: Change, token) -> None:
        """``change`` landed on the substrate; retire/invalidate
        backend state captured in ``token``."""
        raise NotImplementedError

    # -- bulk batch application -----------------------------------------------
    def maintain_h_columnar(self, batch, *, conservative: bool = True):
        """Attempt the whole-batch columnar MaintainH + classification.

        Returns ``(I, D, touched)`` on success or ``None`` when this
        backend (or this batch) has no bulk path -- the caller then runs
        the per-``Change`` reference loop.  The default is ``None``: only
        engines with vectorised bulk kernels override it.
        """
        return None

    # -- convergence ----------------------------------------------------------
    def converge(self, active: Iterable[Vertex]) -> None:
        """Run Algorithm 2 from the maintainer's current tau with the
        given frontier."""
        raise NotImplementedError

    def sweep_and_converge(self, resolution, touched,
                           activate_deletion_levels: bool = True) -> None:
        """``mod``'s Algorithm 4 level sweep (lines 13-17) followed by
        convergence from the incremented + touched frontier."""
        raise NotImplementedError

    # -- rollback -------------------------------------------------------------
    def rollback_resync(self) -> None:
        """Transactional rollback restored the label-keyed state;
        resynchronise any dense shadow from it."""
        raise NotImplementedError

    # -- view capture ---------------------------------------------------------
    def view_levels(self):
        """Immutable ``{level: frozenset(labels)}`` capture of the level
        index at this instant -- the serve layer's full snapshot rebuild.
        The default copies the maintainer's live level index; engines
        with a dense shadow override with a vectorised pass."""
        return {
            k: frozenset(bucket)
            for k, bucket in self.m._level_index.items() if bucket
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DictBackend(ExecutionBackend):
    """Hash-based execution: the reference path, valid on any substrate."""

    name = "dict"

    def make_min_cache(self):
        m = self.m
        return MinCache(m.sub, m.tau, charge=m.rt.charge)

    def on_tau_commit(self, v: Vertex, new: int) -> None:
        return None

    def pre_structural(self, change: Change):
        return None

    def post_structural(self, change: Change, token) -> None:
        return None

    def converge(self, active: Iterable[Vertex]) -> None:
        m = self.m
        hhc_local(
            m.sub,
            m.rt,
            tau=m.tau,
            frontier=active,
            min_cache=m.min_cache,
            on_change=m._on_change_hook,
        )

    def sweep_and_converge(self, resolution, touched,
                           activate_deletion_levels: bool = True) -> None:
        # Algorithm 4 lines 13-17, restricted to resolved levels through
        # the level index.  Collect moves first: mutating the index
        # mid-scan would double-apply increments when levels collide.
        m = self.m
        rt = m.rt
        moves: List[Tuple[Vertex, int, int]] = []
        active = set(touched)
        for level in list(m._level_index.keys()):
            inc = resolution.increment(level)
            if inc > 0:
                for v in m._level_index[level]:
                    moves.append((v, level, inc))
            elif activate_deletion_levels and resolution.should_activate(level):
                active.update(m._level_index[level])

        def apply_move(move):
            rt.charge(1)
            return move

        rt.parallel_for(moves, apply_move, region="mod_apply_increments")
        for v, level, inc in moves:
            m._set_tau(v, level + inc)
            active.add(v)
        self.converge(active)

    def rollback_resync(self) -> None:
        return None


class ArrayBackend(ExecutionBackend):
    """Vectorised flat-array execution over a dense tau shadow.

    Owns the :class:`TauArray` (and, on hypergraphs, the
    :class:`EdgeMinShadow`) and dispatches convergence to the NumPy
    frontier kernels, which report their per-chunk work through
    ``rt.parallel_ranges`` so the simulated runtime sees real parallel
    regions instead of one serial lump.
    """

    name = "array"

    def __init__(self) -> None:
        self.tau_array: Optional[TauArray] = None
        self.edge_shadow: Optional[EdgeMinShadow] = None
        #: batches that took the columnar bulk path (diagnostics)
        self.columnar_batches = 0

    def bind(self, maintainer) -> "ArrayBackend":
        self.m = maintainer
        sub = maintainer.sub
        if not getattr(sub, "is_array_backed", False):
            raise ValueError(
                "ArrayBackend needs an array-backed substrate; wrap the "
                "graph in repro.engine.ArrayGraph or the hypergraph in "
                "repro.engine.ArrayHypergraph (or use "
                "CoreMaintainer(..., engine='array'))"
            )
        self.tau_array = TauArray.from_graph(sub, maintainer.tau)
        self.edge_shadow = None
        if getattr(sub, "is_hypergraph", False):
            self.edge_shadow = EdgeMinShadow(sub, self.tau_array)
        return self

    def make_min_cache(self):
        m = self.m
        if self.edge_shadow is None:
            return MinCache(m.sub, m.tau, charge=m.rt.charge)
        return ArrayMinCache(m.sub, self.edge_shadow, charge=m.rt.charge)

    def on_tau_commit(self, v: Vertex, new: int) -> None:
        i = self.m.sub.interner.id_of(v)
        if i is not None:
            self.tau_array.set_(i, new)
            if self.edge_shadow is not None:
                self.edge_shadow.on_vertex_change(i)

    def pre_structural(self, change: Change):
        if change.insert:
            return None
        # capture dense ids before the deletion can release them: a
        # vertex whose degree hits zero leaves the interner, and its
        # tau-array slot must be retired with it (the id may be recycled
        # for a different label).  A graph change can kill either
        # endpoint; a hypergraph pin change only the named pin.  The
        # hyperedge id likewise must be captured pre-deletion so a
        # recycled slot cannot keep a stale valid shadow entry.
        sub = self.m.sub
        id_of = sub.interner.id_of
        if getattr(sub, "is_hypergraph", False):
            dead_ids = [(change.vertex, id_of(change.vertex))]
        else:
            dead_ids = [(u, id_of(u)) for u in change.edge]
        shadow_eid = None
        if self.edge_shadow is not None:
            shadow_eid = sub.edge_interner.id_of(change.edge)
        return (dead_ids, shadow_eid)

    def post_structural(self, change: Change, token) -> None:
        sub = self.m.sub
        if token is not None:
            dead_ids, shadow_eid = token
            has_vertex = sub.has_vertex
            for u, i in dead_ids:
                if i is not None and not has_vertex(u):
                    self.tau_array.drop(i)
        else:
            shadow_eid = None
        if self.edge_shadow is not None:
            if change.insert:
                shadow_eid = sub.edge_interner.id_of(change.edge)
            if shadow_eid is not None:
                self.edge_shadow.invalidate(shadow_eid)

    # -- bulk batch application -----------------------------------------------
    def maintain_h_columnar(self, batch, *, conservative: bool = True):
        """The columnar fast path: convert (or accept) a
        :class:`~repro.graph.columnar.ColumnarBatch` and run the bulk
        MaintainH + classification kernels of
        :mod:`repro.engine.columnar`.  ``None`` means the batch is not
        plain (non-integer labels, duplicate units, absent deletions,
        present insertions) and nothing was mutated -- the caller falls
        back to the per-``Change`` reference loop.
        """
        if isinstance(batch, ColumnarBatch):
            cb = batch
        else:
            cb = ColumnarBatch.from_batch(
                batch,
                is_hyper=bool(getattr(self.m.sub, "is_hypergraph", False)),
            )
            if cb is None:
                return None
        result = maintain_h_columnar(self, cb, conservative=conservative)
        if result is not None:
            self.columnar_batches += 1
        return result

    # -- convergence ----------------------------------------------------------
    def converge(self, active: Iterable[Vertex]) -> None:
        self._converge_ids(self.m.sub.ids_of(active))

    def _converge_ids(self, ids: np.ndarray) -> None:
        """Frontier convergence over a dense-id frontier."""
        m = self.m
        tau, index = m.tau, m._level_index

        # defer the label-keyed dict/level-index sync to one bulk pass
        # after the fixpoint: a vertex changing across several Jacobi
        # iterations costs one dict commit, not one per iteration.  The
        # first commit a vertex appears in carries its pre-convergence
        # value (the dense array and the dict agree on entry), which is
        # exactly the "old" level the index move needs.
        changed_acc: List[np.ndarray] = []
        old_acc: List[np.ndarray] = []

        def commit(changed, old, new):
            changed_acc.append(changed)
            old_acc.append(old)

        ta = self.tau_array
        if self.edge_shadow is not None:
            hhc_frontier_incidence(
                m.sub, ta, self.edge_shadow, ids,
                rt=m.rt, on_commit=commit,
            )
        else:
            hhc_frontier_csr(
                m.sub, ta, ids, rt=m.rt, on_commit=commit
            )
        if not changed_acc:
            return
        uq, first_idx = np.unique(np.concatenate(changed_acc),
                                  return_index=True)
        old_first = np.concatenate(old_acc)[first_idx]
        final = ta.arr[uq]
        moved = old_first != final
        if not moved.any():
            return
        mids, olds, news = uq[moved], old_first[moved], final[moved]
        labels = np.asarray(m.sub.interner.labels_of(mids.tolist()),
                            dtype=object)
        delta = m._view_delta
        if delta is not None:
            # first-seen-old: a vertex already recorded this batch keeps
            # its pre-batch value (the dict and dense array agree on
            # entry, so ``olds`` is the value as of the last commit)
            for lbl, old in zip(labels.tolist(), olds.tolist()):
                if lbl not in delta:
                    delta[lbl] = old
        tau.update(zip(labels.tolist(), news.tolist()))
        for vals in (olds, news):
            order = np.argsort(vals, kind="stable")
            sv = vals[order]
            bounds = np.flatnonzero(np.diff(sv)) + 1
            starts = np.concatenate(([0], bounds))
            stops = np.concatenate((bounds, [len(sv)]))
            removing = vals is olds
            for lo, hi in zip(starts.tolist(), stops.tolist()):
                level = int(sv[lo])
                chunk = labels[order[lo:hi]]
                if removing:
                    bucket = index.get(level)
                    if bucket is not None:
                        bucket.difference_update(chunk)
                        if not bucket:
                            del index[level]
                else:
                    index.setdefault(level, set()).update(chunk)

    def sweep_and_converge(self, resolution, touched,
                           activate_deletion_levels: bool = True) -> None:
        """The Algorithm 4 level sweep on the flat-array engine.

        Distinct levels come off the dirty-bucket tau index in one
        vectorised pass and the frontier is assembled as dense id arrays
        -- no Python set iteration over untouched buckets.  Bucket
        slices are collected before the first tau write (the
        rebuild-on-mutation rule mirrors the dict path's
        collect-then-apply), and the whole increment application is
        metered as one ``mod_apply_increments`` region, mirroring the
        dict path's ``parallel_for`` over the same move set.
        """
        m = self.m
        ta = self.tau_array
        rt = m.rt
        moves: List[Tuple[np.ndarray, int, int]] = []
        # the columnar path hands touched vertices over as dense ids
        # already; the reference path as a label set
        if isinstance(touched, np.ndarray):
            frontier = [touched]
        else:
            frontier = [m.sub.ids_of(touched)]
        total_moves = 0
        for level in ta.levels().tolist():
            inc = resolution.increment(level)
            if inc > 0:
                ids = ta.ids_at_level(level)
                moves.append((ids, level, inc))
                total_moves += len(ids)
            elif activate_deletion_levels and resolution.should_activate(level):
                frontier.append(ta.ids_at_level(level))
        rt.parallel_ranges(
            total_moves, lambda lo, hi: float(hi - lo),
            region="mod_apply_increments",
        )
        labels_of = m.sub.interner.labels_of
        tau, index = m.tau, m._level_index
        for ids, level, inc in moves:
            new = level + inc
            # bulk move: the whole pre-sweep bucket shifts together.  Only
            # the collected labels leave the source bucket -- a chained
            # increment (level k and k+inc both incrementing) may have
            # moved other vertices *into* it meanwhile.
            labels = labels_of(ids.tolist())
            delta = m._view_delta
            if delta is not None:
                for lbl in labels:
                    if lbl not in delta:
                        delta[lbl] = level
            tau.update(dict.fromkeys(labels, new))
            index.setdefault(new, set()).update(labels)
            src = index.get(level)
            if src is not None:
                src.difference_update(labels)
                if not src:
                    del index[level]
            ta.bulk_set(ids, np.full(len(ids), new, dtype=np.int64))
            if self.edge_shadow is not None:
                # the moved pins' edges hold stale minima until re-read
                self.edge_shadow.on_vertices_changed(ids)
            frontier.append(ids)
        self._converge_ids(np.concatenate(frontier))

    def rollback_resync(self) -> None:
        # the inverse replay may have recycled interned ids; rebuild the
        # dense shadow from the restored label-keyed tau wholesale.  The
        # min-tau shadow is invalidated even when min_cache is None
        # (set/setmb run without one).
        self.tau_array.resync(self.m.sub, self.m.tau)
        if self.edge_shadow is not None:
            self.edge_shadow.invalidate_all()

    def view_levels(self):
        # vectorised capture off the dense shadow: one group-by-value
        # sort plus a bulk label resolution per level.  Labels are
        # resolved *now* -- a view must never consult the live interner
        # at read time (id recycling would rebind them).
        m = self.m
        ids, values = self.tau_array.snapshot()
        if not len(ids):
            return {}
        labels_of = m.sub.interner.labels_of
        order = np.argsort(values, kind="stable")
        sv = values[order]
        si = ids[order]
        levels, first = np.unique(sv, return_index=True)
        bounds = np.append(first, len(sv))
        return {
            int(lv): frozenset(labels_of(si[bounds[j]:bounds[j + 1]].tolist()))
            for j, lv in enumerate(levels.tolist())
        }

    def __repr__(self) -> str:
        return (
            f"ArrayBackend(tau={self.tau_array!r}, "
            f"shadow={self.edge_shadow!r})"
        )


def select_backend(sub, engine: str = "auto") -> ExecutionBackend:
    """Map the ``engine=`` knob to an (unbound) backend for ``sub``.

    ``"auto"`` picks :class:`ArrayBackend` whenever ``sub`` is
    array-backed; ``"array"`` requires it; ``"dict"`` always works.
    """
    if engine == "auto":
        engine = "array" if getattr(sub, "is_array_backed", False) else "dict"
    if engine == "dict":
        return DictBackend()
    if engine == "array":
        if not getattr(sub, "is_array_backed", False):
            raise ValueError(
                "engine='array' needs an array-backed substrate; wrap the "
                "graph in repro.engine.ArrayGraph or the hypergraph in "
                "repro.engine.ArrayHypergraph (or use "
                "CoreMaintainer(..., engine='array'))"
            )
        return ArrayBackend()
    raise ValueError(f"unknown engine {engine!r}; choose auto/array/dict")


def wrap_substrate(sub, engine: str = "auto"):
    """Lift ``sub`` onto the substrate the requested engine needs.

    ``engine="array"`` converts a plain :class:`~repro.graph.DynamicGraph`
    / :class:`~repro.graph.DynamicHypergraph` into its flat-array twin
    (already-array-backed substrates pass through); every other engine
    returns ``sub`` unchanged.  This is the single conversion point used
    by the :class:`~repro.core.maintainer.CoreMaintainer` facade,
    checkpoint restore, WAL recovery and the evaluation harness.
    """
    if engine != "array" or getattr(sub, "is_array_backed", False):
        return sub
    if getattr(sub, "is_hypergraph", False):
        return ArrayHypergraph.from_hypergraph(sub)
    return ArrayGraph.from_graph(sub)
