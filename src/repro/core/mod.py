"""The ``mod`` maintainer (Algorithms 3 and 4).

``mod`` processes a batch in three phases:

1. **MaintainH** -- apply every structural change, classifying each pin
   change (see :mod:`repro.core.pin_cases`) into per-tau-level insertion
   (``I``) and deletion (``D``) records.
2. **Resolve** (Algorithm 4 lines 5-12) -- turn ``I``/``D`` into per-level
   increments ``R``, conservatively covering the ways concurrent changes
   can move and merge subcores.  The level sweep then raises ``tau`` of
   every vertex sitting at an incremented level -- using the maintainer's
   level index, so only affected levels are touched (the paper's o(|H|)
   batch cost).
3. **Converge** -- continue Algorithm 2 (``hhcLocal``) from the raised
   ``tau`` with the incremented + structurally touched vertices active.

Increment policies
------------------
``"paper"`` (default)
    The resolution exactly as printed in Algorithm 4, with the two
    reconciliations documented in DESIGN.md (all updates to ``R``
    accumulate; activation tests ``R > 0``).  The paper presents this rule
    as deliberately conservative rather than proved tight; our randomized
    adversarial suite (thousands of multi-level insertion/deletion batches
    checked against the peeling oracle, ``tests/test_mod_adversarial.py``)
    found no violation -- the per-pin double-recording at tau ties adds
    slack on top of the printed rule.
``"safe"``
    A provably sufficient band: every level in
    ``[min(I) - |D|, max(I) + |I|]`` is incremented by ``|I|`` (a vertex's
    core value rises by at most one per inserted unit, and only vertices
    whose start level lies within the batch's reach can rise).  Strictly
    more work per batch, never wrong.

Algorithm 3 (the single-hyperedge-change variant the paper introduces
first) is :meth:`ModMaintainer.apply_single`, a batch of one.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.core.base import MaintainerBase
from repro.core.pin_cases import classify_delete, classify_insert
from repro.graph.substrate import Change
from repro.structures.level_accumulator import LevelAccumulator

__all__ = ["ModMaintainer", "resolve_paper", "resolve_safe", "Resolution"]

Vertex = Hashable


class Resolution:
    """Per-level increments plus activation predicate for the sweep."""

    def __init__(self, increments: LevelAccumulator, deletions: LevelAccumulator) -> None:
        self.increments = increments
        self.deletions = deletions

    def increment(self, level: int) -> int:
        return self.increments[level]

    def should_activate(self, level: int) -> bool:
        # the reconciled Algorithm 4 line 16: R > 0 or D > 0
        return self.increments[level] > 0 or self.deletions[level] > 0

    def total_increment_levels(self) -> int:
        return len(self.increments)


class _BandResolution(Resolution):
    """The ``safe`` policy: a uniform increment over a contiguous band."""

    def __init__(self, lo: int, hi: int, amount: int, deletions: LevelAccumulator) -> None:
        super().__init__(LevelAccumulator(), deletions)
        self.lo, self.hi, self.amount = lo, hi, amount

    def increment(self, level: int) -> int:
        return self.amount if self.lo <= level <= self.hi else 0

    def should_activate(self, level: int) -> bool:
        return self.increment(level) > 0 or self.deletions[level] > 0


def resolve_paper(I: LevelAccumulator, D: LevelAccumulator) -> Resolution:
    """Algorithm 4 lines 5-12 with accumulating updates.

    For each level ``k`` holding insertions:

    * lines 6-8 ("subcore at k decreased and merged with another"): every
      level in ``[k - D[k], k - 1]`` receives ``I[k]``, and ``k`` receives
      the insertions recorded at those lower levels;
    * line 9: ``k`` receives its own ``I[k]``;
    * lines 10-12 ("subcore at k increased and merged with another"):
      level ``t`` in ``(k, k + I[k]]`` receives ``k + I[k] - t`` (enough to
      reach the raised subcore's ceiling), and ``k`` receives the
      insertions recorded at those higher levels.
    """
    R = LevelAccumulator()
    for k in I.levels():
        Ik = I[k]
        Dk = D[k]
        for t in range(max(0, k - Dk), k):
            R.add(t, Ik)
            if I[t]:
                R.add(k, I[t])
        R.add(k, Ik)
        for t in range(k + 1, k + Ik + 1):
            if k + Ik - t > 0:
                R.add(t, k + Ik - t)
            if I[t]:
                R.add(k, I[t])
    return Resolution(R, D)


def resolve_safe(I: LevelAccumulator, D: LevelAccumulator) -> Resolution:
    """The provably sufficient band increment (see module docstring)."""
    if not I:
        return Resolution(LevelAccumulator(), D)
    total_i = I.total()
    total_d = D.total()
    lo = max(0, min(I.levels()) - total_d - total_i)
    hi = I.max_level() + total_i
    return _BandResolution(lo, hi, total_i, D)


_POLICIES = {"paper": resolve_paper, "safe": resolve_safe}


class ModMaintainer(MaintainerBase):
    """Re-initialisation based batch maintenance (Algorithm 4).

    Parameters
    ----------
    sub, rt, tau, use_min_cache:
        See :class:`~repro.core.base.MaintainerBase`.
    increment_policy:
        ``"paper"`` or ``"safe"`` (module docstring).
    conservative_cases:
        Whether tie cases in the pin classification also emit the
        "possible gain" records (Section IV-B Case 4); on by default.
    activate_deletion_levels:
        Algorithm 4 line 16 activates every vertex whose level saw a
        deletion.  Required for the paper's subcore-movement conservatism;
        switching it off keeps correctness (structurally touched vertices
        propagate decreases) and is exposed for the ablation benchmark.
    """

    algorithm = "mod"

    def __init__(
        self,
        sub,
        rt=None,
        *,
        tau: Optional[Dict[Vertex, int]] = None,
        use_min_cache: bool = True,
        increment_policy: str = "paper",
        conservative_cases: bool = True,
        activate_deletion_levels: bool = True,
    ) -> None:
        super().__init__(sub, rt, tau=tau, use_min_cache=use_min_cache)
        if increment_policy not in _POLICIES:
            raise ValueError(f"unknown increment policy {increment_policy!r}")
        self.increment_policy = increment_policy
        self.conservative_cases = conservative_cases
        self.activate_deletion_levels = activate_deletion_levels
        self.last_resolution: Optional[Resolution] = None

    # -- the f-mod callback -----------------------------------------------------------
    def _make_callback(self, I: LevelAccumulator, D: LevelAccumulator,
                       new_edges: Set) -> callable:
        tau = self.tau
        rt = self.rt
        conservative = self.conservative_cases
        is_hyper = getattr(self.sub, "is_hypergraph", False)

        def f_mod(change: Change, context_pins: Tuple[Vertex, ...]) -> None:
            rt.charge(len(context_pins))
            if change.insert:
                # graph edges are always created whole, so their pins
                # always follow new-edge semantics
                res = classify_insert(
                    tau, change, context_pins,
                    edge_is_new=(not is_hyper) or change.edge in new_edges,
                    conservative=conservative,
                )
            else:
                res = classify_delete(tau, change, context_pins, conservative=conservative)
            for level, count in res.inserts:
                I.add(level, count)
                rt.charge_atomic(1)
            for level, count in res.deletes:
                D.add(level, count)
                rt.charge_atomic(1)

        return f_mod

    # -- batch processing ----------------------------------------------------------------
    def _apply_batch(self, batch) -> None:
        """Process one batch of pin changes (Algorithm 4)."""
        rt = self.rt

        # the backend may run the whole MaintainH + classification as one
        # bulk columnar pass (plain batches on the array engine); the
        # per-Change loop below stays the reference semantics and the
        # fallback.  The chaos seam needs per-record fault points, so an
        # armed hook pins the batch to the reference path.
        columnar = None
        if self.fault_hook is None:
            columnar = self.backend.maintain_h_columnar(
                batch, conservative=self.conservative_cases
            )
        if columnar is not None:
            I, D, touched = columnar
        else:
            I = LevelAccumulator()
            D = LevelAccumulator()

            # track hyperedges created by this batch: pins joining a fresh
            # edge follow new-edge semantics in the classification
            new_edges: Set = set()
            if getattr(self.sub, "is_hypergraph", False):
                for change in batch:
                    if change.insert and not self.sub.has_edge(change.edge):
                        new_edges.add(change.edge)
            callback = self._make_callback(I, D, new_edges)

            touched = self.maintain_h(batch, callback)

        resolution = _POLICIES[self.increment_policy](I, D)
        self.last_resolution = resolution
        rt.serial(len(I) + len(D))

        # Algorithm 4 lines 13-17 + convergence: the backend owns the
        # sweep execution strategy (per-vertex dict scan vs vectorised
        # bucket moves off the dirty-bucket tau index)
        self.backend.sweep_and_converge(
            resolution, touched, self.activate_deletion_levels
        )
        self.batches_processed += 1

    # -- Algorithm 3: single hyperedge change -----------------------------------------------
    def apply_single(self, edge, pins: Iterable[Vertex], insert: bool) -> None:
        """Algorithm 3: one whole-hyperedge insertion or deletion.

        Provided for parity with the paper's presentation; it is exactly a
        batch containing that hyperedge's pin changes.
        """
        from repro.graph.batch import Batch
        from repro.graph.substrate import hyperedge_changes

        self.apply_batch(Batch(hyperedge_changes(edge, pins, insert)))
