"""Shared machinery for the maintenance algorithms.

:class:`MaintainerBase` owns the pieces every maintainer needs:

* the substrate and a parallel runtime;
* the maintained local values ``tau`` (equal to kappa between batches);
* a *level index* ``{tau value -> set of vertices}``, which is how the
  implementation realises the paper's o(|H|) batches (Section III-B): the
  ``mod`` increment sweep touches only vertices at resolved levels instead
  of scanning all of V;
* the per-hyperedge :class:`~repro.graph.dynamic_hypergraph.MinCache`
  (Section IV-A's cached-minimum optimisation, hypergraphs only);
* ``maintain_h`` -- the paper's ``MaintainH``: apply a batch's structural
  changes while invoking the algorithm's callback per pin change;
* the **transactional template** ``apply_batch``: pre-flight validation,
  then the algorithm's ``_apply_batch``, rolled back wholesale on any
  exception (see :mod:`repro.resilience`).

Graph edges need one care point in ``maintain_h``: a graph edge comes into
existence atomically with both pins, and its two
:class:`~repro.graph.substrate.Change` records are structurally a single
insertion.  The callback must still observe *both* pin changes (Algorithm
4's ``f-mod`` records the minimum endpoint, whichever of the two it is), so
on a successful graph edge application the callback fires for both
endpoints and the twin record is skipped when it arrives.

Transactions
------------
``apply_batch`` is **all-or-nothing** for every algorithm: batches are
validated against the substrate before the first mutation
(:func:`~repro.resilience.validation.validate_batch`), every structural
change that lands is journalled through the single mutation point
``_apply_structural``, and any exception mid-batch -- a callback bug, an
injected fault, a surprise in convergence -- triggers a rollback restoring
substrate, ``tau``, level index and min-cache to the exact pre-batch state
before the exception propagates.  Algorithms implement ``_apply_batch``;
``apply_batch`` itself is the template.  Set ``transactional = False`` /
``validate_batches = False`` to strip both layers (the benchmarks'
hot-loop option).

``fault_hook`` is the chaos-engineering seam: when set, it is called with
``(change, index)`` before each pin-change record of a batch is processed,
and may raise to simulate a mid-batch failure at a deterministic position
(:class:`~repro.resilience.faults.FaultInjector` drives it).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

import numpy as np

from repro.core.static import hhc_local, static_hindex
from repro.graph.dynamic_hypergraph import MinCache
from repro.graph.substrate import Change
from repro.parallel.runtime import ParallelRuntime, SerialRuntime
from repro.resilience.transaction import Transaction
from repro.resilience.validation import validate_batch

__all__ = ["MaintainerBase"]

Vertex = Hashable
Callback = Callable[[Change, tuple], None]
FaultHook = Callable[[Change, int], None]


class MaintainerBase:
    """Common state and operations for k-core maintainers."""

    #: subclass tag used by the facade and reports
    algorithm: str = "base"

    def __init__(
        self,
        sub,
        rt: Optional[ParallelRuntime] = None,
        *,
        tau: Optional[Dict[Vertex, int]] = None,
        use_min_cache: bool = True,
    ) -> None:
        self.sub = sub
        self.rt = rt if rt is not None else SerialRuntime()
        self.use_min_cache = use_min_cache and getattr(sub, "is_hypergraph", False)
        if tau is None:
            tau = static_hindex(sub, self.rt)
        self.tau: Dict[Vertex, int] = dict(tau)
        self._level_index: Dict[int, Set[Vertex]] = {}
        for v, k in self.tau.items():
            self._level_index.setdefault(k, set()).add(v)
        #: dense tau shadow + dirty-bucket level index (array engine only);
        #: None routes every hot loop through the dict path
        self._tau_array = None
        #: dense per-hyperedge min-tau shadow (array hypergraphs only)
        self._edge_shadow = None
        if getattr(sub, "is_array_backed", False):
            from repro.engine.tau_array import EdgeMinShadow, TauArray

            self._tau_array = TauArray.from_graph(sub, self.tau)
            if getattr(sub, "is_hypergraph", False):
                self._edge_shadow = EdgeMinShadow(sub, self._tau_array)
        self.min_cache: Optional[MinCache] = None
        if self.use_min_cache:
            if self._edge_shadow is not None:
                from repro.engine.tau_array import ArrayMinCache

                self.min_cache = ArrayMinCache(
                    sub, self._edge_shadow, charge=self.rt.charge
                )
            else:
                self.min_cache = MinCache(sub, self.tau, charge=self.rt.charge)
        self.batches_processed = 0
        #: all-or-nothing batches (rollback on exception); see module docs
        self.transactional = True
        #: pre-flight structural validation of every batch
        self.validate_batches = True
        #: chaos seam: ``hook(change, index)`` before each pin-change record
        self.fault_hook: Optional[FaultHook] = None
        self._txn_journal: Optional[List[Change]] = None
        self._fault_index = 0

    # -- engine selection ---------------------------------------------------------
    @property
    def engine(self) -> str:
        """``"array"`` when the vectorised flat-array path is active."""
        return "array" if self._tau_array is not None else "dict"

    def _set_engine(self, engine: str) -> None:
        """Force an execution engine (``make_maintainer``'s ``engine=``)."""
        if engine == "dict":
            self._tau_array = None
            self._edge_shadow = None
            # the dense min-tau shadow died with the engine; fall back to
            # the dict-backed cache for the scan-based hot loops
            from repro.engine.tau_array import ArrayMinCache

            if isinstance(self.min_cache, ArrayMinCache):
                self.min_cache = MinCache(
                    self.sub, self.tau, charge=self.rt.charge
                )
        elif engine == "array":
            if self._tau_array is None:
                raise ValueError(
                    "engine='array' needs an array-backed substrate; wrap the "
                    "graph in repro.engine.ArrayGraph or the hypergraph in "
                    "repro.engine.ArrayHypergraph (or use "
                    "CoreMaintainer(..., engine='array'))"
                )
        elif engine != "auto":
            raise ValueError(f"unknown engine {engine!r}; choose auto/array/dict")

    # -- kappa access ------------------------------------------------------------
    def kappa(self) -> Dict[Vertex, int]:
        """Current core values (a copy; vertices with degree 0 excluded)."""
        return dict(self.tau)

    def kappa_of(self, v: Vertex) -> int:
        """Core value of ``v`` (0 if absent)."""
        return self.tau.get(v, 0)

    def vertices_at_level(self, k: int) -> Set[Vertex]:
        return self._level_index.get(k, set())

    def levels(self) -> Iterable[int]:
        return self._level_index.keys()

    # -- tau bookkeeping ----------------------------------------------------------
    def _set_tau(self, v: Vertex, new: int) -> None:
        """Commit a tau change, maintaining level index and min cache."""
        old = self.tau.get(v)
        if old == new:
            return
        if old is not None:
            bucket = self._level_index.get(old)
            if bucket is not None:
                bucket.discard(v)
                if not bucket:
                    del self._level_index[old]
        self.tau[v] = new
        self._level_index.setdefault(new, set()).add(v)
        if self.min_cache is not None:
            self.min_cache.on_value_change(v)
        if self._tau_array is not None:
            i = self.sub.interner.id_of(v)
            if i is not None:
                self._tau_array.set_(i, new)
                if self._edge_shadow is not None:
                    self._edge_shadow.on_vertex_change(i)

    def _drop_vertex(self, v: Vertex) -> None:
        """Vertex degree hit zero: it leaves the decomposition."""
        old = self.tau.pop(v, None)
        if old is not None:
            bucket = self._level_index.get(old)
            if bucket is not None:
                bucket.discard(v)
                if not bucket:
                    del self._level_index[old]

    def _on_change_hook(self, v: Vertex, old: int, new: int) -> None:
        """hhc_local commits tau[v] directly; re-sync the level index."""
        bucket = self._level_index.get(old)
        if bucket is not None:
            bucket.discard(v)
            if not bucket:
                del self._level_index[old]
        self._level_index.setdefault(new, set()).add(v)
        # min cache refresh is handled inside hhc_local itself (the array
        # hypergraph's shadow is dirtied here instead: its adapter's
        # on_value_change is a no-op so dense invalidation has one home)
        if self._tau_array is not None:
            i = self.sub.interner.id_of(v)
            if i is not None:
                self._tau_array.set_(i, new)
                if self._edge_shadow is not None:
                    self._edge_shadow.on_vertex_change(i)

    # -- transactional plumbing ---------------------------------------------------
    def _apply_structural(self, change: Change) -> bool:
        """The single structural mutation point: apply one pin change and,
        inside a transaction, journal it for rollback."""
        dead_ids = None
        shadow_eid = None
        is_hyper = getattr(self.sub, "is_hypergraph", False)
        if self._tau_array is not None and not change.insert:
            # capture dense ids before the deletion can release them: a
            # vertex whose degree hits zero leaves the interner, and its
            # tau-array slot must be retired with it (the id may be
            # recycled for a different label).  A graph change can kill
            # either endpoint; a hypergraph pin change only the named pin.
            id_of = self.sub.interner.id_of
            if is_hyper:
                dead_ids = [(change.vertex, id_of(change.vertex))]
            else:
                dead_ids = [(u, id_of(u)) for u in change.edge]
        if self._edge_shadow is not None and not change.insert:
            # likewise capture the edge id before the deletion can release
            # it (its recycled slot must not keep a stale valid entry)
            shadow_eid = self.sub.edge_interner.id_of(change.edge)
        applied = self.sub.apply(change)
        if applied and self._txn_journal is not None:
            self._txn_journal.append(change)
        if applied and dead_ids is not None:
            has_vertex = self.sub.has_vertex
            for u, i in dead_ids:
                if i is not None and not has_vertex(u):
                    self._tau_array.drop(i)
        if applied and self._edge_shadow is not None:
            if change.insert:
                shadow_eid = self.sub.edge_interner.id_of(change.edge)
            if shadow_eid is not None:
                self._edge_shadow.invalidate(shadow_eid)
        return applied

    def _fault_point(self, change: Change) -> None:
        """Chaos seam: give an armed fault hook its shot at this record."""
        hook = self.fault_hook
        if hook is not None:
            hook(change, self._fault_index)
        self._fault_index += 1

    def _txn_snapshot_extra(self) -> object:
        """Capture algorithm-specific cross-batch state for rollback
        (subclasses with such state override both hooks)."""
        return None

    def _txn_restore_extra(self, state: object) -> None:
        return None

    # -- structural application (MaintainH) ------------------------------------------
    def maintain_h(self, batch, callback: Optional[Callback]) -> Set[Vertex]:
        """Apply every structural change of ``batch``; fire ``callback`` per
        semantic pin change.

        The callback receives ``(change, context_pins)`` where
        ``context_pins`` is the pin tuple of the hyperedge *including* the
        changed pin -- post-insert for insertions, pre-delete for
        deletions -- which is what the classification rules need.

        Returns the set of vertices structurally touched (pins of every
        changed hyperedge), which every algorithm must activate.

        New vertices (degree 0 -> 1) enter ``tau`` at 0 before the
        callback; the change records themselves are the medium through
        which their values rise.
        """
        sub, rt = self.sub, self.rt
        touched: Set[Vertex] = set()
        is_hyper = getattr(sub, "is_hypergraph", False)
        # one batched charge for the per-record serial bookkeeping instead
        # of a call per change (the loop itself is the hot path)
        rt.serial(len(batch))

        for change in batch:
            self._fault_point(change)
            if change.insert:
                # capture nothing; apply then observe
                applied = self._apply_structural(change)
                if not applied:
                    continue
                if self.min_cache is not None:
                    self.min_cache.invalidate(change.edge)
                pins_now = tuple(sub.pins(change.edge))
                touched.update(pins_now)
                for p in pins_now:
                    if p not in self.tau:
                        self._set_tau(p, 0)
                if callback is not None:
                    if is_hyper:
                        callback(change, pins_now)
                    else:
                        # both endpoints are semantic pin insertions; the
                        # incoming record already names one of them, so
                        # only the twin needs allocating
                        u, v = change.edge
                        twin = v if change.vertex == u else u
                        callback(change, pins_now)
                        callback(Change(change.edge, twin, True), pins_now)
            else:
                if not sub.has_pin(change.edge, change.vertex):
                    continue
                pins_before = tuple(sub.pins(change.edge))
                applied = self._apply_structural(change)
                if not applied:
                    continue
                if self.min_cache is not None:
                    self.min_cache.invalidate(change.edge)
                touched.update(pins_before)
                if callback is not None:
                    if is_hyper:
                        callback(change, pins_before)
                    else:
                        u, v = change.edge
                        twin = v if change.vertex == u else u
                        callback(change, pins_before)
                        callback(Change(change.edge, twin, False), pins_before)
                # vertices that vanished leave the decomposition
                for p in pins_before:
                    if not sub.has_vertex(p):
                        self._drop_vertex(p)
                        touched.discard(p)
        return touched

    # -- convergence ------------------------------------------------------------------
    def converge(self, active: Iterable[Vertex]) -> None:
        """Run Algorithm 2 from the current tau with the given frontier.

        Dispatches to the vectorised flat-array sweep when the substrate
        is array-backed (both paths are oracle-equivalent; see
        docs/PERFORMANCE.md).
        """
        if self._tau_array is not None:
            self._converge_ids(self.sub.ids_of(active))
            return
        hhc_local(
            self.sub,
            self.rt,
            tau=self.tau,
            frontier=active,
            min_cache=self.min_cache,
            on_change=self._on_change_hook,
        )

    def _converge_ids(self, ids: "np.ndarray") -> None:
        """Array-engine convergence over a dense-id frontier."""
        from repro.engine.frontier import hhc_frontier_csr, hhc_frontier_incidence

        tau, index = self.tau, self._level_index
        label_of = self.sub.interner.label_of

        def commit(changed, old, new):
            # sync the label-keyed dict and level index per committed
            # change; the dense array was already updated in bulk
            for i, o, n in zip(changed.tolist(), old.tolist(), new.tolist()):
                v = label_of(i)
                tau[v] = n
                bucket = index.get(o)
                if bucket is not None:
                    bucket.discard(v)
                    if not bucket:
                        del index[o]
                index.setdefault(n, set()).add(v)

        if self._edge_shadow is not None:
            hhc_frontier_incidence(
                self.sub, self._tau_array, self._edge_shadow, ids,
                rt=self.rt, on_commit=commit,
            )
        else:
            hhc_frontier_csr(
                self.sub, self._tau_array, ids, rt=self.rt, on_commit=commit
            )

    # -- the public entry point ---------------------------------------------------------
    def apply_batch(self, batch) -> None:
        """Validate, then apply ``batch`` all-or-nothing.

        The template wrapping every algorithm's ``_apply_batch``: the
        batch is structurally validated before the first mutation, and an
        exception anywhere mid-batch (structural application, callbacks,
        resolution, convergence) rolls substrate / ``tau`` / level index /
        min-cache back to the exact pre-batch state before re-raising.
        """
        if self.validate_batches:
            validate_batch(self.sub, batch)
        self._fault_index = 0
        if not self.transactional or self._txn_journal is not None:
            # transactions off, or already inside an enclosing transaction
            # (the hybrid maintainer's child engines share the journal)
            self._apply_batch(batch)
            return
        txn = Transaction.begin(self)
        self._txn_journal = txn.journal
        try:
            self._apply_batch(batch)
        except BaseException:
            self._txn_journal = None
            txn.rollback(self)
            raise
        finally:
            self._txn_journal = None

    def _apply_batch(self, batch) -> None:
        """The algorithm's batch processing (subclasses implement)."""
        raise NotImplementedError

    def apply_change(self, change: Change) -> None:
        """Single-change convenience (a batch of one)."""
        from repro.graph.batch import Batch

        self.apply_batch(Batch([change]))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.sub.num_vertices()}, "
            f"batches={self.batches_processed})"
        )
