"""Shared machinery for the maintenance algorithms.

:class:`MaintainerBase` owns the pieces every maintainer needs:

* the substrate and a parallel runtime;
* the maintained local values ``tau`` (equal to kappa between batches);
* a *level index* ``{tau value -> set of vertices}``, which is how the
  implementation realises the paper's o(|H|) batches (Section III-B): the
  ``mod`` increment sweep touches only vertices at resolved levels instead
  of scanning all of V;
* the per-hyperedge :class:`~repro.graph.dynamic_hypergraph.MinCache`
  (Section IV-A's cached-minimum optimisation, hypergraphs only);
* ``maintain_h`` -- the paper's ``MaintainH``: apply a batch's structural
  changes while invoking the algorithm's callback per pin change;
* the **transactional template** ``apply_batch``: pre-flight validation,
  then the algorithm's ``_apply_batch``, rolled back wholesale on any
  exception (see :mod:`repro.resilience`).

Graph edges need one care point in ``maintain_h``: a graph edge comes into
existence atomically with both pins, and its two
:class:`~repro.graph.substrate.Change` records are structurally a single
insertion.  The callback must still observe *both* pin changes (Algorithm
4's ``f-mod`` records the minimum endpoint, whichever of the two it is), so
on a successful graph edge application the callback fires for both
endpoints and the twin record is skipped when it arrives.

Transactions
------------
``apply_batch`` is **all-or-nothing** for every algorithm: batches are
validated against the substrate before the first mutation
(:func:`~repro.resilience.validation.validate_batch`), every structural
change that lands is journalled through the single mutation point
``_apply_structural``, and any exception mid-batch -- a callback bug, an
injected fault, a surprise in convergence -- triggers a rollback restoring
substrate, ``tau``, level index and min-cache to the exact pre-batch state
before the exception propagates.  Algorithms implement ``_apply_batch``;
``apply_batch`` itself is the template.  Set ``transactional = False`` /
``validate_batches = False`` to strip both layers (the benchmarks'
hot-loop option).

``fault_hook`` is the chaos-engineering seam: when set, it is called with
``(change, index)`` before each pin-change record of a batch is processed,
and may raise to simulate a mid-batch failure at a deterministic position
(:class:`~repro.resilience.faults.FaultInjector` drives it).

View publication
----------------
``view_publisher`` is the snapshot-isolation seam used by
:mod:`repro.serve`: when set, every **successful, top-level**
``apply_batch`` ends by calling ``view_publisher(delta)`` where ``delta``
maps each vertex whose tau was written this batch to its *pre-batch*
value (``None`` for vertices that entered the decomposition).  The call
fires strictly after the commit point -- never mid-transaction, and
never for a rolled-back batch (rollback discards the pending delta) --
so a subscriber that derives a read snapshot from the deltas only ever
observes batch boundaries.  All tau write paths feed the delta: the
serial ``_set_tau`` / ``_drop_vertex`` / ``_on_change_hook`` commits
here, the array backend's vectorised bulk commits, and the columnar
fast path's vertex creation.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set

from repro.core.backend import select_backend
from repro.core.static import static_hindex
from repro.graph.dynamic_hypergraph import MinCache
from repro.graph.substrate import Change
from repro.parallel.runtime import ParallelRuntime, SerialRuntime
from repro.resilience.transaction import Transaction
from repro.resilience.validation import validate_batch

__all__ = ["MaintainerBase"]

Vertex = Hashable
Callback = Callable[[Change, tuple], None]
FaultHook = Callable[[Change, int], None]


class MaintainerBase:
    """Common state and operations for k-core maintainers."""

    #: subclass tag used by the facade and reports
    algorithm: str = "base"

    def __init__(
        self,
        sub,
        rt: Optional[ParallelRuntime] = None,
        *,
        tau: Optional[Dict[Vertex, int]] = None,
        use_min_cache: bool = True,
    ) -> None:
        self.sub = sub
        self.rt = rt if rt is not None else SerialRuntime()
        self.use_min_cache = use_min_cache and getattr(sub, "is_hypergraph", False)
        if tau is None:
            tau = static_hindex(sub, self.rt)
        self.tau: Dict[Vertex, int] = dict(tau)
        self._level_index: Dict[int, Set[Vertex]] = {}
        for v, k in self.tau.items():
            self._level_index.setdefault(k, set()).add(v)
        #: execution backend: owns all engine-specific state (dense tau
        #: shadow, min-tau shadow, vectorised kernels) behind one seam
        self.backend = select_backend(sub).bind(self)
        self.min_cache: Optional[MinCache] = None
        if self.use_min_cache:
            self.min_cache = self.backend.make_min_cache()
        self.batches_processed = 0
        #: all-or-nothing batches (rollback on exception); see module docs
        self.transactional = True
        #: pre-flight structural validation of every batch
        self.validate_batches = True
        #: chaos seam: ``hook(change, index)`` before each pin-change record
        self.fault_hook: Optional[FaultHook] = None
        #: snapshot seam: ``publisher(delta)`` after each committed
        #: top-level batch, ``delta = {vertex: pre-batch tau or None}``
        #: (see module docs; :mod:`repro.serve` attaches here)
        self.view_publisher: Optional[Callable[[Dict[Vertex, Optional[int]]], None]] = None
        self._view_delta: Optional[Dict[Vertex, Optional[int]]] = None
        self._txn_journal: Optional[List[Change]] = None
        self._fault_index = 0

    # -- engine selection ---------------------------------------------------------
    @property
    def engine(self) -> str:
        """``"array"`` when the vectorised flat-array path is active."""
        return self.backend.name

    def _set_engine(self, engine: str) -> None:
        """Force an execution engine (``make_maintainer``'s ``engine=``)."""
        if engine == "auto" or engine == self.backend.name:
            return
        self.backend = select_backend(self.sub, engine).bind(self)
        if self.min_cache is not None:
            # the old backend's cache (dense shadow or dict scan) died
            # with it; rebuild against the new one
            self.min_cache = self.backend.make_min_cache()

    # -- kappa access ------------------------------------------------------------
    def kappa(self) -> Dict[Vertex, int]:
        """Current core values (a copy; vertices with degree 0 excluded)."""
        return dict(self.tau)

    def kappa_of(self, v: Vertex) -> int:
        """Core value of ``v`` (0 if absent)."""
        return self.tau.get(v, 0)

    def vertices_at_level(self, k: int) -> Set[Vertex]:
        return self._level_index.get(k, set())

    def levels(self) -> Iterable[int]:
        return self._level_index.keys()

    # -- tau bookkeeping ----------------------------------------------------------
    def _set_tau(self, v: Vertex, new: int) -> None:
        """Commit a tau change, maintaining level index and min cache."""
        old = self.tau.get(v)
        if old == new:
            return
        delta = self._view_delta
        if delta is not None and v not in delta:
            delta[v] = old
        if old is not None:
            bucket = self._level_index.get(old)
            if bucket is not None:
                bucket.discard(v)
                if not bucket:
                    del self._level_index[old]
        self.tau[v] = new
        self._level_index.setdefault(new, set()).add(v)
        if self.min_cache is not None:
            self.min_cache.on_value_change(v)
        self.backend.on_tau_commit(v, new)

    def _drop_vertex(self, v: Vertex) -> None:
        """Vertex degree hit zero: it leaves the decomposition."""
        old = self.tau.pop(v, None)
        delta = self._view_delta
        if delta is not None and old is not None and v not in delta:
            delta[v] = old
        if old is not None:
            bucket = self._level_index.get(old)
            if bucket is not None:
                bucket.discard(v)
                if not bucket:
                    del self._level_index[old]

    def _on_change_hook(self, v: Vertex, old: int, new: int) -> None:
        """hhc_local commits tau[v] directly; re-sync the level index."""
        delta = self._view_delta
        if delta is not None and v not in delta:
            delta[v] = old
        bucket = self._level_index.get(old)
        if bucket is not None:
            bucket.discard(v)
            if not bucket:
                del self._level_index[old]
        self._level_index.setdefault(new, set()).add(v)
        # min cache refresh is handled inside hhc_local itself; the
        # backend hook keeps any dense shadow in sync (the array
        # min-cache adapter's on_value_change is a no-op so dense
        # invalidation has one home)
        self.backend.on_tau_commit(v, new)

    # -- transactional plumbing ---------------------------------------------------
    def _apply_structural(self, change: Change) -> bool:
        """The single structural mutation point: apply one pin change and,
        inside a transaction, journal it for rollback."""
        token = self.backend.pre_structural(change)
        applied = self.sub.apply(change)
        if applied:
            if self._txn_journal is not None:
                self._txn_journal.append(change)
            self.backend.post_structural(change, token)
        return applied

    def _fault_point(self, change: Change) -> None:
        """Chaos seam: give an armed fault hook its shot at this record."""
        hook = self.fault_hook
        if hook is not None:
            hook(change, self._fault_index)
        self._fault_index += 1

    def _txn_snapshot_extra(self) -> object:
        """Capture algorithm-specific cross-batch state for rollback
        (subclasses with such state override both hooks)."""
        return None

    def _txn_restore_extra(self, state: object) -> None:
        return None

    # -- structural application (MaintainH) ------------------------------------------
    def maintain_h(self, batch, callback: Optional[Callback]) -> Set[Vertex]:
        """Apply every structural change of ``batch``; fire ``callback`` per
        semantic pin change.

        The callback receives ``(change, context_pins)`` where
        ``context_pins`` is the pin tuple of the hyperedge *including* the
        changed pin -- post-insert for insertions, pre-delete for
        deletions -- which is what the classification rules need.

        Returns the set of vertices structurally touched (pins of every
        changed hyperedge), which every algorithm must activate.

        New vertices (degree 0 -> 1) enter ``tau`` at 0 before the
        callback; the change records themselves are the medium through
        which their values rise.
        """
        sub, rt = self.sub, self.rt
        touched: Set[Vertex] = set()
        is_hyper = getattr(sub, "is_hypergraph", False)
        # one batched charge for the per-record serial bookkeeping instead
        # of a call per change (the loop itself is the hot path)
        rt.serial(len(batch))

        for change in batch:
            self._fault_point(change)
            if change.insert:
                # capture nothing; apply then observe
                applied = self._apply_structural(change)
                if not applied:
                    continue
                if self.min_cache is not None:
                    self.min_cache.invalidate(change.edge)
                pins_now = tuple(sub.pins(change.edge))
                touched.update(pins_now)
                for p in pins_now:
                    if p not in self.tau:
                        self._set_tau(p, 0)
                if callback is not None:
                    if is_hyper:
                        callback(change, pins_now)
                    else:
                        # both endpoints are semantic pin insertions; the
                        # incoming record already names one of them, so
                        # only the twin needs allocating
                        u, v = change.edge
                        twin = v if change.vertex == u else u
                        callback(change, pins_now)
                        callback(Change(change.edge, twin, True), pins_now)
            else:
                if not sub.has_pin(change.edge, change.vertex):
                    continue
                pins_before = tuple(sub.pins(change.edge))
                applied = self._apply_structural(change)
                if not applied:
                    continue
                if self.min_cache is not None:
                    self.min_cache.invalidate(change.edge)
                touched.update(pins_before)
                if callback is not None:
                    if is_hyper:
                        callback(change, pins_before)
                    else:
                        u, v = change.edge
                        twin = v if change.vertex == u else u
                        callback(change, pins_before)
                        callback(Change(change.edge, twin, False), pins_before)
                # vertices that vanished leave the decomposition
                for p in pins_before:
                    if not sub.has_vertex(p):
                        self._drop_vertex(p)
                        touched.discard(p)
        return touched

    # -- convergence ------------------------------------------------------------------
    def converge(self, active: Iterable[Vertex]) -> None:
        """Run Algorithm 2 from the current tau with the given frontier.

        The backend decides execution: the dict backend runs the
        per-vertex ``hhc_local`` loop, the array backend the vectorised
        flat-array sweep (both are oracle-equivalent; see
        docs/PERFORMANCE.md).
        """
        self.backend.converge(active)

    # -- the public entry point ---------------------------------------------------------
    def apply_batch(self, batch) -> None:
        """Validate, then apply ``batch`` all-or-nothing.

        The template wrapping every algorithm's ``_apply_batch``: the
        batch is structurally validated before the first mutation, and an
        exception anywhere mid-batch (structural application, callbacks,
        resolution, convergence) rolls substrate / ``tau`` / level index /
        min-cache back to the exact pre-batch state before re-raising.
        """
        if self.validate_batches:
            # batches carrying their own vectorised validator (the
            # columnar representation) use it; everything else takes the
            # per-Change structural walk
            validate = getattr(batch, "validate_against", None)
            if validate is not None:
                validate(self.sub)
            else:
                validate_batch(self.sub, batch)
        self._fault_index = 0
        if not self.transactional or self._txn_journal is not None:
            # transactions off, or already inside an enclosing transaction
            # (the hybrid maintainer's child engines share the journal).
            # A nested call never publishes -- the enclosing top-level
            # batch owns the delta and the commit point.
            if self._txn_journal is not None or self.view_publisher is None:
                self._apply_batch(batch)
                return
            self._view_delta = {}
            try:
                self._apply_batch(batch)
            except BaseException:
                self._view_delta = None
                raise
            self._publish_view()
            return
        txn = Transaction.begin(self)
        self._txn_journal = txn.journal
        if self.view_publisher is not None:
            self._view_delta = {}
        try:
            self._apply_batch(batch)
        except BaseException:
            self._txn_journal = None
            self._view_delta = None          # rolled back: never published
            txn.rollback(self)
            raise
        finally:
            self._txn_journal = None
        self._publish_view()

    def _publish_view(self) -> None:
        """Hand the committed batch's tau delta to the attached publisher
        (no-op without one); fires strictly after the commit point."""
        delta, self._view_delta = self._view_delta, None
        if delta is not None and self.view_publisher is not None:
            self.view_publisher(delta)

    def _apply_batch(self, batch) -> None:
        """The algorithm's batch processing (subclasses implement)."""
        raise NotImplementedError

    def apply_change(self, change: Change) -> None:
        """Single-change convenience (a batch of one)."""
        from repro.graph.batch import Batch

        self.apply_batch(Batch([change]))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.sub.num_vertices()}, "
            f"batches={self.batches_processed})"
        )
