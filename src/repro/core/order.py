"""A simplified order-based maintenance baseline (after Zhang et al. [13]).

The order algorithm maintains a *valid decomposition order* -- a vertex
sequence that could arise from peeling -- alongside the core values.  The
paper summarises it (Section II-D): "On an edge insertion, this algorithm
corrects the order by moving vertices that change coreness, keeping their
relative prior order, to the beginning of the next core."

Simplifications versus the original ICDE'17 algorithm (documented per
DESIGN.md):

* the O(1) order-maintenance data structure is replaced by plain per-level
  Python lists;
* promoted/demoted vertex sets are computed with the same provably correct
  eviction core the traversal baseline uses;
* instead of the original's incremental ``deg+`` repositioning, the
  sequences of the levels touched by a change are *re-derived* by a local
  level-restricted peel (:meth:`_repair_level_order`), stable with respect
  to the prior sequence -- an edge insertion can invalidate the within-level
  order even when no core value changes, so position repair is required
  either way.  Cost is O(size of touched levels) per change, asymptotically
  worse than [13] but output-compatible.

What the class adds over traversal: it maintains and exposes the
decomposition *order* (:meth:`decomposition_order` / :meth:`position`),
whose validity is a strong independent invariant the test-suite checks
after every batch (:func:`order_is_valid`).

Graphs only, like the original.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.core.traversal import TraversalMaintainer
from repro.structures.bucket_queue import BucketQueue

__all__ = ["OrderMaintainer", "order_is_valid"]

Vertex = Hashable


def order_is_valid(sub, kappa: Dict[Vertex, int], order: List[Vertex]) -> bool:
    """Check that ``order`` is a valid decomposition (peel) order.

    Processing vertices in sequence, each vertex's *remaining* degree
    (neighbours not yet processed) must not exceed its core value -- the
    defining property of an order peeling could have produced.
    """
    if set(order) != set(kappa):
        return False
    processed = set()
    for v in order:
        remaining = sum(1 for w in sub.neighbors(v) if w not in processed)
        if remaining > kappa[v]:
            return False
        processed.add(v)
    return True


class OrderMaintainer(TraversalMaintainer):
    """Traversal-correct maintenance that additionally maintains a valid
    decomposition order, after the order algorithm's interface."""

    algorithm = "order"

    def __init__(self, sub, rt=None, *, tau=None) -> None:
        self._level_order: Dict[int, List[Vertex]] = {}
        self._dirty_levels: Set[int] = set()
        super().__init__(sub, rt, tau=tau)
        # seed with an actual peel order so the invariant holds from batch 0
        queue = BucketQueue()
        for v in sub.vertices():
            queue.push(v, sub.degree(v))
        removed = set()
        while queue:
            v, _ = queue.pop_min()
            removed.add(v)
            self._level_order.setdefault(self.tau[v], []).append(v)
            for w in sub.neighbors(v):
                if w not in removed:
                    queue.decrease(w, queue.priority(w) - 1)

    # -- order access -----------------------------------------------------------
    def decomposition_order(self) -> List[Vertex]:
        """The maintained order (levels ascending, stored sequence within)."""
        out: List[Vertex] = []
        for k in sorted(self._level_order):
            out.extend(self._level_order[k])
        return out

    def position(self, v: Vertex) -> Tuple[int, int]:
        """(level, index-within-level) of ``v`` in the maintained order."""
        k = self.tau[v]
        return (k, self._level_order[k].index(v))

    # -- transactional hooks --------------------------------------------------------
    def _txn_snapshot_extra(self) -> object:
        return (
            {k: list(seq) for k, seq in self._level_order.items()},
            set(self._dirty_levels),
        )

    def _txn_restore_extra(self, state: object) -> None:
        level_order, dirty = state
        self._level_order.clear()
        for k, seq in level_order.items():
            self._level_order[k] = list(seq)
        self._dirty_levels = set(dirty)

    # -- order bookkeeping hooks ---------------------------------------------------
    def _remove_from_level(self, v: Vertex, k: int) -> None:
        seq = self._level_order.get(k)
        if seq is None:
            return
        try:
            seq.remove(v)
        except ValueError:
            return
        if not seq:
            del self._level_order[k]

    def _set_tau(self, v: Vertex, new: int) -> None:
        old = self.tau.get(v)
        super()._set_tau(v, new)
        if old == new:
            return
        if old is not None:
            self._remove_from_level(v, old)
            self._dirty_levels.add(old)
        # promotions enter at the head of the next core, demotions and new
        # vertices at positions the level repair will settle
        self._level_order.setdefault(new, []).insert(0, v)
        self._dirty_levels.add(new)

    def _drop_vertex(self, v: Vertex) -> None:
        k = self.tau.get(v)
        super()._drop_vertex(v)
        if k is not None:
            self._remove_from_level(v, k)
            self._dirty_levels.add(k)

    def _repair_level_order(self, k: int) -> None:
        """Re-derive a valid within-level sequence for level ``k``.

        Level k's segment is valid iff processing it in sequence (with all
        lower levels gone and all higher levels still present) leaves each
        vertex at most ``k`` remaining neighbours.  A bucket-queue peel
        over the level's members regenerates such a sequence; ties resolve
        toward the prior sequence (stable), preserving [13]'s
        "keep relative prior order" behaviour.
        """
        members = self._level_order.get(k)
        if not members or len(members) == 1:
            return
        member_set = set(members)
        tau = self.tau
        queue = BucketQueue()
        for v in members:  # prior sequence ==> stable tie-breaking below
            rem = sum(1 for w in self.sub.neighbors(v) if tau.get(w, -1) >= k)
            queue.push(v, rem)
            self.rt.serial(1)
        new_seq: List[Vertex] = []
        placed: Set[Vertex] = set()
        while queue:
            v, _ = queue.pop_min()
            new_seq.append(v)
            placed.add(v)
            for w in self.sub.neighbors(v):
                if w in member_set and w not in placed and w in queue:
                    queue.decrease(w, queue.priority(w) - 1)
        self._level_order[k] = new_seq

    # -- repairs extended with order maintenance -----------------------------------------
    def _with_level_repair(self, fn, u: Vertex, v: Vertex) -> None:
        self._dirty_levels = {
            self.tau[w] for w in (u, v) if w in self.tau
        }
        fn(u, v)
        for k in sorted(self._dirty_levels):
            self._repair_level_order(k)
        self._dirty_levels = set()

    def _insert_repair(self, u: Vertex, v: Vertex) -> None:
        self._with_level_repair(super()._insert_repair, u, v)

    def _delete_repair(self, u: Vertex, v: Vertex) -> None:
        self._with_level_repair(super()._delete_repair, u, v)
