"""The paper's core contribution: k-core computation and maintenance.

Static algorithms (Section III)
-------------------------------
* :func:`~repro.core.peel.peel` -- bucket/cascading peeling, the
  independent oracle (Matula-Beck for graphs, Shun-style for hypergraphs).
* :func:`~repro.core.static.hhc_local` -- Algorithm 2, the frontier-based
  local h-index computation for graphs and hypergraphs.
* :mod:`repro.core.static` also holds the vectorised CSR variants.

Maintenance algorithms (Section IV)
-----------------------------------
* :class:`~repro.core.mod.ModMaintainer` -- Algorithms 3/4: re-initialise
  tau by conservative level increments, then continue convergence.
* :class:`~repro.core.set_alg.SetMaintainer` -- Algorithm 5: mix
  initialisation and convergence by propagating per-change ids.
* :class:`~repro.core.setmb.SetMBMaintainer` -- ``setmb``: the set
  algorithm over 64-change mini-batches with single-word bitsets.
* :class:`~repro.core.hybrid.HybridMaintainer` -- the paper's future-work
  hybrid (Section VI): setmb for small batches, mod for large.

Sequential baselines (Section II-D related work)
------------------------------------------------
* :class:`~repro.core.traversal.TraversalMaintainer` -- the subcore
  traversal algorithm of Sariyuce et al. [11].
* :class:`~repro.core.order.OrderMaintainer` -- a simplified order-based
  maintainer after Zhang et al. [13].

Facade
------
* :class:`~repro.core.maintainer.CoreMaintainer` -- picks an algorithm by
  name; the public entry point.
* :mod:`repro.core.subcore` -- cores/subcores materialised from kappa via
  disjoint sets.
"""

from repro.core.approx import ApproximateModMaintainer
from repro.core.peel import peel, core_numbers
from repro.core.queries import (
    core_containment_tree,
    core_spectrum,
    degeneracy_ordering,
    densest_core,
    shell,
)
from repro.core.static import hhc_local, static_hindex
from repro.core.mod import ModMaintainer
from repro.core.set_alg import SetMaintainer
from repro.core.setmb import SetMBMaintainer
from repro.core.traversal import TraversalMaintainer
from repro.core.order import OrderMaintainer
from repro.core.hybrid import HybridMaintainer
from repro.core.maintainer import CoreMaintainer, make_maintainer

__all__ = [
    "ApproximateModMaintainer",
    "CoreMaintainer",
    "HybridMaintainer",
    "ModMaintainer",
    "OrderMaintainer",
    "SetMaintainer",
    "SetMBMaintainer",
    "TraversalMaintainer",
    "core_containment_tree",
    "core_numbers",
    "core_spectrum",
    "degeneracy_ordering",
    "densest_core",
    "hhc_local",
    "make_maintainer",
    "peel",
    "shell",
    "static_hindex",
]
