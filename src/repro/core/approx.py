"""Approximate maintenance under very high batch rates (§VI future work).

The paper's closing future-work list includes "introducing approximate
results during very high batch rates": when batches arrive faster than
exact convergence can complete, keep ingesting structure and serve
*bounded-staleness* answers.  This module realises that design with a
one-sided guarantee:

    the served value tau[v] is always an **upper bound** on kappa[v],

which is the useful direction for the paper's applications (a monitoring
system alerting on "kappa >= threshold" may fire early, never miss).

How it stays sound
------------------
``ApproximateModMaintainer`` runs the ``mod`` pipeline but caps the
convergence phase at ``iteration_budget`` frontier sweeps, carrying the
still-active frontier into the next batch.  Two facts make the bound hold:

1. partial h-index convergence from a pointwise upper bound stays a
   pointwise upper bound (values only descend toward kappa, Theorem 1's
   monotone argument);
2. the increment band is widened by the maintainer's current *inflation*
   -- an upper bound on how far any tau may currently sit above kappa --
   so a rising vertex is always lifted high enough even though the batch's
   records were classified against inflated levels.  Inflation grows by
   each deferred batch's insertion count and resets to zero whenever a
   convergence pass actually completes.

``flush()`` finishes convergence and returns to exactness;
:attr:`is_exact` reports the current state, and :meth:`staleness` the
inflation bound (0 means the answers are exact).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.core.mod import ModMaintainer, _BandResolution
from repro.core.static import hhc_local
from repro.structures.level_accumulator import LevelAccumulator

__all__ = ["ApproximateModMaintainer"]

Vertex = Hashable


class ApproximateModMaintainer(ModMaintainer):
    """``mod`` with budgeted convergence and one-sided approximation.

    Parameters
    ----------
    iteration_budget:
        Frontier sweeps allowed per batch (>= 1).  Smaller budgets ingest
        faster and stay staler.
    auto_flush_inflation:
        Optional inflation ceiling: when :meth:`staleness` would exceed
        it, the batch triggers a full convergence first (bounding how
        approximate answers can ever get).
    """

    algorithm = "mod-approx"

    def __init__(
        self,
        sub,
        rt=None,
        *,
        tau: Optional[Dict[Vertex, int]] = None,
        use_min_cache: bool = True,
        iteration_budget: int = 1,
        auto_flush_inflation: Optional[int] = None,
    ) -> None:
        # the approximate pipeline requires the band increment policy (the
        # paper rule's level coupling is not sound against inflated levels)
        super().__init__(sub, rt, tau=tau, use_min_cache=use_min_cache,
                         increment_policy="safe")
        if iteration_budget < 1:
            raise ValueError("iteration_budget must be >= 1")
        self.iteration_budget = iteration_budget
        self.auto_flush_inflation = auto_flush_inflation
        self._residual: Set[Vertex] = set()
        self._inflation = 0

    # -- state queries -----------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """True when served values are currently exact core values."""
        return not self._residual and self._inflation == 0

    def staleness(self) -> int:
        """Upper bound on tau[v] - kappa[v] over all vertices (0 = exact)."""
        return self._inflation

    def kappa_upper_bound(self) -> Dict[Vertex, int]:
        """The served (possibly approximate) values; always >= kappa."""
        return dict(self.tau)

    # -- bounded convergence --------------------------------------------------------
    def _bounded_converge(self, active: Set[Vertex]) -> None:
        residual: Set[Vertex] = set()
        hhc_local(
            self.sub,
            self.rt,
            tau=self.tau,
            frontier=active,
            min_cache=self.min_cache,
            on_change=self._on_change_hook,
            max_iterations=self.iteration_budget,
            residual=residual,
        )
        self._residual = {v for v in residual if self.sub.has_vertex(v)}
        if not self._residual:
            self._inflation = 0

    def flush(self) -> None:
        """Complete convergence; afterwards answers are exact."""
        if self._residual:
            self.converge(self._residual)
            self._residual = set()
        self._inflation = 0

    # -- transactional hooks --------------------------------------------------------
    def _txn_snapshot_extra(self) -> object:
        return (set(self._residual), self._inflation)

    def _txn_restore_extra(self, state: object) -> None:
        residual, inflation = state
        self._residual = set(residual)
        self._inflation = inflation

    # -- batch processing ----------------------------------------------------------------
    def _apply_batch(self, batch) -> None:
        rt = self.rt
        if (
            self.auto_flush_inflation is not None
            and self._inflation >= self.auto_flush_inflation
        ):
            self.flush()

        I = LevelAccumulator()
        D = LevelAccumulator()
        new_edges: Set = set()
        if getattr(self.sub, "is_hypergraph", False):
            for change in batch:
                if change.insert and not self.sub.has_edge(change.edge):
                    new_edges.add(change.edge)
        callback = self._make_callback(I, D, new_edges)
        touched = self.maintain_h(batch, callback)

        # inflation-widened safe band: recorded levels may sit up to
        # `inflation` above the true levels of the vertices they describe
        total_i = I.total()
        total_d = D.total()
        if I:
            lo = max(0, min(I.levels()) - total_d - total_i - self._inflation)
            hi = I.max_level() + total_i + self._inflation
            resolution = _BandResolution(lo, hi, total_i, D)
        else:
            resolution = _BandResolution(0, -1, 0, D)
        self.last_resolution = resolution
        rt.serial(len(I) + len(D))

        moves = []
        active: Set[Vertex] = set(touched)
        active.update(self._residual)
        for level in list(self._level_index.keys()):
            inc = resolution.increment(level)
            if inc > 0:
                for v in self._level_index[level]:
                    moves.append((v, level, inc))
            elif self.activate_deletion_levels and resolution.should_activate(level):
                active.update(self._level_index[level])

        rt.parallel_for(moves, lambda mv: rt.charge(1), region="approx_increments")
        for v, level, inc in moves:
            self._set_tau(v, level + inc)
            active.add(v)

        # served values drift by at most one per change until a convergence
        # pass completes: insertions inflate tau directly, deletions let
        # kappa fall underneath an unconverged tau
        self._inflation += total_i + total_d
        self._bounded_converge(active)
        self.batches_processed += 1
