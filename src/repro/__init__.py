"""repro: shared-memory scalable k-core maintenance on dynamic graphs and
hypergraphs.

A from-scratch Python reproduction of Gabert, Pinar & Catalyurek (IPDPS
2021).  The package maintains k-core decompositions over fully dynamic
graphs and hypergraphs with two parallel batch algorithms built on the
h-index/coreness connection:

* ``mod`` -- conservative tau-level re-initialisation, then frontier
  h-index convergence; flat latency, wins on large batches.
* ``set`` / ``setmb`` -- convergence mixed with per-change id propagation;
  wins on small batches.

Quickstart
----------
>>> from repro import CoreMaintainer, DynamicGraph
>>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
>>> m = CoreMaintainer(g, algorithm="mod")
>>> m.kappa_of(0)
2
>>> m.insert_edge(3, 0); m.insert_edge(3, 1)  # the graph is now K4
>>> m.kappa_of(3)
3

See README.md for the architecture tour, DESIGN.md for the paper-to-module
map, and EXPERIMENTS.md for the reproduced evaluation.
"""

from repro.core import (
    ApproximateModMaintainer,
    CoreMaintainer,
    HybridMaintainer,
    ModMaintainer,
    OrderMaintainer,
    SetMaintainer,
    SetMBMaintainer,
    TraversalMaintainer,
    core_containment_tree,
    core_numbers,
    core_spectrum,
    degeneracy_ordering,
    densest_core,
    hhc_local,
    make_maintainer,
    peel,
    shell,
    static_hindex,
)
from repro.engine import ArrayGraph, ArrayHypergraph
from repro.graph import (
    Batch,
    BatchProtocol,
    Change,
    DynamicGraph,
    DynamicHypergraph,
    SlidingWindowStream,
    TimedEvent,
)
from repro.parallel import (
    MachineSpec,
    SerialRuntime,
    SimulatedRuntime,
    ThreadRuntime,
    WorkloadProfile,
)
from repro.resilience import (
    BatchValidationError,
    Checkpoint,
    FaultError,
    FaultInjector,
    FaultPlan,
    ResilientMaintainer,
    restore_maintainer,
    take_checkpoint,
    validate_batch,
)

__version__ = "1.0.0"

__all__ = [
    "ApproximateModMaintainer",
    "ArrayGraph",
    "ArrayHypergraph",
    "Batch",
    "BatchProtocol",
    "BatchValidationError",
    "Change",
    "Checkpoint",
    "CoreMaintainer",
    "DynamicGraph",
    "DynamicHypergraph",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "HybridMaintainer",
    "MachineSpec",
    "ModMaintainer",
    "OrderMaintainer",
    "ResilientMaintainer",
    "SerialRuntime",
    "SetMaintainer",
    "SetMBMaintainer",
    "SimulatedRuntime",
    "SlidingWindowStream",
    "ThreadRuntime",
    "TimedEvent",
    "TraversalMaintainer",
    "WorkloadProfile",
    "core_containment_tree",
    "core_numbers",
    "core_spectrum",
    "degeneracy_ordering",
    "densest_core",
    "hhc_local",
    "make_maintainer",
    "peel",
    "restore_maintainer",
    "shell",
    "static_hindex",
    "take_checkpoint",
    "validate_batch",
    "__version__",
]
