"""Text rendering of the reproduced tables and figure series.

The benchmark harness prints these alongside the pytest-benchmark wall
times so a run of ``pytest benchmarks/ --benchmark-only`` regenerates the
same rows and series the paper reports (DESIGN.md section 3).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.eval.datasets import DATASETS, DatasetSpec
from repro.eval.harness import ExperimentResult

__all__ = [
    "format_table1",
    "format_table2",
    "format_scalability",
    "format_speedups",
    "format_latency_vs_static",
]


def _fmt_count(x: float) -> str:
    if x >= 1e6:
        return f"{x / 1e6:.2f} M"
    if x >= 1e3:
        return f"{x / 1e3:.1f} k"
    return f"{x:.0f}"


def _render(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def format_table1(*, scale: float = 1.0, with_synthetic: bool = True) -> str:
    """Table I: graphs used for the experiments (paper vs. analogue)."""
    headers = ["Name", "Vertices (paper)", "Edges (paper)"]
    if with_synthetic:
        headers += ["Vertices (synthetic)", "Edges (synthetic)"]
    rows: List[List[str]] = []
    for name, spec in DATASETS.items():
        if spec.kind != "graph":
            continue
        row = [name, _fmt_count(spec.paper_vertices), _fmt_count(spec.paper_edges)]
        if with_synthetic:
            g = spec.load(scale)
            row += [_fmt_count(g.num_vertices()), _fmt_count(g.num_edges())]
        rows.append(row)
    return _render(headers, rows)


def format_table2(*, scale: float = 1.0, with_synthetic: bool = True) -> str:
    """Table II: hypergraphs used for the experiments."""
    headers = ["Name", "Vertices", "Hyperedges", "Pins"]
    if with_synthetic:
        headers += ["V (synth)", "E (synth)", "Pins (synth)"]
    rows: List[List[str]] = []
    for name, spec in DATASETS.items():
        if spec.kind != "hypergraph":
            continue
        row = [
            name,
            _fmt_count(spec.paper_vertices),
            _fmt_count(spec.paper_edges),
            _fmt_count(spec.paper_pins or 0),
        ]
        if with_synthetic:
            h = spec.load(scale)
            row += [
                _fmt_count(h.num_vertices()),
                _fmt_count(h.num_edges()),
                _fmt_count(h.num_pins()),
            ]
        rows.append(row)
    return _render(headers, rows)


def format_scalability(result: ExperimentResult, unit: float = 1e3) -> str:
    """One figure panel: rows = thread counts, columns = batch sizes.

    Cells are ``mean±std`` in milliseconds of simulated time, exactly the
    quantity plotted (log-log) in Figs. 6-12.
    """
    headers = ["threads"] + [f"batch={b}" for b in result.batch_sizes]
    rows = []
    for t in result.thread_counts:
        row = [str(t)]
        for b in result.batch_sizes:
            row.append(result.times[b][t].format(unit))
        rows.append(row)
    title = (
        f"[{result.dataset}] {result.algorithm} / {result.direction} "
        f"(simulated ms, mean±std)"
    )
    return title + "\n" + _render(headers, rows)


def format_speedups(result: ExperimentResult) -> str:
    """Self-relative speedups (vs. 1 thread) for each batch size."""
    headers = ["threads"] + [f"batch={b}" for b in result.batch_sizes]
    rows = []
    for t in result.thread_counts:
        row = [str(t)]
        for b in result.batch_sizes:
            row.append(f"{result.speedup(b, t):.2f}x")
        rows.append(row)
    title = f"[{result.dataset}] {result.algorithm} / {result.direction} speedup"
    return title + "\n" + _render(headers, rows)


def format_latency_vs_static(result: ExperimentResult, threads: int) -> str:
    """Maintenance latency and its improvement factor over recompute."""
    if result.static_time is None:
        raise ValueError("result has no static_time; use run_latency_vs_static")
    static = result.static_time[threads]
    headers = ["batch", "maintain (ms)", "static (ms)", "improvement"]
    rows = []
    for b in result.batch_sizes:
        m = result.times[b][threads].mean
        rows.append([
            str(b),
            f"{m * 1e3:.4f}",
            f"{static * 1e3:.3f}",
            f"{static / m:.1f}x" if m else "inf",
        ])
    title = f"[{result.dataset}] {result.algorithm} latency vs static @ {threads} threads"
    return title + "\n" + _render(headers, rows)
