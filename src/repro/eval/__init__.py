"""Evaluation harness: datasets, experiment runners, statistics, reports.

This subpackage regenerates the paper's evaluation section:

* :mod:`repro.eval.datasets` -- the Table I / Table II dataset registry
  with synthetic analogues (the offline substitution, see DESIGN.md).
* :mod:`repro.eval.harness` -- the remove/reinsert experiment driver
  producing runtime-vs-threads series for every figure.
* :mod:`repro.eval.stats` -- sample statistics (the figures' error bars
  are one standard deviation, Section V-A).
* :mod:`repro.eval.tables` -- text rendering of the tables and figure
  series in the same shape the paper reports.
"""

from repro.eval.datasets import DATASETS, DatasetSpec, load_dataset
from repro.eval.harness import (
    ExperimentResult,
    ReplicationResult,
    ResilienceResult,
    run_latency_vs_static,
    run_replicated_stream,
    run_resilient_stream,
    run_scalability,
)
from repro.eval.stats import Stats

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "ExperimentResult",
    "ReplicationResult",
    "ResilienceResult",
    "Stats",
    "load_dataset",
    "run_latency_vs_static",
    "run_replicated_stream",
    "run_resilient_stream",
    "run_scalability",
]
