"""The Table I / Table II dataset registry with synthetic analogues.

The paper's datasets come from SNAP [34] (graphs) and KONECT [35]
(hypergraphs); neither is reachable offline, so each entry pairs the
paper's reported sizes with a generator configuration of matching *skew
class* (DESIGN.md section 1).  The generators control exactly the factors
the paper names as runtime drivers -- "The number of edges or pins in the
graph is a major factor in runtime, and the maximum coreness and
complexity of core hierarchy additionally impact runtime" (Section V-A) --
so the scalability shapes carry over while absolute sizes scale the axes.

Each dataset also carries the :class:`~repro.parallel.machine.WorkloadProfile`
the simulated machine uses: the WebTrackers analogue is memory-bound
(Section V-B observes it degrading beyond 8 threads), everything else is
the standard partially-memory-bound graph workload.

``scale`` multiplies the analogue's size; the default targets
seconds-scale benchmark runs in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.graph.generators import (
    affiliation_hypergraph,
    powerlaw_social,
    rmat,
    star_tracker_hypergraph,
)
from repro.parallel.machine import COMPUTE_BOUND, MEMORY_BOUND, WorkloadProfile

__all__ = ["DatasetSpec", "DATASETS", "GRAPH_DATASETS", "HYPERGRAPH_DATASETS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One paper dataset and its synthetic analogue."""

    name: str
    kind: str  # "graph" | "hypergraph"
    paper_vertices: float
    paper_edges: float
    paper_pins: Optional[float]  # hypergraphs only
    skew_class: str
    profile: WorkloadProfile
    _builder: Callable[[float, int], object]

    def load(self, scale: float = 1.0, seed: int = 0):
        """Build the synthetic analogue at the given scale factor."""
        return self._builder(scale, seed)

    def paper_row(self) -> Tuple:
        if self.kind == "graph":
            return (self.name, self.paper_vertices, self.paper_edges)
        return (self.name, self.paper_vertices, self.paper_edges, self.paper_pins)


def _s(base: int, scale: float, lo: int = 8) -> int:
    return max(lo, int(base * scale))


DATASETS: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    DATASETS[spec.name] = spec


# --- Table I: graphs (sizes in the paper's units: millions) -----------------------

_register(DatasetSpec(
    "OrkutLinks", "graph", 3.07e6, 240e6, None, "dense social (power law)",
    COMPUTE_BOUND,
    lambda scale, seed: powerlaw_social(_s(2400, scale), 14, seed=seed),
))
_register(DatasetSpec(
    "LiveJ", "graph", 3.99e6, 37.4e6, None, "social (power law)",
    COMPUTE_BOUND,
    lambda scale, seed: powerlaw_social(_s(3200, scale), 10, seed=seed + 1),
))
_register(DatasetSpec(
    "Pokec", "graph", 1.63e6, 22.3e6, None, "social (power law)",
    COMPUTE_BOUND,
    lambda scale, seed: powerlaw_social(_s(1600, scale), 12, seed=seed + 2),
))
_register(DatasetSpec(
    "Patents", "graph", 3.77e6, 16.5e6, None, "citation (moderate skew)",
    COMPUTE_BOUND,
    lambda scale, seed: rmat(max(8, int(11 + scale - 1)), 4, seed=seed + 3,
                             a=0.45, b=0.25, c=0.2),
))
_register(DatasetSpec(
    "DBLP", "graph", 1.82e6, 8.34e6, None, "co-authorship (clustered)",
    COMPUTE_BOUND,
    lambda scale, seed: powerlaw_social(_s(1800, scale), 8, seed=seed + 4, alpha=1.2),
))
_register(DatasetSpec(
    "WikiTalk", "graph", 2.39e6, 4.66e6, None, "communication (star heavy)",
    COMPUTE_BOUND,
    lambda scale, seed: rmat(max(8, int(11 + scale - 1)), 2, seed=seed + 5,
                             a=0.65, b=0.15, c=0.15),
))
_register(DatasetSpec(
    "Google", "graph", 0.88e6, 4.32e6, None, "web (kronecker skew)",
    COMPUTE_BOUND,
    lambda scale, seed: rmat(max(8, int(10 + scale - 1)), 4, seed=seed + 6),
))
_register(DatasetSpec(
    "YouTube", "graph", 3.22e6, 9.38e6, None, "social (sparse power law)",
    COMPUTE_BOUND,
    lambda scale, seed: powerlaw_social(_s(3000, scale), 6, seed=seed + 7),
))

# --- Table II: hypergraphs --------------------------------------------------------
# LiveJGroup's pin count prints as "11.M" in the paper; KONECT's
# livejournal-groupmemberships has 112M pins, which we take as intended.

_register(DatasetSpec(
    "OrkutGroup", "hypergraph", 2.8e6, 8.7e6, 327e6, "affiliation (huge groups)",
    COMPUTE_BOUND,
    lambda scale, seed: affiliation_hypergraph(
        _s(800, scale), _s(2200, scale), 5.0, seed=seed + 8),
))
_register(DatasetSpec(
    "WebTrackers", "hypergraph", 27e6, 13e6, 141e6, "hypersparse (memory bound)",
    MEMORY_BOUND,
    lambda scale, seed: star_tracker_hypergraph(
        _s(1800, scale), _s(2400, scale), seed=seed + 9),
))
_register(DatasetSpec(
    "LiveJGroup", "hypergraph", 3.2e6, 7.5e6, 112e6, "affiliation (moderate groups)",
    COMPUTE_BOUND,
    lambda scale, seed: affiliation_hypergraph(
        _s(1000, scale), _s(2400, scale), 4.0, seed=seed + 10),
))

GRAPH_DATASETS = tuple(n for n, s in DATASETS.items() if s.kind == "graph")
HYPERGRAPH_DATASETS = tuple(n for n, s in DATASETS.items() if s.kind == "hypergraph")


def load_dataset(name: str, scale: float = 1.0, seed: int = 0):
    """Build the synthetic analogue of a paper dataset.

    >>> g = load_dataset("DBLP", scale=0.1)
    >>> g.num_vertices() > 0
    True
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return spec.load(scale, seed)
