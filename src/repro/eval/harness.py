"""Experiment drivers regenerating the paper's figures.

:func:`run_scalability` reproduces one panel of Figs. 6-12: a dataset, an
algorithm, a change direction (insert / delete / mixed) and a sweep of
batch sizes, measured across the full thread sweep on the simulated
machine.  The protocol is the paper's (Section V-A): random units are
removed then re-inserted for ``rounds`` repetitions; deletion-only panels
time the removals, insertion-only panels the re-insertions, mixed panels
the interleaved batch.

Crucially, the maintainer is *reused* across rounds -- this is maintenance,
not recomputation -- and the simulated runtime's clock is reset around the
timed batch only, so untimed protocol bookkeeping is free, mirroring how
the paper times batch processing alone.

:func:`run_latency_vs_static` measures the maintenance-vs-recompute ratio
backing Section IV's "reaching over 10^4 x static computation" claim for
small batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.maintainer import make_maintainer
from repro.core.static import hhc_local
from repro.eval.datasets import DATASETS
from repro.eval.stats import Stats
from repro.graph.batch import BatchProtocol
from repro.parallel.simulated import DEFAULT_THREAD_COUNTS, SimulatedRuntime

__all__ = ["ExperimentResult", "run_scalability", "run_latency_vs_static"]


@dataclass
class ExperimentResult:
    """Series for one figure panel.

    ``times[batch_size][threads]`` holds the :class:`Stats` of the timed
    batch runtimes (simulated seconds).
    """

    dataset: str
    algorithm: str
    direction: str
    thread_counts: Tuple[int, ...]
    batch_sizes: Tuple[int, ...]
    times: Dict[int, Dict[int, Stats]] = field(default_factory=dict)
    #: simulated seconds of a from-scratch recompute, per thread count
    static_time: Optional[Dict[int, float]] = None

    def speedup(self, batch_size: int, threads: int) -> float:
        series = self.times[batch_size]
        return series[self.thread_counts[0]].mean / series[threads].mean

    def best_threads(self, batch_size: int) -> int:
        series = self.times[batch_size]
        return min(series, key=lambda t: series[t].mean)


def _spec(dataset: str):
    try:
        return DATASETS[dataset]
    except KeyError:
        raise ValueError(f"unknown dataset {dataset!r}") from None


def _timed_apply(maintainer, rt: SimulatedRuntime, batch) -> Dict[int, float]:
    rt.reset_clock()
    maintainer.apply_batch(batch)
    metrics = rt.take_metrics()
    return {t: metrics.elapsed_seconds(t) for t in rt.thread_counts}


def run_scalability(
    dataset: str,
    algorithm: str,
    *,
    direction: str = "insert",
    batch_sizes: Sequence[int] = (100, 1000),
    rounds: int = 5,
    scale: float = 1.0,
    seed: int = 0,
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    maintainer_kwargs: Optional[dict] = None,
) -> ExperimentResult:
    """One figure panel: runtime vs threads, one series per batch size.

    ``direction`` is ``"insert"``, ``"delete"`` or ``"mixed"``.
    """
    if direction not in ("insert", "delete", "mixed"):
        raise ValueError(f"unknown direction {direction!r}")
    spec = _spec(dataset)
    sub = spec.load(scale, seed)
    rt = SimulatedRuntime(profile=spec.profile, thread_counts=thread_counts)
    maintainer = make_maintainer(sub, algorithm, rt, **(maintainer_kwargs or {}))
    proto = BatchProtocol(sub, seed=seed + 1)

    result = ExperimentResult(
        dataset, algorithm, direction, tuple(thread_counts), tuple(batch_sizes)
    )
    for b in batch_sizes:
        samples: Dict[int, List[float]] = {t: [] for t in thread_counts}
        for _ in range(rounds):
            if direction == "mixed":
                prep, mixed, restore = proto.mixed(b)
                rt.reset_clock()
                maintainer.apply_batch(prep)  # untimed staging
                timed = _timed_apply(maintainer, rt, mixed)
                rt.reset_clock()
                maintainer.apply_batch(restore)  # untimed restore
            else:
                deletion, insertion = proto.remove_reinsert(b)
                if direction == "delete":
                    timed = _timed_apply(maintainer, rt, deletion)
                    rt.reset_clock()
                    maintainer.apply_batch(insertion)  # untimed restore
                else:
                    rt.reset_clock()
                    maintainer.apply_batch(deletion)  # untimed staging
                    timed = _timed_apply(maintainer, rt, insertion)
            for t, secs in timed.items():
                samples[t].append(secs)
        result.times[b] = {t: Stats.of(xs) for t, xs in samples.items()}
    rt.reset_clock()
    return result


def run_latency_vs_static(
    dataset: str,
    algorithm: str,
    *,
    batch_sizes: Sequence[int] = (1, 10, 100, 1000),
    rounds: int = 3,
    scale: float = 1.0,
    seed: int = 0,
    threads: int = 1,
) -> ExperimentResult:
    """Maintenance latency against from-scratch recomputation.

    The returned result carries ``static_time`` -- the simulated cost of
    one full :func:`~repro.core.static.hhc_local` recompute on the same
    machine -- so callers can report the improvement factors of Section
    IV ("reaching over 10^4 x static computation ... on real-world graph
    instances" for the set family on small batches).
    """
    spec = _spec(dataset)
    thread_counts = tuple(sorted({1, threads}))
    result = run_scalability(
        dataset,
        algorithm,
        direction="insert",
        batch_sizes=batch_sizes,
        rounds=rounds,
        scale=scale,
        seed=seed,
        thread_counts=thread_counts,
    )
    sub = spec.load(scale, seed)
    rt = SimulatedRuntime(profile=spec.profile, thread_counts=thread_counts)
    rt.reset_clock()
    hhc_local(sub, rt)
    metrics = rt.take_metrics()
    result.static_time = {t: metrics.elapsed_seconds(t) for t in thread_counts}
    return result
