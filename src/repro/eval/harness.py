"""Experiment drivers regenerating the paper's figures.

:func:`run_scalability` reproduces one panel of Figs. 6-12: a dataset, an
algorithm, a change direction (insert / delete / mixed) and a sweep of
batch sizes, measured across the full thread sweep on the simulated
machine.  The protocol is the paper's (Section V-A): random units are
removed then re-inserted for ``rounds`` repetitions; deletion-only panels
time the removals, insertion-only panels the re-insertions, mixed panels
the interleaved batch.

Crucially, the maintainer is *reused* across rounds -- this is maintenance,
not recomputation -- and the simulated runtime's clock is reset around the
timed batch only, so untimed protocol bookkeeping is free, mirroring how
the paper times batch processing alone.

:func:`run_latency_vs_static` measures the maintenance-vs-recompute ratio
backing Section IV's "reaching over 10^4 x static computation" claim for
small batches.

:func:`run_resilient_stream` drives the resilience layer on the paper's
bursty workload (Section I's motivation): a
:class:`~repro.resilience.supervisor.ResilientMaintainer` plays a
:class:`~repro.graph.streams.BurstyStream` with deterministic faults
injected, and the result surfaces the supervisor's retry / quarantine /
audit counters next to the usual latency statistics -- the service-facing
half of the evaluation.

:func:`run_served_stream` closes the loop on the serving story: a
:class:`~repro.serve.server.CoreServer` fronts the maintainer on the same
bursty workload, writes flow through admission control and the coalescing
queue, and every read is a deadline-bounded snapshot query.  The result
reports the admission mix (accept / defer / shed), sampled queue depth,
query latency percentiles, the staleness distribution of served answers,
and the final view-vs-engine consistency check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backend import wrap_substrate
from repro.core.maintainer import make_maintainer
from repro.core.static import hhc_local
from repro.eval.datasets import DATASETS
from repro.eval.stats import Stats
from repro.graph.batch import BatchProtocol
from repro.parallel.simulated import DEFAULT_THREAD_COUNTS, SimulatedRuntime

__all__ = [
    "ExperimentResult",
    "ReplicationResult",
    "ResilienceResult",
    "ServeResult",
    "run_scalability",
    "run_latency_vs_static",
    "run_replicated_stream",
    "run_resilient_stream",
    "run_served_stream",
]


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) -- 0.0 on empty input."""
    if not samples:
        return 0.0
    xs = sorted(samples)
    return xs[min(len(xs) - 1, int(round(q * (len(xs) - 1))))]


@dataclass
class ExperimentResult:
    """Series for one figure panel.

    ``times[batch_size][threads]`` holds the :class:`Stats` of the timed
    batch runtimes (simulated seconds).
    """

    dataset: str
    algorithm: str
    direction: str
    thread_counts: Tuple[int, ...]
    batch_sizes: Tuple[int, ...]
    times: Dict[int, Dict[int, Stats]] = field(default_factory=dict)
    #: simulated seconds of a from-scratch recompute, per thread count
    static_time: Optional[Dict[int, float]] = None
    #: execution engine the maintainer actually ran on
    engine: str = "dict"
    #: total simulated work units across all timed batches
    work_units: float = 0.0

    def speedup(self, batch_size: int, threads: int) -> float:
        series = self.times[batch_size]
        return series[self.thread_counts[0]].mean / series[threads].mean

    def best_threads(self, batch_size: int) -> int:
        series = self.times[batch_size]
        return min(series, key=lambda t: series[t].mean)


def _spec(dataset: str):
    try:
        return DATASETS[dataset]
    except KeyError:
        raise ValueError(f"unknown dataset {dataset!r}") from None


def _timed_apply(maintainer, rt: SimulatedRuntime, batch) -> Tuple[Dict[int, float], float]:
    rt.reset_clock()
    maintainer.apply_batch(batch)
    metrics = rt.take_metrics()
    times = {t: metrics.elapsed_seconds(t) for t in rt.thread_counts}
    return times, metrics.work_units


def run_scalability(
    dataset: str,
    algorithm: str,
    *,
    direction: str = "insert",
    batch_sizes: Sequence[int] = (100, 1000),
    rounds: int = 5,
    scale: float = 1.0,
    seed: int = 0,
    thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
    engine: str = "auto",
    maintainer_kwargs: Optional[dict] = None,
) -> ExperimentResult:
    """One figure panel: runtime vs threads, one series per batch size.

    ``direction`` is ``"insert"``, ``"delete"`` or ``"mixed"``.
    ``engine`` picks the execution path (``"auto"`` / ``"array"`` /
    ``"dict"``): with ``"array"`` the loaded dataset is lifted onto its
    flat-array substrate and the timed batches run through the vectorised
    kernels, which report chunked work to the simulated machine -- the
    same scaling figures, produced on the fast engine.
    """
    if direction not in ("insert", "delete", "mixed"):
        raise ValueError(f"unknown direction {direction!r}")
    spec = _spec(dataset)
    sub = wrap_substrate(spec.load(scale, seed), engine)
    rt = SimulatedRuntime(profile=spec.profile, thread_counts=thread_counts)
    maintainer = make_maintainer(
        sub, algorithm, rt, engine=engine, **(maintainer_kwargs or {})
    )
    proto = BatchProtocol(sub, seed=seed + 1)

    result = ExperimentResult(
        dataset, algorithm, direction, tuple(thread_counts), tuple(batch_sizes),
        engine=maintainer.engine,
    )
    for b in batch_sizes:
        samples: Dict[int, List[float]] = {t: [] for t in thread_counts}
        for _ in range(rounds):
            if direction == "mixed":
                prep, mixed, restore = proto.mixed(b)
                rt.reset_clock()
                maintainer.apply_batch(prep)  # untimed staging
                timed, work = _timed_apply(maintainer, rt, mixed)
                rt.reset_clock()
                maintainer.apply_batch(restore)  # untimed restore
            else:
                deletion, insertion = proto.remove_reinsert(b)
                if direction == "delete":
                    timed, work = _timed_apply(maintainer, rt, deletion)
                    rt.reset_clock()
                    maintainer.apply_batch(insertion)  # untimed restore
                else:
                    rt.reset_clock()
                    maintainer.apply_batch(deletion)  # untimed staging
                    timed, work = _timed_apply(maintainer, rt, insertion)
            for t, secs in timed.items():
                samples[t].append(secs)
            result.work_units += work
        result.times[b] = {t: Stats.of(xs) for t, xs in samples.items()}
    rt.reset_clock()
    return result


def run_latency_vs_static(
    dataset: str,
    algorithm: str,
    *,
    batch_sizes: Sequence[int] = (1, 10, 100, 1000),
    rounds: int = 3,
    scale: float = 1.0,
    seed: int = 0,
    threads: int = 1,
    engine: str = "auto",
) -> ExperimentResult:
    """Maintenance latency against from-scratch recomputation.

    The returned result carries ``static_time`` -- the simulated cost of
    one full :func:`~repro.core.static.hhc_local` recompute on the same
    machine -- so callers can report the improvement factors of Section
    IV ("reaching over 10^4 x static computation ... on real-world graph
    instances" for the set family on small batches).
    """
    spec = _spec(dataset)
    thread_counts = tuple(sorted({1, threads}))
    result = run_scalability(
        dataset,
        algorithm,
        direction="insert",
        batch_sizes=batch_sizes,
        rounds=rounds,
        scale=scale,
        seed=seed,
        thread_counts=thread_counts,
        engine=engine,
    )
    sub = spec.load(scale, seed)
    rt = SimulatedRuntime(profile=spec.profile, thread_counts=thread_counts)
    rt.reset_clock()
    hhc_local(sub, rt)
    metrics = rt.take_metrics()
    result.static_time = {t: metrics.elapsed_seconds(t) for t in thread_counts}
    return result


@dataclass
class ResilienceResult:
    """Outcome of one supervised bursty-stream run."""

    dataset: str
    algorithm: str
    rounds: int
    batch_latency: Stats          #: simulated seconds per applied batch
    stats: Dict[str, int]         #: supervisor counters
    quarantined: List[str]        #: stringified quarantine reports
    final_verified: bool          #: post-stream full verify_kappa was clean

    def format(self) -> str:
        s = self.stats
        lines = [
            f"[{self.dataset}] {self.algorithm}: {self.rounds} bursty rounds "
            f"({s['batches']} batches)",
            f"  batch latency (simulated): {self.batch_latency}",
            f"  applied={s['applied']} retries={s['retries']} "
            f"quarantined={s['quarantined']}",
            f"  audits={s['audits']} audit_failures={s['audit_failures']} "
            f"heals={s['heals']}",
            f"  final full verification: {'clean' if self.final_verified else 'DIVERGED'}",
        ]
        lines.extend(f"  quarantine: {q}" for q in self.quarantined)
        return "\n".join(lines)


def run_resilient_stream(
    dataset: str,
    algorithm: str = "mod",
    *,
    rounds: int = 50,
    schedule=None,
    fault_plans: Sequence = (),
    max_retries: int = 1,
    audit_every: int = 10,
    audit_sample: Optional[int] = 32,
    final_audit: bool = True,
    scale: float = 0.5,
    seed: int = 0,
    threads: int = 16,
) -> ResilienceResult:
    """Play a bursty remove/reinsert stream through a supervised
    maintainer, optionally with injected faults, and report the
    resilience counters alongside batch latency.

    ``final_audit`` closes the stream with one full (unsampled) drift
    audit before the final verification -- the quiesce-then-serve
    pattern: any corruption that ordinary maintenance did not already
    incidentally repair is caught and healed here, so the run's last
    word is a verified state.
    """
    from repro.core.verify import verify_kappa
    from repro.graph.streams import BurstySchedule, BurstyStream
    from repro.resilience.faults import FaultInjector
    from repro.resilience.supervisor import ResilientMaintainer

    spec = _spec(dataset)
    sub = spec.load(scale, seed)
    rt = SimulatedRuntime(profile=spec.profile)
    rm = ResilientMaintainer(
        sub, algorithm, rt,
        max_retries=max_retries,
        audit_every=audit_every,
        audit_sample=audit_sample,
        seed=seed,
    )
    injector = FaultInjector(rm, fault_plans)
    stream = BurstyStream(sub, schedule or BurstySchedule(seed=seed), seed=seed + 1)

    latencies: List[float] = []
    for _, deletion, insertion in stream.rounds(rounds):
        for batch in (deletion, insertion):
            rt.reset_clock()
            report = injector.apply_batch(batch)
            if report.ok:
                latencies.append(rt.take_metrics().elapsed_seconds(threads))
    if final_audit:
        sample = rm.audit_sample
        rm.audit_sample = None
        rm.audit()
        rm.audit_sample = sample
    final_clean = verify_kappa(rm, raise_on_mismatch=False) == []
    return ResilienceResult(
        dataset=dataset,
        algorithm=algorithm,
        rounds=rounds,
        batch_latency=Stats.of(latencies),
        stats=dict(rm.stats),
        quarantined=[str(q) for q in rm.quarantine],
        final_verified=final_clean,
    )


@dataclass
class ReplicationResult:
    """Outcome of one replicated bursty-stream run."""

    dataset: str
    algorithm: str
    rounds: int
    n_replicas: int
    staleness_budget: int
    batch_latency: Stats          #: simulated seconds per applied batch
    lag_batches: Stats            #: max standby lag sampled after each batch
    reads: Dict[str, int]         #: reads served per endpoint
    replica_read_fraction: float  #: share of reads the standbys absorbed
    stats: Dict[str, int]         #: primary shipping counters
    failover: Optional[Dict] = None  #: promote-on-failure measurements
    final_verified: bool = False
    replicas_converged: bool = False

    def format(self) -> str:
        s = self.stats
        lines = [
            f"[{self.dataset}] {self.algorithm}: {self.rounds} bursty rounds "
            f"x {self.n_replicas} replicas (staleness budget "
            f"{self.staleness_budget})",
            f"  batch latency (simulated): {self.batch_latency}",
            "  replication lag (batches): "
            f"{self.lag_batches.format(unit=1.0)} "
            f"(max {self.lag_batches.maximum:.0f})",
            f"  shipments={s['shipments']} acks={s['acks']} naks={s['naks']} "
            f"retransmits={s['retransmits']} resyncs={s['resyncs']}",
            f"  reads: {self.reads} "
            f"(replica share {self.replica_read_fraction:.0%})",
        ]
        if self.failover:
            f = self.failover
            lines.append(
                f"  failover at batch {f['at_batch']}: promoted "
                f"replica-{f['promoted_replica']} term {f['term']}, "
                f"recovery {f['recovery_s'] * 1e3:.3f} ms simulated, "
                f"redriven batches {f['redriven_batches']}"
            )
        lines.append(
            "  final: "
            + ("verified clean" if self.final_verified else "DIVERGED")
            + (", all replicas converged" if self.replicas_converged else
               ", REPLICAS LAGGING")
        )
        return "\n".join(lines)


def run_replicated_stream(
    dataset: str,
    algorithm: str = "mod",
    *,
    rounds: int = 20,
    n_replicas: int = 2,
    staleness_budget: int = 0,
    reads_per_round: int = 4,
    fail_at: Optional[int] = None,
    fault_plans=None,
    checkpoint_every: int = 8,
    scale: float = 0.5,
    seed: int = 0,
    threads: int = 16,
    directory=None,
) -> ReplicationResult:
    """Play a bursty stream through a durable, replicated maintainer.

    Every applied batch is WAL-logged, shipped to ``n_replicas`` hot
    standbys over the simulated transport, and pumped to delivery; the
    sampled max standby lag is the replication-lag series.  Reads are
    routed through the bounded-staleness
    :class:`~repro.replication.replica_set.ReplicaSet` at
    ``staleness_budget``.  With ``fail_at`` set, the primary is killed
    (process-death model: the WAL handle is dropped unsynced) after that
    many batches, :func:`~repro.replication.primary.promote_on_failure`
    elects a standby, unreplicated batches are redriven from the client's
    buffer, and the stream finishes on the promoted primary; the
    simulated promote + catch-up time is reported.
    """
    import shutil as _shutil
    import tempfile as _tempfile
    from pathlib import Path as _Path

    from repro.core.maintainer import CoreMaintainer
    from repro.core.verify import verify_kappa
    from repro.graph.streams import BurstySchedule, BurstyStream
    from repro.replication.primary import promote_on_failure

    spec = _spec(dataset)
    sub = spec.load(scale, seed)
    rt = SimulatedRuntime(profile=spec.profile)
    owned = directory is None
    root = _Path(_tempfile.mkdtemp(prefix="repro-repl-")) if owned else _Path(directory)
    try:
        m = CoreMaintainer(
            sub, algorithm, rt,
            durable=root / "primary",
            durability={"checkpoint_every": checkpoint_every},
            replicas=n_replicas,
            replication={"fault_plans": fault_plans} if fault_plans else {},
        )
        primary = m.impl  # the ReplicatedMaintainer
        stream = BurstyStream(sub, BurstySchedule(seed=seed), seed=seed + 1)

        latencies: List[float] = []
        lags: List[int] = []
        applied_batches: List = []  # client-side redrive buffer
        failover: Optional[Dict] = None
        batches_done = 0
        for _, deletion, insertion in stream.rounds(rounds):
            for batch in (deletion, insertion):
                rt.reset_clock()
                primary.apply_batch(batch)
                latencies.append(rt.take_metrics().elapsed_seconds(threads))
                applied_batches.append(batch)
                lags.append(primary.max_lag())
                batches_done += 1
                if fail_at is not None and failover is None and batches_done >= fail_at:
                    replicas = primary.replicas
                    pre_failover_reads = dict(primary.replica_set.reads)
                    fh = primary.impl.wal._fh  # process death: drop, no sync
                    if fh is not None:
                        fh.close()
                    t0 = primary.clock.now()
                    promoted = promote_on_failure(replicas)
                    recovery_s = promoted.clock.now() - t0
                    redriven = applied_batches[promoted.committed_seqno:]
                    for rb in redriven:
                        promoted.apply_batch(rb)
                    failover = {
                        "at_batch": batches_done,
                        "promoted_replica": promoted.promoted_from,
                        "term": promoted.term,
                        "recovery_s": recovery_s,
                        "redriven_batches": len(redriven),
                    }
                    primary = promoted
            rs = primary.replica_set
            if primary.tau:
                probe = next(iter(primary.tau))
                for _ in range(reads_per_round):
                    rs.kappa_of(probe, max_staleness=staleness_budget)
        primary.sync_replicas()
        converged = primary.converged and all(
            r.kappa() == primary.kappa() for r in primary.replicas
        )
        final_clean = verify_kappa(primary, raise_on_mismatch=False) == []
        rs = primary.replica_set
        reads = dict(rs.reads)
        if failover is not None:
            for label, count in pre_failover_reads.items():
                reads[label] = reads.get(label, 0) + count
        total_reads = sum(reads.values())
        result = ReplicationResult(
            dataset=dataset,
            algorithm=algorithm,
            rounds=rounds,
            n_replicas=n_replicas,
            staleness_budget=staleness_budget,
            batch_latency=Stats.of(latencies),
            lag_batches=Stats.of([float(x) for x in lags]),
            reads=reads,
            replica_read_fraction=(
                1.0 - reads.get("primary", 0) / total_reads if total_reads else 0.0
            ),
            stats=dict(primary.stats),
            failover=failover,
            final_verified=final_clean,
            replicas_converged=converged,
        )
        primary.close(final_checkpoint=False, sync=False)
        return result
    finally:
        if owned:
            _shutil.rmtree(root, ignore_errors=True)


@dataclass
class ServeResult:
    """Outcome of one served bursty-stream run."""

    dataset: str
    algorithm: str
    engine: str
    rounds: int
    offered_changes: int
    admission: Dict[str, int]     #: submit decisions by status
    coalesced: Dict[str, int]     #: queue counters (enqueued/annihilated/...)
    dropped_rounds: int           #: rounds whose deletion half was refused
    queue_depth: Stats            #: depth sampled at every admission decision
    max_queue_depth: int
    #: largest accepted group -- ``max_queue_depth`` is bounded by
    #: ``defer_at + max_group`` by construction (accept checks the
    #: pre-enqueue depth)
    max_group: int
    query_latency: Stats          #: simulated seconds per served query
    latency_p50: float
    latency_p99: float
    staleness: Stats              #: committed batches behind, per query
    statuses: Dict[str, int]      #: query results by fresh / stale / timeout
    health_transitions: List[Tuple[str, str]]
    final_health: str
    failed_batches: int
    events: int                   #: subscription events fired
    view_consistent: bool         #: final published view == engine tau
    final_verified: bool

    def format(self) -> str:
        a, s = self.admission, self.statuses
        total = sum(s.values())
        lines = [
            f"[{self.dataset}] {self.algorithm}/{self.engine}: "
            f"{self.rounds} served bursty rounds, "
            f"{self.offered_changes} changes offered",
            f"  admission: accepted={a.get('accepted', 0)} "
            f"deferred={a.get('deferred', 0)} shed={a.get('shed', 0)} "
            f"(dropped rounds {self.dropped_rounds}); "
            f"coalesced away {self.coalesced.get('annihilated', 0)} "
            f"+ {self.coalesced.get('duplicates', 0)} dup",
            f"  queue depth: {self.queue_depth.format(unit=1.0, digits=1)} "
            f"(max {self.max_queue_depth})",
            f"  query latency (simulated): {self.query_latency} "
            f"p50={self.latency_p50 * 1e3:.3f}ms "
            f"p99={self.latency_p99 * 1e3:.3f}ms",
            f"  staleness (batches): "
            f"{self.staleness.format(unit=1.0, digits=2)} "
            f"(max {self.staleness.maximum:.0f})",
            f"  statuses: fresh={s.get('fresh', 0)}/{total} "
            f"stale={s.get('stale', 0)} timeout={s.get('timeout', 0)}; "
            f"health={self.final_health} "
            f"({len(self.health_transitions)} transitions, "
            f"{self.failed_batches} failed batches); "
            f"events={self.events}",
            "  final: "
            + ("view consistent" if self.view_consistent else "VIEW DIVERGED")
            + (", verified clean" if self.final_verified else ", TAU DIVERGED"),
        ]
        return "\n".join(lines)


def run_served_stream(
    dataset: str,
    algorithm: str = "mod",
    *,
    rounds: int = 30,
    queries_per_round: int = 8,
    deadline_s: Optional[float] = 0.05,
    batch_cost_s: float = 0.002,
    max_batch: int = 64,
    pump_batches_per_round: Optional[int] = None,
    defer_at: int = 256,
    shed_at: int = 1024,
    subscribe_threshold: Optional[int] = 2,
    scale: float = 0.5,
    seed: int = 0,
    engine: str = "dict",
    rt=None,
) -> ServeResult:
    """Play a bursty stream through a :class:`~repro.serve.server
    .CoreServer` and report the serving contract's measurements.

    Each round offers the deletion half then the reinsertion half to
    admission; a refused deletion drops the whole round (the client must
    not reinsert edges it never removed), which is how overload shows up
    as bounded shedding rather than corrupted state.  Maintenance is
    pumped ``pump_batches_per_round`` batches per round (``None`` =
    whatever the deadline-bounded fresh reads pull in, then a full
    drain) -- small values simulate an engine slower than the offered
    load, driving the health machine through DEGRADED/SHEDDING.

    Time is a :class:`~repro.resilience.backoff.ManualClock` advanced
    only by ``batch_cost_s`` per pumped batch, so latencies, deadline
    hits, and the staleness distribution are exactly reproducible.
    """
    import random as _random

    from repro.core.verify import verify_kappa
    from repro.graph.streams import BurstySchedule, BurstyStream
    from repro.resilience.backoff import ManualClock
    from repro.serve.server import CoreServer

    spec = _spec(dataset)
    sub = spec.load(scale, seed)
    if engine == "array":
        sub = wrap_substrate(sub, "array")
    # rt= plumbs a real runtime (e.g. ThreadRuntime) under the server's
    # maintenance pump; None keeps the serial default
    m = make_maintainer(sub, algorithm, rt, engine=engine)
    clock = ManualClock()
    server = CoreServer(
        m, clock=clock, max_batch=max_batch, defer_at=defer_at,
        shed_at=shed_at, batch_cost_s=batch_cost_s,
    )
    handle = (server.subscribe(subscribe_threshold)
              if subscribe_threshold is not None else None)
    stream = BurstyStream(sub, BurstySchedule(seed=seed), seed=seed + 1)
    rng = _random.Random(seed + 2)
    probes = sorted(m.tau)

    admission: Dict[str, int] = {}
    statuses: Dict[str, int] = {}
    depths: List[float] = []
    latencies: List[float] = []
    staleness: List[float] = []
    offered = dropped_rounds = max_group = 0

    def _note(decision, size) -> None:
        nonlocal max_group
        admission[decision.status] = admission.get(decision.status, 0) + 1
        depths.append(float(decision.queue_depth))
        if decision.accepted:
            max_group = max(max_group, size)

    def _record(qr) -> None:
        statuses[qr.status] = statuses.get(qr.status, 0) + 1
        latencies.append(qr.latency_s)
        staleness.append(float(qr.staleness))

    for _, deletion, insertion in stream.rounds(rounds):
        offered += len(list(deletion)) + len(list(insertion))
        changes = list(deletion)
        decision = server.submit(changes)
        _note(decision, len(changes))
        if decision.accepted:
            if pump_batches_per_round is None:
                # keep-up mode: apply the removals before offering the
                # reinsertions, else the queue coalesces the round away
                server.pump()
            changes = list(insertion)
            decision = server.submit(changes)
            _note(decision, len(changes))
        else:
            dropped_rounds += 1
        if pump_batches_per_round is not None:
            # slow-engine mode: bounded maintenance; opposing halves
            # still in the queue annihilate, which is load shed for free
            server.pump(max_batches=pump_batches_per_round)
        for _ in range(queries_per_round):
            _record(server.core(rng.choice(probes), deadline=deadline_s))
        _record(server.vertices_with_core_at_least(2, deadline=deadline_s))

    report = server.pump()   # quiesce: drain whatever admission let through
    view = server.view()
    view_consistent = view.kappa() == dict(m.tau)
    final_clean = verify_kappa(m, raise_on_mismatch=False) == []
    return ServeResult(
        dataset=dataset,
        algorithm=algorithm,
        engine=engine,
        rounds=rounds,
        offered_changes=offered,
        admission=admission,
        coalesced=dict(server.queue.stats),
        dropped_rounds=dropped_rounds,
        queue_depth=Stats.of(depths) if depths else Stats.of([0.0]),
        max_queue_depth=int(max(depths)) if depths else 0,
        max_group=max_group,
        query_latency=Stats.of(latencies),
        latency_p50=_percentile(latencies, 0.50),
        latency_p99=_percentile(latencies, 0.99),
        staleness=Stats.of(staleness),
        statuses=statuses,
        health_transitions=list(server.health.transitions),
        final_health=report.health,
        failed_batches=server.stats["failed_batches"],
        events=len(handle.events) if handle is not None else 0,
        view_consistent=view_consistent,
        final_verified=final_clean,
    )
