"""Characterising graphs and batches to predict runtime behaviour.

Section V-A closes with its own future-work item: "The number of edges or
pins in the graph is a major factor in runtime, and the maximum coreness
and complexity of core hierarchy additionally impact runtime.  Future work
includes characterizing graphs and batches to determine runtime behavior."

This module implements that characterisation:

* :func:`characterize_structure` -- the structural features §V-A names
  (size, degree skew, maximum coreness, hierarchy depth/width, level
  populations).
* :func:`characterize_batch` -- per-batch features: the distribution of
  recorded change levels and, crucially for ``mod``, the *blast radius* --
  the total population of the tau levels its resolution would increment,
  which is the work the increment sweep and subsequent convergence must
  pay.
* :func:`predict_mod_cost` -- a closed-form work predictor for a mod batch
  built from those features, and
  :func:`validate_predictor` -- fits/validates it against measured
  simulated work, reporting the rank correlation the paper's future work
  asks for.

The predictor is deliberately simple (it mirrors the §V-B explanation of
why mod's cost is flat in batch size: "incrementing some edges that have a
small coreness value, causing large parts of the graph to be impacted");
the benchmark shows it ranks batch costs far better than batch *size*
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.mod import ModMaintainer, resolve_paper
from repro.core.peel import peel
from repro.core.pin_cases import classify_delete, classify_insert
from repro.structures.level_accumulator import LevelAccumulator

__all__ = [
    "StructureProfile",
    "BatchProfile",
    "characterize_structure",
    "characterize_batch",
    "predict_mod_cost",
    "validate_predictor",
    "rank_correlation",
]

Vertex = Hashable


@dataclass(frozen=True)
class StructureProfile:
    """The §V-A structural runtime factors."""

    vertices: int
    units: int  # edges (graphs) or pins (hypergraphs)
    max_degree: int
    mean_degree: float
    degree_skew: float        # max/mean: 1 = regular, large = star-heavy
    max_coreness: int
    levels: int               # distinct core values
    level_populations: Dict[int, int]
    hierarchy_depth: int      # == max_coreness, kept for readability

    def describe(self) -> str:
        return (
            f"|V|={self.vertices} units={self.units} "
            f"deg(mean/max)={self.mean_degree:.1f}/{self.max_degree} "
            f"skew={self.degree_skew:.1f} kmax={self.max_coreness} "
            f"levels={self.levels}"
        )


@dataclass(frozen=True)
class BatchProfile:
    """Per-batch features driving maintenance cost."""

    size: int
    insertions: int
    deletions: int
    min_level: int            # lowest recorded change level
    max_level: int
    distinct_levels: int
    blast_radius: int         # vertices at levels mod would increment/activate
    touched_vertices: int

    def describe(self) -> str:
        return (
            f"size={self.size} (+{self.insertions}/-{self.deletions}) "
            f"levels=[{self.min_level},{self.max_level}] "
            f"blast={self.blast_radius}"
        )


def characterize_structure(sub, kappa: Optional[Dict[Vertex, int]] = None
                           ) -> StructureProfile:
    """Measure the structural features of a graph or hypergraph."""
    if kappa is None:
        kappa = peel(sub)
    n = sub.num_vertices()
    degrees = [sub.degree(v) for v in sub.vertices()]
    max_deg = max(degrees, default=0)
    mean_deg = sum(degrees) / n if n else 0.0
    pops: Dict[int, int] = {}
    for k in kappa.values():
        pops[k] = pops.get(k, 0) + 1
    kmax = max(kappa.values(), default=0)
    units = sub.num_pins() if getattr(sub, "is_hypergraph", False) else sub.num_edges()
    return StructureProfile(
        vertices=n,
        units=units,
        max_degree=max_deg,
        mean_degree=mean_deg,
        degree_skew=(max_deg / mean_deg) if mean_deg else 1.0,
        max_coreness=kmax,
        levels=len(pops),
        level_populations=dict(sorted(pops.items())),
        hierarchy_depth=kmax,
    )


def characterize_batch(sub, batch, kappa: Dict[Vertex, int],
                       level_populations: Dict[int, int]) -> BatchProfile:
    """Classify a batch *without applying it* and measure its features.

    Uses the same pin-case classification mod's callbacks run, against the
    provided pre-batch core values, then evaluates the paper resolution to
    find which levels the batch would touch and how many vertices live
    there (the blast radius).
    """
    I = LevelAccumulator()
    D = LevelAccumulator()
    touched = set()
    insertions = deletions = 0
    is_hyper = getattr(sub, "is_hypergraph", False)
    for change in batch:
        touched.add(change.vertex)
        if change.insert:
            insertions += 1
            pins = list(sub.pins(change.edge)) if sub.has_edge(change.edge) else []
            ctx = pins + ([change.vertex] if change.vertex not in pins else [])
            res = classify_insert(kappa, change, ctx,
                                  edge_is_new=not sub.has_edge(change.edge))
        else:
            deletions += 1
            if not sub.has_pin(change.edge, change.vertex):
                continue
            ctx = list(sub.pins(change.edge))
            res = classify_delete(kappa, change, ctx)
        for lvl, cnt in res.inserts:
            I.add(lvl, cnt)
        for lvl, cnt in res.deletes:
            D.add(lvl, cnt)

    resolution = resolve_paper(I, D)
    blast = 0
    lo, hi = None, None
    distinct = 0
    for level, pop in level_populations.items():
        if resolution.increment(level) > 0 or resolution.should_activate(level):
            blast += pop
            distinct += 1
            lo = level if lo is None else min(lo, level)
            hi = level if hi is None else max(hi, level)
    return BatchProfile(
        size=len(batch),
        insertions=insertions,
        deletions=deletions,
        min_level=lo if lo is not None else 0,
        max_level=hi if hi is not None else 0,
        distinct_levels=distinct,
        blast_radius=blast,
        touched_vertices=len(touched),
    )


def predict_mod_cost(structure: StructureProfile, batch: BatchProfile,
                     convergence_sweeps: float = 2.5) -> float:
    """Predicted work units for one mod batch.

    model = batch application + increment sweep over the blast radius +
    ``convergence_sweeps`` h-index recomputations of the blast radius at
    mean degree.  The sweep constant is the only free parameter; the
    validator reports how well the *ranking* holds, which is what a
    batch scheduler (e.g. the hybrid router) needs.
    """
    apply_cost = batch.size * structure.mean_degree
    increment_cost = batch.blast_radius
    converge_cost = convergence_sweeps * batch.blast_radius * structure.mean_degree
    return apply_cost + increment_cost + converge_cost


def rank_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (no scipy dependency in src/)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")

    def ranks(vals):
        order = sorted(range(len(vals)), key=lambda i: vals[i])
        r = [0.0] * len(vals)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) and vals[order[j + 1]] == vals[order[i]]:
                j += 1
            avg = (i + j) / 2 + 1
            for k in range(i, j + 1):
                r[order[k]] = avg
            i = j + 1
        return r

    rx, ry = ranks(list(xs)), ranks(list(ys))
    n = len(rx)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy) ** 0.5


def validate_predictor(sub_factory, batches_factory, *, threads: int = 1
                       ) -> Tuple[float, float, List[Tuple[float, float]]]:
    """Measure predictor quality on a workload.

    ``sub_factory()`` builds a fresh substrate; ``batches_factory(sub)``
    yields (apply-able) batches.  Returns ``(rho_predictor, rho_size,
    samples)`` -- the Spearman correlation of predicted-vs-measured work
    and of batch-size-vs-measured work (the naive baseline), plus the raw
    sample pairs.
    """
    from repro.parallel.simulated import SimulatedRuntime

    sub = sub_factory()
    rt = SimulatedRuntime(thread_counts=(threads,))
    maintainer = ModMaintainer(sub, rt)
    structure = characterize_structure(sub, maintainer.kappa())

    preds: List[float] = []
    sizes: List[float] = []
    measured: List[float] = []
    for batch in batches_factory(sub):
        kappa = maintainer.kappa()
        pops: Dict[int, int] = {}
        for k in kappa.values():
            pops[k] = pops.get(k, 0) + 1
        profile = characterize_batch(sub, batch, kappa, pops)
        preds.append(predict_mod_cost(structure, profile))
        sizes.append(len(batch))
        rt.reset_clock()
        maintainer.apply_batch(batch)
        measured.append(rt.take_metrics().work_units)
    rho_pred = rank_correlation(preds, measured)
    rho_size = rank_correlation(sizes, measured)
    return rho_pred, rho_size, list(zip(preds, measured))
