"""Latency/throughput accounting (paper §I).

The introduction frames the design space with two metrics:

    "The goal of maintenance algorithms is to drive down the *latency* of
    a query, or the algorithm runtime for processing a single edge change.
    This typically comes at a cost of throughput, or the number of edge
    changes processed by the total runtime.  A sequential, single-edge
    maintenance algorithm typically has both a low latency and throughput,
    whereas re-computing from scratch will have both a high latency and
    throughput.  [Batch algorithms] provide a middle ground."

:func:`profile_algorithm` measures both coordinates for one algorithm and
batch size; :func:`tradeoff_report` lays several algorithms out on the
latency/throughput plane, reproducing the paper's qualitative 2x2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.maintainer import make_maintainer
from repro.core.static import hhc_local
from repro.eval.datasets import DATASETS
from repro.eval.stats import Stats
from repro.graph.batch import BatchProtocol
from repro.parallel.simulated import SimulatedRuntime

__all__ = ["AlgorithmProfile", "profile_algorithm", "profile_static", "tradeoff_report"]


@dataclass(frozen=True)
class AlgorithmProfile:
    """One point on the latency/throughput plane.

    latency:
        Seconds until a batch's changes are reflected in query answers
        (the batch's processing time).
    throughput:
        Changes applied per second of processing time.
    """

    label: str
    batch_size: int
    latency: Stats
    throughput: float

    def row(self) -> str:
        return (
            f"{self.label:>22} batch={self.batch_size:<6} "
            f"latency={self.latency.mean * 1e3:9.4f}ms "
            f"throughput={self.throughput:12.0f} changes/s"
        )


def profile_algorithm(
    dataset: str,
    algorithm: str,
    batch_size: int,
    *,
    rounds: int = 3,
    scale: float = 0.5,
    threads: int = 16,
    seed: int = 0,
    label: Optional[str] = None,
    maintainer_kwargs: Optional[dict] = None,
) -> AlgorithmProfile:
    """Measure one algorithm's latency and throughput at a batch size."""
    spec = DATASETS[dataset]
    sub = spec.load(scale, seed)
    rt = SimulatedRuntime(profile=spec.profile)
    maintainer = make_maintainer(sub, algorithm, rt, **(maintainer_kwargs or {}))
    proto = BatchProtocol(sub, seed=seed + 1)

    latencies = []
    changes_done = 0
    total_time = 0.0
    for _ in range(rounds):
        deletion, insertion = proto.remove_reinsert(batch_size)
        rt.reset_clock()
        maintainer.apply_batch(deletion)
        maintainer.apply_batch(insertion)
        secs = rt.take_metrics().elapsed_seconds(threads)
        latencies.append(secs)
        changes_done += len(deletion) + len(insertion)
        total_time += secs
    return AlgorithmProfile(
        label or f"{algorithm}", batch_size, Stats.of(latencies),
        changes_done / total_time if total_time else float("inf"),
    )


def profile_static(
    dataset: str,
    batch_size: int,
    *,
    rounds: int = 3,
    scale: float = 0.5,
    threads: int = 16,
    seed: int = 0,
) -> AlgorithmProfile:
    """The recompute-from-scratch point: every batch costs one full static
    decomposition (high latency *and* high throughput, per §I)."""
    spec = DATASETS[dataset]
    sub = spec.load(scale, seed)
    proto = BatchProtocol(sub, seed=seed + 1)
    latencies = []
    changes_done = 0
    total_time = 0.0
    for _ in range(rounds):
        deletion, insertion = proto.remove_reinsert(batch_size)
        for c in deletion:
            sub.apply(c)
        for c in insertion:
            sub.apply(c)
        rt = SimulatedRuntime(profile=spec.profile)
        hhc_local(sub, rt)
        secs = rt.take_metrics().elapsed_seconds(threads)
        latencies.append(secs)
        changes_done += len(deletion) + len(insertion)
        total_time += secs
    return AlgorithmProfile("static recompute", batch_size, Stats.of(latencies),
                            changes_done / total_time if total_time else 0.0)


def tradeoff_report(profiles: Sequence[AlgorithmProfile]) -> str:
    """Render the latency/throughput plane as text rows, best-latency
    first."""
    rows = sorted(profiles, key=lambda p: p.latency.mean)
    return "\n".join(p.row() for p in rows)
