"""Aggregate benchmark results into one report.

``pytest benchmarks/ --benchmark-only`` writes every regenerated table and
figure series under ``benchmarks/results/``; this module stitches them
into a single markdown document (``python -m repro.eval report``), in the
order of the paper's evaluation section, with an environment preamble --
the artefact to attach to a reproduction claim.
"""

from __future__ import annotations

import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional

__all__ = ["build_report", "DEFAULT_RESULTS_DIR", "SECTION_ORDER"]

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: result-file stems in the paper's presentation order
SECTION_ORDER = [
    ("table1", "Table I — graphs"),
    ("table1_profiles", "Table I — analogue core profiles"),
    ("table2", "Table II — hypergraphs"),
    ("table2_profiles", "Table II — analogue core profiles"),
    ("fig06_mod_insert_edges", "Figure 6 — mod, insertion-only edge batches"),
    ("fig07_setmb_insert_edges", "Figure 7 — setmb, insertion-only edge batches"),
    ("fig08_mod_insert_pins", "Figure 8 — mod, insertion-only pin batches"),
    ("fig09_mod_delete_edges", "Figure 9 — mod, deletion-only edge batches"),
    ("fig10_setmb_delete_edges", "Figure 10 — setmb, deletion-only edge batches"),
    ("fig11_mod_delete_pins", "Figure 11 — mod, deletion-only pin batches"),
    ("fig12_mod_mixed", "Figure 12 — mod, mixed batches"),
    ("latency_vs_static", "Maintenance vs. static recompute (§IV)"),
    ("scale_trend", "Improvement factor vs. dataset scale"),
    ("sustained_rate", "Sustained change rates (abstract claim)"),
    ("tradeoff_latency_throughput", "Latency/throughput plane (§I)"),
    ("characterization", "Graph & batch characterisation (§V-A future work)"),
    ("ablation_hybrid", "Ablation — hybrid routing (§VI)"),
    ("ablation_min_cache", "Ablation — cached hyperedge minimum (§IV-A)"),
    ("ablation_increment_policy", "Ablation — increment policy"),
    ("ablation_approx", "Ablation — approximate maintenance (§VI)"),
    ("distributed_exploration", "Distributed exploration (§VI)"),
    ("static_algorithms", "Static algorithm agreement"),
    ("resilience", "Resilience — supervised bursty stream with injected faults"),
]


def _environment() -> str:
    import repro

    return "\n".join([
        f"- generated: {datetime.now(timezone.utc).isoformat(timespec='seconds')}",
        f"- repro version: {repro.__version__}",
        f"- python: {sys.version.split()[0]} ({platform.platform()})",
        "- times are *simulated* shared-memory seconds (see DESIGN.md §1)",
    ])


def build_report(results_dir: Optional[Path] = None) -> str:
    """Assemble the markdown report from recorded result files."""
    results_dir = Path(results_dir) if results_dir else DEFAULT_RESULTS_DIR
    parts: List[str] = [
        "# Reproduced evaluation — benchmark report",
        "",
        _environment(),
        "",
    ]
    seen = set()
    missing: List[str] = []
    for stem, title in SECTION_ORDER:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        seen.add(path.name)
        parts.append(f"## {title}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text(encoding="utf-8").rstrip())
        parts.append("```")
        parts.append("")
    # anything recorded that the ordering does not know about yet
    extras = sorted(
        p for p in results_dir.glob("*.txt") if p.name not in seen
    ) if results_dir.exists() else []
    for path in extras:
        parts.append(f"## {path.stem}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text(encoding="utf-8").rstrip())
        parts.append("```")
        parts.append("")
    if missing:
        parts.append(
            "*(not yet recorded: " + ", ".join(missing)
            + " — run `pytest benchmarks/ --benchmark-only`)*"
        )
    return "\n".join(parts)
