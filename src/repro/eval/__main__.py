"""Command-line experiment runner: ``python -m repro.eval``.

Regenerates the paper's tables and figures without pytest:

    python -m repro.eval tables
    python -m repro.eval figure 6 --datasets LiveJ Google --scale 0.5
    python -m repro.eval figure 8 --rounds 5
    python -m repro.eval latency --algorithm setmb --datasets Google
    python -m repro.eval all

Figure numbers follow the paper: 6/7 insertion edges (mod/setmb), 8
insertion pins (mod), 9/10 deletion edges (mod/setmb), 11 deletion pins
(mod), 12 mixed (mod).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.eval.datasets import GRAPH_DATASETS, HYPERGRAPH_DATASETS
from repro.eval.harness import run_latency_vs_static, run_scalability
from repro.eval.tables import (
    format_latency_vs_static,
    format_scalability,
    format_speedups,
    format_table1,
    format_table2,
)

FIGURES = {
    6: ("mod", "insert", GRAPH_DATASETS, (100, 400, 1600)),
    7: ("setmb", "insert", GRAPH_DATASETS, (1, 8, 64)),
    8: ("mod", "insert", HYPERGRAPH_DATASETS, (100, 400, 1600)),
    9: ("mod", "delete", GRAPH_DATASETS, (100, 400, 1600)),
    10: ("setmb", "delete", GRAPH_DATASETS, (8, 64, 256)),
    11: ("mod", "delete", HYPERGRAPH_DATASETS, (50, 200, 800)),
    12: ("mod", "mixed", GRAPH_DATASETS, (100, 400, 1600)),
}


def _figure(number: int, datasets: Optional[Sequence[str]], scale: float,
            rounds: int) -> None:
    algorithm, direction, default_datasets, batch_sizes = FIGURES[number]
    for ds in datasets or default_datasets:
        result = run_scalability(
            ds, algorithm, direction=direction, batch_sizes=batch_sizes,
            rounds=rounds, scale=scale,
        )
        print(format_scalability(result))
        print(format_speedups(result))
        print()


def _latency(datasets: Optional[Sequence[str]], algorithm: str, scale: float,
             rounds: int) -> None:
    batch_sizes = (1, 4, 16) if algorithm in ("set", "setmb") else (64, 256, 1024)
    for ds in datasets or GRAPH_DATASETS[:2]:
        result = run_latency_vs_static(ds, algorithm, batch_sizes=batch_sizes,
                                       rounds=rounds, scale=scale)
        print(format_latency_vs_static(result, 1))
        print()


def main(argv: Optional[List[str]] = None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor (default 0.5)")
    common.add_argument("--rounds", type=int, default=3,
                        help="repetitions per point (paper: 50; default 3)")
    common.add_argument("--datasets", nargs="*", default=None,
                        help="dataset names (default: the figure's own)")

    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", parents=[common], help="Tables I and II")

    fig = sub.add_parser("figure", parents=[common],
                         help="one scalability figure (6-12)")
    fig.add_argument("number", type=int, choices=sorted(FIGURES))

    lat = sub.add_parser("latency", parents=[common],
                         help="maintenance vs static recompute")
    lat.add_argument("--algorithm", default="setmb",
                     choices=["mod", "set", "setmb", "hybrid"])

    sub.add_parser("all", parents=[common],
                   help="tables plus every figure (slow)")

    rep = sub.add_parser("report",
                         help="assemble benchmarks/results/ into markdown")
    rep.add_argument("--results-dir", default=None)
    rep.add_argument("--output", default=None,
                     help="write to a file instead of stdout")

    args = parser.parse_args(argv)

    if args.command == "tables":
        print(format_table1(scale=args.scale))
        print()
        print(format_table2(scale=args.scale))
    elif args.command == "figure":
        _figure(args.number, args.datasets, args.scale, args.rounds)
    elif args.command == "latency":
        _latency(args.datasets, args.algorithm, args.scale, args.rounds)
    elif args.command == "report":
        from repro.eval.report import build_report

        text = build_report(args.results_dir)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(text, encoding="utf-8")
            print(f"wrote {args.output}")
        else:
            print(text)
    elif args.command == "all":
        print(format_table1(scale=args.scale))
        print()
        print(format_table2(scale=args.scale))
        print()
        for number in sorted(FIGURES):
            print(f"==== Figure {number} ====")
            _figure(number, args.datasets, args.scale, args.rounds)
    return 0


if __name__ == "__main__":
    sys.exit(main())
