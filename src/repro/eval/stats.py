"""Sample statistics for the experiment harness.

The paper reports means with one-standard-deviation error bars over 50
remove/reinsert repetitions (Section V-A); :class:`Stats` carries exactly
those plus the spread diagnostics used for the variance observations
(setmb's "high outliers that significantly increase the average",
Section V-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Stats"]


@dataclass(frozen=True)
class Stats:
    """Summary of a sample of runtimes (seconds)."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "Stats":
        xs: List[float] = sorted(samples)
        n = len(xs)
        if n == 0:
            raise ValueError("no samples")
        mean = sum(xs) / n
        var = sum((x - mean) ** 2 for x in xs) / n if n > 1 else 0.0
        mid = n // 2
        median = xs[mid] if n % 2 else 0.5 * (xs[mid - 1] + xs[mid])
        return cls(n, mean, math.sqrt(var), xs[0], xs[-1], median)

    @property
    def cv(self) -> float:
        """Coefficient of variation: the harness's variance metric."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def tail_ratio(self) -> float:
        """max / median: how heavy the latency tail is."""
        return self.maximum / self.median if self.median else 0.0

    def format(self, unit: float = 1e3, digits: int = 3) -> str:
        """``mean±std`` in the given unit (default milliseconds)."""
        return f"{self.mean * unit:.{digits}f}±{self.std * unit:.{digits}f}"

    def __str__(self) -> str:
        return self.format()
