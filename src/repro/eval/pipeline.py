"""Stream pipelines: arrival processes, queueing, and sustainable rates.

The paper's central story (§I, §II-C): "Large batches naturally occur when
the arrival of graph changes is faster than the latency of processing the
prior batch", and the abstract's headline is algorithms that scale "while
sustaining high change rates".  This module closes the loop between the
simulated processing times and an explicit arrival process:

* :class:`StreamPipeline` -- a single-server queue in simulated time.
  Changes arrive on a clock; while a batch is being processed, newly
  arrived changes accumulate; when the maintainer finishes, everything
  queued becomes the next batch.  Batch sizes therefore *emerge* from the
  race between arrival rate and processing latency -- exactly the paper's
  mechanism -- instead of being fixed by the experimenter.

* :func:`max_sustainable_rate` -- binary-searches the largest arrival rate
  (changes/second) a maintainer sustains with bounded queues at a given
  simulated thread count.  Because ``mod``'s batch cost is nearly flat in
  batch size (§V-B), its utilisation *falls* as batches grow, giving it a
  dramatically higher saturation rate than per-change processing -- the
  quantitative form of the paper's claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.backend import wrap_substrate
from repro.core.maintainer import make_maintainer
from repro.eval.datasets import DATASETS
from repro.eval.stats import Stats
from repro.graph.batch import Batch, BatchProtocol
from repro.parallel.simulated import SimulatedRuntime

__all__ = ["PipelineResult", "StreamPipeline", "max_sustainable_rate"]


@dataclass
class PipelineResult:
    """Outcome of one pipeline run."""

    changes_offered: int
    changes_processed: int
    batches: int
    sim_duration: float  # seconds of simulated stream time
    busy_time: float     # seconds the maintainer was processing
    batch_sizes: List[int] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)  # arrival -> completion
    final_queue: int = 0

    @property
    def utilisation(self) -> float:
        return self.busy_time / self.sim_duration if self.sim_duration else 0.0

    @property
    def stable(self) -> bool:
        """Did batch sizes stay bounded?

        A batch server is perfectly happy at utilisation 1.0: while one
        batch processes, the next accumulates, and the system is stable
        as long as the emergent batch sizes *converge* (which they do iff
        arrival_rate x marginal-cost-per-change < 1).  Instability shows
        up as batch sizes growing monotonically through the run.
        """
        sizes = self.batch_sizes
        if len(sizes) < 6:
            # too few batches to judge growth: fall back to the queue tail
            return self.final_queue == 0 and (
                max(sizes, default=0) < max(16, self.changes_offered // 4)
            )
        third = max(2, len(sizes) // 3)
        early = sum(sizes[:third]) / third
        late = sum(sizes[-third:]) / third
        return late <= 2.0 * early + 8 and max(sizes) < self.changes_offered // 2

    def latency_stats(self) -> Stats:
        return Stats.of(self.latencies) if self.latencies else Stats.of([0.0])

    def mean_batch(self) -> float:
        return sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0


class StreamPipeline:
    """Single-server change-processing queue in simulated time.

    Parameters
    ----------
    maintainer:
        Any maintainer bound to a :class:`SimulatedRuntime`.
    rt:
        That runtime (the pipeline reads batch processing times from it).
    threads:
        Simulated thread count used for processing times.
    """

    def __init__(self, maintainer, rt: SimulatedRuntime, threads: int) -> None:
        self.maintainer = maintainer
        self.rt = rt
        self.threads = threads

    def run(self, arrivals: Sequence[Tuple[float, object]],
            *, max_batch: Optional[int] = None) -> PipelineResult:
        """Play a time-stamped change sequence through the queue.

        ``arrivals`` is a list of ``(time_seconds, Change)`` in
        non-decreasing time order.  Returns queueing metrics; simulated
        duration runs to the completion of the last batch.
        """
        result = PipelineResult(
            changes_offered=len(arrivals), changes_processed=0,
            batches=0, sim_duration=0.0, busy_time=0.0,
        )
        clock = 0.0
        i = 0
        queue: List[Tuple[float, object]] = []
        n = len(arrivals)
        while i < n or queue:
            # absorb everything that has arrived by now
            while i < n and arrivals[i][0] <= clock:
                queue.append(arrivals[i])
                i += 1
            if not queue:
                clock = arrivals[i][0]
                continue
            take = queue if max_batch is None else queue[:max_batch]
            batch = Batch([c for _, c in take])
            self.rt.reset_clock()
            self.maintainer.apply_batch(batch)
            elapsed = self.rt.take_metrics().elapsed_seconds(self.threads)
            clock += elapsed
            result.busy_time += elapsed
            result.batches += 1
            result.batch_sizes.append(len(take))
            result.changes_processed += len(take)
            result.latencies.extend(clock - t_arr for t_arr, _ in take)
            del queue[:len(take)]
        result.sim_duration = clock
        result.final_queue = len(queue)
        return result


def _poisson_arrivals(changes, rate: float, rng: random.Random
                      ) -> List[Tuple[float, object]]:
    t = 0.0
    out = []
    for c in changes:
        t += rng.expovariate(rate)
        out.append((t, c))
    return out


def max_sustainable_rate(
    dataset: str,
    algorithm: str,
    *,
    threads: int = 16,
    scale: float = 0.5,
    n_changes: int = 2000,
    seed: int = 0,
    rate_bounds: Tuple[float, float] = (1e2, 1e9),
    iterations: int = 12,
    engine: str = "auto",
    maintainer_kwargs: Optional[dict] = None,
) -> Tuple[float, PipelineResult]:
    """Binary-search the saturation change rate (changes/second).

    The change stream is a Poisson process over remove/reinsert protocol
    units; a rate is *sustained* when the pipeline finishes with bounded
    queues and utilisation below 1.  Returns ``(rate, result_at_rate)``.
    ``engine`` selects the execution path as in
    :func:`~repro.eval.harness.run_scalability`.
    """
    spec = DATASETS[dataset]

    def attempt(rate: float) -> PipelineResult:
        sub = wrap_substrate(spec.load(scale, seed), engine)
        rt = SimulatedRuntime(profile=spec.profile)
        maintainer = make_maintainer(sub, algorithm, rt, engine=engine,
                                     **(maintainer_kwargs or {}))
        proto = BatchProtocol(sub, seed=seed + 1)
        changes: List[object] = []
        while len(changes) < n_changes:
            deletion, insertion = proto.remove_reinsert(50)
            # interleave so the stream stays applicable in order
            changes.extend(deletion.changes)
            changes.extend(insertion.changes)
        rng = random.Random(seed + 2)
        arrivals = _poisson_arrivals(changes[:n_changes], rate, rng)
        return StreamPipeline(maintainer, rt, threads).run(arrivals)

    lo, hi = rate_bounds
    best_rate, best_result = lo, attempt(lo)
    if not best_result.stable:
        return 0.0, best_result
    for _ in range(iterations):
        mid = (lo * hi) ** 0.5  # geometric: rates span decades
        res = attempt(mid)
        if res.stable:
            best_rate, best_result = mid, res
            lo = mid
        else:
            hi = mid
        if hi / lo < 1.15:
            break
    return best_rate, best_result
