"""Distributed k-core computation and maintenance (§VI exploration).

The paper closes with: "implementing these algorithms in distributed
systems to further explore scalability."  The h-index/coreness connection
the paper builds on was in fact *born* distributed (Montresor et al. [23]):
each vertex only ever needs its neighbours' current values, so the
algorithm maps directly onto value-update message passing.

This subpackage provides that exploration on a simulated cluster:

* :mod:`repro.distributed.cluster` -- a deterministic BSP (Pregel-style)
  cluster: vertices are partitioned across nodes, supersteps alternate
  local compute and value-update message exchange, and a declarative
  :class:`ClusterSpec` prices compute, per-message overhead and network
  latency so elapsed time, message volume and load balance can be studied
  as the node count grows.
* :mod:`repro.distributed.partition` -- hash and degree-balanced
  partitioners.
* :mod:`repro.distributed.core` -- the distributed static h-index
  computation (the [23] algorithm, hypergraph-extended like Algorithm 2)
  and a distributed ``mod`` maintainer: batch changes are applied
  everywhere, per-level insertion/deletion records are combined with one
  all-reduce, increments are applied to owned vertices, and convergence
  proceeds by supersteps.

Structure is replicated, values are partitioned -- the standard setting
for analysing this algorithm family, where all traffic is value updates.
"""

from repro.distributed.cluster import ClusterMetrics, ClusterSpec, SimulatedCluster
from repro.distributed.core import DistributedHIndex, DistributedModMaintainer
from repro.distributed.partition import degree_balanced_partition, hash_partition

__all__ = [
    "ClusterMetrics",
    "ClusterSpec",
    "DistributedHIndex",
    "DistributedModMaintainer",
    "SimulatedCluster",
    "degree_balanced_partition",
    "hash_partition",
]
