"""Sharded distributed k-core computation and maintenance (§VI).

The paper closes with: "implementing these algorithms in distributed
systems to further explore scalability."  The h-index/coreness connection
the paper builds on was in fact *born* distributed (Montresor et al. [23]):
each vertex only ever needs its neighbours' current values, so the
algorithm maps directly onto value-update message passing -- and mod's
order-free increments confine cross-partition traffic to boundary
vertices, which is the locality argument this subpackage tests.

* :mod:`repro.distributed.cluster` -- a deterministic BSP (Pregel-style)
  cluster simulation: supersteps alternate local compute and message
  exchange, and a declarative :class:`ClusterSpec` prices compute,
  per-message overhead, payload **bytes** and network latency so elapsed
  time, boundary traffic and load balance can be studied as node count
  grows.
* :mod:`repro.distributed.partition` -- hash, degree-balanced and
  edge-cut (LDG) partitioners, the stable :func:`owner_of` rule for
  vertices interned after partitioning, and :func:`partition_stats`
  (edge-cut fraction / replication factor / load balance).
* :mod:`repro.engine.shard` -- :class:`~repro.engine.shard.ShardSubstrate`:
  one node's owned vertices plus the ghost/halo ring over a real
  (dict or array) substrate, and the :class:`~repro.engine.shard.HaloDelta`
  boundary wire format.
* :mod:`repro.distributed.core` -- :class:`DistributedHIndex` (the [23]
  computation over shards, delta-only boundary messages) and
  :class:`DistributedModMaintainer` (routed batches, shard-local
  classification, one all-reduce, communication-free increments,
  delta-exchanging convergence supersteps).

Structure is *sharded* and values are partitioned: no node holds a
whole-graph replica, per-node memory is owned + boundary, and
steady-state traffic is proportional to the partition's edge cut.
"""

from repro.distributed.cluster import (
    ITEM_BYTES,
    ClusterMetrics,
    ClusterSpec,
    SimulatedCluster,
)
from repro.distributed.core import DistributedHIndex, DistributedModMaintainer
from repro.distributed.partition import (
    PARTITIONERS,
    PartitionStats,
    degree_balanced_partition,
    edge_cut_partition,
    hash_partition,
    owner_of,
    partition_counts,
    partition_stats,
)
from repro.engine.shard import (
    HaloDelta,
    ShardSubstrate,
    build_shards,
    initial_halo_exports,
)

__all__ = [
    "ITEM_BYTES",
    "ClusterMetrics",
    "ClusterSpec",
    "DistributedHIndex",
    "DistributedModMaintainer",
    "HaloDelta",
    "PARTITIONERS",
    "PartitionStats",
    "ShardSubstrate",
    "SimulatedCluster",
    "build_shards",
    "degree_balanced_partition",
    "edge_cut_partition",
    "hash_partition",
    "initial_halo_exports",
    "owner_of",
    "partition_counts",
    "partition_stats",
]
