"""Sharded distributed h-index computation and mod-style maintenance.

Each cluster node owns a genuine **shard** -- a
:class:`~repro.engine.shard.ShardSubstrate` holding only its owned
vertices plus the ghost/halo ring of boundary neighbours -- and the
protocol exchanges *delta-only* boundary messages.  No node holds a
whole-graph replica, and no node keeps value replicas beyond its halo:

* :class:`DistributedHIndex` -- the [23]-style distributed coreness
  computation, hypergraph-extended exactly like Algorithm 2.  Every node
  recomputes its active owned vertices each superstep from shard-local
  structure (an owned vertex's incident units are all present, so
  recomputation never needs the wire) reading neighbour values from the
  halo, then ships one :class:`~repro.engine.shard.HaloDelta` per
  destination: the changed ``(vertex, tau)`` pairs for nodes holding
  those vertices as ghosts.  Halos are stale by at most one superstep --
  precisely the asynchronous-read model Algorithm 1 permits, so
  convergence to kappa carries over.

* :class:`DistributedModMaintainer` -- the ``mod`` batch pipeline on the
  cluster.  A batch is *routed*: each unit goes only to the shards that
  host it (a graph edge to its two endpoint owners; a hyperedge change
  to the nodes owning at least one pin).  Each pin change is classified
  once, by the owner of its changed vertex, against shard-local values;
  the per-level I/D records are combined with one all-reduce; and
  because the resolved increments are a deterministic function of the
  combined records, every node applies them to owned values *and* halo
  values with no further traffic -- the communication-free increment
  phase is the distributed payoff of mod's order-free design.
  Convergence then runs as delta-exchanging h-index supersteps.

The paper's locality argument lands here: steady-state boundary traffic
is proportional to the *edge cut* of the partition (cut units whose
values actually changed), never to ``|V|``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Optional, Set

from repro.core.mod import resolve_paper, resolve_safe
from repro.core.pin_cases import classify_delete, classify_insert
from repro.distributed.cluster import ClusterSpec, SimulatedCluster
from repro.distributed.partition import PARTITIONERS, owner_of
from repro.engine.shard import HaloDelta, ShardSubstrate, build_shards, initial_halo_exports
from repro.graph.substrate import Change
from repro.structures.hindex import h_index_counting
from repro.structures.level_accumulator import LevelAccumulator

__all__ = ["DistributedHIndex", "DistributedModMaintainer"]

Vertex = Hashable

#: wire size of one routed batch row: two int64 columns + direction flag
ROW_BYTES = 17


class DistributedHIndex:
    """Distributed static/continued h-index convergence over shards.

    Parameters
    ----------
    sub:
        Graph or hypergraph -- read once at construction to cut the
        shards, **not retained**: the shards are the only structural
        state this object keeps.
    spec:
        Cluster cost parameters.
    partition:
        Vertex -> node map; defaults to ``PARTITIONERS[partitioner]``.
    partitioner:
        Named partitioning strategy (``hash`` / ``degree_balanced`` /
        ``edge_cut``) used when no explicit partition is given.
    backend:
        Per-shard substrate engine: ``"dict"`` (DynamicGraph /
        DynamicHypergraph) or ``"array"`` (ArrayGraph / ArrayHypergraph).
    """

    def __init__(self, sub, spec: ClusterSpec,
                 partition: Optional[Dict[Vertex, int]] = None, *,
                 partitioner: str = "hash", backend: str = "dict") -> None:
        self.cluster = SimulatedCluster(spec)
        self.nodes = spec.nodes
        if partition is None:
            partition = PARTITIONERS[partitioner](sub, spec.nodes)
        self.partition = partition
        self.shards: List[ShardSubstrate] = build_shards(
            sub, self.owner, spec.nodes, backend=backend)
        self.active: List[Set[Vertex]] = [set() for _ in range(spec.nodes)]
        self._initial_halo_exchange()

    # -- ownership ------------------------------------------------------------
    def owner(self, v: Vertex) -> int:
        return owner_of(self.partition, v, self.nodes)

    # -- value views -----------------------------------------------------------
    def value_at(self, node: int, v: Vertex) -> int:
        """Node-local view of tau(v) (authoritative or halo)."""
        return self.shards[node].value_of(v)

    def tau(self) -> Dict[Vertex, int]:
        """The authoritative (owner-side) values, gathered for the caller."""
        out: Dict[Vertex, int] = {}
        for shard in self.shards:
            out.update(shard.tau)
        return out

    def tau_of(self, v: Vertex) -> int:
        """Point read at the owner (no global gather)."""
        return self.shards[self.owner(v)].tau.get(v, 0)

    # -- activation --------------------------------------------------------------
    def activate(self, v: Vertex) -> None:
        node = self.owner(v)
        if self.shards[node].local.has_vertex(v):
            self.active[node].add(v)

    def activate_all(self) -> None:
        for node, shard in enumerate(self.shards):
            self.active[node].update(shard.tau)

    # -- the initial boundary exchange -------------------------------------------
    def _initial_halo_exchange(self) -> None:
        """Seed ghost halos with one boundary-sized message per (src, dst)
        pair: each owner ships its boundary vertices' values to the nodes
        holding them as ghosts.  Replaces whole-value-map replication --
        total volume is the ghost-copy count, not ``nodes * |V|``.  The
        deltas land in next-superstep inboxes and are absorbed by the
        first :meth:`run` superstep."""
        cluster = self.cluster
        cluster.begin_superstep()
        for node, shard in enumerate(self.shards):
            exports = initial_halo_exports(shard)
            for dst, delta in exports.items():
                cluster.send(node, dst, delta,
                             items=len(delta), nbytes=delta.nbytes)
            cluster.charge(node, len(shard.tau))
        cluster.end_superstep()

    # -- the superstep loop ----------------------------------------------------------
    def _recompute(self, node: int, shard: ShardSubstrate, v: Vertex) -> int:
        local = shard.local
        value_of = shard.value_of
        L: List[float] = []
        work = 0
        for e in local.incident(v):
            m: float = math.inf
            for w in local.pins(e):
                if w != v:
                    work += 1
                    t = value_of(w)
                    if t < m:
                        m = t
            L.append(m)
        self.cluster.charge(node, work + len(L))
        return h_index_counting(L)

    def run(self, max_supersteps: Optional[int] = None,
            on_superstep: Optional[Callable[["DistributedHIndex"], None]] = None,
            ) -> Dict[Vertex, int]:
        """Supersteps until quiescence; returns the converged values.

        ``on_superstep`` (if given) is called after every completed
        superstep -- the halo-staleness audits hook in here.
        """
        cluster = self.cluster
        steps = 0
        while any(self.active) or cluster.any_pending():
            steps += 1
            if max_supersteps is not None and steps > max_supersteps:
                break
            cluster.begin_superstep()
            stamp = cluster.metrics.supersteps
            for node in range(cluster.nodes):
                shard = self.shards[node]
                active = self.active[node]
                # 1. absorb boundary deltas, activating owned neighbours
                for delta in cluster.inbox(node):
                    cluster.charge(node, len(delta))
                    for v in shard.import_delta(delta, stamp=stamp):
                        for w in shard.local.neighbors(v):
                            if shard.is_owned(w):
                                active.add(w)
                # 2. recompute active owned vertices from the shard
                worklist = [v for v in active if shard.local.has_vertex(v)]
                active = self.active[node] = set()
                outgoing: Dict[int, List] = {}
                for v in worklist:
                    new = self._recompute(node, shard, v)
                    if new != shard.tau.get(v):
                        shard.tau[v] = new
                        # self-reactivation plus owned-neighbour activation;
                        # foreign neighbours' owners get the delta
                        active.add(v)
                        dests = set()
                        for w in shard.local.neighbors(v):
                            dst = self.owner(w)
                            if dst == node:
                                active.add(w)
                            else:
                                dests.add(dst)
                        for dst in dests:
                            outgoing.setdefault(dst, []).append((v, new))
                # 3. delta-only boundary messages: one per destination
                for dst in sorted(outgoing):
                    delta = HaloDelta.pack(outgoing[dst])
                    cluster.send(node, dst, delta,
                                 items=len(delta), nbytes=delta.nbytes)
            cluster.end_superstep()
            if on_superstep is not None:
                on_superstep(self)
        return self.tau()

    # -- accounting ----------------------------------------------------------
    def shard_footprints(self) -> List[Dict[str, int]]:
        return [shard.footprint() for shard in self.shards]


class DistributedModMaintainer:
    """Batch k-core maintenance over sharded substrates (mod pipeline).

    The construction substrate is read once to cut shards (and, for
    hypergraphs, to seed the router's edge->hosts directory) and then
    dropped; batches are routed to the shards hosting each unit.
    """

    def __init__(self, sub, spec: ClusterSpec,
                 partition: Optional[Dict[Vertex, int]] = None, *,
                 partitioner: str = "hash", backend: str = "dict",
                 increment_policy: str = "paper") -> None:
        self.engine = DistributedHIndex(
            sub, spec, partition, partitioner=partitioner, backend=backend)
        self.is_hyper = bool(getattr(sub, "is_hypergraph", False))
        #: router-side directory (hypergraphs only): hyperedge -> host
        #: nodes.  Pure routing metadata -- node ids, no structure.
        self._edge_hosts: Dict[object, Set[int]] = {}
        if self.is_hyper:
            owner = self.engine.owner
            for e, pins in sub.hyperedges():
                self._edge_hosts[e] = {owner(p) for p in pins}
        self.increment_policy = increment_policy
        self.batches_processed = 0
        #: metric deltas of the most recent apply_batch (traffic contracts)
        self.last_batch_stats: Dict[str, float] = {}
        # initial convergence from degrees (the static computation)
        self.engine.activate_all()
        self.engine.run()

    @property
    def cluster(self) -> SimulatedCluster:
        return self.engine.cluster

    @property
    def shards(self) -> List[ShardSubstrate]:
        return self.engine.shards

    def kappa(self) -> Dict[Vertex, int]:
        return self.engine.tau()

    def kappa_of(self, v: Vertex) -> int:
        return self.engine.tau_of(v)

    def shard_footprints(self) -> List[Dict[str, int]]:
        return self.engine.shard_footprints()

    # -- batch routing -----------------------------------------------------------
    def _route_columnar(self, batch) -> Optional[List[int]]:
        """Owner-keyed split of a :class:`ColumnarBatch` into per-shard
        sub-batches; returns per-node routed row counts (ingress sizes).
        Falls through to per-change counting for non-columnar batches."""
        from repro.graph.columnar import ColumnarBatch

        if not isinstance(batch, ColumnarBatch):
            return None
        owner = self.engine.owner
        hosts = None
        if self.is_hyper:
            edge_hosts = self._edge_hosts

            def hosts(e):  # noqa: F811 - deliberate rebind
                return edge_hosts.get(e, ())

        parts = batch.split_by_owner(owner, self.engine.nodes, edge_hosts=hosts)
        counts = [0] * self.engine.nodes
        for node, part in parts.items():
            counts[node] = len(part)
        return counts

    # -- the batch pipeline ------------------------------------------------------
    def apply_batch(self, batch) -> None:
        engine = self.engine
        cluster = engine.cluster
        shards = engine.shards
        owner = engine.owner
        before = cluster.metrics.snapshot()

        per_node_records = [0] * cluster.nodes
        I = LevelAccumulator()
        D = LevelAccumulator()
        touched: Set[Vertex] = set()
        ingress_rows = self._route_columnar(batch)
        count_rows = ingress_rows is None
        if count_rows:
            ingress_rows = [0] * cluster.nodes

        # hyperedges created by this batch (batch-start membership, per
        # the mod pipeline's edge_is_new contract)
        new_edges: Set[object] = set()
        if self.is_hyper:
            for change in batch:
                if change.insert and change.edge not in self._edge_hosts:
                    new_edges.add(change.edge)

        cluster.begin_superstep()
        stamp = cluster.metrics.supersteps
        for change in batch:
            if self.is_hyper:
                self._apply_hyper_change(change, new_edges, stamp, touched,
                                         per_node_records, I, D,
                                         ingress_rows if count_rows else None)
            else:
                self._apply_graph_change(change, stamp, touched,
                                         per_node_records, I, D,
                                         ingress_rows if count_rows else None)
        # the router's sub-batch messages, one per non-empty destination
        for node, rows in enumerate(ingress_rows):
            if rows:
                cluster.ingress(node, items=rows, nbytes=rows * ROW_BYTES)
        cluster.end_superstep()

        # one all-reduce combines every node's records; the resolution is
        # then a deterministic pure function every node evaluates locally
        cluster.allreduce_merge(per_node_records)
        resolve = resolve_paper if self.increment_policy == "paper" else resolve_safe
        resolution = resolve(I, D)

        # communication-free increment phase: owned values and the halo
        # ring move by the same deterministic rule on every node
        cluster.begin_superstep()
        for node in range(cluster.nodes):
            shard = shards[node]
            for v, val in list(shard.tau.items()):
                inc = resolution.increment(val)
                cluster.charge(node, 1)
                if inc > 0:
                    shard.tau[v] = val + inc
                    engine.active[node].add(v)
                elif resolution.should_activate(val):
                    engine.active[node].add(v)
            for v, val in list(shard.halo.items()):
                inc = resolution.increment(val)
                cluster.charge(node, 1)
                if inc > 0:
                    shard.halo[v] = val + inc
        cluster.end_superstep()

        for v in touched:
            engine.activate(v)
        engine.run()
        self.batches_processed += 1
        after = cluster.metrics.snapshot()
        self.last_batch_stats = {k: after[k] - before[k] for k in after}

    # -- graph units -------------------------------------------------------------
    def _apply_graph_change(self, change: Change, stamp: int,
                            touched: Set[Vertex], per_node_records: List[int],
                            I: LevelAccumulator, D: LevelAccumulator,
                            ingress_rows: Optional[List[int]]) -> None:
        engine = self.engine
        cluster = engine.cluster
        shards = engine.shards
        u, w = change.edge
        nu, nw = engine.owner(u), engine.owner(w)
        dests = {nu, nw}
        pins_ctx = (u, w)
        endpoint_owners = ((u, nu), (w, nw))

        if change.insert:
            if shards[nu].local.has_edge(change.edge):
                return  # already present, or the twin pin record
            if ingress_rows is not None:
                for n in dests:
                    ingress_rows[n] += 1
            for n in dests:
                shards[n].local.add_edge(u, w)
            # register values; a ghost new to a shard gets its tau shipped
            # by the owner (one item over the wire per crossing endpoint)
            for p, pn in endpoint_owners:
                shards[pn].register(p)
                for n in dests - {pn}:
                    sh = shards[n]
                    if not sh.is_owned(p) and p not in sh.halo:
                        sh.set_halo(p, shards[pn].tau.get(p, 0), stamp=stamp)
                        cluster.charge_message(pn, n, items=1)
            # each pin record classified once, by its owner, shard-locally
            for p, pn in endpoint_owners:
                res = classify_insert(
                    shards[pn].values(), Change(change.edge, p, True),
                    pins_ctx, edge_is_new=True)
                cluster.charge(pn, len(pins_ctx))
                per_node_records[pn] += len(res.inserts) + len(res.deletes)
                for lvl, cnt in res.inserts:
                    I.add(lvl, cnt)
                for lvl, cnt in res.deletes:
                    D.add(lvl, cnt)
            touched.update(pins_ctx)
        else:
            if not shards[nu].local.has_edge(change.edge):
                return  # absent, or the twin pin record
            if ingress_rows is not None:
                for n in dests:
                    ingress_rows[n] += 1
            for n in dests:
                shards[n].local.remove_edge(u, w)
            for p, pn in endpoint_owners:
                res = classify_delete(
                    shards[pn].values(), Change(change.edge, p, False), pins_ctx)
                cluster.charge(pn, len(pins_ctx))
                per_node_records[pn] += len(res.inserts) + len(res.deletes)
                for lvl, cnt in res.inserts:
                    I.add(lvl, cnt)
                for lvl, cnt in res.deletes:
                    D.add(lvl, cnt)
            touched.update(pins_ctx)
            for n in dests:
                shards[n].gc(pins_ctx)
            for p, pn in endpoint_owners:
                if not shards[pn].local.has_vertex(p):
                    touched.discard(p)  # globally dead

    # -- hypergraph units ----------------------------------------------------------
    def _apply_hyper_change(self, change: Change, new_edges: Set[object],
                            stamp: int, touched: Set[Vertex],
                            per_node_records: List[int],
                            I: LevelAccumulator, D: LevelAccumulator,
                            ingress_rows: Optional[List[int]]) -> None:
        engine = self.engine
        cluster = engine.cluster
        shards = engine.shards
        owner = engine.owner
        e, v = change.edge, change.vertex
        nv = owner(v)
        hosts = self._edge_hosts.get(e)

        if change.insert:
            if hosts and shards[min(hosts)].local.has_pin(e, v):
                return  # duplicate pin insert
            if hosts is None:
                hosts = self._edge_hosts[e] = set()
            if hosts and nv not in hosts:
                # owner(v) becomes a host: one existing host ships the
                # full pin set with its (exact, quiescent) value view
                src = min(hosts)
                src_shard = shards[src]
                dst_shard = shards[nv]
                prior = tuple(src_shard.local.pins(e))
                for p in prior:
                    dst_shard.local.add_pin(e, p)
                    if not dst_shard.is_owned(p) and p not in dst_shard.halo:
                        dst_shard.set_halo(p, src_shard.value_of(p), stamp=stamp)
                cluster.charge_message(src, nv, items=2 * len(prior))
            hosts.add(nv)
            if ingress_rows is not None:
                for n in hosts:
                    ingress_rows[n] += 1
            for n in hosts:
                shards[n].local.add_pin(e, v)
            shards[nv].register(v)
            v_val = shards[nv].tau.get(v, 0)
            for n in hosts:
                if n == nv:
                    continue
                sh = shards[n]
                if v not in sh.halo:
                    sh.set_halo(v, v_val, stamp=stamp)
                    cluster.charge_message(nv, n, items=1)
            pins_ctx = tuple(shards[nv].local.pins(e))
            res = classify_insert(shards[nv].values(), change, pins_ctx,
                                  edge_is_new=e in new_edges)
            cluster.charge(nv, len(pins_ctx))
            per_node_records[nv] += len(res.inserts) + len(res.deletes)
            for lvl, cnt in res.inserts:
                I.add(lvl, cnt)
            for lvl, cnt in res.deletes:
                D.add(lvl, cnt)
            touched.update(pins_ctx)
        else:
            if not hosts or not shards[nv].local.has_pin(e, v):
                return
            if ingress_rows is not None:
                for n in hosts:
                    ingress_rows[n] += 1
            pins_ctx = tuple(shards[nv].local.pins(e))
            res = classify_delete(shards[nv].values(), change, pins_ctx)
            cluster.charge(nv, len(pins_ctx))
            per_node_records[nv] += len(res.inserts) + len(res.deletes)
            for lvl, cnt in res.inserts:
                I.add(lvl, cnt)
            for lvl, cnt in res.deletes:
                D.add(lvl, cnt)
            involved = set(hosts)
            for n in hosts:
                shards[n].local.remove_pin(e, v)
            touched.update(pins_ctx)
            remaining = tuple(p for p in pins_ctx if p != v)
            if not remaining:
                del self._edge_hosts[e]
            elif nv not in {owner(p) for p in remaining}:
                # owner(v) lost its last owned pin of e: the whole edge
                # (and any ghosts it alone supported) leaves that shard
                sh = shards[nv]
                if sh.local.has_edge(e):
                    for p in tuple(sh.local.pins(e)):
                        sh.local.remove_pin(e, p)
                hosts.discard(nv)
            for n in involved:
                shards[n].gc(pins_ctx)
            for p in pins_ctx:
                if not shards[owner(p)].local.has_vertex(p):
                    touched.discard(p)  # globally dead
