"""Distributed h-index computation and mod-style maintenance.

Faithful BSP renditions of the paper's algorithm family:

* :class:`DistributedHIndex` -- the [23]-style distributed coreness
  computation, extended to hypergraphs exactly like Algorithm 2: every
  node owns a vertex partition, keeps *replicas* of remote values it has
  heard about (initially degrees), recomputes its active owned vertices
  each superstep, and broadcasts changed values to the owner nodes of the
  affected neighbours.  Replicas are stale by at most one superstep --
  precisely the asynchronous-read model Algorithm 1 permits, so
  convergence to kappa carries over.

* :class:`DistributedModMaintainer` -- the ``mod`` batch pipeline on the
  cluster.  Structure is replicated, so every node applies the batch; each
  *pin change* is classified once, by the owner of its changed vertex;
  the per-level I/D records are combined with one all-reduce; and because
  the resolved increments are a deterministic function of the combined
  records, every node applies them redundantly to owned values *and*
  replicas with no further traffic -- the communication-free increment
  phase is the distributed payoff of mod's order-free design.  Convergence
  then runs as h-index supersteps.

Both classes expose the cluster's :class:`ClusterMetrics`, which the §VI
exploration benchmark sweeps over node counts.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set

from repro.core.mod import resolve_paper, resolve_safe
from repro.core.pin_cases import classify_delete, classify_insert
from repro.distributed.cluster import ClusterSpec, SimulatedCluster
from repro.distributed.partition import hash_partition
from repro.structures.hindex import h_index_counting
from repro.structures.level_accumulator import LevelAccumulator

__all__ = ["DistributedHIndex", "DistributedModMaintainer"]

Vertex = Hashable


class DistributedHIndex:
    """Distributed static/continued h-index convergence over a substrate.

    Parameters
    ----------
    sub:
        Graph or hypergraph (structure treated as replicated).
    spec:
        Cluster cost parameters.
    partition:
        Vertex -> node map; defaults to hash partitioning.
    """

    def __init__(self, sub, spec: ClusterSpec,
                 partition: Optional[Dict[Vertex, int]] = None) -> None:
        self.sub = sub
        self.cluster = SimulatedCluster(spec)
        self.partition = partition if partition is not None else hash_partition(sub, spec.nodes)
        n = spec.nodes
        # node-local views: owned values and replicas of remote values
        self.local: List[Dict[Vertex, int]] = [{} for _ in range(n)]
        self.known: List[Dict[Vertex, int]] = [{} for _ in range(n)]
        self.active: List[Set[Vertex]] = [set() for _ in range(n)]
        for v in sub.vertices():
            owner = self.partition[v]
            self.local[owner][v] = sub.degree(v)
        # structure is replicated: degrees are known everywhere at start
        for node in range(n):
            for v in sub.vertices():
                if self.partition[v] != node:
                    self.known[node][v] = sub.degree(v)

    # -- value views -------------------------------------------------------------
    def owner(self, v: Vertex) -> int:
        node = self.partition.get(v)
        if node is None:
            node = self.partition.setdefault(
                v, hash_partition_single(v, self.cluster.nodes))
        return node

    def value_at(self, node: int, v: Vertex) -> int:
        own = self.local[node].get(v)
        if own is not None:
            return own
        return self.known[node].get(v, self.sub.degree(v))

    def tau(self) -> Dict[Vertex, int]:
        """The authoritative (owner-side) values."""
        out: Dict[Vertex, int] = {}
        for node_vals in self.local:
            out.update(node_vals)
        return out

    # -- activation --------------------------------------------------------------
    def activate(self, v: Vertex) -> None:
        if self.sub.has_vertex(v):
            self.active[self.owner(v)].add(v)

    def activate_all(self) -> None:
        for v in self.sub.vertices():
            self.activate(v)

    # -- the superstep loop ----------------------------------------------------------
    def _recompute(self, node: int, v: Vertex) -> int:
        sub = self.sub
        L: List[float] = []
        work = 0
        for e in sub.incident(v):
            m: float = math.inf
            for w in sub.pins(e):
                if w != v:
                    work += 1
                    t = self.value_at(node, w)
                    if t < m:
                        m = t
            L.append(m)
        self.cluster.charge(node, work + len(L))
        return h_index_counting(L)

    def run(self, max_supersteps: Optional[int] = None) -> Dict[Vertex, int]:
        """Supersteps until quiescence; returns the converged values."""
        cluster = self.cluster
        sub = self.sub
        steps = 0
        while any(self.active) or cluster.any_pending():
            steps += 1
            if max_supersteps is not None and steps > max_supersteps:
                break
            cluster.begin_superstep()
            for node in range(cluster.nodes):
                # 1. absorb incoming value updates, activating neighbours
                for payload in cluster.inbox(node):
                    v, new = payload
                    self.known[node][v] = new
                    cluster.charge(node, 1)
                    for w in sub.neighbors(v):
                        if self.partition.get(w) == node:
                            self.active[node].add(w)
                # 2. recompute active owned vertices
                worklist = [v for v in self.active[node] if sub.has_vertex(v)]
                self.active[node] = set()
                for v in worklist:
                    new = self._recompute(node, v)
                    if new != self.local[node].get(v):
                        self.local[node][v] = new
                        # self-reactivation plus notify remote owners once
                        self.active[node].add(v)
                        dests = set()
                        for w in sub.neighbors(v):
                            dest = self.owner(w)
                            if dest == node:
                                self.active[node].add(w)
                            else:
                                dests.add(dest)
                        for dest in dests:
                            cluster.send(node, dest, (v, new))
            cluster.end_superstep()
        return self.tau()


def hash_partition_single(v: Vertex, nodes: int) -> int:
    from repro.distributed.partition import _stable_hash

    return _stable_hash(v) % nodes


class DistributedModMaintainer:
    """Batch k-core maintenance on the simulated cluster (mod pipeline)."""

    def __init__(self, sub, spec: ClusterSpec,
                 partition: Optional[Dict[Vertex, int]] = None,
                 increment_policy: str = "paper") -> None:
        self.engine = DistributedHIndex(sub, spec, partition)
        # initial convergence from degrees (the static computation)
        self.engine.activate_all()
        self.engine.run()
        self.increment_policy = increment_policy
        self.batches_processed = 0

    @property
    def sub(self):
        return self.engine.sub

    @property
    def cluster(self) -> SimulatedCluster:
        return self.engine.cluster

    def kappa(self) -> Dict[Vertex, int]:
        return self.engine.tau()

    def kappa_of(self, v: Vertex) -> int:
        return self.engine.tau().get(v, 0)

    def _value_of(self, v: Vertex) -> int:
        owner = self.engine.owner(v)
        return self.engine.local[owner].get(v, 0)

    def apply_batch(self, batch) -> None:
        engine = self.engine
        sub = engine.sub
        cluster = engine.cluster

        # classify with pre-batch values, per the mod pipeline; owner of
        # the changed vertex records (each change classified exactly once)
        tau_view = engine.tau()
        per_node_records = [0] * cluster.nodes
        I = LevelAccumulator()
        D = LevelAccumulator()
        touched: Set[Vertex] = set()

        new_edges = set()
        if getattr(sub, "is_hypergraph", False):
            for change in batch:
                if change.insert and not sub.has_edge(change.edge):
                    new_edges.add(change.edge)

        cluster.begin_superstep()
        for change in batch:
            # structure replicated: every node applies every change
            for node in range(cluster.nodes):
                cluster.charge(node, 1)
            if change.insert:
                applied = sub.apply(change)
                if not applied:
                    continue
                pins_ctx = tuple(sub.pins(change.edge))
                pin_changes = [change]
                if not getattr(sub, "is_hypergraph", False):
                    from repro.graph.substrate import Change as _Change

                    u, w = change.edge
                    pin_changes = [_Change(change.edge, u, True),
                                   _Change(change.edge, w, True)]
                for pc in pin_changes:
                    res = classify_insert(
                        tau_view, pc, pins_ctx,
                        edge_is_new=(not getattr(sub, "is_hypergraph", False))
                        or pc.edge in new_edges,
                    )
                    owner = engine.owner(pc.vertex)
                    cluster.charge(owner, len(pins_ctx))
                    per_node_records[owner] += len(res.inserts) + len(res.deletes)
                    for lvl, cnt in res.inserts:
                        I.add(lvl, cnt)
                    for lvl, cnt in res.deletes:
                        D.add(lvl, cnt)
                touched.update(pins_ctx)
                for p in pins_ctx:
                    node = engine.owner(p)
                    if p not in engine.local[node]:
                        engine.local[node][p] = 0
                        tau_view[p] = 0
            else:
                if not sub.has_pin(change.edge, change.vertex):
                    continue
                pins_ctx = tuple(sub.pins(change.edge))
                sub.apply(change)
                pin_changes = [change]
                if not getattr(sub, "is_hypergraph", False):
                    from repro.graph.substrate import Change as _Change

                    u, w = change.edge
                    pin_changes = [_Change(change.edge, u, False),
                                   _Change(change.edge, w, False)]
                for pc in pin_changes:
                    res = classify_delete(tau_view, pc, pins_ctx)
                    owner = engine.owner(pc.vertex)
                    cluster.charge(owner, len(pins_ctx))
                    per_node_records[owner] += len(res.inserts) + len(res.deletes)
                    for lvl, cnt in res.inserts:
                        I.add(lvl, cnt)
                    for lvl, cnt in res.deletes:
                        D.add(lvl, cnt)
                touched.update(pins_ctx)
                for p in pins_ctx:
                    if not sub.has_vertex(p):
                        engine.local[engine.owner(p)].pop(p, None)
                        for node in range(cluster.nodes):
                            engine.known[node].pop(p, None)
                        touched.discard(p)
        cluster.end_superstep()

        # one all-reduce combines every node's records; the resolution is
        # then a deterministic pure function every node evaluates locally
        cluster.allreduce_merge(per_node_records)
        resolve = resolve_paper if self.increment_policy == "paper" else resolve_safe
        resolution = resolve(I, D)

        # communication-free increment phase: owned values and replicas
        # move by the same deterministic rule on every node
        cluster.begin_superstep()
        for node in range(cluster.nodes):
            for v, val in list(engine.local[node].items()):
                inc = resolution.increment(val)
                cluster.charge(node, 1)
                if inc > 0:
                    engine.local[node][v] = val + inc
                    engine.active[node].add(v)
                elif resolution.should_activate(val):
                    engine.active[node].add(v)
            for v, val in list(engine.known[node].items()):
                inc = resolution.increment(val)
                cluster.charge(node, 1)
                if inc > 0:
                    engine.known[node][v] = val + inc
        cluster.end_superstep()

        for v in touched:
            engine.activate(v)
        engine.run()
        self.batches_processed += 1
