"""A deterministic BSP cluster simulation.

The execution model is Pregel/BSP: computation proceeds in *supersteps*.
Within a superstep every node processes work on the vertices it owns
(compute charged per node), then sends value-update messages that are
delivered at the start of the next superstep.  Superstep wall time is

    max over nodes (compute + message serialisation)  +  network latency

so elapsed time reflects the slowest node (load imbalance is visible) and
the per-round synchronisation cost (latency dominates when work per
superstep is small -- the distributed analogue of the shared-memory
barrier costs in :mod:`repro.parallel`).

Message cost is accounted by **payload bytes**: every send carries an
``nbytes`` (delta arrays report their real array size; unannotated
payloads are estimated at :data:`ITEM_BYTES` per item), the wire charge is
``msg_ns + nbytes * byte_ns``, and :class:`ClusterMetrics` accumulates the
byte totals per node -- the quantity the sharded maintainer's
boundary-traffic contracts are written against.

The cluster is transport only: algorithms own semantics.  Messages to the
node that sent them are free local delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["ClusterSpec", "ClusterMetrics", "SimulatedCluster", "ITEM_BYTES"]

Vertex = Hashable

#: default wire size of one payload item: a (vertex id, value) pair of int64s
ITEM_BYTES = 16


@dataclass(frozen=True)
class ClusterSpec:
    """Cost parameters of the simulated cluster."""

    nodes: int = 4
    work_unit_ns: float = 6.0           # same unit as the shared-memory model
    msg_ns: float = 250.0               # serialise + deserialise one message
    item_ns: float = 25.0               # per payload item (legacy point-to-point costing)
    byte_ns: float = 1.5625             # per payload byte (== item_ns / ITEM_BYTES)
    network_latency_ns: float = 50_000.0  # per-superstep synchronisation
    allreduce_ns_per_item: float = 400.0
    #: combine all updates from one node to another into a single message
    #: per superstep (the classic Pregel combiner optimisation)
    combine_messages: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one node")

    # -- point-to-point costing (used by repro.replication) --------------------
    def shipment_cost_ns(self, n_items: int) -> float:
        """Wire cost of one point-to-point message carrying ``n_items``
        payload items: serialisation + per-item cost + network latency.
        The replication transport prices every WAL shipment with this,
        so replication lag and BSP superstep time share one cost model."""
        return self.msg_ns + max(0, n_items) * self.item_ns + self.network_latency_ns

    def shipment_cost_s(self, n_items: int) -> float:
        """:meth:`shipment_cost_ns` in seconds (clock units)."""
        return self.shipment_cost_ns(n_items) / 1e9


@dataclass
class ClusterMetrics:
    """Accumulated execution metrics."""

    supersteps: int = 0
    messages: int = 0
    local_deliveries: int = 0
    elapsed_ns: float = 0.0
    #: payload bytes over the wire, node-to-node (boundary traffic)
    message_bytes: int = 0
    #: payload bytes routed in from the client (batch sub-streams)
    ingress_bytes: int = 0
    work_units_per_node: List[float] = field(default_factory=list)
    bytes_sent_per_node: List[int] = field(default_factory=list)

    def elapsed_seconds(self) -> float:
        return self.elapsed_ns / 1e9

    @property
    def total_work(self) -> float:
        return sum(self.work_units_per_node)

    def load_imbalance(self) -> float:
        """max/mean per-node work (1.0 = perfect balance)."""
        if not self.work_units_per_node or self.total_work == 0:
            return 1.0
        mean = self.total_work / len(self.work_units_per_node)
        return max(self.work_units_per_node) / mean if mean else 1.0

    def snapshot(self) -> dict:
        """A scalar snapshot, for windowed deltas (per-batch accounting)."""
        return {
            "supersteps": self.supersteps,
            "messages": self.messages,
            "message_bytes": self.message_bytes,
            "ingress_bytes": self.ingress_bytes,
            "elapsed_ns": self.elapsed_ns,
        }


class SimulatedCluster:
    """Message transport + cost accounting for BSP algorithms.

    Usage pattern (one superstep)::

        cluster.begin_superstep()
        for node in range(cluster.nodes):
            inbox = cluster.inbox(node)
            ... compute ...
            cluster.charge(node, units)
            cluster.send(node, dest_node, payload, items=n, nbytes=b)
        cluster.end_superstep()

    Messages sent during superstep *t* appear in inboxes during *t + 1*.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.nodes = spec.nodes
        self.metrics = ClusterMetrics(
            work_units_per_node=[0.0] * spec.nodes,
            bytes_sent_per_node=[0] * spec.nodes)
        self._inboxes: List[List[object]] = [[] for _ in range(spec.nodes)]
        self._outboxes: List[List[object]] = [[] for _ in range(spec.nodes)]
        self._step_work = [0.0] * spec.nodes
        self._step_msgs = [0] * spec.nodes
        self._step_bytes = [0] * spec.nodes
        self._combiner: Dict[Tuple[int, int], List[Tuple[object, int]]] = {}
        self._in_step = False

    # -- superstep lifecycle ------------------------------------------------------
    def begin_superstep(self) -> None:
        if self._in_step:
            raise RuntimeError("superstep already in progress")
        self._in_step = True
        self._step_work = [0.0] * self.nodes
        self._step_msgs = [0] * self.nodes
        self._step_bytes = [0] * self.nodes
        self._combiner = {}

    def end_superstep(self) -> None:
        if not self._in_step:
            raise RuntimeError("no superstep in progress")
        self._in_step = False
        spec = self.spec
        # flush combined messages: one wire message per (src, dst) pair,
        # payload bytes priced on both endpoints
        for (src, dst), payloads in sorted(self._combiner.items()):
            self._outboxes[dst].extend(p for p, _ in payloads)
            nbytes = sum(b for _, b in payloads)
            self._account_wire(src, dst, nbytes)
        self._combiner = {}
        per_node_ns = [
            w * spec.work_unit_ns + m * spec.msg_ns + b * spec.byte_ns
            for w, m, b in zip(self._step_work, self._step_msgs, self._step_bytes)
        ]
        self.metrics.elapsed_ns += max(per_node_ns, default=0.0)
        if self.nodes > 1:
            self.metrics.elapsed_ns += spec.network_latency_ns
        self.metrics.supersteps += 1
        # deliver
        self._inboxes = self._outboxes
        self._outboxes = [[] for _ in range(self.nodes)]

    def inbox(self, node: int) -> List[object]:
        return self._inboxes[node]

    def any_pending(self) -> bool:
        return any(self._outboxes) or any(self._inboxes) or bool(self._combiner)

    # -- node-side operations --------------------------------------------------------
    def charge(self, node: int, units: float) -> None:
        if not self._in_step:
            raise RuntimeError("charge outside a superstep")
        self._step_work[node] += units
        self.metrics.work_units_per_node[node] += units

    def _account_wire(self, src: int, dst: int, nbytes: int) -> None:
        """Book one wire message of ``nbytes`` payload on both endpoints."""
        self.metrics.messages += 1
        self.metrics.message_bytes += nbytes
        self.metrics.bytes_sent_per_node[src] += nbytes
        self._step_msgs[src] += 1
        self._step_msgs[dst] += 1
        self._step_bytes[src] += nbytes
        self._step_bytes[dst] += nbytes

    def send(self, src: int, dst: int, payload: object, *,
             items: int = 1, nbytes: Optional[int] = None) -> None:
        """Send ``payload`` from ``src`` to ``dst`` (delivered next
        superstep).  ``nbytes`` is the wire size; when omitted it is
        estimated as ``items * ITEM_BYTES``."""
        if not self._in_step:
            raise RuntimeError("send outside a superstep")
        if nbytes is None:
            nbytes = items * ITEM_BYTES
        if src == dst:
            self._outboxes[dst].append(payload)
            self.metrics.local_deliveries += 1
        elif self.spec.combine_messages:
            self._combiner.setdefault((src, dst), []).append((payload, nbytes))
        else:
            self._outboxes[dst].append(payload)
            self._account_wire(src, dst, nbytes)

    def charge_message(self, src: int, dst: int, *,
                       items: int = 1, nbytes: Optional[int] = None) -> None:
        """Account the cost of a point-to-point message whose *effect* the
        (sequential) driver applies directly -- halo fills and hyperedge
        shipping inside a structural superstep, where BSP-delayed delivery
        would be semantically wrong.  Pure accounting: nothing is enqueued."""
        if not self._in_step:
            raise RuntimeError("charge_message outside a superstep")
        if src == dst:
            self.metrics.local_deliveries += 1
            return
        if nbytes is None:
            nbytes = items * ITEM_BYTES
        self._account_wire(src, dst, nbytes)

    def ingress(self, dst: int, *, items: int, nbytes: Optional[int] = None) -> None:
        """Account a client -> node message (a routed batch sub-stream):
        one wire message billed to the receiving node only."""
        if not self._in_step:
            raise RuntimeError("ingress outside a superstep")
        if nbytes is None:
            nbytes = items * ITEM_BYTES
        self.metrics.messages += 1
        self.metrics.ingress_bytes += nbytes
        self._step_msgs[dst] += 1
        self._step_bytes[dst] += nbytes

    # -- collectives ------------------------------------------------------------------
    def allreduce_merge(self, per_node_items: List[int], *,
                        item_bytes: int = ITEM_BYTES) -> None:
        """Charge an all-reduce combining ``sum(per_node_items)`` items
        (e.g. the I/D level records of the distributed mod maintainer)."""
        total = sum(per_node_items)
        self.metrics.elapsed_ns += self.spec.allreduce_ns_per_item * max(1, total)
        if self.nodes > 1:
            self.metrics.elapsed_ns += self.spec.network_latency_ns
            self.metrics.message_bytes += total * item_bytes
        self.metrics.messages += max(0, self.nodes - 1) * 2  # reduce + bcast

    def __repr__(self) -> str:
        return f"SimulatedCluster(nodes={self.nodes}, steps={self.metrics.supersteps})"
