"""Vertex partitioners for the sharded cluster.

A partition maps every vertex to a node id in ``[0, nodes)``.  Three
strategies are provided:

* :func:`hash_partition` -- stateless hashing; O(1) lookup for dynamic
  vertex arrival, the default for streaming settings.
* :func:`degree_balanced_partition` -- greedy longest-processing-time
  assignment by degree, balancing *work* (per-vertex cost is proportional
  to degree) rather than vertex counts; better load balance on skewed
  graphs at the cost of needing the degree sequence up front.
* :func:`edge_cut_partition` -- linear deterministic greedy (LDG)
  streaming assignment: each vertex goes to the node already holding the
  most of its neighbours, discounted by that node's fill, under a hard
  capacity cap.  Minimises *edge cut* -- exactly the quantity that the
  sharded maintainer's boundary traffic is proportional to -- at a small
  cost in load balance.

All three are total over ``sub.vertices()`` and deterministic (no salted
``hash()``, no iteration-order dependence).  Vertices that arrive *after*
partitioning -- a batch inserting an edge on a brand-new label -- are
assigned by the stable rule :func:`owner_of`: ``blake2b(repr(v)) % nodes``,
memoised into the partition map so every component (router, shards,
metrics) agrees forever after.  :func:`partition_stats` reports the
quality triple every partitioner trades between: edge-cut fraction,
replication factor, and load balance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable

__all__ = [
    "hash_partition",
    "degree_balanced_partition",
    "edge_cut_partition",
    "owner_of",
    "partition_counts",
    "partition_stats",
    "PartitionStats",
    "PARTITIONERS",
]

Vertex = Hashable


def _stable_hash(v: Vertex) -> int:
    """Process-independent hash (``hash()`` is salted for str)."""
    return int.from_bytes(hashlib.blake2b(repr(v).encode(), digest_size=8).digest(),
                          "big")


def owner_of(partition: Dict[Vertex, int], v: Vertex, nodes: int) -> int:
    """The owner of ``v``, assigning by the new-vertex rule on a miss.

    Vertices interned after partitioning (created by a later batch) get
    ``_stable_hash(v) % nodes`` -- deterministic, partition-independent,
    and identical on every component -- and the assignment is memoised so
    the partition map stays the single source of truth.
    """
    node = partition.get(v)
    if node is None:
        node = _stable_hash(v) % nodes
        partition[v] = node
    return node


def hash_partition(sub, nodes: int) -> Dict[Vertex, int]:
    """Assign each vertex to ``stable_hash(v) % nodes``."""
    if nodes < 1:
        raise ValueError("need at least one node")
    return {v: _stable_hash(v) % nodes for v in sub.vertices()}


def degree_balanced_partition(sub, nodes: int) -> Dict[Vertex, int]:
    """Greedy LPT assignment by degree: heaviest vertices first, each to
    the currently lightest node."""
    if nodes < 1:
        raise ValueError("need at least one node")
    import heapq

    loads = [(0, n) for n in range(nodes)]
    heapq.heapify(loads)
    out: Dict[Vertex, int] = {}
    for v in sorted(sub.vertices(), key=lambda x: (-sub.degree(x), repr(x))):
        load, n = heapq.heappop(loads)
        out[v] = n
        heapq.heappush(loads, (load + sub.degree(v), n))
    return out


def edge_cut_partition(sub, nodes: int, *, balance: float = 1.1) -> Dict[Vertex, int]:
    """Linear deterministic greedy (LDG) edge-cut minimisation.

    Vertices are streamed heaviest-first (the order that gives the greedy
    the most information when it matters); each goes to the node ``n``
    maximising ``|neighbours already on n| * (1 - |n| / cap)`` with
    ``cap = ceil(balance * |V| / nodes)``, ties broken toward the lighter
    node then the lower id.  A full node is never chosen, so the cap is a
    hard balance guarantee.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    verts = sorted(sub.vertices(), key=lambda x: (-sub.degree(x), repr(x)))
    n_verts = len(verts)
    cap = max(1, -(-int(balance * n_verts) // nodes))
    sizes = [0] * nodes
    out: Dict[Vertex, int] = {}
    for v in verts:
        here = [0] * nodes
        for w in sub.neighbors(v):
            n = out.get(w)
            if n is not None:
                here[n] += 1
        best_n = None
        best_key = None
        for n in range(nodes):
            if sizes[n] >= cap:
                continue
            key = (here[n] * (1.0 - sizes[n] / cap), -sizes[n], -n)
            if best_key is None or key > best_key:
                best_key = key
                best_n = n
        if best_n is None:  # every node at cap (can't happen with balance >= 1)
            best_n = min(range(nodes), key=lambda n: (sizes[n], n))
        out[v] = best_n
        sizes[best_n] += 1
    return out


#: name -> partitioner, the sweep axis of the sharded test matrix and bench
PARTITIONERS = {
    "hash": hash_partition,
    "degree_balanced": degree_balanced_partition,
    "edge_cut": edge_cut_partition,
}


def partition_counts(partition: Dict[Vertex, int], nodes: int) -> list:
    """Vertices per node (diagnostics)."""
    counts = [0] * nodes
    for n in partition.values():
        counts[n] += 1
    return counts


@dataclass(frozen=True)
class PartitionStats:
    """The quality triple of a partition, as the sharded layer feels it.

    ``edge_cut_fraction`` bounds steady-state boundary traffic (delta
    messages cross the wire only for cut units); ``replication_factor``
    is the mean number of shards hosting each vertex (1.0 = no ghosts),
    i.e. total shard memory over |V|; ``load_imbalance`` is max/mean
    per-node work with per-vertex work proportional to degree.
    """

    nodes: int
    n_vertices: int
    n_units: int            # graph edges, or hyperedges
    cut_units: int          # units spanning more than one node
    ghost_copies: int       # vertex copies beyond the owned one
    loads: tuple            # per-node owned degree sums

    @property
    def edge_cut_fraction(self) -> float:
        return self.cut_units / self.n_units if self.n_units else 0.0

    @property
    def replication_factor(self) -> float:
        if not self.n_vertices:
            return 1.0
        return 1.0 + self.ghost_copies / self.n_vertices

    @property
    def max_load(self) -> float:
        return max(self.loads) if self.loads else 0.0

    @property
    def mean_load(self) -> float:
        return sum(self.loads) / len(self.loads) if self.loads else 0.0

    @property
    def load_imbalance(self) -> float:
        mean = self.mean_load
        return self.max_load / mean if mean else 1.0

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "n_vertices": self.n_vertices,
            "n_units": self.n_units,
            "cut_units": self.cut_units,
            "edge_cut_fraction": self.edge_cut_fraction,
            "replication_factor": self.replication_factor,
            "max_load": self.max_load,
            "mean_load": self.mean_load,
            "load_imbalance": self.load_imbalance,
        }


def partition_stats(sub, partition: Dict[Vertex, int], nodes: int) -> PartitionStats:
    """Measure ``partition`` against the substrate it partitions.

    A vertex is *replicated* onto every node owning one of its hyperedge
    co-pins (graph: neighbours) -- exactly the ghost/halo ring the
    sharded substrates materialise, so ``replication_factor`` predicts
    real shard memory.
    """
    loads = [0.0] * nodes
    hosts: Dict[Vertex, set] = {}
    n_units = 0
    cut_units = 0
    if getattr(sub, "is_hypergraph", False):
        units = ((e, tuple(pins)) for e, pins in sub.hyperedges())
    else:
        units = ((e, e) for e in sub.edges())
    for _e, pins in units:
        n_units += 1
        owners = {partition[p] for p in pins}
        if len(owners) > 1:
            cut_units += 1
        for p in pins:
            hosts.setdefault(p, set()).update(owners)
    n_vertices = 0
    ghost_copies = 0
    for v, owner in partition.items():
        if not sub.has_vertex(v):
            continue
        n_vertices += 1
        loads[owner] += sub.degree(v)
        ghost_copies += len(hosts.get(v, {owner}) | {owner}) - 1
    return PartitionStats(
        nodes=nodes,
        n_vertices=n_vertices,
        n_units=n_units,
        cut_units=cut_units,
        ghost_copies=ghost_copies,
        loads=tuple(loads),
    )
