"""Vertex partitioners for the simulated cluster.

A partition maps every vertex to a node id in ``[0, nodes)``.  Two
strategies are provided:

* :func:`hash_partition` -- stateless hashing; O(1) lookup for dynamic
  vertex arrival, the default for streaming settings.
* :func:`degree_balanced_partition` -- greedy longest-processing-time
  assignment by degree, balancing *work* (per-vertex cost is proportional
  to degree) rather than vertex counts; better load balance on skewed
  graphs at the cost of needing the degree sequence up front.

Both are deterministic.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable

__all__ = ["hash_partition", "degree_balanced_partition", "partition_counts"]

Vertex = Hashable


def _stable_hash(v: Vertex) -> int:
    """Process-independent hash (``hash()`` is salted for str)."""
    return int.from_bytes(hashlib.blake2b(repr(v).encode(), digest_size=8).digest(),
                          "big")


def hash_partition(sub, nodes: int) -> Dict[Vertex, int]:
    """Assign each vertex to ``stable_hash(v) % nodes``."""
    if nodes < 1:
        raise ValueError("need at least one node")
    return {v: _stable_hash(v) % nodes for v in sub.vertices()}


def degree_balanced_partition(sub, nodes: int) -> Dict[Vertex, int]:
    """Greedy LPT assignment by degree: heaviest vertices first, each to
    the currently lightest node."""
    if nodes < 1:
        raise ValueError("need at least one node")
    import heapq

    loads = [(0, n) for n in range(nodes)]
    heapq.heapify(loads)
    out: Dict[Vertex, int] = {}
    for v in sorted(sub.vertices(), key=lambda x: (-sub.degree(x), repr(x))):
        load, n = heapq.heappop(loads)
        out[v] = n
        heapq.heappush(loads, (load + sub.degree(v), n))
    return out


def partition_counts(partition: Dict[Vertex, int], nodes: int) -> list:
    """Vertices per node (diagnostics)."""
    counts = [0] * nodes
    for n in partition.values():
        counts[n] += 1
    return counts
