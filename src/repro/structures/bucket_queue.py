"""Monotone bucket priority queue for linear-time peeling.

Peeling (Matula & Beck [2]) repeatedly extracts a vertex of minimum current
degree.  Because extracted priorities never decrease below the running
minimum minus the decrements applied, a bucket array indexed by degree gives
``O(n + m)`` total time.  This queue supports the two operations peeling
needs -- ``pop_min`` and ``decrease`` -- plus lazy membership bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["BucketQueue"]


class BucketQueue:
    """Priority queue over hashable items with small non-negative int keys.

    Items live in ``buckets[priority]`` lists with a positional index so
    removal is O(1) swap-pop.  ``pop_min`` advances a monotone cursor; after
    a ``decrease`` below the cursor the cursor is moved back, so the
    structure also works for the mildly non-monotone use in dynamic
    baselines.

    >>> q = BucketQueue()
    >>> q.push('a', 3); q.push('b', 1); q.push('c', 1)
    >>> q.pop_min()[1]
    1
    >>> q.decrease('a', 0)
    >>> q.pop_min()
    ('a', 0)
    """

    __slots__ = ("_buckets", "_pos", "_prio", "_cursor", "_count")

    def __init__(self, max_priority: int = 0) -> None:
        self._buckets: List[List[Hashable]] = [[] for _ in range(max_priority + 1)]
        self._pos: Dict[Hashable, int] = {}
        self._prio: Dict[Hashable, int] = {}
        self._cursor = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, item: Hashable) -> bool:
        return item in self._prio

    def priority(self, item: Hashable) -> int:
        return self._prio[item]

    def _ensure(self, priority: int) -> None:
        while len(self._buckets) <= priority:
            self._buckets.append([])

    def push(self, item: Hashable, priority: int) -> None:
        if priority < 0:
            raise ValueError("priorities must be non-negative")
        if item in self._prio:
            raise KeyError(f"{item!r} already queued; use update/decrease")
        self._ensure(priority)
        bucket = self._buckets[priority]
        self._pos[item] = len(bucket)
        bucket.append(item)
        self._prio[item] = priority
        self._count += 1
        if priority < self._cursor:
            self._cursor = priority

    def _remove_from_bucket(self, item: Hashable) -> int:
        p = self._prio.pop(item)
        bucket = self._buckets[p]
        i = self._pos.pop(item)
        last = bucket.pop()
        if i < len(bucket):  # item was not the tail: swap the tail in
            bucket[i] = last
            self._pos[last] = i
        self._count -= 1
        return p

    def remove(self, item: Hashable) -> int:
        """Remove ``item``; returns its priority."""
        return self._remove_from_bucket(item)

    def update(self, item: Hashable, priority: int) -> None:
        """Set ``item`` to ``priority`` regardless of direction."""
        self._remove_from_bucket(item)
        self.push(item, priority)

    def decrease(self, item: Hashable, priority: int) -> None:
        """Lower ``item``'s priority (no-op if not actually lower)."""
        if priority >= self._prio[item]:
            return
        self.update(item, priority)

    def peek_min(self) -> Optional[Tuple[Hashable, int]]:
        if self._count == 0:
            return None
        c = self._cursor
        while not self._buckets[c]:
            c += 1
        self._cursor = c
        return self._buckets[c][-1], c

    def pop_min(self) -> Tuple[Hashable, int]:
        """Extract an item of minimum priority."""
        top = self.peek_min()
        if top is None:
            raise IndexError("pop from empty BucketQueue")
        item, p = top
        self._remove_from_bucket(item)
        return item, p
