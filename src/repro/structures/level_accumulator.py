"""Sparse tau-level accumulators: the ``I`` / ``D`` / ``R`` maps of Alg. 3/4.

The ``mod`` algorithm buckets batch changes by the tau value (level) of the
minimum vertex involved, then resolves those per-level insertion/deletion
counts into per-level increments ``R``.  Only a handful of levels are
touched per batch, so the maps are sparse dictionaries with a thin API that
mirrors the pseudocode (``I[k] += 1``, ``R[t] += I[k]``...), plus helpers for
the "apply R to every vertex at its level" sweep.

Updates are plain ``+=`` here; under the simulated parallel runtime each
update is *charged* as an atomic operation by the caller, matching the
TBB ``concurrent_hash_map`` accumulation in the paper's C++ system.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["LevelAccumulator"]


class LevelAccumulator:
    """A default-zero sparse map from level (int >= 0) to count.

    >>> acc = LevelAccumulator()
    >>> acc.add(3); acc.add(3); acc.add(7, 2)
    >>> acc[3], acc[7], acc[0]
    (2, 2, 0)
    >>> sorted(acc.levels())
    [3, 7]
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def __getitem__(self, level: int) -> int:
        return self._counts.get(level, 0)

    def __setitem__(self, level: int, count: int) -> None:
        if level < 0:
            raise ValueError("levels are non-negative tau values")
        if count:
            self._counts[level] = count
        else:
            self._counts.pop(level, None)

    def add(self, level: int, count: int = 1) -> None:
        """``self[level] += count`` (the atomic-add of the parallel code)."""
        if level < 0:
            raise ValueError("levels are non-negative tau values")
        new = self._counts.get(level, 0) + count
        if new:
            self._counts[level] = new
        else:
            self._counts.pop(level, None)

    def levels(self) -> Iterator[int]:
        """Levels with non-zero counts (``keys(I)`` in the pseudocode)."""
        return iter(self._counts.keys())

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._counts.items())

    def total(self) -> int:
        return sum(self._counts.values())

    def max_level(self) -> int:
        """Largest touched level, or -1 when empty."""
        return max(self._counts, default=-1)

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __contains__(self, level: int) -> bool:
        return level in self._counts

    def clear(self) -> None:
        self._counts.clear()

    def copy(self) -> "LevelAccumulator":
        out = LevelAccumulator()
        out._counts = dict(self._counts)
        return out

    def as_dict(self) -> Dict[int, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self._counts.items()))
        return f"LevelAccumulator({{{inner}}})"
