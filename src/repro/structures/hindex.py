"""H-index kernels (Definition 3 of the paper).

The h-index of a tuple of values ``S = <s_1, ..., s_n>`` is the largest value
``h`` such that at least ``h`` of the values are ``>= h``.  It is the bridge
between local degree information and coreness identified by Lu et al. [22]:
iterating "replace my value with the h-index of my neighbours' values"
converges to the k-core decomposition.

Three interchangeable kernels are provided:

* :func:`h_index_sorted` -- sort-based, ``O(n log n)``, the textbook
  definition made executable.  Used as the oracle in tests.
* :func:`h_index_counting` -- counting-based, ``O(n)`` time and ``O(n)``
  scratch, the kernel the algorithms use on hot paths.
* :func:`h_index_of_counts` -- operates directly on a histogram
  ``counts[v] = multiplicity of value v`` (values above ``len(counts) - 1``
  must already be clamped); used when callers maintain histograms
  incrementally.
* :func:`h_index_counting_scratch` -- the hot-path variant: identical
  semantics to the counting kernel but reusing a grow-only per-thread
  scratch histogram instead of allocating ``[0] * (n + 1)`` per call, and
  routing large inputs through the vectorised :func:`h_index_numpy`.

``h_index`` is an alias of the counting kernel.

Values may be any non-negative integers (``math.inf`` is accepted and treated
as "larger than any cutoff", which the hypergraph algorithms use for the
minimum over an empty pin set).
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Sequence

__all__ = [
    "h_index",
    "h_index_sorted",
    "h_index_counting",
    "h_index_counting_scratch",
    "h_index_of_counts",
    "h_index_numpy",
]


def h_index_sorted(values: Iterable[float]) -> int:
    """Reference h-index by sorting.

    ``O(n log n)``.  Accepts any iterable of non-negative numbers; ``inf``
    entries count toward every cutoff.

    >>> h_index_sorted([3, 0, 6, 1, 5])
    3
    >>> h_index_sorted([])
    0
    """
    vs = sorted(values, reverse=True)
    h = 0
    for i, v in enumerate(vs, start=1):
        if v >= i:
            h = i
        else:
            break
    return h


def h_index_counting(values: Iterable[float]) -> int:
    """Linear-time h-index via a clamped histogram.

    Any value ``>= n`` (including ``inf``) is clamped to ``n`` since the
    h-index of ``n`` values can never exceed ``n``.

    >>> h_index_counting([3, 0, 6, 1, 5])
    3
    """
    vs = list(values)
    n = len(vs)
    if n == 0:
        return 0
    counts = [0] * (n + 1)
    for v in vs:
        if v < 0:
            raise ValueError(f"h-index values must be non-negative, got {v!r}")
        counts[n if v >= n else int(v)] += 1
    return h_index_of_counts(counts)


#: above this many values the numpy kernel beats the Python loop even
#: accounting for the list -> array conversion
_NUMPY_CUTOVER = 512

_scratch_tls = threading.local()


def h_index_counting_scratch(values: Iterable[float]) -> int:
    """:func:`h_index_counting` without the per-call histogram allocation.

    The convergence loops recompute h-indices for the same vertices over
    and over; allocating ``[0] * (n + 1)`` on every call dominates the
    kernel for small neighbourhoods.  This variant reuses a grow-only
    per-thread scratch list (thread-local, so parallel runtimes stay
    safe) and routes large inputs through the vectorised
    :func:`h_index_numpy`, where the histogram cost is already amortised.

    Semantics are identical to :func:`h_index_counting`:

    >>> h_index_counting_scratch([3, 0, 6, 1, 5])
    3
    >>> h_index_counting_scratch([])
    0
    """
    vs = values if type(values) is list else list(values)
    n = len(vs)
    if n == 0:
        return 0
    if n > _NUMPY_CUTOVER:
        # h_index_numpy clamps at n, which absorbs math.inf entries; the
        # negativity check matches the counting kernel's contract
        import numpy as np

        arr = np.asarray(vs, dtype=np.float64)
        if arr.min() < 0:
            raise ValueError("h-index values must be non-negative")
        return h_index_numpy(arr)
    scratch = getattr(_scratch_tls, "counts", None)
    if scratch is None or len(scratch) < n + 1:
        scratch = _scratch_tls.counts = [0] * max(64, n + 1)
    else:
        for i in range(n + 1):
            scratch[i] = 0
    for v in vs:
        if v < 0:
            raise ValueError(f"h-index values must be non-negative, got {v!r}")
        scratch[n if v >= n else int(v)] += 1
    tail = 0
    for v in range(n, -1, -1):
        tail += scratch[v]
        if tail >= v:
            return v
    return 0


def h_index_of_counts(counts: Sequence[int]) -> int:
    """H-index from a histogram ``counts[v] = #values equal to v``.

    The histogram must already clamp values at its top bucket.  Runs a
    single descending scan: the h-index is the largest ``h`` with
    ``sum(counts[h:]) >= h``.
    """
    tail = 0
    for v in range(len(counts) - 1, -1, -1):
        tail += counts[v]
        if tail >= v:
            return v
    return 0


def h_index_numpy(values) -> int:
    """Vectorised h-index for a 1-D numpy array of non-negative ints.

    Used by the CSR static algorithms where neighbour values arrive as array
    slices.  Semantics match :func:`h_index_counting`.
    """
    import numpy as np

    arr = np.asarray(values)
    n = arr.shape[0]
    if n == 0:
        return 0
    clamped = np.minimum(arr, n).astype(np.int64)
    counts = np.bincount(clamped, minlength=n + 1)
    # suffix sums from the top; h-index = largest v with tail >= v
    tail = np.cumsum(counts[::-1])[::-1]
    hs = np.nonzero(tail >= np.arange(n + 1))[0]
    return int(hs[-1]) if hs.size else 0


h_index = h_index_counting


class StreamingHIndex:
    """Maintains the h-index of a multiset under inserts and removes.

    The frontier algorithms repeatedly recompute a vertex's h-index while
    only a few contributing values changed.  This helper keeps a clamp-free
    histogram plus the current h value and repairs it locally.

    Amortised cost per update is ``O(|delta h| + 1)``.

    >>> s = StreamingHIndex()
    >>> for v in [3, 0, 6, 1, 5]: _ = s.insert(v)
    >>> s.value
    3
    >>> _ = s.remove(0); _ = s.insert(9); _ = s.insert(7)
    >>> s.value
    4
    """

    __slots__ = ("_counts", "_n", "_h", "_at_least_h")

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._n = 0
        self._h = 0
        # number of values >= current h
        self._at_least_h = 0

    @property
    def value(self) -> int:
        return self._h

    def __len__(self) -> int:
        return self._n

    def _key(self, v: float) -> int:
        if v < 0:
            raise ValueError(f"h-index values must be non-negative, got {v!r}")
        return (1 << 62) if v == math.inf else int(v)

    def insert(self, v: float) -> int:
        k = self._key(v)
        self._counts[k] = self._counts.get(k, 0) + 1
        self._n += 1
        if k >= self._h:
            self._at_least_h += 1
        # can only rise by pushing the threshold up one step at a time
        while self._at_least_h - self._counts.get(self._h, 0) >= self._h + 1:
            self._at_least_h -= self._counts.get(self._h, 0)
            self._h += 1
        return self._h

    def remove(self, v: float) -> int:
        k = self._key(v)
        c = self._counts.get(k, 0)
        if c <= 0:
            raise KeyError(f"value {v!r} not present")
        if c == 1:
            del self._counts[k]
        else:
            self._counts[k] = c - 1
        self._n -= 1
        if k >= self._h:
            self._at_least_h -= 1
        if self._at_least_h < self._h:
            # threshold drops by exactly one: everything >= h-1 now counts
            self._h -= 1
            self._at_least_h += self._counts.get(self._h, 0)
        return self._h

    def clear(self) -> None:
        self._counts.clear()
        self._n = 0
        self._h = 0
        self._at_least_h = 0
