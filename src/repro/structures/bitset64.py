"""Fixed-width 64-bit set, the ``setmb`` mini-batch change-set representation.

The paper (Section IV-C) evaluates ``setmb`` with mini-batches of 64 changes
so that the per-vertex "unprocessed" (``U``) and "processed" (``P``) change
sets of Algorithm 5 fit in a single machine word; set union, difference and
cardinality become single bitwise instructions.  This class wraps that word
with a small-set API so the algorithm code reads like the pseudocode while
keeping the O(1) word-ops cost model.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Bitset64", "WIDTH"]

WIDTH = 64
_MASK = (1 << WIDTH) - 1


class Bitset64:
    """A set of integers in ``[0, 64)`` stored as one word.

    Instances are mutable; bulk operators return new sets, ``*_update``
    variants mutate in place.  ``popcount`` is ``int.bit_count``.

    >>> a = Bitset64([1, 5]); b = Bitset64([5, 9])
    >>> sorted(a | b)
    [1, 5, 9]
    >>> len(a - b)
    1
    """

    __slots__ = ("bits",)

    def __init__(self, items: Iterable[int] | int = 0) -> None:
        if isinstance(items, int):
            if items & ~_MASK:
                raise ValueError("raw word exceeds 64 bits")
            self.bits = items
        else:
            bits = 0
            for i in items:
                if not 0 <= i < WIDTH:
                    raise ValueError(f"element {i} out of [0, {WIDTH})")
                bits |= 1 << i
            self.bits = bits

    # -- membership ---------------------------------------------------------
    def add(self, i: int) -> None:
        if not 0 <= i < WIDTH:
            raise ValueError(f"element {i} out of [0, {WIDTH})")
        self.bits |= 1 << i

    def discard(self, i: int) -> None:
        if 0 <= i < WIDTH:
            self.bits &= ~(1 << i)

    def __contains__(self, i: int) -> bool:
        return 0 <= i < WIDTH and bool(self.bits >> i & 1)

    def __len__(self) -> int:
        return self.bits.bit_count()

    def __bool__(self) -> bool:
        return self.bits != 0

    def __iter__(self) -> Iterator[int]:
        bits = self.bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    # -- bulk operators ------------------------------------------------------
    def __or__(self, other: "Bitset64") -> "Bitset64":
        return Bitset64(self.bits | other.bits)

    def __and__(self, other: "Bitset64") -> "Bitset64":
        return Bitset64(self.bits & other.bits)

    def __sub__(self, other: "Bitset64") -> "Bitset64":
        return Bitset64(self.bits & ~other.bits & _MASK)

    def __xor__(self, other: "Bitset64") -> "Bitset64":
        return Bitset64(self.bits ^ other.bits)

    def union_update(self, other: "Bitset64") -> None:
        self.bits |= other.bits

    def difference_update(self, other: "Bitset64") -> None:
        self.bits &= ~other.bits & _MASK

    def intersection_update(self, other: "Bitset64") -> None:
        self.bits &= other.bits

    def clear(self) -> None:
        self.bits = 0

    def copy(self) -> "Bitset64":
        return Bitset64(self.bits)

    def isdisjoint(self, other: "Bitset64") -> bool:
        return not self.bits & other.bits

    def issubset(self, other: "Bitset64") -> bool:
        return not self.bits & ~other.bits

    # -- comparisons ---------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bitset64):
            return self.bits == other.bits
        return NotImplemented

    def __hash__(self) -> int:  # frozen enough for dict keys in tests
        return hash(("Bitset64", self.bits))

    def __repr__(self) -> str:
        return f"Bitset64({sorted(self)})"
