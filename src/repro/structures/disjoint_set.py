"""Disjoint-set forest (union-find) with union by size and path halving.

Used by :mod:`repro.core.subcore` to materialise connected k-cores and
subcores from maintained core values, following the approach of paper
reference [10] (Fang et al., "Effective and efficient attributed community
search").  Keys are arbitrary hashables so hypersparse 64-bit vertex ids work
without renumbering.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator

__all__ = ["DisjointSet"]


class DisjointSet:
    """Union-find over arbitrary hashable elements.

    Elements are created lazily on first touch.  ``find`` uses path halving,
    ``union`` uses union by size, giving the usual inverse-Ackermann
    amortised bounds.

    >>> d = DisjointSet()
    >>> _ = d.union(1, 2); _ = d.union(3, 4)
    >>> d.connected(1, 2)
    True
    >>> d.connected(2, 3)
    False
    """

    __slots__ = ("_parent", "_size", "_components")

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._components = 0
        for e in elements:
            self.add(e)

    def add(self, x: Hashable) -> None:
        """Ensure ``x`` exists as a singleton set (no-op if present)."""
        if x not in self._parent:
            self._parent[x] = x
            self._size[x] = 1
            self._components += 1

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        """Number of elements ever added."""
        return len(self._parent)

    @property
    def component_count(self) -> int:
        return self._components

    def find(self, x: Hashable) -> Hashable:
        """Representative of ``x``'s set, creating ``x`` if new."""
        parent = self._parent
        if x not in parent:
            self.add(x)
            return x
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the sets of ``a`` and ``b``; returns the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._components -= 1
        return ra

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def set_size(self, x: Hashable) -> int:
        return self._size[self.find(x)]

    def groups(self) -> Dict[Hashable, list]:
        """Map representative -> sorted-insertion list of members."""
        out: Dict[Hashable, list] = {}
        for x in self._parent:
            out.setdefault(self.find(x), []).append(x)
        return out

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)
