"""Core data structures shared by the k-core maintenance algorithms.

This subpackage is substrate code: none of it knows about graphs or
hypergraphs.  It provides

* :mod:`repro.structures.hindex` -- h-index kernels (Definition 3 of the
  paper), including incremental variants used by the frontier algorithms.
* :mod:`repro.structures.disjoint_set` -- union-find, used to materialise
  connected cores from core values (paper reference [10]).
* :mod:`repro.structures.bucket_queue` -- the monotone bucket priority queue
  behind O(n + m) peeling.
* :mod:`repro.structures.bitset64` -- fixed-width 64-bit sets, the ``setmb``
  mini-batch representation of the ``U`` / ``P`` sets of Algorithm 5.
* :mod:`repro.structures.level_accumulator` -- the sparse ``I``/``D``/``R``
  maps from tau-level to counts used by Algorithms 3 and 4.
"""

from repro.structures.bitset64 import Bitset64
from repro.structures.bucket_queue import BucketQueue
from repro.structures.disjoint_set import DisjointSet
from repro.structures.hindex import (
    h_index,
    h_index_counting,
    h_index_counting_scratch,
    h_index_of_counts,
    h_index_sorted,
)
from repro.structures.level_accumulator import LevelAccumulator

__all__ = [
    "Bitset64",
    "BucketQueue",
    "DisjointSet",
    "LevelAccumulator",
    "h_index",
    "h_index_counting",
    "h_index_counting_scratch",
    "h_index_of_counts",
    "h_index_sorted",
]
