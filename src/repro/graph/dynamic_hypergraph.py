"""Fully dynamic hypergraph under the pin-change model.

This is the paper's more general dynamic model (Section II-C): the stream
carries *pin* changes, so hyperedges themselves grow and shrink over time.
Hyperedges are implicitly created when their first pin arrives and destroyed
when their last pin leaves, mirroring the implicit vertex lifecycle.

The structure also hosts the paper's *cached hyperedge minimum* optimisation
(Section IV-A: "the minimums on hyperedges are cached.  It is possible to
only store a single minimum, as this will not have a negative impact on the
convergence or correctness"): :class:`MinCache` keeps, per hyperedge, the
minimum of an external per-vertex value array (the algorithms' tau) together
with one witness vertex, so the frequent "minimum over the other pins"
query of Algorithm 2 line 8 is O(1) unless the querying vertex is itself the
witness.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.graph.substrate import Change, EdgeId, Vertex

__all__ = ["DynamicHypergraph", "MinCache"]


class DynamicHypergraph:
    """Dynamic hypergraph implementing ``Substrate``.

    >>> h = DynamicHypergraph.from_hyperedges({"e1": [1, 2, 3], "e2": [3, 4]})
    >>> h.degree(3)
    2
    >>> sorted(h.neighbors(3))
    [1, 2, 4]
    >>> removed = h.remove_pin("e2", 4)
    >>> h.pin_count("e2")
    1
    """

    is_hypergraph = True

    def __init__(self) -> None:
        self._pins: Dict[EdgeId, Set[Vertex]] = {}
        self._incidence: Dict[Vertex, Set[EdgeId]] = {}
        self._num_pins = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_hyperedges(
        cls, hyperedges: Mapping[EdgeId, Iterable[Vertex]] | Iterable[Iterable[Vertex]]
    ) -> "DynamicHypergraph":
        """Build from ``{edge_id: pins}`` or a plain iterable of pin lists
        (edges then get ids ``0, 1, 2, ...``)."""
        h = cls()
        items: Iterable[Tuple[EdgeId, Iterable[Vertex]]]
        if isinstance(hyperedges, Mapping):
            items = hyperedges.items()
        else:
            items = enumerate(hyperedges)
        for e, pins in items:
            for v in pins:
                h.add_pin(e, v)
        return h

    def copy(self) -> "DynamicHypergraph":
        h = DynamicHypergraph()
        h._pins = {e: set(p) for e, p in self._pins.items()}
        h._incidence = {v: set(es) for v, es in self._incidence.items()}
        h._num_pins = self._num_pins
        return h

    # -- mutation ---------------------------------------------------------------
    def add_pin(self, e: EdgeId, v: Vertex) -> bool:
        """Insert pin (e, v); creates ``e``/``v`` implicitly.  False if present."""
        pins = self._pins.setdefault(e, set())
        if v in pins:
            return False
        pins.add(v)
        self._incidence.setdefault(v, set()).add(e)
        self._num_pins += 1
        return True

    def remove_pin(self, e: EdgeId, v: Vertex) -> bool:
        """Delete pin (e, v); destroys ``e``/``v`` at zero.  False if absent."""
        pins = self._pins.get(e)
        if pins is None or v not in pins:
            return False
        pins.discard(v)
        if not pins:
            del self._pins[e]
        inc = self._incidence[v]
        inc.discard(e)
        if not inc:
            del self._incidence[v]
        self._num_pins -= 1
        return True

    def add_hyperedge(self, e: EdgeId, pins: Iterable[Vertex]) -> None:
        for v in pins:
            self.add_pin(e, v)

    def remove_hyperedge(self, e: EdgeId) -> None:
        for v in list(self._pins.get(e, ())):
            self.remove_pin(e, v)

    # -- Substrate protocol ----------------------------------------------------
    def vertices(self) -> Iterator[Vertex]:
        return iter(self._incidence)

    def num_vertices(self) -> int:
        return len(self._incidence)

    def num_edges(self) -> int:
        return len(self._pins)

    def num_pins(self) -> int:
        return self._num_pins

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._incidence

    def has_edge(self, e: EdgeId) -> bool:
        return e in self._pins

    def has_pin(self, e: EdgeId, v: Vertex) -> bool:
        return v in self._pins.get(e, ())

    def degree(self, v: Vertex) -> int:
        inc = self._incidence.get(v)
        return len(inc) if inc else 0

    def incident(self, v: Vertex) -> Iterable[EdgeId]:
        return self._incidence.get(v, ())

    def pins(self, e: EdgeId) -> Iterable[Vertex]:
        return self._pins.get(e, ())

    def pin_count(self, e: EdgeId) -> int:
        pins = self._pins.get(e)
        return len(pins) if pins else 0

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        out: Set[Vertex] = set()
        for e in self._incidence.get(v, ()):
            out.update(self._pins[e])
        out.discard(v)
        return out

    def apply(self, change: Change) -> bool:
        if change.insert:
            return self.add_pin(change.edge, change.vertex)
        return self.remove_pin(change.edge, change.vertex)

    # -- conveniences ----------------------------------------------------------
    def hyperedges(self) -> Iterator[Tuple[EdgeId, Set[Vertex]]]:
        return iter(self._pins.items())

    def edge_ids(self) -> Iterator[EdgeId]:
        return iter(self._pins)

    def max_degree(self) -> int:
        return max((len(es) for es in self._incidence.values()), default=0)

    def max_pin_count(self) -> int:
        return max((len(p) for p in self._pins.values()), default=0)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._incidence

    def __repr__(self) -> str:
        return (
            f"DynamicHypergraph(|V|={self.num_vertices()}, "
            f"|E|={self.num_edges()}, pins={self._num_pins})"
        )


class MinCache:
    """Per-hyperedge cached minimum of an external per-vertex value map.

    ``min_excluding(e, v)`` answers Algorithm 2 line 8 --
    ``min_{w in e, w != v} tau[w]`` -- in O(1) when the cached witness is not
    ``v`` and the cache is fresh; otherwise it rescans the pins of ``e``.
    Callers must:

    * :meth:`on_value_change` whenever a vertex's tau changes, and
    * :meth:`invalidate` whenever a hyperedge's pin set changes.

    ``charge`` (if given) is called with the number of pin reads performed,
    so the simulated runtime can account the cache's cost behaviour; the
    min-cache ablation benchmark flips ``enabled``.
    """

    def __init__(self, sub, tau: Dict[Vertex, int], *, enabled: bool = True, charge=None) -> None:
        self._sub = sub
        self._tau = tau
        self.enabled = enabled
        self._cache: Dict[EdgeId, Tuple[float, Optional[Vertex]]] = {}
        self._charge = charge if charge is not None else (lambda n: None)

    def _scan(self, e: EdgeId) -> Tuple[float, Optional[Vertex]]:
        best: float = math.inf
        witness: Optional[Vertex] = None
        tau = self._tau
        n = 0
        for w in self._sub.pins(e):
            n += 1
            t = tau.get(w, 0)
            if t < best:
                best, witness = t, w
        self._charge(n)
        return best, witness

    def edge_min(self, e: EdgeId) -> float:
        """Minimum tau over all pins of ``e`` (inf for a missing edge)."""
        if not self.enabled:
            return self._scan(e)[0]
        entry = self._cache.get(e)
        if entry is None:
            entry = self._scan(e)
            self._cache[e] = entry
        return entry[0]

    def min_excluding(self, e: EdgeId, v: Vertex) -> float:
        """``min_{w in e, w != v} tau[w]``; ``inf`` if ``v`` is the only pin."""
        if not self.enabled:
            best: float = math.inf
            tau = self._tau
            n = 0
            for w in self._sub.pins(e):
                n += 1
                if w is not v and w != v:
                    t = tau.get(w, 0)
                    if t < best:
                        best = t
            self._charge(n)
            return best
        entry = self._cache.get(e)
        if entry is None:
            entry = self._scan(e)
            self._cache[e] = entry
        mn, witness = entry
        if witness is None or witness == v:
            # v is (or may be) the witness: rescan excluding v.  We keep the
            # single-minimum representation the paper describes rather than a
            # (min, second-min) pair; the rescan is the price and only hits
            # the minimum vertex of each edge.
            best = math.inf
            tau = self._tau
            n = 0
            for w in self._sub.pins(e):
                n += 1
                if w != v:
                    t = tau.get(w, 0)
                    if t < best:
                        best = t
            self._charge(n)
            return best
        return mn

    def on_value_change(self, v: Vertex) -> None:
        """tau[v] changed: refresh cache entries of incident edges."""
        if not self.enabled:
            return
        tau_v = self._tau.get(v, 0)
        for e in self._sub.incident(v):
            entry = self._cache.get(e)
            if entry is None:
                continue
            mn, witness = entry
            if witness == v or tau_v < mn:
                if tau_v <= mn:
                    # v became (or stays) the minimum: cheap in-place update
                    self._cache[e] = (tau_v, v)
                    self._charge(1)
                else:
                    # the previous witness rose; rescan
                    self._cache[e] = self._scan(e)

    def invalidate(self, e: EdgeId) -> None:
        """Pin set of ``e`` changed: drop its entry."""
        self._cache.pop(e, None)

    def clear(self) -> None:
        self._cache.clear()
