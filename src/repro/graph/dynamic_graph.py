"""Fully dynamic simple undirected graph.

Storage is a single adjacency map ``vertex -> set(neighbours)``.  The graph
presents the hypergraph :class:`~repro.graph.substrate.Substrate` protocol
with each edge a two-pin hyperedge whose id is the canonical sorted endpoint
pair, so no separate edge->pins table is needed.

Matching the paper's implementation notes (Section V):

* vertex ids are arbitrary (hypersparse) -- labels need not be contiguous
  and the paper's 64-bit unsigned ids are just Python ints here;
* vertices are implicitly *deleted when their degree drops to zero and
  created when their degree increases from zero*.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.graph.substrate import Change, EdgeId, Vertex, edge_id, graph_edge_changes

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """Simple undirected dynamic graph implementing ``Substrate``.

    >>> g = DynamicGraph.from_edges([(1, 2), (2, 3)])
    >>> g.degree(2)
    2
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> removed = g.remove_edge(1, 2)
    >>> g.has_vertex(1)
    False
    """

    is_hypergraph = False

    def __init__(self) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[Vertex, Vertex]]) -> "DynamicGraph":
        g = cls()
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def copy(self) -> "DynamicGraph":
        g = DynamicGraph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    # -- graph-level mutation --------------------------------------------------
    def add_edge(self, u: Vertex, v: Vertex) -> bool:
        """Insert edge {u, v}.  Returns False if already present."""
        if u == v:
            raise ValueError(f"self-loop {u!r} not allowed")
        nbrs = self._adj.setdefault(u, set())
        if v in nbrs:
            return False
        nbrs.add(v)
        self._adj.setdefault(v, set()).add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> bool:
        """Delete edge {u, v}.  Returns False if absent."""
        nbrs = self._adj.get(u)
        if nbrs is None or v not in nbrs:
            return False
        nbrs.discard(v)
        vnbrs = self._adj[v]
        vnbrs.discard(u)
        # implicit vertex deletion at degree zero (hypersparse model)
        if not nbrs:
            del self._adj[u]
        if not vnbrs:
            del self._adj[v]
        self._num_edges -= 1
        return True

    def has_graph_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._adj.get(u, ())

    def edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Each edge once, as its canonical id."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                # canonical orientation without building an edge_id tuple
                # per neighbour (self-loops cannot exist, so u != v)
                if u <= v:
                    yield (u, v)

    # -- Substrate protocol ----------------------------------------------------
    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def num_vertices(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return self._num_edges

    def num_pins(self) -> int:
        return 2 * self._num_edges

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, e: EdgeId) -> bool:
        u, v = e
        return self.has_graph_edge(u, v)

    def has_pin(self, e: EdgeId, v: Vertex) -> bool:
        return v in e and self.has_edge(e)

    def degree(self, v: Vertex) -> int:
        nbrs = self._adj.get(v)
        return len(nbrs) if nbrs else 0

    def incident(self, v: Vertex) -> Iterator[EdgeId]:
        for w in self._adj.get(v, ()):
            yield edge_id(v, w)

    def pins(self, e: EdgeId) -> Tuple[Vertex, Vertex]:
        return e

    def pin_count(self, e: EdgeId) -> int:
        return 2

    def neighbors(self, v: Vertex) -> Iterable[Vertex]:
        return self._adj.get(v, ())

    def apply(self, change: Change) -> bool:
        """Apply a pin change.

        A graph edge is a two-pin hyperedge; applying either pin change of
        the pair inserts/deletes the whole edge, and the second one is then
        a structural no-op (returns False).  This lets the unified
        :func:`~repro.graph.substrate.graph_edge_changes` pairs flow through
        the same ``MaintainH`` loop as hypergraph pin changes.
        """
        u, v = change.edge
        if change.vertex not in (u, v):
            raise ValueError(f"pin {change.vertex!r} not an endpoint of {change.edge!r}")
        if change.insert:
            return self.add_edge(u, v)
        return self.remove_edge(u, v)

    # -- conveniences ----------------------------------------------------------
    def degree_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for nbrs in self._adj.values():
            d = len(nbrs)
            hist[d] = hist.get(d, 0) + 1
        return hist

    def max_degree(self) -> int:
        """Delta(G); 0 for the empty graph."""
        return max((len(n) for n in self._adj.values()), default=0)

    def edge_list(self) -> List[Tuple[Vertex, Vertex]]:
        return sorted(self.edges())

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __repr__(self) -> str:
        return f"DynamicGraph(|V|={self.num_vertices()}, |E|={self._num_edges})"
