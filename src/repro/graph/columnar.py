"""Columnar pin-change batches: id arrays instead of ``Change`` objects.

The per-:class:`~repro.graph.substrate.Change` batch representation is
what the maintenance *semantics* are written against, but on the array
engine it is also where the steady-state time goes: every record is a
Python object, every structural application a chain of dict lookups, and
every classification a Python callback.  A :class:`ColumnarBatch` carries
the same stream as three NumPy columns:

* ``col_a`` -- for graphs the canonical *smaller* endpoint of each edge
  unit, for hypergraphs the hyperedge label, as ``int64``;
* ``col_b`` -- the other endpoint / the pin vertex label, as ``int64``;
* ``insert`` -- the change direction per unit, as ``bool``.

One row is one *unit*: a whole graph edge (the twin pin records of the
per-Change encoding collapse into it) or a single hypergraph pin.  Only
integer labels columnarise -- :meth:`from_batch` returns ``None`` for
anything else, and callers fall back to the per-Change path, which
remains the reference semantics and the dict backend's only route.

A ``ColumnarBatch`` still quacks like a batch (``__iter__`` yields
equivalent ``Change`` records, ``__len__`` counts units), so every
legacy consumer -- ``maintain_h``, the set-family algorithms, the WAL --
accepts one unchanged; the array backend's bulk kernels
(:mod:`repro.engine.columnar`) intercept it before any ``Change`` is
materialised.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.graph.substrate import Change

__all__ = ["ColumnarBatch"]


def _as_int64(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("columnar batch columns must be one-dimensional")
    return arr


class ColumnarBatch:
    """A batch of pin changes as flat ``int64``/``bool`` columns."""

    __slots__ = ("col_a", "col_b", "insert", "is_hyper")

    def __init__(self, col_a, col_b, insert, *, is_hyper: bool) -> None:
        self.col_a = _as_int64(col_a)
        self.col_b = _as_int64(col_b)
        self.insert = np.asarray(insert, dtype=bool)
        if not (len(self.col_a) == len(self.col_b) == len(self.insert)):
            raise ValueError("columnar batch columns must share one length")
        self.is_hyper = bool(is_hyper)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_graph_edges(cls, edges, insert: bool) -> "ColumnarBatch":
        """Columnar twin of :meth:`Batch.from_graph_edges`: ``edges`` is an
        ``(n, 2)`` array-like of integer endpoints, one row per edge."""
        arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        a = np.minimum(arr[:, 0], arr[:, 1])
        b = np.maximum(arr[:, 0], arr[:, 1])
        ins = np.full(len(arr), bool(insert), dtype=bool)
        return cls(a, b, ins, is_hyper=False)

    @classmethod
    def from_pins(cls, edges, vertices, insert) -> "ColumnarBatch":
        """Hypergraph pin-change columns: parallel arrays of integer
        hyperedge labels, pin vertex labels, and directions."""
        ins = np.asarray(insert, dtype=bool)
        if ins.shape == ():
            ins = np.full(len(np.asarray(edges)), bool(insert), dtype=bool)
        return cls(edges, vertices, ins, is_hyper=True)

    @classmethod
    def from_batch(cls, batch: Iterable[Change], *,
                   is_hyper: bool) -> Optional["ColumnarBatch"]:
        """Convert a per-``Change`` batch; ``None`` when it cannot be
        represented (non-integer labels, or a unit changed twice --
        order-sensitive patterns stay on the per-Change path).

        Graph twin records (the two pin changes of one edge) collapse to
        one row; a graph edge appearing with *both* directions, or a
        hypergraph pin changed more than once, is rejected.
        """
        a_out = []
        b_out = []
        ins_out = []
        seen = {}
        try:
            if is_hyper:
                for c in batch:
                    e = c.edge
                    v = c.vertex
                    if type(e) is not int or type(v) is not int:
                        return None
                    if (e, v) in seen:
                        return None
                    seen[(e, v)] = True
                    a_out.append(e)
                    b_out.append(v)
                    ins_out.append(c.insert)
            else:
                for c in batch:
                    e = c.edge
                    if type(e) is not tuple or len(e) != 2:
                        return None
                    u, v = e
                    if type(u) is not int or type(v) is not int:
                        return None
                    prev = seen.get(e)
                    if prev is None:
                        seen[e] = c.insert
                        a_out.append(u)
                        b_out.append(v)
                        ins_out.append(c.insert)
                    elif prev != c.insert:
                        # both directions of one edge: order-sensitive
                        return None
                    # same-direction twin/duplicate: collapses into the row
        except (TypeError, AttributeError):
            return None
        return cls(
            np.array(a_out, dtype=np.int64),
            np.array(b_out, dtype=np.int64),
            np.array(ins_out, dtype=bool),
            is_hyper=is_hyper,
        )

    # -- batch protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.col_a)

    @property
    def n_pin_records(self) -> int:
        """Pin-record count of the per-Change encoding (graph edges carry
        two pin records per unit)."""
        return len(self.col_a) * (1 if self.is_hyper else 2)

    def __iter__(self) -> Iterator[Change]:
        """Compatibility iteration: materialise equivalent ``Change``
        records (one per unit -- either pin record moves a whole graph
        edge, so the twin is redundant for structural consumers)."""
        a = self.col_a.tolist()
        b = self.col_b.tolist()
        ins = self.insert.tolist()
        if self.is_hyper:
            for e, v, i in zip(a, b, ins):
                yield Change(e, v, i)
        else:
            for u, v, i in zip(a, b, ins):
                yield Change((u, v), u, i)

    def to_batch(self):
        """Materialise as a per-Change :class:`~repro.graph.batch.Batch`."""
        from repro.graph.batch import Batch

        return Batch(list(self))

    # -- routing ---------------------------------------------------------------
    def split_by_owner(self, owner, nodes: int, *,
                       edge_hosts=None) -> "dict[int, ColumnarBatch]":
        """Owner-keyed split into per-shard sub-batches (the router's cut).

        Each row lands in the sub-batch of every node that must apply it:
        for a graph edge the two endpoint owners; for a hypergraph pin the
        owner of the pin vertex plus every current host of the hyperedge
        (``edge_hosts(e)`` -> iterable of node ids, from the router's
        directory).  Rows keep their batch order within each sub-batch.
        Only non-empty sub-batches are returned.
        """
        a = self.col_a.tolist()
        b = self.col_b.tolist()
        rows: dict = {n: [] for n in range(nodes)}
        if self.is_hyper:
            for i, (e, v) in enumerate(zip(a, b)):
                dests = {owner(v)}
                if edge_hosts is not None:
                    dests.update(edge_hosts(e))
                for n in dests:
                    rows[n].append(i)
        else:
            for i, (u, v) in enumerate(zip(a, b)):
                for n in {owner(u), owner(v)}:
                    rows[n].append(i)
        out = {}
        for n, idx in rows.items():
            if idx:
                out[n] = ColumnarBatch(self.col_a[idx], self.col_b[idx],
                                       self.insert[idx], is_hyper=self.is_hyper)
        return out

    # -- views ----------------------------------------------------------------
    def deletions_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        mask = ~self.insert
        return self.col_a[mask], self.col_b[mask]

    def insertions_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        mask = self.insert
        return self.col_a[mask], self.col_b[mask]

    def is_insert_only(self) -> bool:
        return bool(self.insert.all())

    def is_delete_only(self) -> bool:
        return not bool(self.insert.any())

    # -- validation -------------------------------------------------------------
    def validate_against(self, sub) -> None:
        """Vectorised pre-flight validation (the columnar twin of
        :func:`repro.resilience.validation.validate_batch`)."""
        from repro.graph.validate import validate_columnar

        validate_columnar(sub, self)

    def __repr__(self) -> str:
        ni = int(self.insert.sum())
        kind = "hyper" if self.is_hyper else "graph"
        return f"ColumnarBatch({kind}, +{ni}/-{len(self) - ni})"
