"""Synthetic graph and hypergraph generators.

These are the dataset substitutes (see DESIGN.md section 1): the paper's
SNAP / KONECT datasets are unavailable offline, so each is replaced by a
generator with a matching skew class.  All generators are deterministic
given a seed and return our dynamic structures.

Graph generators
----------------
* :func:`erdos_renyi` -- G(n, m) uniform random simple graphs.
* :func:`barabasi_albert` -- preferential attachment (power-law degrees,
  social-network analogue).
* :func:`rmat` -- Kronecker-style RMAT (web / citation skew).
* :func:`small_world` -- ring lattice + rewiring (high clustering).
* :func:`path_graph` / :func:`cycle_graph` / :func:`clique` /
  :func:`core_ladder` -- deterministic shapes used by correctness tests
  (e.g. the Lemma 1 path construction and Fig. 4's star augmentation).

Hypergraph generators
---------------------
* :func:`affiliation_hypergraph` -- users x groups with preferential group
  sizes (OrkutGroup / LiveJGroup analogue).
* :func:`cooccurrence_hypergraph` -- random small co-occurrence events
  (Fig. 3's pandemic contact model).
* :func:`star_tracker_hypergraph` -- very many small-degree vertices with a
  few giant hyperedges (WebTrackers analogue: extreme vertex sparsity).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.dynamic_hypergraph import DynamicHypergraph

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "powerlaw_social",
    "rmat",
    "small_world",
    "path_graph",
    "cycle_graph",
    "clique",
    "core_ladder",
    "affiliation_hypergraph",
    "cooccurrence_hypergraph",
    "star_tracker_hypergraph",
]


# ---------------------------------------------------------------------------
# deterministic shapes
# ---------------------------------------------------------------------------

def path_graph(n: int) -> DynamicGraph:
    """P_n: every vertex has coreness 1 (the Lemma 1 construction)."""
    return DynamicGraph.from_edges((i, i + 1) for i in range(n - 1))


def cycle_graph(n: int) -> DynamicGraph:
    if n < 3:
        raise ValueError("cycles need >= 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def clique(n: int, offset: int = 0) -> DynamicGraph:
    """K_n: every vertex has coreness n - 1."""
    return DynamicGraph.from_edges(
        (offset + i, offset + j) for i in range(n) for j in range(i + 1, n)
    )


def core_ladder(levels: int, width: int = 4) -> DynamicGraph:
    """Chained cliques of growing size: a graph whose core decomposition has
    one subcore per level (coreness ``width-1+i`` at level ``i``).  Useful
    for exercising multi-level batches in the ``mod`` resolution logic."""
    g = DynamicGraph()
    offset = 0
    prev_last = None
    for lvl in range(levels):
        size = width + lvl
        for i in range(size):
            for j in range(i + 1, size):
                g.add_edge(offset + i, offset + j)
        if prev_last is not None:
            g.add_edge(prev_last, offset)
        prev_last = offset + size - 1
        offset += size
    return g


# ---------------------------------------------------------------------------
# random graphs
# ---------------------------------------------------------------------------

def erdos_renyi(n: int, m: int, seed: int = 0) -> DynamicGraph:
    """G(n, m): m distinct uniform random edges over vertices 0..n-1."""
    if m > n * (n - 1) // 2:
        raise ValueError("more edges requested than pairs exist")
    rng = random.Random(seed)
    g = DynamicGraph()
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def barabasi_albert(n: int, m_per_vertex: int, seed: int = 0) -> DynamicGraph:
    """Preferential attachment: each new vertex attaches to ``m_per_vertex``
    existing vertices sampled proportionally to degree."""
    if n <= m_per_vertex:
        raise ValueError("need n > m_per_vertex")
    rng = random.Random(seed)
    g = clique(m_per_vertex + 1)
    # repeated-endpoint list gives degree-proportional sampling
    targets: List[int] = []
    for u, v in g.edge_list():
        targets.extend((u, v))
    for new in range(m_per_vertex + 1, n):
        chosen: Set[int] = set()
        while len(chosen) < m_per_vertex:
            chosen.add(targets[rng.randrange(len(targets))])
        for t in chosen:
            g.add_edge(new, t)
            targets.extend((new, t))
    return g


def powerlaw_social(n: int, m_max: int, seed: int = 0, alpha: float = 1.6) -> DynamicGraph:
    """Preferential attachment with heterogeneous attachment counts.

    Each arriving vertex attaches to ``m_i`` existing vertices where
    ``m_i`` follows a truncated power law on ``[1, m_max]`` with exponent
    ``alpha``.  Unlike plain Barabasi-Albert (whose core values collapse
    to the single value ``m``), the heterogeneous counts produce the
    spread-out, power-law *coreness* distributions measured on real social
    networks -- the property that keeps subcores local and makes
    maintenance workloads realistic (Section V-A: "the maximum coreness
    and complexity of core hierarchy additionally impact runtime").
    """
    if n <= m_max:
        raise ValueError("need n > m_max")
    rng = random.Random(seed)
    g = clique(m_max + 1)
    targets: List[int] = []
    for u, v in g.edge_list():
        targets.extend((u, v))
    # discrete truncated power law via inverse transform on the CDF
    weights = [k ** -alpha for k in range(1, m_max + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)

    def draw_m() -> int:
        r = rng.random()
        for k, c in enumerate(cdf, start=1):
            if r <= c:
                return k
        return m_max

    for new in range(m_max + 1, n):
        m_i = draw_m()
        chosen: Set[int] = set()
        while len(chosen) < m_i:
            chosen.add(targets[rng.randrange(len(targets))])
        for t in chosen:
            g.add_edge(new, t)
            targets.extend((new, t))
    return g


def rmat(scale: int, edge_factor: int, seed: int = 0,
         a: float = 0.57, b: float = 0.19, c: float = 0.19) -> DynamicGraph:
    """RMAT/Kronecker generator: 2**scale vertices, ~edge_factor * n edges.

    Duplicate and self-loop samples are rejected, so the realised edge count
    can fall slightly short on tiny scales.
    """
    rng = random.Random(seed)
    n = 1 << scale
    target = edge_factor * n
    g = DynamicGraph()
    attempts = 0
    max_attempts = target * 20
    while g.num_edges() < target and attempts < max_attempts:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            g.add_edge(u, v)
    return g


def small_world(n: int, k: int, p: float, seed: int = 0) -> DynamicGraph:
    """Watts-Strogatz-style: ring lattice with k nearest neighbours per side,
    each edge rewired with probability p."""
    if k < 1 or n <= 2 * k:
        raise ValueError("need n > 2k >= 2")
    rng = random.Random(seed)
    g = DynamicGraph()
    for i in range(n):
        for j in range(1, k + 1):
            g.add_edge(i, (i + j) % n)
    for u, v in list(g.edge_list()):
        if rng.random() < p:
            w = rng.randrange(n)
            if w != u and not g.has_graph_edge(u, w):
                g.remove_edge(u, v)
                g.add_edge(u, w)
    return g


# ---------------------------------------------------------------------------
# hypergraphs
# ---------------------------------------------------------------------------

def affiliation_hypergraph(
    n_vertices: int,
    n_edges: int,
    mean_pins: float,
    seed: int = 0,
    skew: float = 1.5,
) -> DynamicHypergraph:
    """Users-join-groups affiliation model.

    Hyperedge (group) sizes follow a discrete power law with exponent
    ``skew`` scaled to ``mean_pins``; members are sampled preferentially by
    current vertex degree (rich-get-richer), matching the heavy-tailed
    group-membership distributions of the OrkutGroup / LiveJGroup datasets.
    """
    rng = random.Random(seed)
    h = DynamicHypergraph()
    # degree-proportional sampling pool, seeded uniformly
    pool: List[int] = list(range(n_vertices))
    for e in range(n_edges):
        # heavy-tailed size >= 1
        size = max(1, int(mean_pins * (rng.paretovariate(skew) / (skew / (skew - 1)))))
        size = min(size, n_vertices)
        members: Set[int] = set()
        while len(members) < size:
            if rng.random() < 0.5:
                members.add(pool[rng.randrange(len(pool))])
            else:
                members.add(rng.randrange(n_vertices))
        for v in members:
            h.add_pin(e, v)
            pool.append(v)
    return h


def cooccurrence_hypergraph(
    n_vertices: int, n_events: int, mean_size: int, seed: int = 0
) -> DynamicHypergraph:
    """Fig. 3 style contact events: small hyperedges over a community-biased
    population (each event draws most members from one random community)."""
    rng = random.Random(seed)
    n_comms = max(1, n_vertices // 20)
    h = DynamicHypergraph()
    for e in range(n_events):
        comm = rng.randrange(n_comms)
        size = max(2, int(rng.gauss(mean_size, mean_size / 3)))
        members: Set[int] = set()
        while len(members) < size:
            if rng.random() < 0.8:
                members.add((comm * 20 + rng.randrange(20)) % n_vertices)
            else:
                members.add(rng.randrange(n_vertices))
        for v in members:
            h.add_pin(e, v)
    return h


def star_tracker_hypergraph(
    n_vertices: int, n_edges: int, seed: int = 0
) -> DynamicHypergraph:
    """WebTrackers analogue: most vertices touch 1-2 hyperedges, while a few
    giant hyperedges (trackers present on huge numbers of sites) hold a
    large fraction of all pins.  Extreme hypersparsity makes this workload
    memory-bound, which is how the harness models its early NUMA knee."""
    rng = random.Random(seed)
    h = DynamicHypergraph()
    n_giants = max(1, n_edges // 50)
    for e in range(n_edges):
        if e < n_giants:
            size = max(3, n_vertices // (10 * (e + 1)))
        else:
            size = rng.choice((1, 2, 2, 3))
        members = {rng.randrange(n_vertices) for _ in range(size)}
        for v in members:
            h.add_pin(e, v)
    return h
