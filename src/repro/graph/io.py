"""Edge-list and pin-list readers/writers.

Formats:

* SNAP-style edge lists (what Table I datasets ship as): one ``u v`` pair
  per line, ``#`` comments, undirected, duplicates and self-loops dropped.
* KONECT-style pin lists (Table II): one ``edge vertex`` pair per line --
  i.e. the bipartite incidence representation KONECT uses for affiliation
  networks, ``%`` or ``#`` comments.

Both writers emit files the matching reader round-trips.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.dynamic_hypergraph import DynamicHypergraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_pin_list",
    "write_pin_list",
]

PathLike = Union[str, Path, TextIO]


def _open_read(src: PathLike):
    if hasattr(src, "read"):
        return src, False
    return open(src, "r", encoding="utf-8"), True


def _open_write(dst: PathLike):
    if hasattr(dst, "write"):
        return dst, False
    return open(dst, "w", encoding="utf-8"), True


def read_edge_list(src: PathLike) -> DynamicGraph:
    """Parse a SNAP-style undirected edge list into a :class:`DynamicGraph`.

    Self-loops and duplicate edges are silently dropped, matching the
    paper's "simple, undirected graphs" preprocessing.
    """
    f, close = _open_read(src)
    try:
        g = DynamicGraph()
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u != v:
                g.add_edge(u, v)
        return g
    finally:
        if close:
            f.close()


def write_edge_list(g: DynamicGraph, dst: PathLike, *, header: str = "") -> None:
    f, close = _open_write(dst)
    try:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        for u, v in g.edge_list():
            f.write(f"{u} {v}\n")
    finally:
        if close:
            f.close()


def read_pin_list(src: PathLike) -> DynamicHypergraph:
    """Parse a KONECT-style incidence list into a :class:`DynamicHypergraph`.

    Each line is ``edge_id vertex_id``; duplicate pins are dropped.
    """
    f, close = _open_read(src)
    try:
        h = DynamicHypergraph()
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: expected 'edge vertex', got {line!r}")
            h.add_pin(int(parts[0]), int(parts[1]))
        return h
    finally:
        if close:
            f.close()


def write_pin_list(h: DynamicHypergraph, dst: PathLike, *, header: str = "") -> None:
    f, close = _open_write(dst)
    try:
        if header:
            for line in header.splitlines():
                f.write(f"% {line}\n")
        for e, pins in sorted(h.hyperedges(), key=lambda kv: repr(kv[0])):
            for v in sorted(pins, key=repr):
                f.write(f"{e} {v}\n")
    finally:
        if close:
            f.close()
