"""Frozen CSR snapshots for the vectorised static algorithms.

The dynamic structures are hash-based for O(1) updates; the *static*
baselines (peeling and h-index from scratch, which the figures compare
maintenance against) want cache-friendly arrays.  ``CSRGraph`` freezes a
graph into the classic ``indptr``/``indices`` pair; ``CSRHypergraph``
freezes a hypergraph into both directions of the incidence (vertex->edges
and edge->pins).  Vertex/edge labels are densified; the mapping back is
kept.

These snapshots are read-only by design -- rebuilding after mutation is the
"recompute from scratch" cost the maintenance algorithms are beating.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

__all__ = ["CSRGraph", "CSRHypergraph"]


class CSRGraph:
    """Compressed sparse row snapshot of a :class:`DynamicGraph`.

    Attributes
    ----------
    n : number of vertices
    indptr : int64[n + 1]
    indices : int64[total directed arcs] -- both directions stored
    labels : list mapping dense index -> original vertex label
    index : dict mapping original label -> dense index
    """

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray,
                 labels: List[Hashable]) -> None:
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self.index: Dict[Hashable, int] = {lbl: i for i, lbl in enumerate(labels)}

    @classmethod
    def from_graph(cls, g) -> "CSRGraph":
        labels = sorted(g.vertices())
        index = {lbl: i for i, lbl in enumerate(labels)}
        n = len(labels)
        degrees = np.zeros(n, dtype=np.int64)
        for lbl in labels:
            degrees[index[lbl]] = g.degree(lbl)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = indptr[:-1].copy()
        for lbl in labels:
            u = index[lbl]
            for w in g.neighbors(lbl):
                indices[cursor[u]] = index[w]
                cursor[u] += 1
        return cls(n, indptr, indices, labels)

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, i: int) -> np.ndarray:
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def values_by_label(self, dense: np.ndarray) -> Dict[Hashable, int]:
        """Re-key a dense per-vertex array by original labels."""
        return {lbl: int(dense[i]) for i, lbl in enumerate(self.labels)}


class CSRHypergraph:
    """Two-directional incidence snapshot of a :class:`DynamicHypergraph`.

    ``v_indptr``/``v_edges`` list the incident edge indices of each vertex;
    ``e_indptr``/``e_pins`` list the pin vertex indices of each edge.
    """

    def __init__(self, n: int, m: int,
                 v_indptr: np.ndarray, v_edges: np.ndarray,
                 e_indptr: np.ndarray, e_pins: np.ndarray,
                 vlabels: List[Hashable], elabels: List[Hashable]) -> None:
        self.n = n
        self.m = m
        self.v_indptr = v_indptr
        self.v_edges = v_edges
        self.e_indptr = e_indptr
        self.e_pins = e_pins
        self.vlabels = vlabels
        self.elabels = elabels
        self.vindex: Dict[Hashable, int] = {l: i for i, l in enumerate(vlabels)}
        self.eindex: Dict[Hashable, int] = {l: i for i, l in enumerate(elabels)}

    @classmethod
    def from_hypergraph(cls, h) -> "CSRHypergraph":
        vlabels = sorted(h.vertices(), key=repr)
        elabels = sorted(h.edge_ids(), key=repr)
        vindex = {l: i for i, l in enumerate(vlabels)}
        eindex = {l: i for i, l in enumerate(elabels)}
        n, m = len(vlabels), len(elabels)

        vdeg = np.zeros(n, dtype=np.int64)
        esz = np.zeros(m, dtype=np.int64)
        for lbl in vlabels:
            vdeg[vindex[lbl]] = h.degree(lbl)
        for lbl in elabels:
            esz[eindex[lbl]] = h.pin_count(lbl)

        v_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(vdeg, out=v_indptr[1:])
        e_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(esz, out=e_indptr[1:])

        v_edges = np.empty(int(v_indptr[-1]), dtype=np.int64)
        e_pins = np.empty(int(e_indptr[-1]), dtype=np.int64)
        vcur = v_indptr[:-1].copy()
        ecur = e_indptr[:-1].copy()
        for elbl in elabels:
            e = eindex[elbl]
            for plbl in h.pins(elbl):
                v = vindex[plbl]
                v_edges[vcur[v]] = e
                vcur[v] += 1
                e_pins[ecur[e]] = v
                ecur[e] += 1
        return cls(n, m, v_indptr, v_edges, e_indptr, e_pins, vlabels, elabels)

    def vertex_degrees(self) -> np.ndarray:
        return np.diff(self.v_indptr)

    def edge_sizes(self) -> np.ndarray:
        return np.diff(self.e_indptr)

    def values_by_label(self, dense: np.ndarray) -> Dict[Hashable, int]:
        return {lbl: int(dense[i]) for i, lbl in enumerate(self.vlabels)}
