"""Batches and the paper's remove/reinsert experiment protocol.

Section II-C: a dynamic (hyper)graph is an infinite stream of changes; a
*batch* is an interval of that stream processed together.  Section V-A
describes how the paper turns static datasets into dynamic workloads:

    "First, we uniformly randomly select pins or edges and remove them from
    the graph.  We then insert them back again, and time both the removal
    and insert.  To test mixed insertion and removal times, we set our
    removal and insert size to be 3/2 the full batch size. [...] In each
    experiment, batches were removed and then re-inserted 50 times."

:class:`BatchProtocol` reproduces exactly that loop; :class:`Batch` is the
unit handed to the maintenance algorithms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.graph.substrate import Change, Vertex, graph_edge_changes

__all__ = ["Batch", "BatchProtocol", "coalesce_changes", "mixed_batch", "invert_batch"]


def coalesce_changes(changes: Iterable[Change]) -> List[Change]:
    """Drop opposing insert+delete pairs of the same pin within one batch.

    For each unit ``(edge, vertex)`` only the *last* change survives, and
    only if it differs in direction from the first -- an
    insert-then-delete (or delete-then-insert) of the same pin nets out
    to nothing and is removed entirely.  Because tau equals kappa between
    batches and the net structural effect is unchanged, the coalesced
    batch is maintenance-equivalent to the original (the dropped pair
    needs no I/D records at all).  Surviving changes keep their relative
    order.
    """
    first = {}
    last = {}
    for idx, c in enumerate(changes):
        key = (c.edge, c.vertex)
        if key not in first:
            first[key] = c.insert
        last[key] = (idx, c)
    kept = [
        (idx, c)
        for (key, (idx, c)) in last.items()
        if first[key] == c.insert
    ]
    kept.sort(key=lambda pair: pair[0])
    return [c for _, c in kept]


@dataclass
class Batch:
    """An ordered collection of pin changes processed as one unit."""

    changes: List[Change] = field(default_factory=list)

    def __iter__(self) -> Iterator[Change]:
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __getitem__(self, i):
        return self.changes[i]

    @property
    def insertions(self) -> List[Change]:
        return [c for c in self.changes if c.insert]

    @property
    def deletions(self) -> List[Change]:
        return [c for c in self.changes if not c.insert]

    def is_insert_only(self) -> bool:
        return all(c.insert for c in self.changes)

    def is_delete_only(self) -> bool:
        return not any(c.insert for c in self.changes)

    def extend(self, changes: Iterable[Change]) -> "Batch":
        self.changes.extend(changes)
        return self

    @classmethod
    def from_graph_edges(
        cls, edges: Iterable[Tuple[Vertex, Vertex]], insert: bool,
        *, coalesce: bool = True
    ) -> "Batch":
        b = cls()
        for u, v in edges:
            b.changes.extend(graph_edge_changes(u, v, insert))
        if coalesce:
            b.changes = coalesce_changes(b.changes)
        return b

    @classmethod
    def from_pins(
        cls, pins: Iterable[Tuple[object, Vertex, bool]],
        *, coalesce: bool = True
    ) -> "Batch":
        """Build from ``(edge, vertex, insert)`` triples (hypergraph pin
        streams); opposing insert+delete of one pin coalesce away before
        the batch reaches the engine."""
        b = cls([Change(e, v, bool(ins)) for e, v, ins in pins])
        if coalesce:
            b.changes = coalesce_changes(b.changes)
        return b

    def coalesced(self) -> "Batch":
        """A copy with opposing same-pin changes netted out
        (see :func:`coalesce_changes`)."""
        return Batch(coalesce_changes(self.changes))

    def touched_vertices(self) -> set:
        return {c.vertex for c in self.changes}

    def touched_edges(self) -> set:
        return {c.edge for c in self.changes}

    def __repr__(self) -> str:
        ni = sum(1 for c in self.changes if c.insert)
        return f"Batch(+{ni}/-{len(self.changes) - ni})"


def invert_batch(batch: Batch) -> Batch:
    """The batch that undoes ``batch`` (reverse order, flipped direction)."""
    return Batch([c.inverse() for c in reversed(batch.changes)])


def mixed_batch(deletions: Sequence[Change], insertions: Sequence[Change], rng: random.Random) -> Batch:
    """Interleave deletions and insertions uniformly at random.

    The paper's algorithms "do not require pre-processing on the stream to
    separate deletions and insertions" (Section V-D) -- mixed batches
    exercise exactly that.
    """
    merged = list(deletions) + list(insertions)
    rng.shuffle(merged)
    return Batch(merged)


class BatchProtocol:
    """The paper's remove-then-reinsert workload driver.

    Given a substrate (already loaded with a dataset), repeatedly:

    1. pick ``batch_size`` random present units (graph edges, or pins),
    2. emit the deletion batch, then the matching insertion batch
       (insert-only / delete-only experiments, Figs. 6-11), or
    3. for mixed experiments (Fig. 12), emit one batch holding
       ``batch_size`` deletions of present units interleaved with
       ``batch_size // 2`` re-insertions of previously removed units
       (the paper's "3/2 the full batch size" mixed sizing).

    The protocol mutates nothing itself: callers apply the emitted batches
    through a maintenance algorithm, which keeps the substrate in sync, so
    the generator's view (queried lazily) is always current.
    """

    def __init__(self, sub, *, seed: int = 0, pin_level: bool | None = None,
                 hyperedge_level: bool = False) -> None:
        self.sub = sub
        self.rng = random.Random(seed)
        # pin_level: sample single pins (hypergraph pin-change streams) or
        # whole graph edges.  Defaults to the substrate's nature.
        self.pin_level = sub.is_hypergraph if pin_level is None else pin_level
        # hyperedge_level: the paper's *other* dynamic-hypergraph model
        # (Section II-C, the [26] stream): units are whole immutable
        # hyperedges, realised here exactly as the paper prescribes -- "by
        # setting batch boundaries at full hyperedges".
        if hyperedge_level and not sub.is_hypergraph:
            raise ValueError("hyperedge_level streams require a hypergraph")
        self.hyperedge_level = hyperedge_level
        if hyperedge_level:
            self.pin_level = False

    # -- unit sampling ----------------------------------------------------------
    def _sample_present_unit_groups(self, k: int) -> List[List[Change]]:
        """k random present units, each as its group of deletion changes
        (1 change per pin unit, 2 per graph edge, |pins| per hyperedge)."""
        sub = self.sub
        if self.hyperedge_level:
            pool = list(sub.edge_ids())
            self.rng.shuffle(pool)
            groups = []
            for e in pool[:k]:
                pins = list(sub.pins(e))
                # Deterministic order without repr() on every pin: labels
                # within one hypergraph are mutually orderable in practice
                # (ints or strings); repr-keying is only the fallback for
                # exotic mixed-label graphs.
                try:
                    pins.sort()
                except TypeError:
                    pins.sort(key=repr)
                groups.append([Change(e, v, False) for v in pins])
            return groups
        if self.pin_level:
            pin_pool = [(e, v) for e, pins in sub.hyperedges() for v in pins]
            self.rng.shuffle(pin_pool)
            return [[Change(e, v, False)] for e, v in pin_pool[:k]]
        edge_pool = list(sub.edges())
        self.rng.shuffle(edge_pool)
        return [graph_edge_changes(u, v, False) for u, v in edge_pool[:k]]

    def _sample_present_units(self, k: int) -> List[Change]:
        """k random present units as *deletion* changes (flattened)."""
        return [c for group in self._sample_present_unit_groups(k) for c in group]

    # -- emitted experiments ------------------------------------------------------
    def remove_reinsert(self, batch_size: int) -> Tuple[Batch, Batch]:
        """One round of the insert/delete experiments.

        Returns ``(deletion_batch, insertion_batch)``; the insertion batch
        restores exactly what the deletion batch removed, so after both are
        applied the substrate is back to its original state.
        """
        dels = self._sample_present_units(batch_size)
        return Batch(list(dels)), invert_batch(Batch(list(dels)))

    def mixed(self, batch_size: int) -> Tuple[Batch, Batch, Batch]:
        """One mixed round: ``(prep_batch, mixed_batch, restore_batch)``.

        Following Section V-A's mixed sizing ("removal and insert size ...
        3/2 the full batch size"), the *timed* mixed batch contains
        ``batch_size`` deletions of present units interleaved uniformly with
        ``batch_size // 2`` insertions of units removed by the (untimed)
        prep batch.  The two unit sets are disjoint, so interleaving needs
        no ordering constraints.  Applying prep + mixed + restore returns
        the substrate to its original state.
        """
        groups = self._sample_present_unit_groups(batch_size + batch_size // 2)
        prep_dels = [c for g in groups[:batch_size // 2] for c in g]
        main_dels = [c for g in groups[batch_size // 2:] for c in g]
        prep = Batch(list(prep_dels))
        mixed = mixed_batch(main_dels, [c.inverse() for c in prep_dels], self.rng)
        restore = invert_batch(Batch(list(main_dels)))
        return prep, mixed, restore

    def rounds(self, batch_size: int, n_rounds: int, kind: str = "reinsert") -> Iterator[Tuple[Batch, ...]]:
        """Yield ``n_rounds`` experiment rounds of the requested kind."""
        for _ in range(n_rounds):
            if kind == "reinsert":
                yield self.remove_reinsert(batch_size)
            elif kind == "mixed":
                yield self.mixed(batch_size)
            else:
                raise ValueError(f"unknown round kind {kind!r}")
