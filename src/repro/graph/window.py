"""Sliding-window temporal streams.

The paper's motivating hypergraph (§II-E) is temporal: a hyperedge exists
because its members were "close enough to each other to spread diseases
*during a time period*".  The natural dynamic workload is therefore a
sliding window -- events enter when they happen and *expire* once they age
out -- producing batches that mix the newest insertions with the oldest
deletions, exactly the fully-dynamic mixed streams the maintainers handle
without pre-processing (§V-D).

:class:`SlidingWindowStream` turns a timestamped event sequence into such
batches.  It owns no graph state beyond the live-event ledger; apply the
emitted batches through a maintainer to keep a decomposition of "the last
``horizon`` time units" current.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.graph.batch import Batch
from repro.graph.substrate import Change, hyperedge_changes

__all__ = ["TimedEvent", "SlidingWindowStream"]

Vertex = Hashable


@dataclass(frozen=True)
class TimedEvent:
    """One hyperedge observation: ``pins`` co-occurred at ``time``."""

    time: float
    edge: Hashable
    pins: Tuple[Vertex, ...]

    @classmethod
    def of(cls, time: float, edge: Hashable, pins: Iterable[Vertex]) -> "TimedEvent":
        return cls(time, edge, tuple(pins))


class SlidingWindowStream:
    """Convert timestamped events into window-maintenance batches.

    Parameters
    ----------
    horizon:
        Window length: an event inserted at time ``t`` expires once the
        clock passes ``t + horizon``.

    Events must be fed in non-decreasing time order (checked).  Each call
    to :meth:`advance` consumes events up to the new clock and returns one
    batch holding their insertions interleaved after the expiries falling
    due -- ready for ``maintainer.apply_batch``.
    """

    def __init__(self, horizon: float) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon
        self.clock = float("-inf")
        self._live: Deque[TimedEvent] = deque()

    @property
    def live_events(self) -> int:
        return len(self._live)

    def _expiries(self, now: float) -> List[Change]:
        out: List[Change] = []
        while self._live and self._live[0].time + self.horizon <= now:
            ev = self._live.popleft()
            out.extend(hyperedge_changes(ev.edge, ev.pins, False))
        return out

    def advance(self, now: float, events: Sequence[TimedEvent] = ()) -> Batch:
        """Move the clock to ``now``, ingesting ``events`` (all of which
        must carry times in ``(self.clock, now]``)."""
        if now < self.clock:
            raise ValueError(f"clock moved backwards: {now} < {self.clock}")
        batch = Batch(self._expiries(now))
        last = self.clock
        for ev in sorted(events, key=lambda e: e.time):
            if ev.time < last:
                raise ValueError(f"event at {ev.time} is out of order")
            if ev.time > now:
                raise ValueError(f"event at {ev.time} is beyond the clock {now}")
            last = ev.time
            # an event may itself expire within this same advance
            if ev.time + self.horizon <= now:
                continue
            self._live.append(ev)
            batch.extend(hyperedge_changes(ev.edge, ev.pins, True))
        self.clock = now
        return batch

    def drain(self) -> Batch:
        """Expire everything (end of stream)."""
        batch = Batch()
        while self._live:
            ev = self._live.popleft()
            batch.extend(hyperedge_changes(ev.edge, ev.pins, False))
        return batch

    def replay(self, events: Sequence[TimedEvent], tick: float) -> Iterator[Tuple[float, Batch]]:
        """Yield ``(time, batch)`` pairs stepping the clock by ``tick``
        through a whole event sequence (a convenience driver)."""
        if not events:
            return
        events = sorted(events, key=lambda e: e.time)
        t = events[0].time
        i = 0
        end = events[-1].time + self.horizon
        while t <= end + tick:
            take: List[TimedEvent] = []
            while i < len(events) and events[i].time <= t:
                take.append(events[i])
                i += 1
            yield t, self.advance(t, take)
            t += tick
