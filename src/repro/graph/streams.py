"""Bursty change streams.

The paper's motivation (Section I): "In many practical applications, the
graph updates are bursty, both with periods of significant activity and
periods of relative calm.  Existing maintenance algorithms fail to handle
large bursts."  This module synthesises such streams so the examples and
the hybrid maintainer can be exercised on the workload the paper actually
targets: a sequence of batches whose sizes alternate between calm trickles
and heavy bursts.

:class:`BurstySchedule` produces batch sizes; :class:`BurstyStream` binds a
schedule to a substrate through the remove/reinsert protocol, yielding
ready-to-apply batches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.graph.batch import Batch, BatchProtocol

__all__ = ["BurstySchedule", "BurstyStream"]


@dataclass
class BurstySchedule:
    """Alternating calm/burst batch sizes.

    Periods are sampled geometrically: a calm period emits batches of
    ``calm_size`` (+-jitter), a burst multiplies by ``burst_factor``.

    >>> sizes = list(BurstySchedule(calm_size=4, burst_factor=10,
    ...                             p_burst=0.5, seed=1).sizes(6))
    >>> len(sizes)
    6
    """

    calm_size: int = 8
    burst_factor: int = 50
    p_burst: float = 0.15
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        # nonsense parameters silently produce degenerate streams (empty
        # batches, negative sizes, bursts *smaller* than calm) -- reject up
        # front with the constraint that was violated
        if self.calm_size < 1:
            raise ValueError(f"calm_size must be >= 1, got {self.calm_size}")
        if self.burst_factor < 1:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        if not 0.0 <= self.p_burst <= 1.0:
            raise ValueError(f"p_burst must be in [0, 1], got {self.p_burst}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def sizes(self, n_batches: int) -> Iterator[int]:
        rng = random.Random(self.seed)
        for _ in range(n_batches):
            base = self.calm_size
            if rng.random() < self.p_burst:
                base *= self.burst_factor
            noise = 1.0 + self.jitter * (2 * rng.random() - 1)
            yield max(1, int(base * noise))


class BurstyStream:
    """Bind a bursty schedule to a substrate via remove/reinsert rounds.

    Iterating yields ``(size, deletion_batch, insertion_batch)`` tuples;
    apply both through a maintainer to play the stream while leaving the
    substrate's cumulative content stationary (the standard trick for
    unbounded replay on a finite dataset).
    """

    def __init__(self, sub, schedule: BurstySchedule, *, seed: int = 0) -> None:
        self.proto = BatchProtocol(sub, seed=seed)
        self.schedule = schedule

    def rounds(self, n_batches: int) -> Iterator[Tuple[int, Batch, Batch]]:
        for size in self.schedule.sizes(n_batches):
            deletion, insertion = self.proto.remove_reinsert(size)
            yield size, deletion, insertion
