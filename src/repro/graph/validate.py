"""Structural consistency checks.

Used by the test-suite after randomized mutation sequences, and available to
users debugging their own change streams.  Each check raises
:class:`InvariantError` with a precise description on failure and returns
silently on success.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.dynamic_hypergraph import DynamicHypergraph

__all__ = [
    "InvariantError",
    "check_graph",
    "check_hypergraph",
    "check",
    "validate_columnar",
]


class InvariantError(AssertionError):
    """A structural invariant was violated."""


def check_graph(g: DynamicGraph) -> None:
    """Adjacency symmetry, no self-loops, edge count, no degree-0 vertices."""
    count = 0
    for v in g.vertices():
        nbrs = set(g.neighbors(v))
        if not nbrs:
            raise InvariantError(f"vertex {v!r} present with degree 0")
        if v in nbrs:
            raise InvariantError(f"self-loop at {v!r}")
        for w in nbrs:
            if v not in set(g.neighbors(w)):
                raise InvariantError(f"asymmetric edge {v!r}->{w!r}")
        count += len(nbrs)
    if count != 2 * g.num_edges():
        raise InvariantError(
            f"edge count mismatch: adjacency holds {count} arcs, "
            f"num_edges says {g.num_edges()}"
        )


def check_hypergraph(h: DynamicHypergraph) -> None:
    """Incidence/pin symmetry, no empty edges, no degree-0 vertices, counts."""
    pin_total = 0
    for e, pins in h.hyperedges():
        if not pins:
            raise InvariantError(f"hyperedge {e!r} present with 0 pins")
        for v in pins:
            if e not in set(h.incident(v)):
                raise InvariantError(f"pin ({e!r}, {v!r}) missing from incidence")
        pin_total += len(pins)
    inc_total = 0
    for v in h.vertices():
        es = set(h.incident(v))
        if not es:
            raise InvariantError(f"vertex {v!r} present with degree 0")
        for e in es:
            if not h.has_pin(e, v):
                raise InvariantError(f"incidence ({v!r}, {e!r}) missing from pins")
        inc_total += len(es)
    if pin_total != inc_total or pin_total != h.num_pins():
        raise InvariantError(
            f"pin count mismatch: edges hold {pin_total}, incidence holds "
            f"{inc_total}, num_pins says {h.num_pins()}"
        )


def validate_columnar(sub, cb) -> None:
    """Vectorised pre-flight validation of a columnar batch.

    The columnar twin of
    :func:`repro.resilience.validation.validate_batch`: whole-column
    checks instead of a per-``Change`` loop.  Graph batches must carry
    canonical (``a < b``) endpoint pairs -- which also rules out
    self-loops; both substrate kinds require well-formed, equally sized
    ``int64``/``bool`` columns (enforced at construction, re-checked
    here because batches can arrive from untrusted trace parsers).
    Raises :class:`~repro.resilience.validation.BatchValidationError`.
    """
    from repro.resilience.validation import BatchValidationError

    a, b, ins = cb.col_a, cb.col_b, cb.insert
    if not (len(a) == len(b) == len(ins)):
        raise BatchValidationError(-1, None, "columnar batch columns disagree on length")
    if a.dtype != np.int64 or b.dtype != np.int64 or ins.dtype != np.bool_:
        raise BatchValidationError(-1, None, "columnar batch columns have wrong dtypes")
    is_hyper_sub = bool(getattr(sub, "is_hypergraph", False))
    if cb.is_hyper != is_hyper_sub:
        raise BatchValidationError(
            -1, None,
            f"columnar batch kind ({'hyper' if cb.is_hyper else 'graph'}) does not "
            f"match substrate ({'hyper' if is_hyper_sub else 'graph'})",
        )
    if not cb.is_hyper and len(a):
        bad = np.flatnonzero(a >= b)
        if len(bad):
            i = int(bad[0])
            reason = (
                "self-loop edge" if int(a[i]) == int(b[i])
                else "non-canonical endpoint order (expected smaller endpoint first)"
            )
            raise BatchValidationError(i, (int(a[i]), int(b[i])), reason)


def check(sub) -> None:
    """Dispatch on substrate kind."""
    if isinstance(sub, DynamicHypergraph):
        check_hypergraph(sub)
    elif isinstance(sub, DynamicGraph):
        check_graph(sub)
    else:
        raise TypeError(f"unknown substrate {type(sub).__name__}")
