"""The structural protocol shared by graphs and hypergraphs.

Section III-C of the paper: *"Graphs can be viewed as a special case of
hypergraphs, where each hyperedge has exactly two endpoints. This is easy to
handle in an implementation."*  Every maintenance algorithm in
:mod:`repro.core` is written once, against this protocol.

Terminology (Section II-A):

* a *pin* is the membership of a vertex in a hyperedge;
* ``degree(v)`` is the number of hyperedges incident to ``v`` (see DESIGN.md
  for the reconciliation of the paper's two degree definitions);
* ``neighbors(v)`` is the set of vertices sharing at least one hyperedge
  with ``v``.

Changes
-------
A :class:`Change` is a single *pin* change ``(edge, vertex, insert?)`` --
the paper's more general dynamic-hypergraph model (Section II-C).  Graph
edge changes are the two-pin hyperedge change with
``edge = edge_id(u, v)``; helpers below build them.  Hyperedge-level
changes are simulated by grouping the pin changes of one hyperedge, exactly
as the paper prescribes ("*It is straightforward to simulate hyperedge
changes by setting batch boundaries at full hyperedges*").
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, List, Optional, Protocol, Tuple, \
    runtime_checkable

__all__ = [
    "Change",
    "Substrate",
    "count_change_allocations",
    "edge_id",
    "graph_edge_changes",
    "hyperedge_changes",
]

Vertex = Hashable
EdgeId = Hashable


def edge_id(u: Vertex, v: Vertex) -> Tuple[Vertex, Vertex]:
    """Canonical graph edge identifier: the sorted endpoint pair.

    Vertex labels within one graph must be mutually orderable (the usual
    case: 64-bit ints, or strings).
    """
    if u == v:
        raise ValueError(f"self-loop {u!r} not allowed in a simple graph")
    return (u, v) if u <= v else (v, u)


# Allocation accounting for the columnar fast path's "zero per-Change
# objects in steady state" guarantee.  ``None`` keeps ``__post_init__``
# at a single global load + falsy test, so the hook costs nothing when
# no one is counting.
_ALLOC_COUNTER: Optional[List[int]] = None


@contextmanager
def count_change_allocations():
    """Count every :class:`Change` constructed inside the ``with`` block.

    Yields a one-element list cell; ``cell[0]`` is the running count.
    Used to assert the columnar pipeline materialises no per-change
    Python objects between parse and commit.
    """
    global _ALLOC_COUNTER
    prev = _ALLOC_COUNTER
    cell = [0]
    _ALLOC_COUNTER = cell
    try:
        yield cell
    finally:
        _ALLOC_COUNTER = prev


@dataclass(frozen=True)
class Change:
    """A single pin change: vertex ``vertex`` enters/leaves hyperedge ``edge``.

    ``insert`` is the paper's change direction ``c``: ``True`` for ``+``,
    ``False`` for ``-``.
    """

    edge: EdgeId
    vertex: Vertex
    insert: bool

    def __post_init__(self) -> None:
        cell = _ALLOC_COUNTER
        if cell is not None:
            cell[0] += 1

    @property
    def c(self) -> str:
        return "+" if self.insert else "-"

    def inverse(self) -> "Change":
        return Change(self.edge, self.vertex, not self.insert)

    def __repr__(self) -> str:
        return f"Change({self.edge!r}, {self.vertex!r}, {self.c})"


def graph_edge_changes(u: Vertex, v: Vertex, insert: bool) -> List[Change]:
    """The two pin changes realising a graph edge insertion/deletion."""
    e = edge_id(u, v)
    return [Change(e, e[0], insert), Change(e, e[1], insert)]


def hyperedge_changes(edge: EdgeId, pins: Iterable[Vertex], insert: bool) -> List[Change]:
    """Pin changes realising a whole-hyperedge insertion/deletion."""
    return [Change(edge, p, insert) for p in pins]


@runtime_checkable
class Substrate(Protocol):
    """Structural interface the core algorithms require.

    Mutation happens exclusively through :meth:`apply`, so maintenance
    algorithms can interpose their callbacks (the paper's ``MaintainH``).
    """

    def vertices(self) -> Iterator[Vertex]:
        """All vertices with degree >= 1 (hypersparse: degree-0 implicit)."""
        ...

    def num_vertices(self) -> int: ...

    def num_edges(self) -> int: ...

    def num_pins(self) -> int: ...

    def has_vertex(self, v: Vertex) -> bool: ...

    def has_edge(self, e: EdgeId) -> bool: ...

    def has_pin(self, e: EdgeId, v: Vertex) -> bool: ...

    def degree(self, v: Vertex) -> int:
        """Number of hyperedges incident to ``v`` (0 if absent)."""
        ...

    def incident(self, v: Vertex) -> Iterable[EdgeId]:
        """Hyperedges containing ``v``."""
        ...

    def pins(self, e: EdgeId) -> Iterable[Vertex]:
        """Vertices of hyperedge ``e``."""
        ...

    def pin_count(self, e: EdgeId) -> int: ...

    def neighbors(self, v: Vertex) -> Iterable[Vertex]:
        """Distinct vertices co-occurring with ``v`` in some hyperedge."""
        ...

    def apply(self, change: Change) -> bool:
        """Apply one pin change.  Returns False if it was a no-op
        (inserting an existing pin / deleting a missing one)."""
        ...
