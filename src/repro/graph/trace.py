"""Change-trace recording and replay.

Dynamic graphs are "an infinite sequence of changes" (§II-C); this module
gives that sequence a durable form.  A *trace file* is line-oriented
UTF-8 text:

    # comments and blank lines ignored
    B                       <- batch boundary
    + <edge> <vertex>       <- pin insertion
    - <edge> <vertex>       <- pin deletion

Edge and vertex tokens are JSON scalars (so int and str labels round-trip
with types intact); graph edges are their canonical pin pairs like any
other hyperedge.  Traces make workloads reproducible across runs and
implementations -- record one from the experiment protocol, replay it into
any maintainer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from repro.graph.batch import Batch
from repro.graph.substrate import Change

__all__ = ["write_trace", "read_trace", "record_protocol", "replay_trace"]

PathLike = Union[str, Path, TextIO]


def _token(value) -> str:
    return json.dumps(value, separators=(",", ":"), sort_keys=True)


def _untoken(token: str):
    value = json.loads(token)
    # canonical graph-edge ids are [u, v] pairs in JSON; restore tuples
    if isinstance(value, list):
        return tuple(value)
    return value


def _open(target: PathLike, mode: str):
    if hasattr(target, "read") or hasattr(target, "write"):
        return target, False
    return open(target, mode, encoding="utf-8"), True


def write_trace(batches: Iterable[Batch], dst: PathLike, *, header: str = "") -> int:
    """Serialise batches to a trace file; returns the change count."""
    f, close = _open(dst, "w")
    n = 0
    try:
        if header:
            for line in header.splitlines():
                f.write(f"# {line}\n")
        for batch in batches:
            f.write("B\n")
            for c in batch:
                f.write(f"{'+' if c.insert else '-'} {_token(c.edge)} "
                        f"{_token(c.vertex)}\n")
                n += 1
        return n
    finally:
        if close:
            f.close()


def read_trace(src: PathLike) -> List[Batch]:
    """Parse a trace file back into its batches."""
    f, close = _open(src, "r")
    try:
        batches: List[Batch] = []
        current: List[Change] = []
        started = False
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line == "B":
                if started:
                    batches.append(Batch(current))
                    current = []
                started = True
                continue
            parts = line.split(" ", 2)
            if len(parts) != 3 or parts[0] not in "+-":
                raise ValueError(f"line {lineno}: malformed change {line!r}")
            if not started:
                raise ValueError(f"line {lineno}: change before first batch marker")
            current.append(
                Change(_untoken(parts[1]), _untoken(parts[2]), parts[0] == "+")
            )
        if started:
            batches.append(Batch(current))
        return batches
    finally:
        if close:
            f.close()


def record_protocol(proto, batch_size: int, rounds: int, dst: PathLike,
                    *, kind: str = "reinsert") -> int:
    """Record ``rounds`` protocol rounds to a trace file.

    Note: the protocol samples from the *live* substrate, so recording
    applies the emitted batches to it (and the remove/reinsert pairing
    leaves it unchanged at the end of every round).
    """
    batches: List[Batch] = []
    for round_batches in proto.rounds(batch_size, rounds, kind):
        for b in round_batches:
            for c in b:
                proto.sub.apply(c)
            batches.append(b)
    return write_trace(batches, dst, header=f"{kind} batch_size={batch_size}")


def replay_trace(src: PathLike, maintainer, *, verify_every: int = 0) -> int:
    """Feed a trace through a maintainer; returns batches applied.

    ``verify_every=n`` re-checks against the peeling oracle every n-th
    batch (0 disables).
    """
    from repro.core.verify import verify_kappa

    applied = 0
    for batch in read_trace(src):
        maintainer.apply_batch(batch)
        applied += 1
        if verify_every and applied % verify_every == 0:
            verify_kappa(maintainer)
    return applied
