"""Dynamic graph and hypergraph substrate.

The paper treats graphs as the 2-pin special case of hypergraphs (Section
III-C), and so do we: every maintenance algorithm is written against the
:class:`~repro.graph.substrate.Substrate` protocol, which both
:class:`~repro.graph.dynamic_graph.DynamicGraph` and
:class:`~repro.graph.dynamic_hypergraph.DynamicHypergraph` implement.

Modules
-------
``substrate``
    The structural protocol plus the :class:`Change` batch-update types.
``dynamic_graph``
    Fully dynamic simple undirected graph (adjacency sets, hypersparse ids).
``dynamic_hypergraph``
    Fully dynamic hypergraph under the pin-change model, with the paper's
    cached-hyperedge-minimum optimisation.
``csr``
    Frozen CSR snapshots backing the vectorised static algorithms.
``batch``
    Batches, the remove/reinsert experiment protocol, stream generators.
``generators``
    Synthetic graph and hypergraph generators (RMAT, BA, ER, affiliation...).
``io``
    Edge-list / pin-list readers and writers.
``validate``
    Structural consistency checks used by tests and after mutations.
"""

from repro.graph.substrate import Change, Substrate
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.dynamic_hypergraph import DynamicHypergraph
from repro.graph.batch import Batch, BatchProtocol
from repro.graph.window import SlidingWindowStream, TimedEvent
from repro.graph.trace import read_trace, replay_trace, write_trace

__all__ = [
    "Batch",
    "BatchProtocol",
    "Change",
    "DynamicGraph",
    "DynamicHypergraph",
    "SlidingWindowStream",
    "Substrate",
    "TimedEvent",
    "read_trace",
    "replay_trace",
    "write_trace",
]
