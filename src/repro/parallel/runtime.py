"""The runtime interface the algorithms are written against, plus the
serial reference backend.

Algorithms interact with a runtime through four calls:

``parallel_for(items, fn, region=...)``
    Apply ``fn`` to every item; results are returned in item order.  This
    is the paper's ``for v in A do in parallel``.
``charge(units)``
    Account ``units`` of work to the current task (inside ``parallel_for``)
    or to the serial timeline (outside).  One unit is roughly one adjacency
    access.  Backends that measure wall time ignore charges.
``charge_atomic(ops)``
    Account atomic read-modify-write operations (the accumulating updates
    into shared maps such as Algorithm 4's ``I``/``D``/``R``).
``serial(units)``
    Account sequential, non-parallelisable work.

``parallel_ranges(n, chunk_cost, region=...)``
    The chunked-region seam for *vectorised* code: the caller has already
    executed a whole region as one NumPy pass over ``n`` logical items and
    reports how much work each contiguous chunk ``[lo, hi)`` of those
    items represents (typically a degree prefix-sum difference).  The
    simulated backend chunks the range as it would a ``parallel_for`` of
    ``n`` tasks -- rebalanced by the skew-resistant VGC chunker
    (:func:`~repro.parallel.scheduler.vgc_chunk_costs`) so hub-heavy
    ranges split instead of pinning the makespan -- and schedules the
    per-chunk costs, so vectorised kernels show the same scaling
    behaviour their per-item twins would, instead of booking one serial
    lump.  ``chunk_cost`` must therefore be *additive* over ``[lo, hi)``
    splits (every cost derived from prefix sums or per-item constants
    is).

``parallel_map_ranges(n, run_chunk, chunk_cost, region=...)``
    The *execution* twin of ``parallel_ranges``: instead of accounting a
    pass the caller already ran, the runtime is handed the computation
    itself as a chunk kernel ``run_chunk(lo, hi)`` and decides how to
    split ``[0, n)``.  Serial backends run one chunk; the simulator runs
    one chunk and charges the unchanged VGC-modeled costs; the thread
    backend dispatches VGC-balanced chunks to its pool so NumPy kernels
    that release the GIL overlap on real cores.

Keeping the accounting explicit in the algorithm code is what lets the
simulated backend replay the *actual* work distribution on any number of
virtual threads; the serial and thread backends simply ignore it.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

__all__ = ["ParallelRuntime", "SerialRuntime", "map_ranges"]

T = TypeVar("T")
R = TypeVar("R")


class ParallelRuntime:
    """Base class: serial semantics, wall-clock timing, no-op accounting.

    Subclasses override :meth:`parallel_for` and the accounting hooks.
    ``threads`` is advisory for real backends and ignored by this one.
    """

    #: thread counts this runtime can report elapsed times for
    thread_counts: Tuple[int, ...] = (1,)

    def __init__(self) -> None:
        self._wall_start = time.perf_counter()

    # -- execution -------------------------------------------------------------
    def parallel_for(
        self,
        items: Iterable[T],
        fn: Callable[[T], R],
        *,
        region: str = "loop",
        grain: int = 1,
    ) -> List[R]:
        """Apply ``fn`` to each item, returning results in order."""
        return [fn(x) for x in items]

    def parallel_ranges(
        self,
        n: int,
        chunk_cost: Callable[[int, int], float],
        *,
        region: str = "ranges",
        grain: int = 1,
    ) -> float:
        """Account an already-executed vectorised pass over ``n`` items.

        ``chunk_cost(lo, hi)`` must return the work units represented by
        the contiguous item range ``[lo, hi)`` and be *additive*:
        ``chunk_cost(a, c) == chunk_cost(a, b) + chunk_cost(b, c)`` --
        prefix-sum differences qualify.  Returns the total work units
        accounted for the region.  The base implementation charges the
        whole range as one lump (wall-clock backends ignore charges
        anyway); the simulator overrides this with real chunking.
        """
        if n <= 0:
            return 0.0
        total = float(chunk_cost(0, n))
        self.charge(total)
        return total

    def parallel_map_ranges(
        self,
        n: int,
        run_chunk: Callable[[int, int], None],
        chunk_cost: Callable[[int, int], float],
        *,
        region: str = "ranges",
        grain: int = 1,
    ) -> float:
        """Execute *and* account a chunkable vectorised pass over ``n`` items.

        ``run_chunk(lo, hi)`` must compute the contiguous item range
        ``[lo, hi)`` and be safe to run on any partition of ``[0, n)``, in
        any order or concurrently — in practice a *Jacobi* chunk kernel
        that reads shared read-only snapshots and writes only a disjoint
        output slice.  ``chunk_cost`` has the same additive contract as in
        :meth:`parallel_ranges` and drives how real backends split the
        range.  Returns the total work units accounted for the region.

        The base implementation runs the whole range as one chunk and
        delegates the accounting to :meth:`parallel_ranges`, so serial and
        simulated backends keep byte-identical work metering whether a
        kernel uses this form or the account-only one.
        """
        if n <= 0:
            return 0.0
        run_chunk(0, n)
        return self.parallel_ranges(n, chunk_cost, region=region, grain=grain)

    # -- accounting --------------------------------------------------------------
    def charge(self, units: float) -> None:
        """Account abstract work units (no-op outside the simulator)."""

    def charge_atomic(self, ops: float = 1.0) -> None:
        """Account atomic RMW operations."""

    def serial(self, units: float) -> None:
        """Account explicitly sequential work."""

    # -- timing ------------------------------------------------------------------
    def reset_clock(self) -> None:
        self._wall_start = time.perf_counter()

    def elapsed_seconds(self, threads: int = 1) -> float:
        """Elapsed time attributable to ``threads`` workers.

        Wall-clock backends return the same measured time for any requested
        ``threads``; the simulator returns modeled times.
        """
        return time.perf_counter() - self._wall_start

    def metrics(self):
        """Backend-specific metrics object, or None."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialRuntime(ParallelRuntime):
    """Plain sequential execution; the semantics reference for tests."""


def map_ranges(
    rt: "ParallelRuntime | None",
    n: int,
    run_chunk: Callable[[int, int], None],
    chunk_cost: Callable[[int, int], float],
    *,
    region: str = "ranges",
    grain: int = 1,
) -> float:
    """Kernel-side dispatch helper for callers whose runtime may be ``None``.

    Runs ``run_chunk`` through ``rt.parallel_map_ranges`` when a runtime is
    present, or as one serial unaccounted chunk when the kernel was invoked
    without one (direct kernel calls in tests and tools).
    """
    if rt is None:
        if n > 0:
            run_chunk(0, n)
        return 0.0
    return rt.parallel_map_ranges(n, run_chunk, chunk_cost, region=region, grain=grain)
