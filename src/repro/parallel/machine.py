"""Declarative machine and workload models for the simulated runtime.

:class:`MachineSpec` describes the paper's testbed shape -- a dual-socket
Intel Xeon E5-2683 v4 (2 x 16 cores) -- as a handful of cost parameters.
:class:`WorkloadProfile` describes how memory-bound a particular dataset's
traversal is; the harness attaches one per dataset so that, e.g., the
WebTrackers analogue reproduces the paper's "performance decreases in all
cases after 8 threads" (Fig. 8) while OrkutGroup/LiveJGroup keep improving
past the NUMA boundary.

The model is a roofline-flavoured multiplier on simulated makespan:

    elapsed(t) = makespan(t) * numa(t) * mem(t) + barriers(t)

* ``numa(t) = 1 + numa_remote_penalty * max(0, 1 - cores_per_socket/t)``:
  once threads spill to the second socket, a growing fraction of memory
  traffic is remote.
* ``mem(t) = (1 - mu) + mu * (t / min(t, B)) * (1 + contention * max(0, t - B)/B)``:
  a fraction ``mu`` of the work is bandwidth-bound and stops scaling past
  ``B`` saturation threads, with a mild contention surcharge beyond that --
  this is what produces genuine slowdowns (not just plateaus) at high
  thread counts for memory-bound datasets.
* barriers: each parallel region pays a fork/join cost that grows with
  ``t``, the Amdahl floor that keeps tiny batches from scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "WorkloadProfile", "DEFAULT_MACHINE", "COMPUTE_BOUND", "MEMORY_BOUND"]


@dataclass(frozen=True)
class WorkloadProfile:
    """How a workload stresses the memory system.

    Parameters
    ----------
    memory_bound_fraction:
        ``mu`` -- fraction of charged work that is DRAM-bandwidth-bound.
    bandwidth_threads:
        ``B`` -- thread count that saturates the memory system for this
        workload's access pattern.
    contention:
        Surcharge slope once past ``B`` (cache-line ping-pong, queueing).
    """

    memory_bound_fraction: float = 0.3
    bandwidth_threads: int = 16
    contention: float = 0.12

    def mem_multiplier(self, threads: int) -> float:
        mu = self.memory_bound_fraction
        b = self.bandwidth_threads
        over = max(0, threads - b) / b
        scale = (threads / min(threads, b)) * (1.0 + self.contention * over)
        return (1.0 - mu) + mu * scale


#: Typical pointer-chasing graph workload: partially memory bound, scales to
#: the full socket pair with a visible but mild NUMA knee.
COMPUTE_BOUND = WorkloadProfile(memory_bound_fraction=0.25, bandwidth_threads=24, contention=0.08)

#: Hypersparse, giant-working-set workload (the WebTrackers analogue):
#: saturates bandwidth early and then actively degrades.
MEMORY_BOUND = WorkloadProfile(memory_bound_fraction=0.75, bandwidth_threads=8, contention=0.35)


@dataclass(frozen=True)
class MachineSpec:
    """Cost parameters of the simulated shared-memory machine.

    All "units" are abstract work units charged by the algorithms (one unit
    is roughly one adjacency access); ``work_unit_ns`` converts to time.
    """

    sockets: int = 2
    cores_per_socket: int = 16
    work_unit_ns: float = 6.0
    task_overhead_units: float = 1.0
    chunk_overhead_units: float = 6.0
    region_fork_ns: float = 1200.0
    barrier_ns_per_thread: float = 120.0
    numa_remote_penalty: float = 0.30
    atomic_ns: float = 15.0
    atomic_contention: float = 0.04

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def numa_multiplier(self, threads: int) -> float:
        if threads <= self.cores_per_socket:
            return 1.0
        remote_fraction = 1.0 - self.cores_per_socket / threads
        return 1.0 + self.numa_remote_penalty * remote_fraction

    def region_overhead_ns(self, threads: int) -> float:
        """Fork + barrier cost of one parallel region at ``t`` threads."""
        if threads <= 1:
            return 0.0
        return self.region_fork_ns + self.barrier_ns_per_thread * threads

    def atomic_cost_ns(self, threads: int, n_ops: float) -> float:
        """Total time of ``n_ops`` atomic RMW operations at ``t`` threads."""
        return n_ops * self.atomic_ns * (1.0 + self.atomic_contention * (threads - 1))


DEFAULT_MACHINE = MachineSpec()
