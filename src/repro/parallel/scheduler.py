"""Chunking and deterministic greedy list scheduling.

The simulator mirrors TBB's behaviour: a ``parallel_for`` over ``n`` tasks
is split into chunks; idle threads grab the next chunk from a shared queue
(dynamic scheduling).  Given the per-chunk costs the algorithm actually
incurred, the completion time on ``t`` threads is exactly the greedy list
schedule: assign each chunk, in order, to the earliest-free thread.

Greedy list scheduling is within 2x of optimal (Graham's bound) and is what
work-stealing runtimes approximate, so makespans here track what the C++
system's TBB scheduler would achieve for the same cost stream.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence

__all__ = ["chunk_sizes", "list_schedule_makespan", "schedule_all"]


def chunk_sizes(n_tasks: int, max_threads: int, grain: int = 1) -> List[int]:
    """Split ``n_tasks`` into chunk sizes.

    Targets ~8 chunks per thread at the maximum simulated thread count
    (enough slack for dynamic load balancing) with a minimum grain so tiny
    loops do not drown in chunk overhead -- the same auto-partitioner
    trade-off TBB makes.
    """
    if n_tasks <= 0:
        return []
    target_chunks = max(1, max_threads * 8)
    size = max(grain, -(-n_tasks // target_chunks))  # ceil div
    full, rem = divmod(n_tasks, size)
    sizes = [size] * full
    if rem:
        sizes.append(rem)
    return sizes


def list_schedule_makespan(chunk_costs: Sequence[float], threads: int) -> float:
    """Completion time of the chunk stream on ``threads`` greedy workers."""
    if not chunk_costs:
        return 0.0
    if threads <= 1:
        return float(sum(chunk_costs))
    if threads >= len(chunk_costs):
        return float(max(chunk_costs))
    free = [0.0] * threads
    heapq.heapify(free)
    for c in chunk_costs:
        t = heapq.heappop(free)
        heapq.heappush(free, t + c)
    return max(free)


def schedule_all(chunk_costs: Sequence[float], thread_counts: Iterable[int]) -> dict:
    """Makespan for every thread count in one pass per count."""
    return {t: list_schedule_makespan(chunk_costs, t) for t in thread_counts}
