"""Chunking and deterministic greedy list scheduling.

The simulator mirrors TBB's behaviour: a ``parallel_for`` over ``n`` tasks
is split into chunks; idle threads grab the next chunk from a shared queue
(dynamic scheduling).  Given the per-chunk costs the algorithm actually
incurred, the completion time on ``t`` threads is exactly the greedy list
schedule: assign each chunk, in order, to the earliest-free thread.

Greedy list scheduling is within 2x of optimal (Graham's bound) and is what
work-stealing runtimes approximate, so makespans here track what the C++
system's TBB scheduler would achieve for the same cost stream.

:func:`vgc_chunk_costs` adds VGC-style *vertex-group chunking* (Sun et
al., arXiv:2502.08042) for the vectorised kernels' metered ranges: the
count-based chunks are rebalanced against the caller's actual per-range
cost function, recursively bisecting any chunk whose cost exceeds a
balance factor times the target, and splitting a single pathological
item (a hub vertex's whole gather range) into virtual sub-chunks so one
heavy vertex no longer pins the makespan to its own cost.  Uniform cost
streams reduce exactly to :func:`chunk_sizes`' count-based chunks.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable, List, Sequence, Tuple

__all__ = ["chunk_sizes", "vgc_chunk_costs", "list_schedule_makespan", "schedule_all"]


def chunk_sizes(n_tasks: int, max_threads: int, grain: int = 1) -> List[int]:
    """Split ``n_tasks`` into chunk sizes.

    Targets ~8 chunks per thread at the maximum simulated thread count
    (enough slack for dynamic load balancing) with a minimum grain so tiny
    loops do not drown in chunk overhead -- the same auto-partitioner
    trade-off TBB makes.
    """
    if n_tasks <= 0:
        return []
    target_chunks = max(1, max_threads * 8)
    size = max(grain, -(-n_tasks // target_chunks))  # ceil div
    full, rem = divmod(n_tasks, size)
    sizes = [size] * full
    if rem:
        sizes.append(rem)
    return sizes


def vgc_chunk_costs(
    n_tasks: int,
    chunk_cost: Callable[[int, int], float],
    max_threads: int,
    grain: int = 1,
    balance_factor: float = 2.0,
) -> List[Tuple[int, float]]:
    """Skew-resistant ``(size, cost)`` chunks for a metered range.

    Starts from the count-based :func:`chunk_sizes` partition, reads the
    caller's additive ``chunk_cost(lo, hi)`` per chunk, and recursively
    bisects any chunk costing more than ``balance_factor`` times the
    target (total over ~8 chunks per thread).  A *single item* above the
    threshold -- one hub vertex whose neighbour range dominates the pass
    -- is split into ``ceil(cost / target)`` virtual sub-chunks sharing
    its cost, with nominal sizes ``1, 0, 0, ...`` so the item's task
    overhead is not double-counted.  Chunks come back in index order;
    a uniform cost stream returns exactly the count-based partition.
    """
    sizes = chunk_sizes(n_tasks, max_threads, grain)
    if not sizes:
        return []
    stack: List[Tuple[int, int, float]] = []
    total = 0.0
    lo = 0
    for size in sizes:
        hi = lo + size
        c = float(chunk_cost(lo, hi))
        stack.append((lo, hi, c))
        total += c
        lo = hi
    target = total / max(1, max_threads * 8)
    out: List[Tuple[int, float]] = []
    if target <= 0.0:
        return [(hi - lo, c) for lo, hi, c in stack]
    limit = balance_factor * target
    stack.reverse()  # pop() walks chunks in index order
    while stack:
        lo, hi, c = stack.pop()
        size = hi - lo
        if c <= limit:
            out.append((size, c))
        elif size <= 1:
            # one pathological item: virtual sub-chunks share its cost
            k = max(1, math.ceil(c / target))
            if k == 1:
                out.append((size, c))
            else:
                share = c / k
                out.append((size, share))
                out.extend((0, share) for _ in range(k - 1))
        else:
            mid = (lo + hi) // 2
            stack.append((mid, hi, float(chunk_cost(mid, hi))))
            stack.append((lo, mid, float(chunk_cost(lo, mid))))
    return out


def list_schedule_makespan(chunk_costs: Sequence[float], threads: int) -> float:
    """Completion time of the chunk stream on ``threads`` greedy workers."""
    if not chunk_costs:
        return 0.0
    if threads <= 1:
        return float(sum(chunk_costs))
    if threads >= len(chunk_costs):
        return float(max(chunk_costs))
    free = [0.0] * threads
    heapq.heapify(free)
    for c in chunk_costs:
        t = heapq.heappop(free)
        heapq.heappush(free, t + c)
    return max(free)


def schedule_all(chunk_costs: Sequence[float], thread_counts: Iterable[int]) -> dict:
    """Makespan for every thread count in one pass per count."""
    return {t: list_schedule_makespan(chunk_costs, t) for t in thread_counts}
