"""Real-thread backend (``concurrent.futures.ThreadPoolExecutor``).

Provided for API completeness and cross-checking: the oracle tests run the
maintenance algorithms under this backend to demonstrate that their results
are execution-interleaving independent.  Under CPython's GIL this backend
does **not** provide compute speedups -- which is precisely the limitation
the :class:`~repro.parallel.simulated.SimulatedRuntime` substitutes for
(see DESIGN.md).

Tasks are submitted in contiguous chunks to bound executor overhead.
Algorithms in this repository are written so that concurrent task bodies
are safe under the GIL's per-bytecode atomicity for the dict/set operations
they perform; results are returned in item order regardless of completion
order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, TypeVar

from repro.parallel.runtime import ParallelRuntime

__all__ = ["ThreadRuntime"]

T = TypeVar("T")
R = TypeVar("R")


class ThreadRuntime(ParallelRuntime):
    """Execute ``parallel_for`` bodies on a real thread pool."""

    def __init__(self, threads: int = 4) -> None:
        super().__init__()
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        self.thread_counts = (threads,)
        self._pool = ThreadPoolExecutor(max_workers=threads)

    def parallel_for(
        self,
        items: Iterable[T],
        fn: Callable[[T], R],
        *,
        region: str = "loop",
        grain: int = 1,
    ) -> List[R]:
        item_list = list(items)
        n = len(item_list)
        if n == 0:
            return []
        if n <= grain or self.threads == 1:
            return [fn(x) for x in item_list]
        chunk = max(grain, -(-n // (self.threads * 4)))

        def run_chunk(lo: int) -> List[R]:
            return [fn(x) for x in item_list[lo:lo + chunk]]

        futures = [self._pool.submit(run_chunk, lo) for lo in range(0, n, chunk)]
        out: List[R] = []
        for f in futures:
            out.extend(f.result())
        return out

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ThreadRuntime(threads={self.threads})"
