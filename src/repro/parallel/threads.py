"""Real-thread backend (``concurrent.futures.ThreadPoolExecutor``).

Two execution forms run on the pool:

``parallel_for``
    Per-item task bodies, submitted in contiguous chunks.  Under CPython's
    GIL pure-Python bodies do not speed up; the oracle tests use this form
    to demonstrate interleaving independence.

``parallel_map_ranges``
    Chunk kernels over ``[0, n)``.  The range is split by the same
    skew-resistant VGC chunker the simulator uses for cost modeling
    (:func:`~repro.parallel.scheduler.vgc_chunk_costs`, Liu & Dong's
    vertical granularity control), and the chunks are dispatched to the
    pool.  The engine's chunk kernels are NumPy passes that release the
    GIL for the bulk of their work (gathers, sorts, reductions), so on a
    multi-core host the chunks genuinely overlap — this is the seam that
    turns the repo's *modeled* speedup-vs-threads curves into measured
    ones (``bench_wallclock.py --threads``).  On a single-core host the
    same code runs correctly with only dispatch overhead added.

Accounting is **recorded** rather than dropped, so a thread-backend run
can be compared region-for-region against the simulator or the dict
engine.  Charges may arrive concurrently from pool threads, so they
accumulate into per-thread cells and fold at read time; ``reset_clock``
advances an epoch so charges from regions in flight across a reset land
in stale cells and are excluded from the new run's totals.

``region_seconds`` adds the wall-time attribution the simulator gets from
its machine model: every ``parallel_for`` / ``parallel_map_ranges``
region adds its measured duration under its region name, and
``region_chunks`` counts the chunks actually dispatched, so a measured
speedup can be attributed to (or blamed on) specific kernels via
:meth:`timing_breakdown`.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Tuple, TypeVar

from repro.parallel.runtime import ParallelRuntime
from repro.parallel.scheduler import vgc_chunk_costs

__all__ = ["ThreadRuntime"]

T = TypeVar("T")
R = TypeVar("R")


class _Cell:
    """Per-thread accounting accumulator, folded into totals at read time."""

    __slots__ = ("epoch", "work", "atomics", "serial")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.work = 0.0
        self.atomics = 0.0
        self.serial = 0.0


class ThreadRuntime(ParallelRuntime):
    """Execute parallel regions on a real thread pool."""

    def __init__(self, threads: int = 4) -> None:
        super().__init__()
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        self.thread_counts = (threads,)
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-rt"
        )
        self._closed = False
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._cells: List[_Cell] = []
        self._epoch = 0
        #: parallel regions entered (parallel_for + parallel_ranges forms)
        self.regions = 0
        #: logical tasks across all regions
        self.tasks = 0
        #: per-region-name entry counts / task totals
        self.region_counts: Counter = Counter()
        self.region_tasks: Counter = Counter()
        #: measured wall seconds spent inside each region name
        self.region_seconds: Counter = Counter()
        #: chunks actually dispatched per region name (map_ranges form)
        self.region_chunks: Counter = Counter()

    # -- per-thread accounting cells ---------------------------------------------
    def _cell(self) -> _Cell:
        cell = getattr(self._tls, "cell", None)
        if cell is None or cell.epoch != self._epoch:
            cell = _Cell(self._epoch)
            with self._lock:
                # re-check under the lock: reset_clock may have advanced
                # the epoch between the read above and now
                cell.epoch = self._epoch
                self._cells.append(cell)
            self._tls.cell = cell
        return cell

    def _fold(self) -> Tuple[float, float, float]:
        with self._lock:
            epoch = self._epoch
            work = atomics = serial = 0.0
            for cell in self._cells:
                if cell.epoch == epoch:
                    work += cell.work
                    atomics += cell.atomics
                    serial += cell.serial
        return work, atomics, serial

    @property
    def work_units(self) -> float:
        """Charged work units this run (folded across pool threads)."""
        return self._fold()[0]

    @property
    def atomic_ops(self) -> float:
        return self._fold()[1]

    @property
    def serial_units(self) -> float:
        return self._fold()[2]

    # -- worker nesting guard ----------------------------------------------------
    def _in_worker(self) -> bool:
        return getattr(self._tls, "depth", 0) > 0

    def _record_region(self, region: str, tasks: int) -> None:
        with self._lock:
            self.regions += 1
            self.tasks += tasks
            self.region_counts[region] += 1
            self.region_tasks[region] += tasks

    def _add_region_time(self, region: str, seconds: float, chunks: int) -> None:
        with self._lock:
            self.region_seconds[region] += seconds
            if chunks:
                self.region_chunks[region] += chunks

    # -- execution ---------------------------------------------------------------
    def parallel_for(
        self,
        items: Iterable[T],
        fn: Callable[[T], R],
        *,
        region: str = "loop",
        grain: int = 1,
    ) -> List[R]:
        item_list = list(items)
        n = len(item_list)
        self._record_region(region, n)
        if n == 0:
            return []
        t0 = time.perf_counter()
        try:
            if n <= grain or self.threads == 1 or self._in_worker():
                # nested regions run inline: dispatching from a worker with
                # a saturated pool would deadlock on its own futures
                return [fn(x) for x in item_list]
            chunk = max(grain, -(-n // (self.threads * 4)))

            def run_chunk(lo: int) -> List[R]:
                self._tls.depth = getattr(self._tls, "depth", 0) + 1
                try:
                    return [fn(x) for x in item_list[lo:lo + chunk]]
                finally:
                    self._tls.depth -= 1

            futures = [
                self._pool.submit(run_chunk, lo) for lo in range(0, n, chunk)
            ]
            out: List[R] = []
            for f in futures:
                out.extend(f.result())
            return out
        finally:
            self._add_region_time(region, time.perf_counter() - t0, 0)

    def parallel_ranges(
        self,
        n: int,
        chunk_cost: Callable[[int, int], float],
        *,
        region: str = "ranges",
        grain: int = 1,
    ) -> float:
        self._record_region(region, max(n, 0))
        return super().parallel_ranges(n, chunk_cost, region=region, grain=grain)

    def parallel_map_ranges(
        self,
        n: int,
        run_chunk: Callable[[int, int], None],
        chunk_cost: Callable[[int, int], float],
        *,
        region: str = "ranges",
        grain: int = 1,
    ) -> float:
        """Split ``[0, n)`` by VGC chunking and run the chunks on the pool.

        The chunk bounds come from the caller's ``chunk_cost`` exactly as
        in the simulator, so skewed ranges (hub vertices) split instead of
        pinning the critical path.  Chunk kernels write disjoint output
        slices (the seam contract), so no synchronisation is needed beyond
        joining the futures; the caller-reported total is charged to the
        dispatching thread for accounting parity.
        """
        self._record_region(region, max(n, 0))
        if n <= 0:
            return 0.0
        t0 = time.perf_counter()
        nchunks = 1
        try:
            total = float(chunk_cost(0, n))
            self.charge(total)
            if self.threads == 1 or n <= grain or self._in_worker():
                run_chunk(0, n)
                return total
            bounds: List[Tuple[int, int]] = []
            lo = 0
            for size, _cost in vgc_chunk_costs(n, chunk_cost, self.threads, grain):
                # VGC emits zero-size virtual sub-chunks to model splitting
                # one pathological item; a real executor cannot split a
                # single item, so only materialise the non-empty pieces
                if size:
                    bounds.append((lo, lo + size))
                    lo += size
            nchunks = len(bounds)
            if nchunks <= 1:
                run_chunk(0, n)
                return total

            def run_bounds(b: Tuple[int, int]) -> None:
                self._tls.depth = getattr(self._tls, "depth", 0) + 1
                try:
                    run_chunk(*b)
                finally:
                    self._tls.depth -= 1

            futures = [self._pool.submit(run_bounds, b) for b in bounds]
            error = None
            for f in futures:
                # join every chunk before propagating, so no chunk is still
                # writing into caller arrays after we raise
                exc = f.exception()
                if exc is not None and error is None:
                    error = exc
            if error is not None:
                raise error
            return total
        finally:
            self._add_region_time(region, time.perf_counter() - t0, nchunks)

    # -- accounting (recorded, not timed) ----------------------------------------
    def charge(self, units: float) -> None:
        self._cell().work += units

    def charge_atomic(self, ops: float = 1.0) -> None:
        cell = self._cell()
        cell.atomics += ops
        cell.work += ops

    def serial(self, units: float) -> None:
        cell = self._cell()
        cell.serial += units
        cell.work += units

    def reset_clock(self) -> None:
        # a "run" is everything between clock resets, as in the simulator;
        # advancing the epoch makes late charges from regions that were in
        # flight across the reset land in stale cells, which fold ignores
        super().reset_clock()
        with self._lock:
            self._epoch += 1
            self._cells.clear()
            self.regions = 0
            self.tasks = 0
            self.region_counts.clear()
            self.region_tasks.clear()
            self.region_seconds.clear()
            self.region_chunks.clear()

    # -- reporting ---------------------------------------------------------------
    def timing_breakdown(self) -> str:
        """Measured wall seconds per region name, most expensive first."""
        with self._lock:
            rows = [
                (name, secs, self.region_counts.get(name, 0),
                 self.region_chunks.get(name, 0))
                for name, secs in self.region_seconds.items()
            ]
        rows.sort(key=lambda r: -r[1])
        lines = [f"{'region':>24} {'count':>6} {'chunks':>7} {'seconds':>9}"]
        for name, secs, count, chunks in rows:
            lines.append(f"{name:>24} {count:>6} {chunks:>7} {secs:>9.4f}")
        return "\n".join(lines)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Release the pool (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ThreadRuntime(threads={self.threads})"
