"""Real-thread backend (``concurrent.futures.ThreadPoolExecutor``).

Provided for API completeness and cross-checking: the oracle tests run the
maintenance algorithms under this backend to demonstrate that their results
are execution-interleaving independent.  Under CPython's GIL this backend
does **not** provide compute speedups -- which is precisely the limitation
the :class:`~repro.parallel.simulated.SimulatedRuntime` substitutes for
(see DESIGN.md).

Tasks are submitted in contiguous chunks to bound executor overhead.
Algorithms in this repository are written so that concurrent task bodies
are safe under the GIL's per-bytecode atomicity for the dict/set operations
they perform; results are returned in item order regardless of completion
order.

Although charges cannot change this backend's (measured) elapsed time,
they are **recorded** rather than dropped: ``regions`` / ``tasks`` /
``work_units`` totals and the per-region ``region_counts`` /
``region_tasks`` breakdowns let a thread-backend run be compared
region-for-region against the same algorithm under the simulator or the
dict engine -- the parity check the oracle tests rely on.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, TypeVar

from repro.parallel.runtime import ParallelRuntime

__all__ = ["ThreadRuntime"]

T = TypeVar("T")
R = TypeVar("R")


class ThreadRuntime(ParallelRuntime):
    """Execute ``parallel_for`` bodies on a real thread pool."""

    def __init__(self, threads: int = 4) -> None:
        super().__init__()
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.threads = threads
        self.thread_counts = (threads,)
        self._pool = ThreadPoolExecutor(max_workers=threads)
        #: parallel regions entered (parallel_for + parallel_ranges)
        self.regions = 0
        #: logical tasks across all regions
        self.tasks = 0
        #: charged work units (under the GIL, += on a float is atomic
        #: enough for accounting; exact totals are asserted only for
        #: deterministic single-region runs)
        self.work_units = 0.0
        self.atomic_ops = 0.0
        self.serial_units = 0.0
        #: per-region-name entry counts / task totals
        self.region_counts: Counter = Counter()
        self.region_tasks: Counter = Counter()

    def _record_region(self, region: str, tasks: int) -> None:
        self.regions += 1
        self.tasks += tasks
        self.region_counts[region] += 1
        self.region_tasks[region] += tasks

    def parallel_for(
        self,
        items: Iterable[T],
        fn: Callable[[T], R],
        *,
        region: str = "loop",
        grain: int = 1,
    ) -> List[R]:
        item_list = list(items)
        n = len(item_list)
        self._record_region(region, n)
        if n == 0:
            return []
        if n <= grain or self.threads == 1:
            return [fn(x) for x in item_list]
        chunk = max(grain, -(-n // (self.threads * 4)))

        def run_chunk(lo: int) -> List[R]:
            return [fn(x) for x in item_list[lo:lo + chunk]]

        futures = [self._pool.submit(run_chunk, lo) for lo in range(0, n, chunk)]
        out: List[R] = []
        for f in futures:
            out.extend(f.result())
        return out

    def parallel_ranges(
        self,
        n: int,
        chunk_cost: Callable[[int, int], float],
        *,
        region: str = "ranges",
        grain: int = 1,
    ) -> float:
        self._record_region(region, max(n, 0))
        return super().parallel_ranges(n, chunk_cost, region=region, grain=grain)

    # -- accounting (recorded, not timed) ----------------------------------------
    def charge(self, units: float) -> None:
        self.work_units += units

    def charge_atomic(self, ops: float = 1.0) -> None:
        self.atomic_ops += ops
        self.work_units += ops

    def serial(self, units: float) -> None:
        self.serial_units += units
        self.work_units += units

    def reset_clock(self) -> None:
        # a "run" is everything between clock resets, as in the simulator
        super().reset_clock()
        self.regions = 0
        self.tasks = 0
        self.work_units = 0.0
        self.atomic_ops = 0.0
        self.serial_units = 0.0
        self.region_counts.clear()
        self.region_tasks.clear()

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ThreadRuntime(threads={self.threads})"
