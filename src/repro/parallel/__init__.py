"""Simulated and real shared-memory parallel execution.

The paper's contribution is *scalability*: its algorithms expose enough
independent per-vertex work that adding threads keeps helping (Figs. 6-12).
A faithful Python reproduction cannot demonstrate that with real threads --
CPython's GIL serialises shared-memory compute -- so this subpackage
provides three interchangeable backends behind a single
:class:`~repro.parallel.runtime.ParallelRuntime` interface:

:class:`~repro.parallel.runtime.SerialRuntime`
    Plain loops; the reference semantics.
:class:`~repro.parallel.threads.ThreadRuntime`
    Real ``ThreadPoolExecutor`` threads.  Pure-Python ``parallel_for``
    bodies cannot scale under the GIL, but the ``parallel_map_ranges``
    execution form dispatches VGC-balanced chunk kernels whose NumPy
    passes release the GIL — on multi-core hosts the vectorised engine
    scales for real (``bench_wallclock.py --threads``).
:class:`~repro.parallel.simulated.SimulatedRuntime`
    The substitution used for the figures.  It executes the algorithm's
    *actual* parallel decomposition -- the same chunks of vertex tasks the
    C++ system would hand to TBB -- deterministically in one thread, meters
    every task through an explicit work model, and replays the chunk stream
    through a greedy list scheduler for every requested thread count at
    once.  Simulated elapsed time adds machine effects (per-region fork/
    barrier overhead, NUMA remote-memory penalties past one socket,
    bandwidth saturation, atomic contention) from a declarative
    :class:`~repro.parallel.machine.MachineSpec`.

Because all three backends run the identical algorithm code, correctness
tests assert that results are backend-independent, and the simulator's
clock is the only modeled quantity.
"""

from repro.parallel.machine import MachineSpec, WorkloadProfile
from repro.parallel.metrics import RegionMetrics, RunMetrics
from repro.parallel.runtime import ParallelRuntime, SerialRuntime, map_ranges
from repro.parallel.simulated import SimulatedRuntime
from repro.parallel.threads import ThreadRuntime

__all__ = [
    "MachineSpec",
    "ParallelRuntime",
    "RegionMetrics",
    "RunMetrics",
    "SerialRuntime",
    "SimulatedRuntime",
    "ThreadRuntime",
    "WorkloadProfile",
    "map_ranges",
]
