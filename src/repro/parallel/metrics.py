"""Work/span/time accounting for simulated parallel execution.

A *region* is one ``parallel_for``; a *run* is everything between two clock
resets (typically: one maintenance batch).  The simulator aggregates region
metrics into run metrics; the evaluation harness reads
:meth:`RunMetrics.elapsed_seconds` per thread count to draw the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

__all__ = ["RegionMetrics", "RunMetrics"]


@dataclass
class RegionMetrics:
    """One parallel region's accounting.

    ``makespan_units[t]`` is the greedy-list-schedule completion time of the
    region's chunk stream on ``t`` virtual threads, in work units, before
    machine multipliers.
    """

    name: str
    tasks: int = 0
    chunks: int = 0
    work_units: float = 0.0
    span_units: float = 0.0  # longest single chunk: a lower bound on any schedule
    atomic_ops: float = 0.0
    makespan_units: Dict[int, float] = field(default_factory=dict)

    def parallelism(self, t: int) -> float:
        """Achieved speedup of this region at ``t`` threads (units only)."""
        ms = self.makespan_units.get(t, self.work_units)
        return self.work_units / ms if ms else 1.0


@dataclass
class RunMetrics:
    """Accumulated totals for a run, per thread count."""

    thread_counts: Tuple[int, ...]
    regions: int = 0
    tasks: int = 0
    work_units: float = 0.0
    serial_units: float = 0.0
    atomic_ops: float = 0.0
    elapsed_ns: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for t in self.thread_counts:
            self.elapsed_ns.setdefault(t, 0.0)

    def add_region(self, region: RegionMetrics, machine, profile) -> None:
        self.regions += 1
        self.tasks += region.tasks
        self.work_units += region.work_units
        self.atomic_ops += region.atomic_ops
        for t in self.thread_counts:
            ms = region.makespan_units.get(t, region.work_units)
            ns = ms * machine.work_unit_ns
            ns *= machine.numa_multiplier(t) * profile.mem_multiplier(t)
            ns += machine.region_overhead_ns(t)
            ns += machine.atomic_cost_ns(t, region.atomic_ops)
            self.elapsed_ns[t] += ns

    def add_serial(self, units: float, machine) -> None:
        """Sequential section: costs every thread count identically."""
        self.serial_units += units
        self.work_units += units
        ns = units * machine.work_unit_ns
        for t in self.thread_counts:
            self.elapsed_ns[t] += ns

    def elapsed_seconds(self, t: int) -> float:
        return self.elapsed_ns[t] / 1e9

    def speedup(self, t: int, base: int = 1) -> float:
        e = self.elapsed_ns[t]
        b = self.elapsed_ns[base]
        if e == 0:
            # an empty run scales trivially: report 1.0, not inf (a zero
            # numerator over a zero denominator is no evidence of scaling)
            return 1.0 if b == 0 else float("inf")
        return b / e

    def merged_with(self, other: "RunMetrics") -> "RunMetrics":
        if self.thread_counts != other.thread_counts:
            raise ValueError("cannot merge metrics with different thread sweeps")
        out = RunMetrics(self.thread_counts)
        out.regions = self.regions + other.regions
        out.tasks = self.tasks + other.tasks
        out.work_units = self.work_units + other.work_units
        out.serial_units = self.serial_units + other.serial_units
        out.atomic_ops = self.atomic_ops + other.atomic_ops
        for t in self.thread_counts:
            out.elapsed_ns[t] = self.elapsed_ns[t] + other.elapsed_ns[t]
        return out

    def summary(self) -> str:
        parts = [
            f"regions={self.regions}",
            f"tasks={self.tasks}",
            f"work={self.work_units:.0f}u",
        ]
        for t in self.thread_counts:
            parts.append(f"T{t}={self.elapsed_seconds(t) * 1e3:.3f}ms")
        return " ".join(parts)
