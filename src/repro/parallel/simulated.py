"""The simulated shared-memory backend.

This is the DESIGN.md substitution for the paper's 2 x 16-core Xeon: the
algorithm's real parallel decomposition is executed deterministically in one
OS thread while an explicit work model meters every task; the resulting
chunk-cost stream is replayed through a greedy list scheduler for *all*
requested thread counts simultaneously.  One run of an algorithm therefore
yields its entire scalability curve -- with the identical convergence
behaviour at every point, which physical experiments can never guarantee.

Execution semantics: tasks run sequentially in item order, which is one
valid linearisation of the asynchronous parallel execution the paper's
algorithms permit (each vertex reads the *latest available* neighbour
values, Section III-A), so results are exactly what a real async run could
produce.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.parallel.machine import COMPUTE_BOUND, DEFAULT_MACHINE, MachineSpec, WorkloadProfile
from repro.parallel.metrics import RegionMetrics, RunMetrics
from repro.parallel.runtime import ParallelRuntime
from repro.parallel.scheduler import chunk_sizes, list_schedule_makespan, vgc_chunk_costs

__all__ = ["SimulatedRuntime", "DEFAULT_THREAD_COUNTS"]

T = TypeVar("T")
R = TypeVar("R")

#: The paper's sweep: Figs. 6-12 report 1..32 threads on the 2x16-core box.
DEFAULT_THREAD_COUNTS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


class SimulatedRuntime(ParallelRuntime):
    """Deterministic work-model backend; see module docstring.

    Parameters
    ----------
    machine:
        Hardware cost parameters (defaults to the paper's testbed shape).
    profile:
        Workload memory-boundedness (the harness sets this per dataset).
    thread_counts:
        Thread counts to report; makespans are computed for each.
    """

    def __init__(
        self,
        machine: MachineSpec = DEFAULT_MACHINE,
        profile: WorkloadProfile = COMPUTE_BOUND,
        thread_counts: Sequence[int] = DEFAULT_THREAD_COUNTS,
        keep_regions: bool = False,
    ) -> None:
        super().__init__()
        self.machine = machine
        self.profile = profile
        self.thread_counts = tuple(thread_counts)
        if any(t < 1 for t in self.thread_counts):
            raise ValueError("thread counts must be >= 1")
        #: keep per-region metrics for profiling (memory grows per region)
        self.keep_regions = keep_regions
        self.region_log: List[RegionMetrics] = []
        self._run = RunMetrics(self.thread_counts)
        # accounting state for the currently executing task (None = serial)
        self._task_units: Optional[float] = None
        self._task_atomics = 0.0
        self._pending_serial = 0.0

    # -- execution ------------------------------------------------------------
    def parallel_for(
        self,
        items: Iterable[T],
        fn: Callable[[T], R],
        *,
        region: str = "loop",
        grain: int = 1,
    ) -> List[R]:
        if self._task_units is not None:
            # nested parallelism collapses into the enclosing task, the same
            # flattening TBB applies when inner loops find no idle workers
            out: List[R] = []
            for x in items:
                out.append(fn(x))
            return out

        item_list = list(items)
        self._flush_serial()
        mach = self.machine
        reg = RegionMetrics(region, tasks=len(item_list))
        sizes = chunk_sizes(len(item_list), max(self.thread_counts), grain)
        chunk_costs: List[float] = []
        out = []
        pos = 0
        for size in sizes:
            cost = mach.chunk_overhead_units
            for i in range(pos, pos + size):
                self._task_units = mach.task_overhead_units
                self._task_atomics = 0.0
                out.append(fn(item_list[i]))
                cost += self._task_units
                reg.atomic_ops += self._task_atomics
            pos += size
            chunk_costs.append(cost)
        self._task_units = None
        self._task_atomics = 0.0

        reg.chunks = len(chunk_costs)
        reg.work_units = sum(chunk_costs)
        reg.span_units = max(chunk_costs, default=0.0)
        for t in self.thread_counts:
            reg.makespan_units[t] = list_schedule_makespan(chunk_costs, t)
        self._run.add_region(reg, mach, self.profile)
        if self.keep_regions:
            self.region_log.append(reg)
        return out

    def parallel_ranges(
        self,
        n: int,
        chunk_cost: Callable[[int, int], float],
        *,
        region: str = "ranges",
        grain: int = 1,
    ) -> float:
        """Meter a vectorised pass as a real chunked parallel region.

        The range ``[0, n)`` is partitioned by the skew-resistant VGC
        chunker (:func:`~repro.parallel.scheduler.vgc_chunk_costs`):
        count-based chunks rebalanced against the caller-reported
        ``chunk_cost(lo, hi)``, with hub-dominated chunks bisected and a
        single pathological item split into virtual sub-chunks.  Each
        chunk's cost -- the reported range cost plus the machine's
        per-task and per-chunk overheads -- goes through the same greedy
        list scheduler as ``parallel_for``, so a NumPy kernel that
        executes in one shot still yields the full makespan curve its
        work distribution implies.
        """
        if n <= 0:
            return 0.0
        if self._task_units is not None:
            # nested inside a task: collapse into it, like parallel_for
            total = float(chunk_cost(0, n))
            self._task_units += total
            return total
        self._flush_serial()
        mach = self.machine
        reg = RegionMetrics(region, tasks=n)
        pieces = vgc_chunk_costs(n, chunk_cost, max(self.thread_counts), grain)
        chunk_costs: List[float] = [
            mach.chunk_overhead_units + size * mach.task_overhead_units + c
            for size, c in pieces
        ]
        reg.chunks = len(chunk_costs)
        reg.work_units = sum(chunk_costs)
        reg.span_units = max(chunk_costs, default=0.0)
        for t in self.thread_counts:
            reg.makespan_units[t] = list_schedule_makespan(chunk_costs, t)
        self._run.add_region(reg, mach, self.profile)
        if self.keep_regions:
            self.region_log.append(reg)
        return reg.work_units

    def parallel_map_ranges(
        self,
        n: int,
        run_chunk: Callable[[int, int], None],
        chunk_cost: Callable[[int, int], float],
        *,
        region: str = "ranges",
        grain: int = 1,
    ) -> float:
        """Execute a chunk kernel serially, metering unchanged VGC costs.

        The simulator's execution form runs the whole range as one chunk
        (chunk kernels are pure over disjoint slices, so any serial
        partition is bit-identical) and then delegates to
        :meth:`parallel_ranges` — the exact metering path account-only
        kernels used before the execution form existed.  Simulation
        semantics and work-unit totals are therefore unchanged by
        construction; this override exists to document that invariant.
        """
        if n <= 0:
            return 0.0
        run_chunk(0, n)
        return self.parallel_ranges(n, chunk_cost, region=region, grain=grain)

    def region_breakdown(self, threads: int) -> str:
        """Where simulated time goes: per-region-name totals at ``threads``.

        Requires ``keep_regions=True``.  Reports work, achieved
        parallelism and region counts aggregated by region name -- the
        profiling view for tuning batch algorithms against the machine
        model ("no optimization without measuring").
        """
        if not self.keep_regions:
            raise RuntimeError("construct with keep_regions=True to profile")
        agg: dict = {}
        for reg in self.region_log:
            entry = agg.setdefault(reg.name, [0, 0.0, 0.0, 0])
            entry[0] += 1
            entry[1] += reg.work_units
            entry[2] += reg.makespan_units.get(threads, reg.work_units)
            entry[3] += reg.tasks
        lines = [f"{'region':>24} {'count':>6} {'tasks':>8} {'work(u)':>10} "
                 f"{'makespan(u)':>12} {'parallelism':>12}"]
        for name, (count, work, ms, tasks) in sorted(
                agg.items(), key=lambda kv: -kv[1][1]):
            par = work / ms if ms else 1.0
            lines.append(f"{name:>24} {count:>6} {tasks:>8} {work:>10.0f} "
                         f"{ms:>12.0f} {par:>11.2f}x")
        return "\n".join(lines)

    # -- accounting --------------------------------------------------------------
    def charge(self, units: float) -> None:
        if self._task_units is not None:
            self._task_units += units
        else:
            self._pending_serial += units

    def charge_atomic(self, ops: float = 1.0) -> None:
        if self._task_units is not None:
            self._task_atomics += ops
            self._task_units += ops  # the op itself is also work
        else:
            self._pending_serial += ops

    def serial(self, units: float) -> None:
        self._pending_serial += units

    def _flush_serial(self) -> None:
        if self._pending_serial:
            self._run.add_serial(self._pending_serial, self.machine)
            self._pending_serial = 0.0

    # -- timing ------------------------------------------------------------------
    def reset_clock(self) -> None:
        super().reset_clock()
        self._pending_serial = 0.0
        self._run = RunMetrics(self.thread_counts)
        self.region_log = []

    def elapsed_seconds(self, threads: int = 1) -> float:
        self._flush_serial()
        if threads not in self._run.elapsed_ns:
            raise KeyError(
                f"thread count {threads} not simulated; have {self.thread_counts}"
            )
        return self._run.elapsed_seconds(threads)

    def metrics(self) -> RunMetrics:
        self._flush_serial()
        return self._run

    def take_metrics(self) -> RunMetrics:
        """Return current metrics and reset the clock (one timed sample)."""
        m = self.metrics()
        self.reset_clock()
        return m

    def __repr__(self) -> str:
        return (
            f"SimulatedRuntime(threads={self.thread_counts}, "
            f"mu={self.profile.memory_bound_fraction})"
        )
