"""Snapshot-isolated query serving over live k-core maintenance.

The serving layer (docs/SERVING.md) separates readers from the mutating
engine:

* :mod:`~repro.serve.view` -- immutable :class:`ReadView` snapshots at
  committed batch boundaries, published through the maintainer's
  ``view_publisher`` seam and chained copy-on-write.
* :mod:`~repro.serve.admission` -- bounded coalescing ingest queue plus
  watermark-based accept / defer / shed admission.
* :mod:`~repro.serve.health` -- the HEALTHY / DEGRADED / SHEDDING state
  machine driving admission and read degradation.
* :mod:`~repro.serve.deadline` -- per-query budgets and the stamped
  :class:`QueryResult`.
* :mod:`~repro.serve.subscriptions` -- threshold triggers evaluated on
  published view deltas.
* :mod:`~repro.serve.server` -- :class:`CoreServer`, the facade tying
  the planes together (``CoreMaintainer.serve()`` builds one).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    IngestQueue,
)
from repro.serve.deadline import Deadline, QueryResult
from repro.serve.health import DEGRADED, HEALTHY, SHEDDING, HealthMonitor
from repro.serve.server import CoreServer, PumpReport
from repro.serve.subscriptions import CoreEvent, Subscription, SubscriptionRegistry
from repro.serve.view import ReadView, ViewManager

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "IngestQueue",
    "Deadline",
    "QueryResult",
    "HealthMonitor",
    "HEALTHY",
    "DEGRADED",
    "SHEDDING",
    "CoreServer",
    "PumpReport",
    "CoreEvent",
    "Subscription",
    "SubscriptionRegistry",
    "ReadView",
    "ViewManager",
]
