"""Threshold subscriptions: "fire when kappa(v) crosses k".

Subscriptions are evaluated **at publish time**, against the batch delta
the view manager hands over with each new snapshot -- cost proportional
to the vertices the batch actually moved, never a scan of V.  Events
therefore inherit snapshot semantics: an event's ``(old, new)`` pair is
the change across exactly one committed batch boundary, stamped with the
view's ``epoch`` and ``boundary``, and a rolled-back or quarantined
batch (which never publishes) can never fire a subscriber.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Set

__all__ = ["CoreEvent", "Subscription", "SubscriptionRegistry"]

Vertex = Hashable


@dataclass(frozen=True)
class CoreEvent:
    """One threshold crossing, observed at a published batch boundary."""

    vertex: Vertex
    old: int
    new: int
    threshold: int
    #: ``up`` (old < k <= new) or ``down`` (new < k <= old)
    direction: str
    epoch: int
    boundary: int


@dataclass
class Subscription:
    """A standing threshold trigger.

    ``vertices=None`` watches the whole decomposition; ``direction`` is
    ``"up"``, ``"down"`` or ``"both"``.  Fired events accumulate in
    ``events`` and are additionally handed to ``callback`` when set (a
    callback exception is contained: it marks the subscription
    ``broken`` rather than poisoning the maintenance path).
    """

    threshold: int
    vertices: Optional[Set[Vertex]] = None
    direction: str = "both"
    callback: Optional[Callable[[CoreEvent], None]] = None
    events: List[CoreEvent] = field(default_factory=list)
    active: bool = True
    broken: Optional[str] = None

    def matches(self, v: Vertex) -> bool:
        return self.vertices is None or v in self.vertices

    def _fire(self, event: CoreEvent) -> None:
        self.events.append(event)
        if self.callback is not None:
            try:
                self.callback(event)
            except Exception as exc:   # noqa: BLE001 -- contain subscriber bugs
                self.broken = f"{type(exc).__name__}: {exc}"
                self.active = False


class SubscriptionRegistry:
    """All standing subscriptions for one server."""

    def __init__(self) -> None:
        self._subs: List[Subscription] = []
        self.stats: Dict[str, int] = {"events": 0, "evaluations": 0}

    def subscribe(self, threshold: int, *, vertices=None,
                  direction: str = "both",
                  callback: Optional[Callable[[CoreEvent], None]] = None
                  ) -> Subscription:
        if direction not in ("up", "down", "both"):
            raise ValueError("direction must be 'up', 'down' or 'both'")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        sub = Subscription(
            threshold=threshold,
            vertices=set(vertices) if vertices is not None else None,
            direction=direction, callback=callback,
        )
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.active = False
        try:
            self._subs.remove(sub)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._subs)

    def evaluate(self, view, delta: Dict[Vertex, Optional[int]]) -> List[CoreEvent]:
        """Fire matching subscriptions for one published batch delta.

        ``delta`` maps each written vertex to its pre-batch value
        (``None`` = absent); the post-batch value is read from the view.
        """
        self.stats["evaluations"] += 1
        if not self._subs or not delta:
            return []
        fired: List[CoreEvent] = []
        for v, old in delta.items():
            o = 0 if old is None else old
            n = view.kappa_of(v)
            if o == n:
                continue
            for sub in self._subs:
                if not sub.active or not sub.matches(v):
                    continue
                k = sub.threshold
                if o < k <= n and sub.direction in ("up", "both"):
                    direction = "up"
                elif n < k <= o and sub.direction in ("down", "both"):
                    direction = "down"
                else:
                    continue
                event = CoreEvent(
                    vertex=v, old=o, new=n, threshold=k,
                    direction=direction, epoch=view.epoch,
                    boundary=view.boundary,
                )
                sub._fire(event)
                fired.append(event)
        self.stats["events"] += len(fired)
        return fired

    def __repr__(self) -> str:
        return f"SubscriptionRegistry(n={len(self._subs)}, stats={self.stats})"
