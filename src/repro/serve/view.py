"""Snapshot-isolated read views over a maintained decomposition.

The maintainers mutate ``tau`` in place, mid-batch, thousands of times
per second; a reader that touches the live dict concurrently with
``apply_batch`` can observe a state that *never existed at any batch
boundary* (a torn read).  This module gives readers immutable snapshots
instead:

* :class:`ReadView` -- a frozen view of tau at one committed batch
  boundary.  Point lookups are O(chain) over a copy-on-write overlay,
  level buckets are derived lazily and shared structurally with the
  parent view (only levels dirtied by the batch are rebuilt), and the
  view quacks like a maintainer for the whole :mod:`repro.core.queries`
  layer (``sub`` / ``kappa()`` / ``kappa_of`` / ``levels`` /
  ``vertices_at_level``).
* :class:`ViewManager` -- owns the chain.  It attaches to the
  maintainer's ``view_publisher`` seam (:mod:`repro.core.base`), turns
  each committed batch's delta into a new immutable view, and flattens
  the overlay chain back into a plain dict when it grows past
  ``flatten_depth`` links or the accumulated patches pass
  ``flatten_ratio`` of the live vertex count.

Because the publisher seam fires strictly after the commit point --
never mid-transaction, never for a rolled-back or quarantined batch --
every view corresponds to an exact committed prefix of the batch
stream, stamped in ``view.boundary`` (``batches_processed`` at capture)
and ``view.epoch`` (monotone publish counter, survives heals).

Publication is a single reference assignment (:meth:`ViewManager
.current` readers see either the old or the new view, never a mix), so
tau reads are safe from a concurrent thread without locks.  Structural
queries (``shell``, ``top_k_densest``) read the *live* substrate for
adjacency -- see docs/SERVING.md for the serialisation contract.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional

__all__ = ["ReadView", "ViewManager", "REMOVED"]

Vertex = Hashable

#: patch sentinel: the vertex left the decomposition in this batch
REMOVED = object()


class ReadView:
    """An immutable snapshot of tau at one committed batch boundary.

    Built only by :class:`ViewManager`.  ``base`` is either a plain dict
    (a flattened snapshot) or the parent :class:`ReadView` (copy-on-write
    chaining); ``patch`` maps the vertices written by this view's batch
    to their new values (``REMOVED`` for vertices that left).
    """

    __slots__ = ("base", "patch", "epoch", "boundary", "captured_at",
                 "sub", "_size", "_depth", "_level_map")

    def __init__(self, base, patch: Dict[Vertex, object], *, epoch: int,
                 boundary: int, captured_at: float, sub,
                 size: int, level_map: Optional[Dict] = None) -> None:
        self.base = base
        self.patch = patch
        self.epoch = epoch
        self.boundary = boundary
        self.captured_at = captured_at
        self.sub = sub
        self._size = size
        self._depth = 1 + (base._depth if isinstance(base, ReadView) else 0)
        self._level_map = level_map

    # -- point reads ----------------------------------------------------------
    def kappa_of(self, v: Vertex) -> int:
        """Core value of ``v`` in this snapshot (0 if absent)."""
        node = self
        while isinstance(node, ReadView):
            val = node.patch.get(v, _MISS)
            if val is not _MISS:
                return 0 if val is REMOVED else val
            node = node.base
        return node.get(v, 0)

    def __contains__(self, v: Vertex) -> bool:
        node = self
        while isinstance(node, ReadView):
            val = node.patch.get(v, _MISS)
            if val is not _MISS:
                return val is not REMOVED
            node = node.base
        return v in node

    def __len__(self) -> int:
        return self._size

    # -- whole-snapshot reads -------------------------------------------------
    def kappa(self) -> Dict[Vertex, int]:
        """Materialise the full ``{vertex: core}`` mapping (a fresh dict)."""
        chain: List[ReadView] = []
        node = self
        while isinstance(node, ReadView):
            chain.append(node)
            node = node.base
        out = dict(node)
        for view in reversed(chain):
            for v, val in view.patch.items():
                if val is REMOVED:
                    out.pop(v, None)
                else:
                    out[v] = val
        return out

    def _levels(self) -> Dict[int, FrozenSet[Vertex]]:
        """The ``{level: frozenset(vertices)}`` map, derived lazily.

        Clean levels share their frozenset with the parent view; only
        levels some patched vertex entered or left are rebuilt.  The
        cache is written once (idempotent), so concurrent readers racing
        on the first derivation at worst duplicate work.
        """
        cached = self._level_map
        if cached is not None:
            return cached
        if isinstance(self.base, ReadView):
            parent = self.base._levels()
            dirty: Dict[int, set] = {}

            def bucket(k: int) -> set:
                b = dirty.get(k)
                if b is None:
                    b = dirty[k] = set(parent.get(k, ()))
                return b

            for v, val in self.patch.items():
                old = self.base.kappa_of(v) if v in self.base else None
                if old is not None:
                    bucket(old).discard(v)
                if val is not REMOVED:
                    bucket(val).add(v)
            levels = dict(parent)
            for k, b in dirty.items():
                if b:
                    levels[k] = frozenset(b)
                else:
                    levels.pop(k, None)
        else:
            buckets: Dict[int, set] = {}
            for v, k in self.kappa().items():
                buckets.setdefault(k, set()).add(v)
            levels = {k: frozenset(b) for k, b in buckets.items()}
        self._level_map = levels
        return levels

    def levels(self) -> Iterable[int]:
        return self._levels().keys()

    def vertices_at_level(self, k: int) -> FrozenSet[Vertex]:
        return self._levels().get(k, frozenset())

    def __repr__(self) -> str:
        return (
            f"ReadView(epoch={self.epoch}, boundary={self.boundary}, "
            f"|V|={self._size}, depth={self._depth})"
        )


_MISS = object()


class ViewManager:
    """Owns the view chain for one maintainer.

    Parameters
    ----------
    maintainer:
        The **algorithm instance** (a :class:`~repro.core.base
        .MaintainerBase`) whose ``view_publisher`` seam this manager
        drives.  :class:`~repro.serve.server.CoreServer` resolves the
        instance through the wrapper stack and re-attaches after a
        supervisor heal.
    clock:
        ``now()`` provider for ``captured_at`` stamps
        (:class:`~repro.resilience.backoff.SystemClock` by default).
    flatten_depth / flatten_ratio:
        Flatten the overlay chain into a plain dict when it exceeds
        ``flatten_depth`` links, or when the accumulated patch entries
        exceed ``flatten_ratio`` of the live vertex count.  Flattening
        happens at publish time, on the writer thread -- readers of
        older views are unaffected (their chain links are immutable).
    """

    def __init__(self, maintainer, *, clock=None,
                 flatten_depth: int = 8, flatten_ratio: float = 0.25) -> None:
        from repro.resilience.backoff import SystemClock

        self.clock = clock if clock is not None else SystemClock()
        self.flatten_depth = flatten_depth
        self.flatten_ratio = flatten_ratio
        self._m = None
        self._epoch = 0
        self._view: Optional[ReadView] = None
        self._patched = 0          # patch entries since the last flatten
        self.stats: Dict[str, int] = {
            "publishes": 0, "flattens": 0, "rebuilds": 0,
        }
        #: called with the new view and the batch delta after each publish
        self.on_publish: Optional[Callable[[ReadView, Dict], None]] = None
        self.attach(maintainer)

    # -- lifecycle ------------------------------------------------------------
    def attach(self, maintainer) -> None:
        """Bind to ``maintainer`` and publish a fresh full snapshot.

        Also the heal path: after the resilient supervisor replaces the
        algorithm instance wholesale, the server re-attaches here and
        the chain restarts from a flattened capture (the epoch keeps
        counting -- a subscriber can detect the discontinuity by the
        boundary moving backwards, never by a torn view).
        """
        if self._m is not None and self._m is not maintainer:
            self._m.view_publisher = None
        self._m = maintainer
        maintainer.view_publisher = self._publish
        self.rebuild()

    def detach(self) -> None:
        if self._m is not None:
            self._m.view_publisher = None
            self._m = None

    @property
    def maintainer(self):
        return self._m

    def current(self) -> ReadView:
        """The latest published view (always set once attached)."""
        return self._view

    # -- publication ----------------------------------------------------------
    def rebuild(self) -> ReadView:
        """Full flattened capture of the maintainer's current state."""
        m = self._m
        base = dict(m.tau)
        level_map = m.backend.view_levels()
        self._epoch += 1
        view = ReadView(
            base, {}, epoch=self._epoch, boundary=m.batches_processed,
            captured_at=self.clock.now(), sub=m.sub, size=len(base),
            level_map=level_map,
        )
        self._patched = 0
        self._view = view
        self.stats["rebuilds"] += 1
        return view

    def _publish(self, delta: Dict[Vertex, Optional[int]]) -> None:
        """The ``view_publisher`` hook: runs on the writer thread,
        strictly after the batch's commit point."""
        m = self._m
        prev = self._view
        tau = m.tau
        patch: Dict[Vertex, object] = {}
        for v in delta:
            val = tau.get(v, _MISS)
            patch[v] = REMOVED if val is _MISS else val
        self._patched += len(patch)
        self._epoch += 1
        view = ReadView(
            prev, patch, epoch=self._epoch, boundary=m.batches_processed,
            captured_at=self.clock.now(), sub=m.sub, size=len(tau),
        )
        if (view._depth > self.flatten_depth
                or self._patched > self.flatten_ratio * max(1, len(tau))):
            view = ReadView(
                view.kappa(), {}, epoch=self._epoch,
                boundary=view.boundary, captured_at=view.captured_at,
                sub=m.sub, size=len(tau), level_map=view._levels(),
            )
            self._patched = 0
            self.stats["flattens"] += 1
        self._view = view
        self.stats["publishes"] += 1
        hook = self.on_publish
        if hook is not None:
            hook(view, delta)

    def __repr__(self) -> str:
        return (
            f"ViewManager(epoch={self._epoch}, "
            f"view={self._view!r}, stats={self.stats})"
        )
