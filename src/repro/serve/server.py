"""The serving facade: snapshot reads + admission-controlled writes.

:class:`CoreServer` sits in front of a maintainer (a bare algorithm, or
the full :class:`~repro.core.maintainer.CoreMaintainer` stack with
resilience / durability / replication) and separates the two planes:

* **Write plane** -- :meth:`submit` offers changes to the admission
  controller; :meth:`pump` drains the coalesced queue into the engine
  in bounded batches.  A maintenance failure (rollback without a
  supervisor, quarantine with one) is contained: the batch is recorded
  in :attr:`failed`, health degrades to shedding, and serving
  continues from the last published snapshot.
* **Read plane** -- every query is computed against one immutable
  :class:`~repro.serve.view.ReadView` and returned as a
  :class:`~repro.serve.deadline.QueryResult` stamped with snapshot
  coordinates, staleness, and status.  ``fresh=True`` reads pump inline
  toward the committed frontier, bounded by their deadline; under
  ``SHEDDING`` health, or once the deadline expires, reads degrade to
  the last published snapshot instead of waiting -- the bounded-
  staleness contract of :class:`~repro.replication.replica.ReplicaSet`,
  applied to a single process.

The server also owns the subscription registry: threshold triggers are
evaluated against each published view delta, on the writer path,
strictly after the commit point.

Concurrency contract
--------------------
Value reads (``core``, ``kappa``, ``vertices_with_core_at_least``) are
safe from concurrent reader threads while a writer pumps: they touch
only published immutable views.  Structure-walking queries
(``top_k_densest``, anything taking adjacency from ``view.sub``) read
the live substrate and must be serialised with maintenance -- call them
from the pumping thread, or pause pumping.  docs/SERVING.md spells the
contract out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.queries import top_k_densest as _top_k_densest
from repro.core.queries import vertices_with_core_at_least as _core_at_least
from repro.graph.batch import Batch
from repro.graph.substrate import Change, graph_edge_changes
from repro.resilience.backoff import ExponentialBackoff, SystemClock
from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    IngestQueue,
)
from repro.serve.deadline import Deadline, QueryResult
from repro.serve.health import SHEDDING, HealthMonitor
from repro.serve.subscriptions import SubscriptionRegistry
from repro.serve.view import ReadView, ViewManager

__all__ = ["CoreServer", "PumpReport"]

Vertex = Hashable


@dataclass(frozen=True)
class PumpReport:
    """One :meth:`CoreServer.pump` call's outcome."""

    batches: int
    changes: int
    failures: int
    #: pending changes left in the queue (deadline/max_batches cut)
    remaining: int
    health: str


class CoreServer:
    """Snapshot-isolated query serving over live maintenance.

    Parameters
    ----------
    maintainer:
        Anything maintainer-shaped: a :class:`~repro.core.maintainer
        .CoreMaintainer` (writes then flow through its whole
        resilience / durability / replication stack) or a bare
        algorithm instance.
    clock:
        Injectable clock (``now``/``sleep``); shared with the view
        manager, deadlines, and the admission backoff.
    max_batch:
        Maximum changes per engine batch when pumping.
    defer_at / shed_at / recover_after:
        Health watermarks, in pending changes
        (:class:`~repro.serve.health.HealthMonitor`).
    backoff:
        Retry-hint generator for rejected writes; defaults to
        full-jitter :class:`~repro.resilience.backoff.ExponentialBackoff`.
    flatten_depth / flatten_ratio:
        View-chain flattening policy (:class:`~repro.serve.view
        .ViewManager`).
    batch_cost_s:
        Simulated per-batch maintenance cost, charged to the clock while
        pumping.  Zero (default) for real use; tests and the eval
        harness set it with a :class:`~repro.resilience.backoff
        .ManualClock` to exercise deadlines deterministically.
    """

    def __init__(
        self,
        maintainer,
        *,
        clock=None,
        max_batch: int = 64,
        defer_at: int = 256,
        shed_at: int = 1024,
        recover_after: int = 2,
        backoff: Optional[ExponentialBackoff] = None,
        flatten_depth: int = 8,
        flatten_ratio: float = 0.25,
        batch_cost_s: float = 0.0,
    ) -> None:
        self.m = maintainer
        self.clock = clock if clock is not None else SystemClock()
        self.max_batch = max_batch
        self.batch_cost_s = batch_cost_s
        self.health = HealthMonitor(
            defer_at=defer_at, shed_at=shed_at, recover_after=recover_after,
        )
        self.queue = IngestQueue()
        self.admission = AdmissionController(
            self.queue, self.health, backoff=backoff,
        )
        self.subscriptions = SubscriptionRegistry()
        self.views = ViewManager(
            self._algorithm(), clock=self.clock,
            flatten_depth=flatten_depth, flatten_ratio=flatten_ratio,
        )
        self.views.on_publish = self._on_publish
        #: batches maintenance refused (rolled back / quarantined), kept
        #: for operator replay -- mirrors ``QuarantinedBatch``
        self.failed: List[Tuple[Batch, str]] = []
        self.stats: Dict[str, int] = {
            "queries": 0, "timeouts": 0, "stale_reads": 0,
            "pumped_batches": 0, "pumped_changes": 0,
            "failed_batches": 0, "reattaches": 0,
        }

    # -- plumbing -------------------------------------------------------------
    def _algorithm(self):
        """The algorithm instance at the bottom of the wrapper stack --
        where the ``view_publisher`` seam and ``batches_processed``
        live."""
        resolve = getattr(self.m, "_algorithm_impl", None)
        if resolve is not None:
            return resolve()
        m = self.m
        seen = 0
        while hasattr(m, "impl") and seen < 5:
            m = m.impl
            seen += 1
        return m

    def _ensure_attached(self) -> None:
        """Re-bind the view manager if the supervisor healed the stack
        (``heal()`` replaces the algorithm instance wholesale); the
        chain restarts from a full rebuild of the healed state."""
        algo = self._algorithm()
        if algo is not self.views.maintainer:
            self.views.attach(algo)
            self.stats["reattaches"] += 1

    def _on_publish(self, view: ReadView, delta: Dict) -> None:
        self.subscriptions.evaluate(view, delta)

    @property
    def committed_batches(self) -> int:
        return self._algorithm().batches_processed

    def view(self) -> ReadView:
        """The latest published immutable snapshot."""
        return self.views.current()

    # -- write plane ----------------------------------------------------------
    def submit(self, changes: Iterable[Change]) -> AdmissionDecision:
        """Offer changes for ingestion (no engine work happens here)."""
        return self.admission.offer(changes)

    def submit_edges(self, edges: Iterable[tuple],
                     insert: bool = True) -> AdmissionDecision:
        """Graph convenience: offer whole (u, v) edges."""
        changes: List[Change] = []
        for u, v in edges:
            changes.extend(graph_edge_changes(u, v, insert))
        return self.submit(changes)

    def pump(self, max_batches: Optional[int] = None,
             deadline=None) -> PumpReport:
        """Drain admitted work into the engine in bounded batches.

        Stops at ``max_batches``, at an expired ``deadline``, or when
        the queue is empty.  Each committed batch publishes a new view
        (via the maintainer's ``view_publisher`` seam) and improves
        health; each refused batch is contained and degrades it.
        """
        dl = Deadline.coerce(deadline, self.clock)
        self._ensure_attached()
        batches = changes = failures = 0
        while len(self.queue):
            if max_batches is not None and batches >= max_batches:
                break
            if dl is not None and dl.expired:
                break
            drained = self.queue.drain(self.max_batch)
            if not drained:
                break
            batch = Batch(drained)
            if self.batch_cost_s:
                self.clock.sleep(self.batch_cost_s)
            ok, error = True, None
            try:
                result = self.m.apply_batch(batch)
                if result is not None and getattr(result, "ok", True) is False:
                    error = str(getattr(result, "error", None) or "quarantined")
                    ok = False
            except Exception as exc:  # CrashError is a BaseException: passes
                ok, error = False, f"{type(exc).__name__}: {exc}"
            batches += 1
            changes += len(drained)
            self._ensure_attached()
            if ok:
                self.health.note_commit(len(self.queue))
            else:
                failures += 1
                self.failed.append((batch, error))
                self.stats["failed_batches"] += 1
                self.health.note_failure()
        if batches == 0 and not len(self.queue):
            # idle probe: an explicit pump that finds maintenance caught
            # up is a clean observation -- the only way health can step
            # back down after a failure drained the queue (reads never
            # probe: under SHEDDING they must not touch the engine)
            self.health.note_commit(0)
        self.stats["pumped_batches"] += batches
        self.stats["pumped_changes"] += changes
        return PumpReport(
            batches=batches, changes=changes, failures=failures,
            remaining=len(self.queue), health=self.health.state,
        )

    # -- read plane -----------------------------------------------------------
    def _serve(self, compute: Callable[[ReadView], object], deadline,
               fresh: bool) -> QueryResult:
        t0 = self.clock.now()
        dl = Deadline.coerce(deadline, self.clock)
        if fresh and len(self.queue) and self.health.state != SHEDDING:
            # pull the view toward the admitted frontier, inside budget;
            # under shedding health reads never add load to maintenance
            self.pump(deadline=dl)
        else:
            self._ensure_attached()
        view = self.views.current()
        value = compute(view)
        staleness = max(0, self.committed_batches - view.boundary)
        pending = len(self.queue)
        timed_out = dl is not None and dl.expired
        if timed_out:
            status = "timeout"
            self.stats["timeouts"] += 1
        elif staleness == 0 and pending == 0:
            status = "fresh"
        else:
            status = "stale"
        if status != "fresh" and not timed_out:
            self.stats["stale_reads"] += 1
        self.stats["queries"] += 1
        return QueryResult(
            value=value, status=status, epoch=view.epoch,
            boundary=view.boundary, staleness=staleness, pending=pending,
            latency_s=self.clock.now() - t0,
        )

    def core(self, v: Vertex, *, deadline=None, fresh: bool = True
             ) -> QueryResult:
        """Core value of one vertex (O(1) against the snapshot)."""
        return self._serve(lambda view: view.kappa_of(v), deadline, fresh)

    def kappa(self, *, deadline=None, fresh: bool = True) -> QueryResult:
        """The full core mapping (materialised from the snapshot)."""
        return self._serve(lambda view: view.kappa(), deadline, fresh)

    def vertices_with_core_at_least(self, k: int, *, deadline=None,
                                    fresh: bool = True) -> QueryResult:
        """The k-core's vertex set, off the snapshot's level buckets."""
        return self._serve(
            lambda view: _core_at_least(view, k), deadline, fresh,
        )

    def top_k_densest(self, n: int = 1, *, deadline=None,
                      fresh: bool = True) -> QueryResult:
        """The ``n`` densest connected cores.  Walks the **live**
        substrate for adjacency -- serialise with maintenance (see the
        concurrency contract in the module docs)."""
        return self._serve(
            lambda view: _top_k_densest(view.sub, n, kappa=view.kappa()),
            deadline, fresh,
        )

    def query(self, compute: Callable[[ReadView], object], *, deadline=None,
              fresh: bool = True) -> QueryResult:
        """Escape hatch: run ``compute(view)`` against one snapshot."""
        return self._serve(compute, deadline, fresh)

    # -- subscriptions --------------------------------------------------------
    def subscribe(self, threshold: int, **kwargs):
        """Register a threshold trigger (see :mod:`repro.serve
        .subscriptions`)."""
        return self.subscriptions.subscribe(threshold, **kwargs)

    def __repr__(self) -> str:
        return (
            f"CoreServer(health={self.health.state!r}, "
            f"queue={len(self.queue)}, view={self.views.current()!r})"
        )
