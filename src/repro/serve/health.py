"""The serving health state machine.

Three states, strictly ordered::

    HEALTHY  ->  DEGRADED  ->  SHEDDING
       ^____________|____________|

* **HEALTHY** -- queue below the defer watermark, no recent failures:
  writes are admitted, fresh reads pump inline.
* **DEGRADED** -- queue at/above the defer watermark, or recovering
  from worse: new writes are deferred (client retries with a jittered
  hint), reads still pump toward freshness.
* **SHEDDING** -- queue at/above the shed watermark or a maintenance
  failure (quarantine / rollback) just happened: new writes are shed
  outright and reads stop pumping inline, serving the last published
  snapshot with an explicit staleness stamp.

Escalation is immediate (one bad observation suffices); recovery is
hysteretic -- the monitor steps down **one state at a time**, each step
requiring ``recover_after`` consecutive clean commits with the queue
below the relevant watermark.  That asymmetry is deliberate: a serving
layer that flaps between admitting and shedding under a sustained
overload spike is worse than one that stays conservatively degraded a
few batches longer.

The machine is fully deterministic: state is a pure function of the
observation sequence, which is what lets the overload tests assert
exact shed/defer decisions under a programmed burst schedule.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["HealthMonitor", "HEALTHY", "DEGRADED", "SHEDDING"]

HEALTHY = "healthy"
DEGRADED = "degraded"
SHEDDING = "shedding"

_RANK = {HEALTHY: 0, DEGRADED: 1, SHEDDING: 2}
_DOWN = {SHEDDING: DEGRADED, DEGRADED: HEALTHY}


class HealthMonitor:
    """Watermark + failure driven health, with hysteretic recovery.

    Parameters
    ----------
    defer_at / shed_at:
        Ingest-queue depth watermarks (in pending changes).
    recover_after:
        Consecutive clean commits required per recovery step.
    """

    def __init__(self, *, defer_at: int = 256, shed_at: int = 1024,
                 recover_after: int = 2) -> None:
        if not 0 < defer_at <= shed_at:
            raise ValueError("need 0 < defer_at <= shed_at")
        if recover_after < 1:
            raise ValueError("recover_after must be >= 1")
        self.defer_at = defer_at
        self.shed_at = shed_at
        self.recover_after = recover_after
        self.state = HEALTHY
        self._clean = 0
        #: (from, to) transition log, for tests and the eval harness
        self.transitions: List[Tuple[str, str]] = []
        self.stats: Dict[str, int] = {"failures": 0, "clean_commits": 0}

    # -- observations ---------------------------------------------------------
    def _floor_for(self, depth: int) -> str:
        """The lowest state the current queue depth permits."""
        if depth >= self.shed_at:
            return SHEDDING
        if depth >= self.defer_at:
            return DEGRADED
        return HEALTHY

    def _escalate(self, target: str) -> None:
        if _RANK[target] > _RANK[self.state]:
            self.transitions.append((self.state, target))
            self.state = target
            self._clean = 0

    def note_depth(self, depth: int) -> str:
        """Observe the ingest queue depth (admission calls this per
        offer); escalates immediately, never recovers."""
        self._escalate(self._floor_for(depth))
        return self.state

    def note_failure(self) -> str:
        """A maintenance failure (rollback, quarantine) happened."""
        self.stats["failures"] += 1
        self._escalate(SHEDDING)
        return self.state

    def note_commit(self, depth: int) -> str:
        """A batch committed cleanly at the given residual queue depth;
        the only path by which health improves."""
        self.stats["clean_commits"] += 1
        floor = self._floor_for(depth)
        if _RANK[floor] >= _RANK[self.state]:
            # the queue alone justifies the current state (or worse)
            self._escalate(floor)
            self._clean = 0
            return self.state
        self._clean += 1
        if self._clean >= self.recover_after:
            down = _DOWN[self.state]
            self.transitions.append((self.state, down))
            self.state = down
            self._clean = 0
        return self.state

    def __repr__(self) -> str:
        return (
            f"HealthMonitor(state={self.state!r}, defer_at={self.defer_at}, "
            f"shed_at={self.shed_at}, clean={self._clean})"
        )
