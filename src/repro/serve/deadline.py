"""Per-query deadline budgets and the stamped query result.

Every read against :class:`~repro.serve.server.CoreServer` returns a
:class:`QueryResult` -- never a bare value -- carrying the snapshot
coordinates the answer was computed at (``epoch`` / ``boundary``), how
far behind the committed stream that snapshot is (``staleness``,
``pending``), the wall-clock latency, and a status:

* ``fresh`` -- the view reflects every committed batch;
* ``stale`` -- maintenance is ahead of the view (pumping was skipped or
  cut short); the value is the last *published* snapshot, exact as of
  ``boundary``;
* ``timeout`` -- the deadline expired; whatever snapshot was reachable
  in budget is returned, staleness-stamped.

A :class:`Deadline` is a small clock-carrying budget: queries check it
between pump steps, so a deadline bounds how much inline maintenance a
read will do before degrading to the last snapshot.  With no deadline a
fresh read pumps the whole queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["Deadline", "QueryResult"]


class Deadline:
    """A wall-clock budget measured on an injectable clock."""

    __slots__ = ("budget_s", "clock", "_start")

    def __init__(self, budget_s: float, clock) -> None:
        if budget_s < 0:
            raise ValueError("deadline budget must be >= 0")
        self.budget_s = float(budget_s)
        self.clock = clock
        self._start = clock.now()

    @property
    def elapsed(self) -> float:
        return self.clock.now() - self._start

    @property
    def remaining(self) -> float:
        return self.budget_s - self.elapsed

    @property
    def expired(self) -> bool:
        return self.remaining <= 0.0

    @classmethod
    def coerce(cls, value, clock) -> Optional["Deadline"]:
        """``None`` | seconds | Deadline -> Deadline or None."""
        if value is None or isinstance(value, cls):
            return value
        return cls(float(value), clock)

    def __repr__(self) -> str:
        return f"Deadline(budget={self.budget_s}, remaining={self.remaining:.6f})"


@dataclass(frozen=True)
class QueryResult:
    """A served read, stamped with its snapshot coordinates."""

    #: the answer, computed against one immutable snapshot
    value: Any
    #: ``fresh`` / ``stale`` / ``timeout``
    status: str
    #: publish counter of the snapshot served
    epoch: int
    #: committed batches reflected by the snapshot
    boundary: int
    #: committed batches the snapshot is behind (0 when fresh)
    staleness: int
    #: admitted changes not yet applied by maintenance
    pending: int
    #: wall-clock seconds spent serving (includes any inline pumping)
    latency_s: float

    @property
    def fresh(self) -> bool:
        return self.status == "fresh"

    def __repr__(self) -> str:
        return (
            f"QueryResult({self.value!r}, status={self.status!r}, "
            f"epoch={self.epoch}, boundary={self.boundary}, "
            f"staleness={self.staleness}, pending={self.pending})"
        )
