"""Admission control and backpressure for the ingest path.

Writes do not go straight to the engine: they are offered to an
:class:`AdmissionController`, which either enqueues them on the bounded,
coalescing :class:`IngestQueue` (``accepted``), refuses them with a
jittered retry-after hint (``deferred``), or drops them under overload
(``shed``).  The decision is driven by the
:class:`~repro.serve.health.HealthMonitor` watermarks, so the queue
depth is bounded by construction -- sustained 10x overload cannot grow
memory or maintenance latency without bound, it converts the excess
into explicit ``deferred`` / ``shed`` decisions the client can see.

Coalescing
----------
The queue keys pending work by ``(edge, vertex)`` pin.  An arriving
change that *opposes* a pending one (insert vs delete of the same pin)
annihilates both -- the net effect on the decomposition is zero, a
consequence of the same order-insensitivity that makes batch
maintenance correct (docs/ALGORITHMS.md).  A duplicate of a pending
change is absorbed.  Both cases save the engine real work before it is
ever scheduled; the columnar fast path in particular refuses batches
containing opposing pairs, so folding them here keeps bursty
remove/reinsert streams on the vectorised path.

Retry-after hints use :class:`~repro.resilience.backoff
.ExponentialBackoff` in **full-jitter** mode: many independent clients
told to retry get decorrelated delays drawn from ``[0, base]``, so the
retry wave does not arrive as a second thundering herd.  Hints are
deterministic given the backoff seed -- the overload tests assert them
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional

from repro.graph.substrate import Change
from repro.resilience.backoff import ExponentialBackoff
from repro.serve.health import HEALTHY, HealthMonitor

__all__ = ["AdmissionDecision", "IngestQueue", "AdmissionController"]

Vertex = Hashable


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of offering work to the serving layer."""

    #: ``accepted`` / ``deferred`` / ``shed``
    status: str
    #: pending changes in the ingest queue after this decision
    queue_depth: int
    #: health state the decision was made under
    health: str
    #: suggested client wait before retrying (rejections only)
    retry_after_s: Optional[float] = None
    #: changes enqueued (after coalescing; 0 on rejection)
    enqueued: int = 0
    #: changes annihilated against an opposing pending change
    annihilated: int = 0
    #: changes absorbed as duplicates of pending ones
    duplicates: int = 0

    @property
    def accepted(self) -> bool:
        return self.status == "accepted"


class IngestQueue:
    """Bounded FIFO of pending pin changes with opposing-pair coalescing.

    Pending work lives in one insertion-ordered dict keyed by
    ``(edge, vertex)`` -- membership, annihilation and duplicate
    absorption are all O(1) per change, and :meth:`drain` pops in FIFO
    order of first arrival.
    """

    def __init__(self) -> None:
        self._pending: Dict[tuple, Change] = {}
        self.stats: Dict[str, int] = {
            "enqueued": 0, "annihilated": 0, "duplicates": 0, "drained": 0,
        }

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, change: Change) -> str:
        """Add one change; returns ``queued`` / ``annihilated`` /
        ``duplicate``."""
        key = (change.edge, change.vertex)
        pending = self._pending.get(key)
        if pending is not None:
            if pending.insert != change.insert:
                # opposing pair: net zero against the decomposition
                del self._pending[key]
                self.stats["annihilated"] += 1
                return "annihilated"
            self.stats["duplicates"] += 1
            return "duplicate"
        self._pending[key] = change
        self.stats["enqueued"] += 1
        return "queued"

    def drain(self, max_changes: Optional[int] = None) -> List[Change]:
        """Pop up to ``max_changes`` pending changes, FIFO."""
        pending = self._pending
        if max_changes is None or max_changes >= len(pending):
            out = list(pending.values())
            pending.clear()
        else:
            keys = list(pending.keys())[:max_changes]
            out = [pending.pop(k) for k in keys]
        self.stats["drained"] += len(out)
        return out

    def __repr__(self) -> str:
        return f"IngestQueue(depth={len(self._pending)}, stats={self.stats})"


class AdmissionController:
    """Watermark-based accept / defer / shed, with jittered retry hints."""

    def __init__(self, queue: IngestQueue, health: HealthMonitor, *,
                 backoff: Optional[ExponentialBackoff] = None) -> None:
        self.queue = queue
        self.health = health
        self.backoff = backoff if backoff is not None else ExponentialBackoff(
            initial=0.05, factor=2.0, max_delay=5.0, mode="full", seed=0,
        )
        self._rejections = 0          # consecutive, drives the hint attempt
        self.stats: Dict[str, int] = {
            "accepted": 0, "deferred": 0, "shed": 0, "changes_offered": 0,
        }

    def offer(self, changes: Iterable[Change]) -> AdmissionDecision:
        """Offer a group of changes; all-or-nothing per group."""
        changes = list(changes)
        health = self.health
        depth = len(self.queue)
        state = health.note_depth(depth)
        self.stats["changes_offered"] += len(changes)
        if state != HEALTHY:
            status = "shed" if state == "shedding" else "deferred"
            self.stats[status] += 1
            self._rejections += 1
            hint = self.backoff.delay(
                min(self._rejections - 1, 16), key=self.stats[status]
            )
            if status == "shed":
                hint *= 2.0           # shed clients back off harder
            return AdmissionDecision(
                status=status, queue_depth=depth, health=state,
                retry_after_s=hint,
            )
        self._rejections = 0
        enq = ann = dup = 0
        for ch in changes:
            outcome = self.queue.push(ch)
            if outcome == "queued":
                enq += 1
            elif outcome == "annihilated":
                ann += 1
            else:
                dup += 1
        depth = len(self.queue)
        health.note_depth(depth)      # the accept may have crossed a mark
        self.stats["accepted"] += 1
        return AdmissionDecision(
            status="accepted", queue_depth=depth, health=health.state,
            enqueued=enq, annihilated=ann, duplicates=dup,
        )

    def __repr__(self) -> str:
        return f"AdmissionController(stats={self.stats})"
