"""Bounded-staleness read routing over a primary and its standbys.

A :class:`ReplicaSet` is the read facade the ISSUE calls for: clients ask
for ``kappa`` / ``kappa_of`` with a *staleness budget* -- the largest
number of committed-but-unapplied batches they will tolerate -- and the
set routes the read to a standby within that budget (round-robin over the
eligible ones, spreading read load), falling back to the primary when no
standby qualifies.

The staleness contract: a replica's lag is
``primary.committed_seqno - replica.applied_seqno``.  With budget 0 a
read is served only by a standby whose applied watermark *equals* the
primary's committed watermark (or by the primary itself, which reflects
its committed state by construction) -- so budget-0 reads are always
read-your-writes with respect to the primary's durable log.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

__all__ = ["ReplicaSet"]

Vertex = Hashable


class ReplicaSet:
    """Staleness-budget read router over ``primary`` and its replicas.

    Constructed from (and cached on) a
    :class:`~repro.replication.primary.ReplicatedMaintainer`; membership
    tracks the primary's live handle list, so a promote simply builds a
    new set from the new primary.
    """

    def __init__(self, primary) -> None:
        self.primary = primary
        self._rr = 0
        #: reads served per endpoint, for scale-out accounting
        self.reads: Dict[str, int] = {"primary": 0}
        for r in primary.replicas:
            self.reads.setdefault(f"replica-{r.replica_id}", 0)

    # -- staleness accounting --------------------------------------------------
    def staleness_of(self, replica) -> int:
        """Committed-but-unapplied batches on ``replica`` right now."""
        return max(0, self.primary.committed_seqno - replica.applied_seqno)

    def lags(self) -> Dict[int, int]:
        """``{replica_id: staleness}`` snapshot across the set."""
        return {
            r.replica_id: self.staleness_of(r) for r in self.primary.replicas
        }

    def eligible(self, max_staleness: int = 0) -> List:
        """Live standbys currently within the staleness budget."""
        return [
            r for r in self.primary.replicas
            if r.live and self.staleness_of(r) <= max_staleness
        ]

    # -- routing ---------------------------------------------------------------
    def route(self, max_staleness: int = 0) -> Tuple[str, object]:
        """Pick ``(label, server)`` for one read under the budget.

        Round-robins across eligible standbys; the primary serves the
        read itself when nobody is fresh enough (correct at any budget:
        the primary *is* its own committed watermark).
        """
        candidates = self.eligible(max_staleness)
        if candidates:
            replica = candidates[self._rr % len(candidates)]
            self._rr += 1
            return f"replica-{replica.replica_id}", replica
        return "primary", self.primary

    def kappa_of(self, v: Vertex, *, max_staleness: int = 0) -> int:
        label, server = self.route(max_staleness)
        self.reads[label] = self.reads.get(label, 0) + 1
        return server.kappa_of(v)

    def kappa(self, *, max_staleness: int = 0) -> Dict[Vertex, int]:
        label, server = self.route(max_staleness)
        self.reads[label] = self.reads.get(label, 0) + 1
        return server.kappa()

    def replica_read_fraction(self) -> float:
        """Fraction of routed reads served by standbys (scale-out)."""
        total = sum(self.reads.values())
        if not total:
            return 0.0
        return 1.0 - self.reads.get("primary", 0) / total

    def __repr__(self) -> str:
        return (
            f"ReplicaSet(replicas={len(self.primary.replicas)}, "
            f"lags={self.lags()})"
        )
