"""The replicating primary: ship WAL suffixes, track acks, fail over.

:class:`ReplicatedMaintainer` wraps a
:class:`~repro.resilience.durability.durable.DurableMaintainer` (it
ships *from the primary's own WAL*, so replication can never outrun
durability) and keeps N hot standbys converging on the primary's
committed state:

* after every applied batch the new committed WAL suffix is encoded in
  wire format and shipped down each replica's
  :class:`~repro.replication.link.ReplicationLink`;
* acknowledgements advance a per-replica *cursor* (the replica's
  confirmed ``applied_seqno``); NAKs -- gap, torn shipment, stale term
  -- reset the send window and pace the retransmit with the shared
  :class:`~repro.resilience.backoff.ExponentialBackoff`;
* an unacknowledged window is retransmitted after an ack timeout, which
  is what heals dropped shipments without any replica-side timer;
* a replica whose cursor falls below the WAL's prune horizon has been
  *lapped* and is resynced wholesale: newest checkpoint image + WAL
  suffix, replayed through the standard recovery path
  (:meth:`~repro.replication.replica.Replica.bootstrap`);
* every shipment is stamped with the primary's **term**; a
  ``stale-term`` NAK from any replica raises :class:`StaleTermError` --
  the primary has been deposed and must stop.

Time is the injected clock's (simulated by default): ``apply_batch``
ships and then *pumps* -- advances time one bounded step and processes
arrivals -- so under the default cost model a standby's watermark stays
within one batch of the primary, and the whole timeline is
deterministic.

Failover: :func:`primary_suspected` implements quorum heartbeat-timeout
detection over the standbys, and :func:`promote_on_failure` elects the
standby with the highest applied watermark, wraps its live state in a
new :class:`DurableMaintainer` over its own directory (no replay
needed: a hot standby's memory *is* recovered state), bumps the term,
and re-attaches the surviving replicas to the new primary -- which
fences the old one.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Union

from repro.distributed.cluster import ClusterSpec
from repro.replication.link import ReplicationLink
from repro.replication.replica import Replica
from repro.replication.shipment import (
    Ack,
    Nak,
    Shipment,
    StaleTermError,
    tau_fingerprint,
)
from repro.resilience.backoff import ExponentialBackoff, ManualClock
from repro.resilience.durability.errors import DurabilityError
from repro.resilience.durability.recovery import (
    checkpoint_seqno,
    list_checkpoints,
)
from repro.resilience.durability.wal import encode_batch

__all__ = ["ReplicatedMaintainer", "promote_on_failure", "primary_suspected"]

Vertex = Hashable


@dataclass
class _Handle:
    """Per-replica send state on the primary."""

    replica: Replica
    link: ReplicationLink
    #: replica's last *acknowledged* applied watermark
    cursor: int = 0
    #: one past the highest position already put on the wire
    shipped_upto: int = 0
    #: ack timeout of the outstanding window (None = nothing outstanding)
    deadline: Optional[float] = None
    #: NAK backoff: no sends to this replica before this time
    backoff_until: Optional[float] = None
    attempts: int = 0


def _fresh_stats():
    return {
        "shipments": 0, "heartbeats": 0, "acks": 0, "naks": 0,
        "retransmits": 0, "resyncs": 0, "hash_stamps": 0,
    }


class ReplicatedMaintainer:
    """Primary facade: durable apply + WAL shipping to hot standbys.

    Parameters
    ----------
    impl:
        A :class:`DurableMaintainer` (anything exposing ``wal`` /
        ``directory`` / ``wal_seqno``); replication ships from its log.
    replicas:
        Either a count (fresh standbys are created under
        ``directory_root`` and bootstrapped from the current state) or a
        sequence of existing :class:`Replica` objects (the promote path:
        live ones are fenced to this primary's term and resume from
        their own watermarks).
    directory_root:
        Where counted replicas live (default
        ``<impl.directory>/replicas/replica-<i>``).
    spec:
        Transport cost model shared by every link.
    clock:
        Replication clock; a fresh deterministic
        :class:`~repro.resilience.backoff.ManualClock` by default.
    term:
        This primary's fencing term (elections pass ``max(term)+1``).
    fault_plans:
        Transport chaos: either ``{replica_id: [FaultPlan, ...]}`` or a
        flat sequence applied to replica 0's link.
    backoff:
        Retransmit pacing (``None``/policy/``"default"``); the default is
        scaled to the link's base latency so simulated time stays small.
    heartbeat_every:
        Ship a heartbeat every N applied batches (0 = only explicit
        :meth:`heartbeat` calls).
    divergence_every:
        Stamp the primary's tau fingerprint on every Nth records
        shipment (1 = all, 0 = never).  A replica reaching the same
        watermark with a different fingerprint raises
        :class:`~repro.replication.shipment.ReplicationDivergence`.
        Safe to combine with a resilient inner layer: a batch that
        quarantines after being WAL-logged is retracted by an abort
        record, so standbys skip it exactly as the primary's memory did
        and the fingerprints agree.
    auto_pump:
        Pump the transport after every applied batch (default).  With a
        manual clock and no faults this keeps every standby within one
        batch of the primary; disable for explicit pump control.
    pump_step:
        Upper bound on simulated time advanced per pump round.  The
        default (``None``) adapts to the costliest in-flight shipment,
        so one round always covers an undisturbed delivery while
        reorder/delay holds still span rounds.
    ack_timeout_costs:
        Retransmit an unacked window after this many multiples of the
        shipment's own delivery cost.
    max_drain_rounds:
        :meth:`sync_replicas` raises :class:`DurabilityError` after this
        many rounds without convergence (a fault schedule that eats every
        retransmit is a dead transport, not lag).
    replica_options:
        Forwarded to created :class:`Replica` objects (``engine`` /
        ``algorithm`` / ``rt`` / ``checkpoint_every`` / ``sync_policy``).
    """

    def __init__(
        self,
        impl,
        *,
        replicas: Union[int, Sequence[Replica]] = 2,
        directory_root=None,
        spec: Optional[ClusterSpec] = None,
        clock=None,
        term: int = 1,
        fault_plans=None,
        backoff="default",
        heartbeat_every: int = 0,
        divergence_every: int = 1,
        auto_pump: bool = True,
        pump_step: Optional[float] = None,
        ack_timeout_costs: float = 4.0,
        max_drain_rounds: int = 1000,
        replica_options: Optional[Dict] = None,
    ) -> None:
        if getattr(impl, "wal", None) is None:
            raise ValueError(
                "ReplicatedMaintainer needs a durable impl (a DurableMaintainer "
                "with a WAL) to ship from"
            )
        self.impl = impl
        self.spec = spec if spec is not None else ClusterSpec()
        self.clock = clock if clock is not None else ManualClock()
        self.term = int(term)
        self.heartbeat_every = heartbeat_every
        self.divergence_every = divergence_every
        self.auto_pump = auto_pump
        #: None = adaptive (sized per round to the costliest in-flight
        #: shipment, so an undisturbed delivery lands within one round)
        self.pump_step = pump_step
        self.ack_timeout_costs = ack_timeout_costs
        self.max_drain_rounds = max_drain_rounds
        base = self.spec.shipment_cost_s(0)
        self.backoff = ExponentialBackoff.coerce(backoff)
        if backoff == "default":
            # scale the standard policy to the link: waits measured in
            # deliveries, not wall-clock seconds
            self.backoff = ExponentialBackoff(
                initial=2 * base, factor=2.0, max_delay=50 * base, jitter=0.25
            )
        if self.backoff is None:
            self.backoff = ExponentialBackoff(
                initial=0.0, factor=1.0, max_delay=0.0, jitter=0.0
            )
        self.stats: Dict[str, int] = _fresh_stats()
        #: replica_id of the standby this primary was promoted from
        self.promoted_from: Optional[int] = None
        self._batches = 0
        self._ship_counter = 0
        self._replica_set = None
        self._handles: List[_Handle] = []
        plan_map = self._plan_map(fault_plans)
        for replica in self._build_replicas(replicas, directory_root, replica_options):
            replica.clock = self.clock
            link = ReplicationLink(
                self.clock,
                spec=self.spec,
                plans=plan_map.get(replica.replica_id, ()),
                name=f"->replica-{replica.replica_id}",
            )
            h = _Handle(replica=replica, link=link)
            if replica.live:
                self._fence(h)
            else:
                self._resync(h)
                self.stats["resyncs"] -= 1  # the initial bootstrap is not a resync
            self._handles.append(h)

    # -- construction helpers --------------------------------------------------
    @staticmethod
    def _plan_map(fault_plans) -> Mapping[int, Sequence]:
        if not fault_plans:
            return {}
        if isinstance(fault_plans, Mapping):
            return dict(fault_plans)
        return {0: list(fault_plans)}

    def _inner_algorithm(self):
        m = self.impl
        seen = 0
        while hasattr(m, "impl") and seen < 4:
            m = m.impl
            seen += 1
        return m

    def _build_replicas(self, replicas, directory_root, replica_options):
        if not isinstance(replicas, int):
            return list(replicas)
        if replicas < 1:
            raise ValueError("need at least one replica")
        root = (
            Path(directory_root)
            if directory_root is not None
            else self.impl.directory / "replicas"
        )
        opts = dict(replica_options or {})
        inner = self._inner_algorithm()
        opts.setdefault("engine", getattr(inner, "engine", "auto"))
        return [
            Replica(i, root / f"replica-{i}", **opts) for i in range(replicas)
        ]

    def _fence(self, h: _Handle) -> None:
        """Control-channel handshake with an already-live replica: adopt
        it at its own watermark and stamp it with this primary's term."""
        committed = self.committed_seqno
        resp = h.replica.receive(
            Shipment(
                "heartbeat",
                term=self.term,
                start_seqno=committed,
                end_seqno=committed,
                committed_seqno=committed,
            )
        )
        if isinstance(resp, Nak):  # its term is newer: *we* are stale
            raise StaleTermError(
                f"cannot adopt replica {h.replica.replica_id}: it is on term "
                f"{resp.term} > {self.term}",
                self.impl.directory,
            )
        h.cursor = h.shipped_upto = h.replica.applied_seqno

    # -- maintainer protocol ---------------------------------------------------
    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.impl, name)

    @property
    def committed_seqno(self) -> int:
        """The primary's committed watermark (next WAL position)."""
        return self.impl.wal_seqno

    @property
    def replicas(self) -> List[Replica]:
        return [h.replica for h in self._handles]

    @property
    def links(self) -> List[ReplicationLink]:
        return [h.link for h in self._handles]

    @property
    def replica_set(self):
        from repro.replication.replica_set import ReplicaSet

        if self._replica_set is None:
            self._replica_set = ReplicaSet(self)
        return self._replica_set

    @property
    def converged(self) -> bool:
        """True when every standby has acknowledged the full log."""
        committed = self.committed_seqno
        return all(h.cursor >= committed for h in self._handles)

    def lag_of(self, replica_id: int) -> int:
        for h in self._handles:
            if h.replica.replica_id == replica_id:
                return max(0, self.committed_seqno - h.replica.applied_seqno)
        raise KeyError(replica_id)

    def max_lag(self) -> int:
        return max(
            (max(0, self.committed_seqno - h.replica.applied_seqno)
             for h in self._handles),
            default=0,
        )

    def apply_batch(self, batch):
        """Durable apply, then ship the new committed suffix and pump the
        transport one step.  A simulated ``kill -9`` inside the durable
        apply propagates before anything is shipped -- asynchronous
        replication never acknowledges what the primary has not logged."""
        result = self.impl.apply_batch(batch)
        self._batches += 1
        if self.heartbeat_every and self._batches % self.heartbeat_every == 0:
            self.heartbeat()
        self._replicate()
        if self.auto_pump:
            self.pump()
        return result

    def apply_change(self, change):
        from repro.graph.batch import Batch

        return self.apply_batch(Batch([change]))

    # -- the shipping loop -----------------------------------------------------
    def _replicate(self) -> None:
        for h in self._handles:
            self._ship_to(h)

    def _ship_to(self, h: _Handle) -> None:
        committed = self.committed_seqno
        if h.cursor >= committed:
            h.deadline = None
            h.backoff_until = None
            h.attempts = 0
            return
        if h.cursor < self.impl.wal.horizon():
            self._resync(h)  # lapped: the suffix it needs is pruned away
            return
        now = self.clock.now()
        if h.backoff_until is not None:
            if now < h.backoff_until:
                return
            h.backoff_until = None
            self.stats["retransmits"] += 1
            self._send(h, h.cursor)
            return
        if h.deadline is not None and now >= h.deadline:
            h.attempts += 1
            self.stats["retransmits"] += 1
            self._send(h, h.cursor)
            return
        if h.shipped_upto < committed:
            self._send(h, h.shipped_upto)

    def _send(self, h: _Handle, start: int) -> None:
        committed = self.committed_seqno
        try:
            batches = list(self.impl.wal.read_from(start))
        except DurabilityError:
            self._resync(h)
            return
        parts = []
        items = 0
        for seqno, changes in batches:
            parts.append(encode_batch(seqno, changes))
            items += len(changes) + 1
        tau_hash = None
        self._ship_counter += 1
        if self.divergence_every and self._ship_counter % self.divergence_every == 0:
            tau_hash = tau_fingerprint(self.impl.tau)
            self.stats["hash_stamps"] += 1
        shipment = Shipment(
            "records",
            term=self.term,
            start_seqno=start,
            end_seqno=committed,
            payload=b"".join(parts),
            items=items,
            tau_hash=tau_hash,
            committed_seqno=committed,
        )
        h.link.ship(shipment)
        self.stats["shipments"] += 1
        h.shipped_upto = committed
        h.deadline = (
            self.clock.now()
            + self.ack_timeout_costs * h.link.base_cost_s(items)
            + self.backoff.delay(min(h.attempts, 10), key=h.replica.replica_id)
        )

    def _resync(self, h: _Handle) -> None:
        cp_bytes, base, wal_bytes = self._bootstrap_payload()
        h.replica.bootstrap(cp_bytes, base, wal_bytes, term=self.term)
        h.cursor = h.shipped_upto = h.replica.applied_seqno
        h.deadline = None
        h.backoff_until = None
        h.attempts = 0
        self.stats["resyncs"] += 1

    def _bootstrap_payload(self):
        """Newest checkpoint image + committed WAL suffix, as raw bytes
        (the resync path the ISSUE calls 'bootstrap from newest
        checkpoint + WAL suffix')."""
        checkpoints = list_checkpoints(self.impl.directory)
        if not checkpoints:
            raise DurabilityError(
                "primary has no checkpoint to bootstrap a replica from",
                self.impl.directory,
            )
        cp_path = checkpoints[-1]
        base = checkpoint_seqno(cp_path)
        parts = [
            encode_batch(seqno, changes)
            for seqno, changes in self.impl.wal.read_from(base)
        ]
        return cp_path.read_bytes(), base, b"".join(parts)

    # -- heartbeats ------------------------------------------------------------
    def heartbeat(self) -> None:
        """Ship a liveness + watermark beacon down every link."""
        committed = self.committed_seqno
        for h in self._handles:
            h.link.ship(
                Shipment(
                    "heartbeat",
                    term=self.term,
                    start_seqno=committed,
                    end_seqno=committed,
                    committed_seqno=committed,
                )
            )
            self.stats["heartbeats"] += 1

    # -- pumping the transport ---------------------------------------------------
    def _advance_to(self, t: float) -> None:
        now = self.clock.now()
        if t > now:
            self.clock.sleep(t - now)

    def _deliver_due(self) -> int:
        delivered = 0
        for h in self._handles:
            for shipment in h.link.poll():
                self._receive(h, shipment)
                delivered += 1
        return delivered

    def _receive(self, h: _Handle, resp_source: Shipment) -> None:
        resp = h.replica.receive(resp_source)
        if isinstance(resp, Ack):
            self.stats["acks"] += 1
            h.cursor = max(h.cursor, resp.applied_seqno)
            if resp.applied_seqno >= h.shipped_upto:
                h.deadline = None
                h.backoff_until = None
                h.attempts = 0
            return
        self.stats["naks"] += 1
        if resp.reason == "stale-term":
            raise StaleTermError(
                f"deposed: replica {resp.replica_id} is on term {resp.term} "
                f"> {self.term}; this primary's shipments are fenced",
                self.impl.directory,
            )
        # gap or torn: the replica's watermark is authoritative -- back
        # the window up to it and wait out the backoff before resending
        h.cursor = max(h.cursor, resp.applied_seqno)
        h.shipped_upto = h.cursor
        h.attempts += 1
        h.deadline = None
        h.backoff_until = self.clock.now() + self.backoff.delay(
            min(h.attempts - 1, 10), key=h.replica.replica_id
        )

    def _round_step(self) -> float:
        if self.pump_step is not None:
            return self.pump_step
        step = self.spec.shipment_cost_s(64)
        for h in self._handles:
            cost = h.link.max_inflight_cost_s()
            if cost is not None:
                step = max(step, cost)
        return step

    def pump(self, steps: int = 1) -> int:
        """Advance simulated time up to ``steps`` bounded rounds,
        delivering due shipments and firing due retransmits.  Returns
        the number of shipments processed."""
        delivered = 0
        committed = self.committed_seqno
        for _ in range(steps):
            events = [
                t for h in self._handles
                for t in (
                    h.link.next_delivery_at(),
                    h.backoff_until if h.cursor < committed else None,
                    h.deadline if h.cursor < committed else None,
                )
                if t is not None
            ]
            if not events:
                break
            self._advance_to(
                min(min(events), self.clock.now() + self._round_step())
            )
            delivered += self._deliver_due()
            self._replicate()
        return delivered

    def sync_replicas(self, max_rounds: Optional[int] = None) -> int:
        """Pump until every standby acknowledges the full committed log.
        Returns the rounds taken; raises :class:`DurabilityError` when
        the transport cannot converge within the round budget."""
        cap = max_rounds if max_rounds is not None else self.max_drain_rounds
        rounds = 0
        self._replicate()
        while not self.converged:
            rounds += 1
            if rounds > cap:
                raise DurabilityError(
                    f"replication failed to converge after {cap} rounds "
                    f"(max lag {self.max_lag()} batches)",
                    self.impl.directory,
                )
            if self.pump(1) == 0 and not self.converged:
                # nothing scheduled yet we are behind: force a retransmit
                now = self.clock.now()
                for h in self._handles:
                    if h.cursor < self.committed_seqno:
                        h.backoff_until = None
                        h.deadline = now
                self._replicate()
        return rounds

    # -- lifecycle ---------------------------------------------------------------
    def checkpoint(self):
        return self.impl.checkpoint()

    def close(self, *, final_checkpoint: bool = True, sync: bool = True) -> None:
        if sync:
            self.sync_replicas()
        self.impl.close(final_checkpoint=final_checkpoint)
        for h in self._handles:
            h.replica.close()

    def __repr__(self) -> str:
        return (
            f"ReplicatedMaintainer(term={self.term}, "
            f"committed={self.committed_seqno}, replicas={len(self._handles)}, "
            f"max_lag={self.max_lag()})"
        )


# ---------------------------------------------------------------------------
# failure detection and promotion
# ---------------------------------------------------------------------------
def primary_suspected(replicas: Sequence[Replica], timeout: float) -> bool:
    """Quorum heartbeat-timeout detection: true when a majority of live
    standbys have heard nothing from the primary for ``timeout`` seconds
    of the shared clock."""
    live = [r for r in replicas if r.live]
    if not live:
        return False
    suspecting = sum(1 for r in live if r.suspects_primary(timeout))
    return 2 * suspecting > len(live)


def promote_on_failure(
    replicas: Sequence[Replica],
    *,
    spec: Optional[ClusterSpec] = None,
    clock=None,
    backoff="default",
    fault_plans=None,
    durability: Optional[Dict] = None,
    heartbeat_every: int = 0,
    divergence_every: int = 1,
    auto_pump: bool = True,
    sync: bool = True,
    **replicated_options,
) -> ReplicatedMaintainer:
    """Elect and promote a standby after the primary died.

    The standby with the **highest applied watermark** wins (ties break
    to the lowest id); its live in-memory state is wrapped in a fresh
    :class:`~repro.resilience.durability.durable.DurableMaintainer` over
    its own directory -- a hot standby needs no replay; its memory *is*
    the recovered state, and the new baseline checkpoint seals it.  The
    new primary's term is ``max(term seen by any standby) + 1``, so the
    dead primary's stragglers are fenced the moment they touch any
    surviving replica.  The survivors are re-attached as standbys of the
    new primary and (by default) synced to its log before this returns.

    ``durability`` is forwarded to the new primary's durable facade;
    everything else configures the new :class:`ReplicatedMaintainer`.
    """
    from repro.resilience.durability.durable import DurableMaintainer

    candidates = [r for r in replicas if r.live]
    if not candidates:
        raise DurabilityError("no live replica to promote", None)
    winner = max(candidates, key=lambda r: (r.applied_seqno, -r.replica_id))
    new_term = max(r.term for r in replicas) + 1
    # hand the winner's directory over to the durable facade: close its
    # replication-fed WAL, then continue appending at its watermark
    winner.wal.close()
    winner.wal = None
    # the winner now *owns* the new term: a deposed primary that keeps
    # shipping old-term records to it is fenced, not applied
    winner.term = new_term
    opts = dict(durability or {})
    opts.setdefault("start_seqno", winner.applied_seqno)
    durable = DurableMaintainer(winner.maintainer, winner.directory, **opts)
    survivors = [r for r in candidates if r is not winner]
    promoted = ReplicatedMaintainer(
        durable,
        replicas=survivors,
        spec=spec,
        clock=clock if clock is not None else winner.clock,
        term=new_term,
        fault_plans=fault_plans,
        backoff=backoff,
        heartbeat_every=heartbeat_every,
        divergence_every=divergence_every,
        auto_pump=auto_pump,
        **replicated_options,
    )
    promoted.promoted_from = winner.replica_id
    if sync and survivors:
        promoted.sync_replicas()
    return promoted
