"""Replication: WAL shipping, hot standbys, bounded-staleness reads.

Built entirely on the durability layer: the primary
(:class:`ReplicatedMaintainer`) ships its own WAL's committed suffix in
wire format down fault-injectable simulated links
(:class:`ReplicationLink`); each :class:`Replica` replays shipments
through the standard recovery machinery and serves reads at its
``applied_seqno`` watermark; :class:`ReplicaSet` routes ``kappa`` /
``kappa_of`` by staleness budget; :func:`promote_on_failure` elects a new
primary after a crash, and term fencing (:class:`StaleTermError`) keeps
the deposed one from corrupting the promoted timeline.  See
``docs/RESILIENCE.md`` part 6.

Everything here is loaded lazily: importing :mod:`repro` never pays for
the replication stack unless it is used.
"""

from __future__ import annotations

__all__ = [
    "Ack",
    "Nak",
    "Replica",
    "ReplicaSet",
    "ReplicatedMaintainer",
    "ReplicationDivergence",
    "ReplicationError",
    "ReplicationLink",
    "Shipment",
    "StaleTermError",
    "primary_suspected",
    "promote_on_failure",
    "tau_fingerprint",
]

_LAZY = {
    "Ack": "repro.replication.shipment",
    "Nak": "repro.replication.shipment",
    "Shipment": "repro.replication.shipment",
    "ReplicationError": "repro.replication.shipment",
    "ReplicationDivergence": "repro.replication.shipment",
    "StaleTermError": "repro.replication.shipment",
    "tau_fingerprint": "repro.replication.shipment",
    "ReplicationLink": "repro.replication.link",
    "Replica": "repro.replication.replica",
    "ReplicatedMaintainer": "repro.replication.primary",
    "primary_suspected": "repro.replication.primary",
    "promote_on_failure": "repro.replication.primary",
    "ReplicaSet": "repro.replication.replica_set",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
