"""The replication transport: simulated, costed, and fault-injectable.

A :class:`ReplicationLink` is a one-way primary->replica channel.  It is
**deterministic-first**: delivery time is computed from the
:class:`~repro.distributed.cluster.ClusterSpec` cost model
(serialisation + per-record cost + network latency, the same parameters
that price BSP supersteps in :mod:`repro.distributed`) against an
injectable clock -- under a
:class:`~repro.resilience.backoff.ManualClock` the whole replication
timeline is virtual and reproducible, which is what lets the chaos and
failover suites run in milliseconds with zero real waiting.

Transport faults come from ``ship-*``-kind
:class:`~repro.resilience.faults.FaultPlan` entries, addressed by
*shipment ordinal* (the N-th shipment handed to this link, heartbeats
included).  Each plan fires once:

* ``ship-drop`` -- the shipment never arrives;
* ``ship-dup`` -- it arrives twice;
* ``ship-reorder`` -- it is held back past its successor's arrival, so a
  later shipment overtakes it;
* ``ship-delay`` -- delivery is postponed ``delta`` base latencies;
* ``ship-torn`` -- the payload is truncated mid-record (the receiver's
  CRC parsing turns this into a ``"torn"`` NAK, never corruption).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Tuple

from repro.distributed.cluster import ClusterMetrics, ClusterSpec
from repro.replication.shipment import Shipment
from repro.resilience.backoff import Clock
from repro.resilience.faults import FaultPlan

__all__ = ["ReplicationLink"]


def _fresh_stats():
    return {
        "shipped": 0, "delivered": 0, "dropped": 0, "duplicated": 0,
        "reordered": 0, "delayed": 0, "torn": 0,
    }


class ReplicationLink:
    """One-way shipment channel with simulated latency and faults.

    Parameters
    ----------
    clock:
        The shared replication clock (``now()`` decides due deliveries).
    spec:
        Transport cost model; a default :class:`ClusterSpec` otherwise.
    plans:
        :class:`FaultPlan` entries; only transport (``ship-*``) kinds are
        consumed, keyed by this link's shipment ordinal.
    name:
        Label for repr/debugging.
    """

    def __init__(
        self,
        clock: Clock,
        *,
        spec: Optional[ClusterSpec] = None,
        plans: Iterable[FaultPlan] = (),
        name: str = "link",
    ) -> None:
        self.clock = clock
        self.spec = spec if spec is not None else ClusterSpec()
        self.plans: List[FaultPlan] = [p for p in plans if p.is_transport]
        self.fired: List[FaultPlan] = []
        self._spent: set = set()
        self.name = name
        self.metrics = ClusterMetrics()
        self.stats = _fresh_stats()
        #: ``(deliver_at, tiebreak, shipment)`` entries still in flight
        self._inflight: List[Tuple[float, int, Shipment]] = []
        self._ordinal = 0
        self._counter = 0

    # -- sending ---------------------------------------------------------------
    def base_cost_s(self, items: int = 0) -> float:
        """Delivery time of a shipment carrying ``items`` records."""
        return self.spec.shipment_cost_s(items)

    def _plans_for(self, ordinal: int) -> List[FaultPlan]:
        return [
            p for p in self.plans
            if p.batch == ordinal and id(p) not in self._spent
        ]

    @staticmethod
    def _tear(shipment: Shipment) -> Shipment:
        """Truncate the payload strictly mid-record (never on a record
        boundary: the cut lands inside the trailing commit record, the
        shape a half-written network buffer leaves)."""
        payload = shipment.payload
        if len(payload) < 8:
            return shipment  # nothing to tear (e.g. a heartbeat)
        return dataclasses.replace(shipment, payload=payload[: len(payload) - 5])

    def ship(self, shipment: Shipment) -> float:
        """Put ``shipment`` in flight; returns its delivery time.

        Cost accounting always charges the *sent* shipment (a dropped
        message still burned wire time); faults then shape what actually
        arrives, and when.
        """
        ordinal = self._ordinal
        self._ordinal += 1
        cost = self.base_cost_s(shipment.items)
        self.metrics.messages += 1
        self.metrics.elapsed_ns += self.spec.shipment_cost_ns(shipment.items)
        self.stats["shipped"] += 1
        deliver_at = self.clock.now() + cost
        copies: List[Shipment] = [shipment]
        for plan in self._plans_for(ordinal):
            self._spent.add(id(plan))
            self.fired.append(plan)
            if plan.kind == "ship-drop":
                copies = []
                self.stats["dropped"] += 1
            elif plan.kind == "ship-dup":
                copies.append(shipment)
                self.stats["duplicated"] += 1
            elif plan.kind == "ship-delay":
                deliver_at += plan.delta * cost
                self.stats["delayed"] += 1
            elif plan.kind == "ship-reorder":
                # held back past the next shipment's arrival: 1.5 steps
                # is late enough to be overtaken, early enough to land
                # within the next pump round
                deliver_at += 1.5 * cost
                self.stats["reordered"] += 1
            elif plan.kind == "ship-torn":
                copies = [self._tear(c) for c in copies]
                self.stats["torn"] += 1
        for c in copies:
            self._inflight.append((deliver_at, self._counter, c))
            self._counter += 1
        return deliver_at

    # -- receiving -------------------------------------------------------------
    def poll(self) -> List[Shipment]:
        """Shipments whose delivery time has arrived, in arrival order."""
        now = self.clock.now()
        due = sorted(
            (e for e in self._inflight if e[0] <= now), key=lambda e: (e[0], e[1])
        )
        if due:
            self._inflight = [e for e in self._inflight if e[0] > now]
            self.stats["delivered"] += len(due)
        return [e[2] for e in due]

    def next_delivery_at(self) -> Optional[float]:
        """When the earliest in-flight shipment lands (None when idle)."""
        return min((e[0] for e in self._inflight), default=None)

    def max_inflight_cost_s(self) -> Optional[float]:
        """Base delivery cost of the largest shipment in flight (None
        when idle) -- sizes the primary's adaptive pump step so one round
        always covers an undisturbed delivery."""
        if not self._inflight:
            return None
        return max(self.base_cost_s(e[2].items) for e in self._inflight)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def __repr__(self) -> str:
        return (
            f"ReplicationLink({self.name!r}, shipped={self.stats['shipped']}, "
            f"inflight={self.inflight})"
        )
