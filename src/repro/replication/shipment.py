"""Replication wire types: shipments, acks/naks, the tau fingerprint.

A :class:`Shipment` is the unit the primary puts on a
:class:`~repro.replication.link.ReplicationLink`.  Its payload is *raw
WAL wire format* (:func:`~repro.resilience.durability.wal.encode_batch`)
-- the exact bytes the primary's log holds -- so a replica appends them
to its own log unchanged, and a shipment torn in flight is caught by the
same CRC record parsing that catches a segment torn by a crash.

Every shipment is stamped with the primary's **term**, a monotonically
increasing epoch that changes exactly when a new primary is promoted.
A replica that has seen term *t* refuses anything stamped ``< t``
(:class:`Nak` with reason ``"stale-term"``) -- that is what fences a
deposed primary that comes back from a GC pause and keeps shipping: its
stale segments can never overwrite a promoted timeline.

``start_seqno`` / ``end_seqno`` delimit the *positions* a records
shipment covers, not the records it carries: a WAL position consumed by
a validation-rejected batch has no record, so the receiver advances its
watermark by range, exactly as recovery derives ``resume_seqno``.

``tau_hash`` carries the primary's :func:`tau_fingerprint` at the commit
watermark ``end_seqno``.  A replica that reaches the same watermark with
a different fingerprint has **diverged** and raises
:class:`ReplicationDivergence` rather than silently serving wrong core
numbers.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.resilience.durability.errors import DurabilityError

__all__ = [
    "Shipment",
    "Ack",
    "Nak",
    "tau_fingerprint",
    "ReplicationError",
    "ReplicationDivergence",
    "StaleTermError",
]


class ReplicationError(DurabilityError):
    """Replication-layer failure (a :class:`DurabilityError` subtype, so
    one ``except`` clause covers the whole persistence stack)."""


class ReplicationDivergence(ReplicationError):
    """A replica's tau fingerprint disagrees with the primary's at a
    shared commit watermark.  Never swallowed: a diverged standby must
    not serve reads or win an election."""


class StaleTermError(ReplicationError):
    """A deposed primary discovered a newer term: its shipments are being
    fenced and it must stop acting as primary."""


def tau_fingerprint(tau: Mapping) -> int:
    """Order-independent fingerprint of a core-number assignment.

    XOR of per-entry CRC32s over ``repr(vertex)=value`` strings: cheap
    (one pass, no sort), identical across dict iteration orders and
    engines, and any single-entry drift flips the result.  This is a
    divergence *tripwire*, not a cryptographic commitment.
    """
    h = len(tau)
    for v, k in tau.items():
        h ^= zlib.crc32(f"{v!r}={k}".encode())
    return h


@dataclass(frozen=True)
class Shipment:
    """One message from primary to replica.  See the module docstring."""

    kind: str                       #: ``"records"`` | ``"heartbeat"``
    term: int                       #: primary's fencing epoch
    start_seqno: int                #: first WAL position covered
    end_seqno: int                  #: one past the last position covered
    payload: bytes = b""            #: raw WAL records (``records`` only)
    items: int = 0                  #: record count, for transport costing
    tau_hash: Optional[int] = None  #: primary fingerprint at ``end_seqno``
    committed_seqno: int = 0        #: primary's committed watermark at ship time

    KINDS = ("records", "heartbeat")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown shipment kind {self.kind!r}")
        if self.end_seqno < self.start_seqno:
            raise ValueError("end_seqno must be >= start_seqno")

    def __repr__(self) -> str:
        return (
            f"Shipment({self.kind}, term={self.term}, "
            f"[{self.start_seqno},{self.end_seqno}), {len(self.payload)}B)"
        )


@dataclass(frozen=True)
class Ack:
    """Receiver's positive response: its new applied watermark."""

    replica_id: int
    applied_seqno: int
    term: int


@dataclass(frozen=True)
class Nak:
    """Receiver's refusal, with the watermark the sender must back up to.

    Reasons: ``"gap"`` (shipment starts past the replica's watermark --
    something before it was lost), ``"torn"`` (payload damaged in
    flight; the intact prefix was applied), ``"stale-term"`` (the sender
    has been deposed and is fenced).
    """

    replica_id: int
    applied_seqno: int
    term: int
    reason: str

    REASONS = ("gap", "torn", "stale-term")

    def __post_init__(self) -> None:
        if self.reason not in self.REASONS:
            raise ValueError(f"unknown nak reason {self.reason!r}")
