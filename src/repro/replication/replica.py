"""A hot standby: bootstrap from checkpoint, replay shipped WAL records.

A :class:`Replica` owns its own durable directory -- its own copy of the
checkpoint and its own WAL, fed exclusively by shipments.  It is "hot"
because every shipped batch is applied to a live maintainer immediately,
so the replica can serve ``kappa`` / ``kappa_of`` reads at its
``applied_seqno`` watermark at any moment, and a promotion needs no
replay at all -- the standby's in-memory state *is* the recovered state.

Lifecycle
---------
``bootstrap``
    Receive a checkpoint image plus the committed WAL suffix (raw wire
    bytes), write both into the replica directory, and rebuild the live
    maintainer through the **same**
    :class:`~repro.resilience.durability.recovery.RecoveryManager` path a
    crashed primary uses -- replication reuses recovery's idempotent
    committed-suffix replay rather than reimplementing it.  Bootstrap is
    also the *resync* path when the replica has been lapped by the
    primary's WAL pruning.
``receive``
    Handle one :class:`~repro.replication.shipment.Shipment`: fence
    stale terms, NAK gaps and torn payloads, append + apply the new
    batches (idempotently skipping anything already applied), advance the
    ``applied_seqno`` watermark over the covered position range, verify
    the primary's tau fingerprint at the commit watermark, and answer
    with an :class:`~repro.replication.shipment.Ack`.

Failure detection is clock-based: every delivered shipment (heartbeats
included) refreshes ``last_contact_at``; :meth:`suspects_primary` says
whether the primary has been silent longer than a timeout.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Dict, Hashable, Optional

from repro.graph.batch import Batch
from repro.replication.shipment import (
    Ack,
    Nak,
    ReplicationDivergence,
    Shipment,
    tau_fingerprint,
)
from repro.resilience.checkpoint import take_checkpoint
from repro.resilience.durability.errors import DurabilityError
from repro.resilience.durability.recovery import (
    RecoveryManager,
    checkpoint_path,
    checkpoint_seqno,
    list_checkpoints,
)
from repro.resilience.durability.wal import WriteAheadLog, decode_payload

__all__ = ["Replica"]

Vertex = Hashable


def _fresh_stats():
    return {
        "received": 0, "batches_applied": 0, "heartbeats": 0, "fenced": 0,
        "gaps": 0, "torn": 0, "hash_checks": 0, "bootstraps": 0,
        "checkpoints": 0,
    }


class Replica:
    """One hot standby over its own durable directory.

    Parameters
    ----------
    replica_id:
        Stable identity (election tie-break, stats, routing).
    directory:
        The replica's private checkpoint + WAL directory.
    algorithm, engine, rt:
        How to rebuild the live maintainer on bootstrap (same options as
        :class:`~repro.resilience.durability.recovery.RecoveryManager`).
    checkpoint_every:
        Take a local checkpoint (and prune the local WAL) every N applied
        batches, so the replica's own directory stays recoverable and
        bounded (0 disables).
    sync_policy:
        Local WAL sync policy (``"batch"`` default).
    """

    def __init__(
        self,
        replica_id: int,
        directory,
        *,
        algorithm: Optional[str] = None,
        engine: str = "auto",
        rt=None,
        checkpoint_every: int = 64,
        sync_policy="batch",
    ) -> None:
        self.replica_id = int(replica_id)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.algorithm = algorithm
        self.engine = engine
        self.rt = rt
        self.checkpoint_every = checkpoint_every
        self.sync_policy = sync_policy
        self.maintainer = None          #: live state (None until bootstrap)
        self.wal: Optional[WriteAheadLog] = None
        #: one past the last WAL position reflected in ``maintainer``
        self.applied_seqno = 0
        #: highest fencing term this replica has acknowledged
        self.term = 0
        #: primary's committed watermark as last advertised
        self.primary_committed = 0
        #: clock shared with the transport (set when attached to a primary)
        self.clock = None
        self.last_contact_at: Optional[float] = None
        self._since_checkpoint = 0
        self.stats: Dict[str, int] = _fresh_stats()

    # -- bootstrap / resync ----------------------------------------------------
    def bootstrap(
        self, checkpoint_bytes: bytes, base_seqno: int, wal_bytes: bytes, *, term: int
    ) -> None:
        """Install a checkpoint image + WAL suffix and go live from them.

        Wipes any previous replica state first: a resync replaces the
        lapped timeline wholesale (the old local WAL below the new base
        is useless -- its suffix was pruned away on the primary).
        """
        if self.wal is not None:
            self.wal.close()
        for stale in list_checkpoints(self.directory):
            stale.unlink()
        for seg in self.directory.glob("wal-*.seg"):
            seg.unlink()
        checkpoint_path(self.directory, base_seqno).write_bytes(checkpoint_bytes)
        if wal_bytes:
            seg = self.directory / f"wal-{base_seqno:012d}.seg"
            seg.write_bytes(wal_bytes)
        manager = RecoveryManager(
            self.directory, self.rt, algorithm=self.algorithm, engine=self.engine
        )
        self.maintainer, report = manager.recover()
        self.applied_seqno = report.resume_seqno
        self.wal = WriteAheadLog(
            self.directory,
            sync_policy=self.sync_policy,
            start_seqno=self.applied_seqno,
        )
        self.term = max(self.term, term)
        self._since_checkpoint = 0
        self.stats["bootstraps"] += 1

    @property
    def live(self) -> bool:
        return self.maintainer is not None

    # -- the receive path ------------------------------------------------------
    def receive(self, shipment: Shipment):
        """Process one shipment; returns an :class:`Ack` or :class:`Nak`.

        Raises :class:`ReplicationDivergence` when the primary's tau
        fingerprint disagrees at a shared watermark, and
        :class:`DurabilityError` when a shipped batch fails to apply --
        both mean this standby must not serve reads, so neither is ever
        reported as a polite NAK.
        """
        if self.maintainer is None:
            raise DurabilityError(
                f"replica {self.replica_id} received a shipment before bootstrap",
                self.directory,
            )
        self.stats["received"] += 1
        if self.clock is not None:
            self.last_contact_at = self.clock.now()
        if shipment.term < self.term:
            self.stats["fenced"] += 1
            return self._nak("stale-term")
        if self.wal is None:
            # this standby was promoted: it is a primary now, and only a
            # sender on a *stale* term could still be shipping to it
            raise DurabilityError(
                f"replica {self.replica_id} was promoted (term {self.term}) "
                "and no longer accepts shipments",
                self.directory,
            )
        self.term = shipment.term
        self.primary_committed = max(self.primary_committed, shipment.committed_seqno)
        if shipment.kind == "heartbeat":
            self.stats["heartbeats"] += 1
            return Ack(self.replica_id, self.applied_seqno, self.term)
        if shipment.start_seqno > self.applied_seqno:
            # something between our watermark and this shipment was lost
            self.stats["gaps"] += 1
            return self._nak("gap")
        batches, damage = decode_payload(shipment.payload)
        for seqno, changes in batches:
            if seqno < self.applied_seqno:
                continue  # duplicate delivery; replay is idempotent anyway
            self.wal.append_batch(seqno, changes)
            try:
                self.maintainer.apply_batch(Batch(list(changes)))
            except Exception as exc:  # noqa: BLE001 -- classify, then refuse
                raise DurabilityError(
                    f"replica {self.replica_id}: shipped batch {seqno} failed "
                    f"to apply ({type(exc).__name__}: {exc})",
                    self.directory,
                ) from exc
            self.applied_seqno = seqno + 1
            self.stats["batches_applied"] += 1
            self._since_checkpoint += 1
        if damage is not None:
            # the intact prefix is applied and durable; ask for the rest
            self.stats["torn"] += 1
            return self._nak("torn")
        # positions with no record (validation-rejected on the primary)
        # still advance the watermark, exactly like recovery's resume_seqno
        self.applied_seqno = max(self.applied_seqno, shipment.end_seqno)
        if shipment.tau_hash is not None and self.applied_seqno == shipment.end_seqno:
            self.stats["hash_checks"] += 1
            mine = tau_fingerprint(self.maintainer.tau)
            if mine != shipment.tau_hash:
                raise ReplicationDivergence(
                    f"replica {self.replica_id} diverged from primary at "
                    f"watermark {shipment.end_seqno}: fingerprint "
                    f"{mine:#x} != {shipment.tau_hash:#x}",
                    self.directory,
                )
        self._maybe_checkpoint()
        return Ack(self.replica_id, self.applied_seqno, self.term)

    def _nak(self, reason: str) -> Nak:
        return Nak(self.replica_id, self.applied_seqno, self.term, reason)

    # -- local durability ------------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_every and self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    def checkpoint(self):
        """Checkpoint the replica's own directory and prune its local WAL
        (keeps the two newest checkpoints, like the durable facade)."""
        self.wal.sync()
        cp = take_checkpoint(self.maintainer)
        cp.wal_seqno = self.applied_seqno
        path = checkpoint_path(self.directory, self.applied_seqno)
        cp.save(path)
        self._since_checkpoint = 0
        self.stats["checkpoints"] += 1
        existing = list_checkpoints(self.directory)
        for old in existing[:-2]:
            old.unlink()
        survivors = list_checkpoints(self.directory)
        if survivors:
            self.wal.prune(checkpoint_seqno(survivors[0]))
        return path

    # -- serving reads ---------------------------------------------------------
    @property
    def tau(self):
        return self.maintainer.tau

    @property
    def sub(self):
        return self.maintainer.sub

    def kappa(self):
        return self.maintainer.kappa()

    def kappa_of(self, v: Vertex) -> int:
        return self.maintainer.kappa_of(v)

    # -- failure detection -----------------------------------------------------
    def suspects_primary(self, timeout: float) -> bool:
        """True when the primary has been silent for longer than
        ``timeout`` seconds of the shared (usually simulated) clock."""
        if self.clock is None or self.last_contact_at is None:
            return False
        return self.clock.now() - self.last_contact_at > timeout

    # -- teardown --------------------------------------------------------------
    def close(self, *, remove_directory: bool = False) -> None:
        if self.wal is not None:
            self.wal.close()
            self.wal = None
        if remove_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __repr__(self) -> str:
        return (
            f"Replica({self.replica_id}, applied={self.applied_seqno}, "
            f"term={self.term}, live={self.live})"
        )
