"""Deterministic fault injection: the chaos harness.

Testing recovery paths requires *producing* failures on demand, at exact,
reproducible points.  A :class:`FaultPlan` describes one such failure; a
:class:`FaultInjector` arms a set of plans around any maintainer-shaped
object (a raw algorithm, the :class:`CoreMaintainer` facade, or a
:class:`~repro.resilience.supervisor.ResilientMaintainer`) and replays
batches through it, firing the plans at their programmed positions.

Fault kinds
-----------
``raise``
    Raise :class:`FaultError` just before the ``change``-th pin-change
    record of batch ``batch`` is applied (through the maintainer's
    ``fault_hook`` seam).  ``transient=True`` (default) disarms the plan
    after one firing -- a retry then succeeds; ``transient=False`` models
    a poison batch that fails every attempt.
``corrupt-tau``
    After batch ``batch`` completes, silently add ``delta`` to one
    maintained tau entry -- the drift that only an audit can catch.
``duplicate``
    Append a copy of the ``change``-th record to batch ``batch`` before
    applying (duplicates are safe no-ops; the harness proves it).
``invert``
    Flip the direction of the ``change``-th record of batch ``batch``
    (models a corrupted upstream feed).
``crash``
    Simulate ``kill -9`` at a durability I/O boundary: raise the
    uncatchable :class:`~repro.resilience.durability.errors.CrashError`
    the ``batch``-th time crash point ``site`` is crossed (see
    :mod:`repro.resilience.durability.crashpoints` for the site
    catalogue).  Requires a durable target -- something in the wrapped
    stack exposing a ``crashpoints`` seam, i.e. a
    :class:`~repro.resilience.durability.durable.DurableMaintainer`.
    After a crash fires, the in-memory object must be abandoned and the
    session recovered from disk
    (:class:`~repro.resilience.durability.recovery.RecoveryManager`).

Transport faults
----------------
The ``ship-*`` kinds target a replication
:class:`~repro.replication.link.ReplicationLink` rather than a
maintainer: ``batch`` is the link's *shipment ordinal* (the N-th shipment
handed to that link, heartbeats included), and the plan is consumed by
the link itself -- :class:`FaultInjector` ignores these kinds.

``ship-drop``
    The shipment vanishes in flight (the receiver never sees it; the
    sender retransmits on ack timeout).
``ship-dup``
    The shipment is delivered twice (replay must be idempotent).
``ship-reorder``
    The shipment is held back past its successor, arriving out of order
    (the receiver NAKs the gap, then heals).
``ship-delay``
    Delivery is delayed ``delta`` times the link's base latency.
``ship-torn``
    The shipment's payload is truncated mid-record in flight -- the
    receiving replica's CRC parsing catches it, applies the intact
    prefix, and NAKs for the rest.

The per-batch change counter is reset by ``apply_batch`` itself, so a
``raise`` plan fires at the same pin-change index on every retry attempt
-- exactly what distinguishes transient from persistent failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence

from repro.graph.batch import Batch
from repro.graph.substrate import Change
from repro.resilience.durability.errors import CrashError

__all__ = ["FaultError", "FaultPlan", "FaultInjector"]

Vertex = Hashable

KINDS = ("raise", "corrupt-tau", "duplicate", "invert", "crash",
         "ship-drop", "ship-dup", "ship-reorder", "ship-delay", "ship-torn")

#: the kinds consumed by a replication link, not by :class:`FaultInjector`
TRANSPORT_KINDS = ("ship-drop", "ship-dup", "ship-reorder", "ship-delay", "ship-torn")


class FaultError(RuntimeError):
    """A deliberately injected failure (never raised by real code paths)."""


@dataclass(frozen=True)
class FaultPlan:
    """One programmed failure.  See the module docstring for semantics."""

    kind: str
    batch: int
    change: int = 0
    vertex: Optional[Vertex] = None
    delta: int = 5
    transient: bool = True
    #: crash plans only: the durability I/O boundary to die at (``batch``
    #: is then the site's hit ordinal, not a batch index)
    site: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.batch < 0 or self.change < 0:
            raise ValueError("batch and change indices must be >= 0")
        if self.delta == 0 and self.kind == "corrupt-tau":
            raise ValueError("corrupt-tau with delta=0 corrupts nothing")
        if self.kind == "crash" and not self.site:
            raise ValueError("crash plans need a site (see durability.CRASH_SITES)")
        if self.kind == "ship-delay" and self.delta <= 0:
            raise ValueError("ship-delay needs a positive latency multiple (delta)")

    # -- readable constructors -------------------------------------------------
    @classmethod
    def raise_at(cls, batch: int, change: int = 0, *, transient: bool = True) -> "FaultPlan":
        return cls("raise", batch, change, transient=transient)

    @classmethod
    def corrupt_tau(cls, batch: int, vertex: Optional[Vertex] = None, delta: int = 5) -> "FaultPlan":
        return cls("corrupt-tau", batch, vertex=vertex, delta=delta)

    @classmethod
    def duplicate(cls, batch: int, change: int = 0) -> "FaultPlan":
        return cls("duplicate", batch, change)

    @classmethod
    def invert(cls, batch: int, change: int = 0) -> "FaultPlan":
        return cls("invert", batch, change)

    @classmethod
    def crash_at(cls, site: str, hit: int = 0) -> "FaultPlan":
        """Die (simulated ``kill -9``) the ``hit``-th time ``site`` fires."""
        return cls("crash", hit, site=site)

    # -- transport faults (consumed by a ReplicationLink) ----------------------
    @classmethod
    def drop_shipment(cls, ordinal: int) -> "FaultPlan":
        """Lose the link's ``ordinal``-th shipment in flight."""
        return cls("ship-drop", ordinal)

    @classmethod
    def duplicate_shipment(cls, ordinal: int) -> "FaultPlan":
        """Deliver the link's ``ordinal``-th shipment twice."""
        return cls("ship-dup", ordinal)

    @classmethod
    def reorder_shipment(cls, ordinal: int) -> "FaultPlan":
        """Hold the ``ordinal``-th shipment back past its successor."""
        return cls("ship-reorder", ordinal)

    @classmethod
    def delay_shipment(cls, ordinal: int, factor: int = 5) -> "FaultPlan":
        """Delay the ``ordinal``-th shipment by ``factor`` base latencies."""
        return cls("ship-delay", ordinal, delta=factor)

    @classmethod
    def tear_shipment(cls, ordinal: int) -> "FaultPlan":
        """Truncate the ``ordinal``-th shipment's payload mid-record."""
        return cls("ship-torn", ordinal)

    @property
    def is_transport(self) -> bool:
        return self.kind in TRANSPORT_KINDS


class FaultInjector:
    """Arm fault plans around a maintainer and replay batches through it.

    ``target`` may be anything with ``apply_batch``; hooks are installed
    on the underlying algorithm instance per batch and removed afterwards,
    so the wrapped object stays clean between calls.
    """

    def __init__(self, target, plans: Iterable[FaultPlan] = ()) -> None:
        self.target = target
        self.plans: List[FaultPlan] = list(plans)
        self.fired: List[FaultPlan] = []
        self._spent: set = set()
        self._cursor = 0

    # -- plumbing --------------------------------------------------------------
    def _inner(self):
        m = self.target
        seen = 0
        while hasattr(m, "impl") and seen < 4:
            m = m.impl
            seen += 1
        return m

    def _durable_layer(self):
        """The layer of the wrapped stack exposing the ``crashpoints``
        seam (a DurableMaintainer), or None."""
        m = self.target
        seen = 0
        while m is not None and seen < 5:
            if "crashpoints" in getattr(m, "__dict__", {}):
                return m
            m = getattr(m, "impl", None)
            seen += 1
        return None

    def _active(self, kind: str, batch_index: int) -> List[FaultPlan]:
        return [
            p for p in self.plans
            if p.kind == kind and p.batch == batch_index and id(p) not in self._spent
        ]

    def _mark_fired(self, plan: FaultPlan) -> None:
        self.fired.append(plan)
        if plan.kind != "raise" or plan.transient:
            self._spent.add(id(plan))

    # -- batch-shape faults ----------------------------------------------------
    def _transform(self, batch, batch_index: int) -> Batch:
        changes: List[Change] = list(batch)
        for plan in self._active("invert", batch_index):
            if plan.change < len(changes):
                changes[plan.change] = changes[plan.change].inverse()
                self._mark_fired(plan)
        for plan in self._active("duplicate", batch_index):
            if plan.change < len(changes):
                changes.append(changes[plan.change])
                self._mark_fired(plan)
        return Batch(changes)

    # -- state faults ----------------------------------------------------------
    def _corrupt(self, batch_index: int) -> None:
        inner = self._inner()
        for plan in self._active("corrupt-tau", batch_index):
            tau = inner.tau
            if not tau:
                continue
            if plan.vertex in tau:
                v = plan.vertex
            else:
                # deterministic peripheral pick: a low-degree vertex stays
                # out of later batches' affected regions, so the drift
                # survives until an audit rather than being incidentally
                # repaired by ordinary maintenance
                v = min(tau, key=lambda u: (inner.sub.degree(u), repr(u)))
            # corrupt coherently (tau *and* level index, via _set_tau when
            # available): incoherent drift is self-describing -- ordinary
            # maintenance re-visits the vertex at its indexed level and
            # repairs it -- whereas coherent drift is exactly the silent
            # corruption only an audit can catch
            corrupted = max(0, tau[v] + plan.delta)
            if hasattr(inner, "_set_tau"):
                inner._set_tau(v, corrupted)
            else:
                tau[v] = corrupted
            self._mark_fired(plan)

    # -- the entry point -------------------------------------------------------
    def apply_batch(self, batch, *, index: Optional[int] = None):
        """Apply ``batch`` with this injector's faults armed.

        ``index`` overrides the injector's running batch counter (useful
        when replaying selected rounds of a longer stream).
        """
        i = self._cursor if index is None else index
        batch = self._transform(batch, i)
        raise_plans = self._active("raise", i)
        inner = self._inner()
        crash_plans = [
            p for p in self.plans
            if p.kind == "crash" and id(p) not in self._spent
        ]
        durable = self._durable_layer() if crash_plans else None

        def hook(change: Change, k: int) -> None:
            for plan in raise_plans:
                if plan.change == k and id(plan) not in self._spent:
                    self._mark_fired(plan)
                    raise FaultError(
                        f"injected fault: batch {i}, pin change {k} ({change!r})"
                    )

        def crash_hook(site: str, hit: int) -> None:
            for plan in crash_plans:
                if plan.site == site and plan.batch == hit and id(plan) not in self._spent:
                    self._mark_fired(plan)
                    raise CrashError(site, hit)

        if raise_plans:
            inner.fault_hook = hook
        if durable is not None:
            durable.crashpoints.hook = crash_hook
        try:
            result = self.target.apply_batch(batch)
        finally:
            inner.fault_hook = None
            if durable is not None:
                durable.crashpoints.hook = None
            self._cursor = i + 1
        self._corrupt(i)
        return result

    def apply_rounds(self, rounds: Sequence) -> List:
        """Apply a sequence of batches (or ``BurstyStream`` round tuples,
        whose ``Batch`` members are applied in order)."""
        results = []
        for item in rounds:
            if isinstance(item, Batch):
                results.append(self.apply_batch(item))
                continue
            for part in item:
                if isinstance(part, Batch):
                    results.append(self.apply_batch(part))
        return results
