"""Checkpoint/restore: cheap durable snapshots of a maintainer.

A checkpoint captures the three things that define a maintenance session
-- the substrate's content, the maintained ``tau`` values, and the stream
position (``batches_processed``) -- decoupled from any in-memory object,
so a long-running stream can be restarted after a crash, or forked for
what-if analysis:

    >>> from repro import CoreMaintainer, DynamicGraph
    >>> from repro.resilience import take_checkpoint, restore_maintainer
    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> m = CoreMaintainer(g, algorithm="mod")
    >>> cp = take_checkpoint(m)
    >>> m.insert_edge(2, 3)          # diverge...
    >>> m2 = restore_maintainer(cp)  # ...and rewind
    >>> m2.kappa() == {0: 2, 1: 2, 2: 2}
    True

Persistence uses :mod:`pickle` (vertex and edge labels are arbitrary
hashables, which rules out JSON in general); treat checkpoint files like
any other pickle -- load only your own.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.dynamic_hypergraph import DynamicHypergraph

__all__ = ["Checkpoint", "take_checkpoint", "restore_maintainer"]

Vertex = Hashable

#: bump when the on-disk layout changes
CHECKPOINT_VERSION = 1


def _unwrap(maintainer):
    """Peel facade layers (CoreMaintainer / ResilientMaintainer) down to
    the algorithm instance."""
    seen = 0
    while hasattr(maintainer, "impl") and seen < 4:
        maintainer = maintainer.impl
        seen += 1
    return maintainer


@dataclass
class Checkpoint:
    """Portable snapshot of ``(substrate, tau, batches_processed)``."""

    algorithm: str
    is_hypergraph: bool
    #: graph: ``[(u, v), ...]``; hypergraph: ``[(edge_id, [pins...]), ...]``
    edges: List[Tuple]
    tau: Dict[Vertex, int]
    batches_processed: int
    version: int = field(default=CHECKPOINT_VERSION)

    # -- persistence -----------------------------------------------------------
    def save(self, path) -> None:
        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "Checkpoint":
        with open(path, "rb") as fh:
            cp = pickle.load(fh)
        if not isinstance(cp, cls):
            raise TypeError(f"{path!r} does not hold a Checkpoint")
        if cp.version != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {cp.version} unsupported "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return cp

    # -- reconstruction --------------------------------------------------------
    def build_substrate(self):
        """A fresh substrate holding exactly the checkpointed structure."""
        if self.is_hypergraph:
            h = DynamicHypergraph()
            for e, pins in self.edges:
                for v in pins:
                    h.add_pin(e, v)
            return h
        return DynamicGraph.from_edges(self.edges)


def take_checkpoint(maintainer) -> Checkpoint:
    """Snapshot a maintainer (or a facade / supervisor wrapping one)."""
    m = _unwrap(maintainer)
    sub = m.sub
    if getattr(sub, "is_hypergraph", False):
        edges: List[Tuple] = [(e, sorted(pins, key=repr)) for e, pins in sub.hyperedges()]
        edges.sort(key=lambda item: repr(item[0]))
        is_hyper = True
    else:
        edges = sub.edge_list()
        is_hyper = False
    return Checkpoint(
        algorithm=m.algorithm,
        is_hypergraph=is_hyper,
        edges=edges,
        tau=dict(m.tau),
        batches_processed=m.batches_processed,
    )


def restore_maintainer(cp: Checkpoint, rt=None, *, algorithm: str = None, **kwargs):
    """Rebuild a ready-to-stream maintainer from a checkpoint.

    ``algorithm`` overrides the checkpointed one (the snapshot is
    algorithm-agnostic: any maintainer can adopt it).  Extra ``kwargs``
    are forwarded to the algorithm class.
    """
    from repro.core.maintainer import make_maintainer

    sub = cp.build_substrate()
    m = make_maintainer(sub, algorithm or cp.algorithm, rt, tau=dict(cp.tau), **kwargs)
    m.batches_processed = cp.batches_processed
    return m
