"""Checkpoint/restore: atomic, checksummed snapshots of a maintainer.

A checkpoint captures the three things that define a maintenance session
-- the substrate's content, the maintained ``tau`` values, and the stream
position (``batches_processed``) -- decoupled from any in-memory object,
so a long-running stream can be restarted after a crash, or forked for
what-if analysis:

    >>> from repro import CoreMaintainer, DynamicGraph
    >>> from repro.resilience import take_checkpoint, restore_maintainer
    >>> g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2)])
    >>> m = CoreMaintainer(g, algorithm="mod")
    >>> cp = take_checkpoint(m)
    >>> m.insert_edge(2, 3)          # diverge...
    >>> m2 = restore_maintainer(cp)  # ...and rewind
    >>> m2.kappa() == {0: 2, 1: 2, 2: 2}
    True

On-disk format
--------------
``save`` is **atomic and checksummed**: the payload (a pickle -- vertex
and edge labels are arbitrary hashables, which rules out JSON in
general) is prefixed with a magic/version/CRC32/length header, written
to a ``.tmp`` sibling, flushed, ``fsync``\\ ed, and swapped into place
with ``os.replace``.  A crash at any point leaves either the previous
checkpoint or the new one -- never a torn file under the final name.
``load`` verifies the digest before unpickling and wraps every torn /
truncated / garbage shape in :class:`~repro.resilience.durability.errors
.DurabilityError` naming the offending path; files that decode but do
not hold a :class:`Checkpoint` raise :class:`TypeError`, and unsupported
versions raise :class:`ValueError`, as before.  Legacy bare-pickle
(version-1) files still load.  Treat checkpoint files like any other
pickle -- load only your own.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.dynamic_hypergraph import DynamicHypergraph
from repro.resilience.durability.errors import DurabilityError

__all__ = ["Checkpoint", "take_checkpoint", "restore_maintainer"]

Vertex = Hashable

#: bump when the on-disk layout changes
CHECKPOINT_VERSION = 2
#: versions ``load`` still understands (1 = bare pickle, no header)
SUPPORTED_VERSIONS = (1, 2)

_MAGIC = b"RKCP"
_HEADER = struct.Struct("<III")  # version, crc32(payload), payload length


def _fsync_directory(path: Path) -> None:
    """Make a rename durable (best effort; not all platforms allow it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _unwrap(maintainer):
    """Peel facade layers (CoreMaintainer / DurableMaintainer /
    ResilientMaintainer) down to the algorithm instance."""
    seen = 0
    while hasattr(maintainer, "impl") and seen < 4:
        maintainer = maintainer.impl
        seen += 1
    return maintainer


@dataclass
class Checkpoint:
    """Portable snapshot of ``(substrate, tau, batches_processed)``."""

    algorithm: str
    is_hypergraph: bool
    #: graph: ``[(u, v), ...]``; hypergraph: ``[(edge_id, [pins...]), ...]``
    edges: List[Tuple]
    tau: Dict[Vertex, int]
    batches_processed: int
    version: int = field(default=CHECKPOINT_VERSION)
    #: WAL position this snapshot covers (durable sessions only; ``-1``
    #: means "same as batches_processed")
    wal_seqno: int = field(default=-1)

    # -- persistence -----------------------------------------------------------
    def save(self, path, *, crashpoints=None) -> None:
        """Atomically persist to ``path`` (tmp + fsync + ``os.replace``).

        ``crashpoints`` is the durability test seam
        (:class:`~repro.resilience.durability.crashpoints.CrashPoints`);
        production callers leave it ``None``.
        """
        path = Path(path)
        fire = crashpoints.fire if crashpoints is not None else (lambda site: None)
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        header = _MAGIC + _HEADER.pack(
            self.version, zlib.crc32(payload), len(payload)
        )
        data = header + payload
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fire("checkpoint.write.start")
            mid = len(data) // 2
            fh.write(data[:mid])
            fh.flush()
            fire("checkpoint.write.torn")
            fh.write(data[mid:])
            fh.flush()
            fire("checkpoint.fsync.before")
            os.fsync(fh.fileno())
        fire("checkpoint.rename.before")
        os.replace(tmp, path)
        fire("checkpoint.rename.after")
        _fsync_directory(path.parent)

    @classmethod
    def load(cls, path) -> "Checkpoint":
        """Load and verify; see the module docstring for the error map."""
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise DurabilityError(f"cannot read checkpoint: {exc}", path) from exc
        if data.startswith(_MAGIC):
            header_end = len(_MAGIC) + _HEADER.size
            if len(data) < header_end:
                raise DurabilityError("truncated checkpoint header", path)
            version, crc, length = _HEADER.unpack_from(data, len(_MAGIC))
            payload = data[header_end:]
            if len(payload) != length:
                raise DurabilityError(
                    f"truncated checkpoint: header promises {length} payload "
                    f"bytes, file holds {len(payload)}",
                    path,
                )
            if zlib.crc32(payload) != crc:
                raise DurabilityError("checkpoint checksum mismatch", path)
            if version not in SUPPORTED_VERSIONS:
                raise ValueError(
                    f"checkpoint version {version} unsupported "
                    f"(expected one of {SUPPORTED_VERSIONS})"
                )
        else:
            payload = data  # legacy version-1 bare pickle
        try:
            cp = pickle.loads(payload)
        except Exception as exc:
            raise DurabilityError(
                f"unreadable checkpoint payload ({type(exc).__name__}: {exc})",
                path,
            ) from exc
        if not isinstance(cp, cls):
            raise TypeError(f"{str(path)!r} does not hold a Checkpoint")
        if cp.version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"checkpoint version {cp.version} unsupported "
                f"(expected one of {SUPPORTED_VERSIONS})"
            )
        return cp

    # -- reconstruction --------------------------------------------------------
    def build_substrate(self):
        """A fresh substrate holding exactly the checkpointed structure."""
        if self.is_hypergraph:
            h = DynamicHypergraph()
            for e, pins in self.edges:
                for v in pins:
                    h.add_pin(e, v)
            return h
        return DynamicGraph.from_edges(self.edges)


def take_checkpoint(maintainer) -> Checkpoint:
    """Snapshot a maintainer (or a facade / supervisor wrapping one)."""
    m = _unwrap(maintainer)
    sub = m.sub
    if getattr(sub, "is_hypergraph", False):
        edges: List[Tuple] = [(e, sorted(pins, key=repr)) for e, pins in sub.hyperedges()]
        edges.sort(key=lambda item: repr(item[0]))
        is_hyper = True
    else:
        # sort by repr, not natively: labels are arbitrary hashables and
        # need not be mutually orderable (mixed str/int graphs are legal)
        edges = sorted(sub.edges(), key=repr)
        is_hyper = False
    return Checkpoint(
        algorithm=m.algorithm,
        is_hypergraph=is_hyper,
        edges=edges,
        tau=dict(m.tau),
        batches_processed=m.batches_processed,
    )


def restore_maintainer(cp: Checkpoint, rt=None, *, algorithm: str = None, **kwargs):
    """Rebuild a ready-to-stream maintainer from a checkpoint.

    ``algorithm`` overrides the checkpointed one (the snapshot is
    algorithm-agnostic: any maintainer can adopt it).  Extra ``kwargs``
    are forwarded to the algorithm class; ``engine="array"`` rebuilds
    onto an :class:`~repro.engine.ArrayGraph` (graph checkpoints) or
    :class:`~repro.engine.ArrayHypergraph` (hypergraph checkpoints)
    substrate.

    The requested combination is validated *before* anything is built or
    mutated, so a bad restore fails fast with an actionable error.
    """
    from repro.core.maintainer import ALGORITHMS, make_maintainer

    algo = algorithm or cp.algorithm
    if algo not in ALGORITHMS:
        raise ValueError(
            f"cannot restore checkpoint: unknown algorithm {algo!r} "
            f"(checkpoint carries {cp.algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)} or pass algorithm= to override)"
        )
    engine = kwargs.get("engine", "auto")
    if cp.is_hypergraph and algo == "traversal":
        raise ValueError(
            "cannot restore checkpoint: the 'traversal' baseline is "
            "defined for graphs only but the checkpoint holds a "
            "hypergraph; pass algorithm= to pick a hypergraph-capable "
            f"maintainer ({sorted(set(ALGORITHMS) - {'traversal'})})"
        )
    from repro.core.backend import wrap_substrate

    sub = wrap_substrate(cp.build_substrate(), engine)
    m = make_maintainer(sub, algo, rt, tau=dict(cp.tau), **kwargs)
    m.batches_processed = cp.batches_processed
    return m
