"""The durable facade: WAL-before-apply, periodic atomic checkpoints.

:class:`DurableMaintainer` wraps any maintainer-shaped object (a raw
algorithm from :func:`~repro.core.maintainer.make_maintainer`, or a
:class:`~repro.resilience.supervisor.ResilientMaintainer` so that
retry/quarantine and durability compose) and gives the session crash
durability:

* every batch is appended to the write-ahead log **before** the
  in-memory apply -- under the ``every-record`` / ``every-batch`` sync
  policies, an acknowledged ``apply_batch`` is a durable batch;
* every ``checkpoint_every`` batches (and once at open -- the baseline
  that anchors recovery for a pre-loaded substrate) an atomic,
  checksummed checkpoint is written, older checkpoints beyond
  ``retain_checkpoints`` are retired, and WAL segments that no
  *retained* checkpoint still needs are pruned;
* after a crash, :class:`~repro.resilience.durability.recovery
  .RecoveryManager` rebuilds an equivalent maintainer from the directory
  (checkpoint + committed WAL suffix) -- see that module.

The wrapper quacks like the maintainer it wraps (unknown attributes
delegate inward), so it slots anywhere a maintainer goes:
``CoreMaintainer(..., durable=path)`` wires it outermost, above the
resilient supervisor when both are requested.

Sequence numbers
----------------
The WAL position ``seq`` counts batches *offered* to this session, which
is ``batches_processed`` exactly until a supervised batch is quarantined
(quarantine consumes a stream position without applying).  Checkpoints
therefore record their WAL position separately (``Checkpoint.wal_seqno``)
and recovery replays from that, never from ``batches_processed``.  For
the same reason a *resumed* session must be seeded with the recovered
WAL position (``start_seqno``, which
:meth:`~repro.resilience.durability.recovery.RecoveryManager.resume`
passes from ``RecoveryReport.resume_seqno``): restarting from
``batches_processed`` would let this session's checkpoints sort below a
surviving pre-crash checkpoint and be ignored by the next recovery.

A batch that fails pre-flight validation is *not* logged (the WAL holds
only batches that could apply) but is still handed to the inner
maintainer so its failure policy -- raise, or quarantine under a
supervisor -- is unchanged.

Abort records
-------------
A batch can be logged and then *fail to commit in memory*: the resilient
supervisor exhausts its retries and quarantines it, or (without a
supervisor) the transactional apply raises after the WAL append.  The
log alone would then disagree with the session -- recovery and
honestly-replaying standbys, seeing no fault, would apply the batch the
live session refused, and the primary's ``tau_fingerprint`` stamps would
trip against its own replicas.  ``apply_batch`` therefore retracts such
a batch with a WAL *abort record* (``("Q", seqno, reason)``): every
reader skips the batch while its sequence position stays consumed, so
disk, standbys and memory stay one timeline.  A simulated ``kill -9``
(:class:`~repro.resilience.durability.errors.CrashError`, a
``BaseException``) is deliberately *not* retracted: a crash mid-apply
must keep redo semantics -- recovery replays the logged batch, exactly
as an uninterrupted session would have committed it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from repro.resilience.checkpoint import take_checkpoint
from repro.resilience.durability.crashpoints import CrashPoints
from repro.resilience.durability.recovery import (
    checkpoint_path,
    checkpoint_seqno,
    list_checkpoints,
)
from repro.resilience.durability.wal import WriteAheadLog
from repro.resilience.validation import BatchValidationError, validate_batch

__all__ = ["DurableMaintainer"]


class DurableMaintainer:
    """Write-ahead logging + periodic checkpoints around any maintainer.

    Parameters
    ----------
    impl:
        The maintainer to protect (algorithm instance or supervisor).
    directory:
        Data directory for checkpoints and WAL segments (created if
        missing; a directory already holding a crashed session should go
        through :class:`RecoveryManager` first).
    sync_policy:
        ``"record"`` / ``"batch"`` (default) / ``"size:N"`` or a
        :class:`~repro.resilience.durability.wal.SyncPolicy`.
    checkpoint_every:
        Take a checkpoint every N applied batches (0 = only the baseline
        and explicit :meth:`checkpoint` calls).
    retain_checkpoints:
        Keep this many newest checkpoints (>= 1); older ones are retired
        after each new one lands.  WAL segments are pruned only up to the
        *oldest* retained checkpoint, so every fallback keeps a
        replayable suffix.
    segment_max_bytes:
        WAL segment rotation threshold.
    start_seqno:
        WAL position to continue from -- set by
        :meth:`RecoveryManager.resume` to the recovered position.  When
        omitted, seeds from ``impl.batches_processed`` but never below a
        checkpoint already in ``directory`` (the position exceeds the
        applied-count after a quarantined batch).
    crashpoints:
        Shared :class:`CrashPoints` seam (tests); a fresh one otherwise.
    """

    def __init__(
        self,
        impl,
        directory,
        *,
        sync_policy="batch",
        checkpoint_every: int = 64,
        retain_checkpoints: int = 2,
        segment_max_bytes: int = 1 << 22,
        start_seqno: Optional[int] = None,
        crashpoints: Optional[CrashPoints] = None,
    ) -> None:
        self.impl = impl
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if retain_checkpoints < 1:
            raise ValueError("retain_checkpoints must be >= 1")
        self.checkpoint_every = checkpoint_every
        self.retain_checkpoints = retain_checkpoints
        self.crashpoints = crashpoints if crashpoints is not None else CrashPoints()
        if start_seqno is not None:
            self._seq = int(start_seqno)
        else:
            self._seq = int(impl.batches_processed)
            existing = list_checkpoints(self.directory)
            if existing:
                self._seq = max(self._seq, checkpoint_seqno(existing[-1]))
        self.wal = WriteAheadLog(
            self.directory,
            sync_policy=sync_policy,
            segment_max_bytes=segment_max_bytes,
            start_seqno=self._seq,
            crashpoints=self.crashpoints,
        )
        self._since_checkpoint = 0
        self.durability_stats: Dict[str, int] = {
            "wal_batches": 0, "unlogged_batches": 0, "aborted_batches": 0,
            "checkpoints": 0,
        }
        for stale in self.directory.glob("*.tmp"):
            stale.unlink()
        # the baseline: without it, a crash before the first periodic
        # checkpoint would leave a WAL with no state to replay onto
        self.checkpoint()

    # -- maintainer protocol -----------------------------------------------------
    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.impl, name)

    @property
    def wal_seqno(self) -> int:
        """Next batch's WAL sequence number (batches offered so far)."""
        return self._seq

    def apply_batch(self, batch):
        """Log ``batch`` to the WAL, then apply it through the wrapped
        maintainer; checkpoint when the period elapses."""
        try:
            validate_batch(self.sub, batch)
        except BatchValidationError:
            # keep garbage out of the log; the inner maintainer decides
            # whether this raises or quarantines
            self.durability_stats["unlogged_batches"] += 1
            self._seq += 1
            return self.impl.apply_batch(batch)
        self.wal.append_batch(self._seq, batch)
        self.durability_stats["wal_batches"] += 1
        seq = self._seq
        try:
            result = self.impl.apply_batch(batch)
        except Exception as exc:
            # logged but never committed: retract it so recovery and
            # replication skip it like the live session did.  CrashError
            # (BaseException) passes through untouched -- crash redo
            # semantics require the logged batch to replay.
            self.wal.append_abort(seq, f"{type(exc).__name__}: {exc}")
            self.durability_stats["aborted_batches"] += 1
            raise
        finally:
            # the record exists on disk either way; the position always
            # advances (an aborted position is consumed, never reused)
            self._seq += 1
        if result is not None and getattr(result, "ok", True) is False:
            # the resilient supervisor swallowed the failure and
            # quarantined the batch: same retraction, polite report path
            self.wal.append_abort(
                seq, getattr(result, "error", None) or "quarantined"
            )
            self.durability_stats["aborted_batches"] += 1
        self._since_checkpoint += 1
        if self.checkpoint_every and self._since_checkpoint >= self.checkpoint_every:
            self.checkpoint()
        return result

    def apply_change(self, change):
        from repro.graph.batch import Batch

        return self.apply_batch(Batch([change]))

    # -- checkpointing -----------------------------------------------------------
    def checkpoint(self) -> Path:
        """Write an atomic checkpoint now; retire old ones, prune the WAL."""
        self.wal.sync()  # the checkpoint must not outrun the log
        cp = take_checkpoint(self.impl)
        cp.wal_seqno = self._seq
        path = checkpoint_path(self.directory, self._seq)
        cp.save(path, crashpoints=self.crashpoints)
        self._since_checkpoint = 0
        self.durability_stats["checkpoints"] += 1
        self._retire_checkpoints()
        # prune only what *no retained checkpoint* needs: if the newest
        # one is later rejected (bitrot), the older fallbacks must still
        # find their full replay suffix on disk
        survivors = list_checkpoints(self.directory)
        floor = checkpoint_seqno(survivors[0]) if survivors else self._seq
        self.wal.prune(floor)
        return path

    def _retire_checkpoints(self) -> None:
        existing = list_checkpoints(self.directory)
        for old in existing[: -self.retain_checkpoints]:
            old.unlink()

    def close(self, *, final_checkpoint: bool = True) -> None:
        """Flush and close; by default seals the session with a final
        checkpoint so restart needs no replay."""
        if final_checkpoint:
            self.checkpoint()
        self.wal.close()

    def __repr__(self) -> str:
        s = self.durability_stats
        return (
            f"DurableMaintainer({self.impl!r}, {str(self.directory)!r}, "
            f"seq={self._seq}, checkpoints={s['checkpoints']})"
        )
