"""Durability: write-ahead logging, atomic checkpoints, crash recovery.

The in-process resilience layer (transactions, supervisor, fault
injection) keeps a *live* maintainer correct; this subpackage extends
the guarantees across process death.  See ``docs/RESILIENCE.md`` section
"Durability & crash recovery" for the failure model and walkthrough.

``wal``
    Append-only segments of CRC32-checksummed, length-prefixed change
    records with rotation and a sync policy
    (:class:`WriteAheadLog`, :class:`SyncPolicy`, :func:`scan_wal`).
``recovery``
    Startup scan / torn-tail repair / replay
    (:class:`RecoveryManager`, :class:`RecoveryReport`).
``durable``
    The WAL-before-apply facade with periodic checkpoints
    (:class:`DurableMaintainer`), wired through
    ``CoreMaintainer(..., durable=path)``.
``crashpoints``
    The deterministic ``kill -9`` injection seam
    (:class:`CrashPoints`), driven by ``crash``-kind
    :class:`~repro.resilience.faults.FaultPlan` entries.
``errors``
    :class:`DurabilityError` and the uncatchable :class:`CrashError`.

Submodules load lazily so leaf imports (``errors`` from
``checkpoint.py``, which this package itself builds on) stay cycle-free.
"""

from __future__ import annotations

__all__ = [
    "CRASH_SITES",
    "CrashError",
    "CrashPoints",
    "DurabilityError",
    "DurableMaintainer",
    "PruneResult",
    "RecoveryManager",
    "RecoveryReport",
    "ScanResult",
    "SyncPolicy",
    "WriteAheadLog",
    "read_wal_from",
    "scan_wal",
    "wal_horizon",
]

_LAZY = {
    "CRASH_SITES": "repro.resilience.durability.crashpoints",
    "CrashPoints": "repro.resilience.durability.crashpoints",
    "CrashError": "repro.resilience.durability.errors",
    "DurabilityError": "repro.resilience.durability.errors",
    "DurableMaintainer": "repro.resilience.durability.durable",
    "RecoveryManager": "repro.resilience.durability.recovery",
    "RecoveryReport": "repro.resilience.durability.recovery",
    "PruneResult": "repro.resilience.durability.wal",
    "ScanResult": "repro.resilience.durability.wal",
    "SyncPolicy": "repro.resilience.durability.wal",
    "WriteAheadLog": "repro.resilience.durability.wal",
    "read_wal_from": "repro.resilience.durability.wal",
    "scan_wal": "repro.resilience.durability.wal",
    "wal_horizon": "repro.resilience.durability.wal",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
