"""Crash recovery: checkpoint + WAL -> a maintainer equal to the oracle.

:class:`RecoveryManager` owns the startup path of a durable session.
Given the data directory of a (possibly crashed)
:class:`~repro.resilience.durability.durable.DurableMaintainer`, it:

1. **Selects a checkpoint.**  Checkpoint files are tried newest-first;
   a torn or corrupt one (crash mid-write never produces this -- the
   write is atomic -- but bitrot or a meddled file can) is *rejected and
   recorded*, and the next older one is tried.  Stale ``*.tmp`` files
   from a crash mid-checkpoint are deleted.
2. **Scans the WAL** (:func:`~repro.resilience.durability.wal.scan_wal`)
   and **repairs it**: the file holding the last committed batch is
   truncated just past that batch's commit record, and every later
   segment is deleted -- a torn tail (damaged record, or change records
   whose commit never landed) is physically removed, never replayed,
   never fatal.
3. **Replays** every committed batch at or after the checkpoint's WAL
   position through the restored maintainer's transactional
   ``apply_batch``.  Replay is idempotent at the change level (inserting
   a present pin / deleting an absent one are no-ops), so a batch that
   was both checkpointed and logged cannot double-apply.

The result is a maintainer whose ``tau`` equals an uninterrupted run of
the same prefix of the stream -- the crash-matrix property suite in
``tests/test_durability.py`` proves this against the peeling oracle for
every programmed crash point.  :meth:`RecoveryManager.resume` goes one
step further and hands back a live :class:`DurableMaintainer` over the
same directory, ready to continue the stream.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.graph.batch import Batch
from repro.resilience.checkpoint import Checkpoint, restore_maintainer
from repro.resilience.durability.errors import DurabilityError
from repro.resilience.durability.wal import (
    ScanResult,
    _segment_seqno,
    list_segments,
    scan_wal,
)

__all__ = [
    "RecoveryManager",
    "RecoveryReport",
    "CHECKPOINT_PREFIX",
    "checkpoint_seqno",
]

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".ckpt"


def checkpoint_path(directory, seqno: int) -> Path:
    return Path(directory) / f"{CHECKPOINT_PREFIX}{seqno:012d}{CHECKPOINT_SUFFIX}"


def checkpoint_seqno(path) -> int:
    """WAL position embedded in a checkpoint filename."""
    name = Path(path).name
    stem = name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise DurabilityError(f"not a checkpoint name: {name!r}", path) from None


def list_checkpoints(directory) -> List[Path]:
    """Checkpoint files, oldest first (name order == seqno order)."""
    return sorted(Path(directory).glob(f"{CHECKPOINT_PREFIX}*{CHECKPOINT_SUFFIX}"))


@dataclass
class RecoveryReport:
    """What recovery found, dropped, repaired, and replayed."""

    checkpoint: Optional[Path] = None
    checkpoint_seqno: int = 0
    #: checkpoints that failed to load, newest first: ``[(path, error)]``
    checkpoints_rejected: List[Tuple[Path, str]] = field(default_factory=list)
    records_scanned: int = 0
    batches_replayed: int = 0
    #: the WAL position a resumed session must continue from: one past
    #: the last committed batch, never below the checkpoint's position
    #: (``batches_processed`` is *lower* than this after a quarantine)
    resume_seqno: int = 0
    #: ``(checkpoint_seqno, wal_floor)`` when the oldest surviving WAL
    #: segment starts past the checkpoint base -- batches in between were
    #: pruned or deleted, so replay cannot reach the pre-crash state
    wal_gap: Optional[Tuple[int, int]] = None
    #: committed batches whose replay raised: ``[(seqno, error)]``
    replay_errors: List[Tuple[int, str]] = field(default_factory=list)
    #: batches retracted by a WAL abort record (quarantined or failed
    #: after logging); skipped, but their positions stay consumed
    batches_aborted: int = 0
    #: change groups discarded because their commit record never landed
    torn_batches: int = 0
    #: bytes physically truncated off the damaged/uncommitted tail
    torn_bytes_truncated: int = 0
    #: whole segments deleted past the last committed batch
    segments_removed: int = 0
    #: stale ``*.tmp`` checkpoint files deleted
    stale_tmp_removed: int = 0

    def __str__(self) -> str:
        cp = self.checkpoint.name if self.checkpoint else "<none>"
        return (
            f"recovered from {cp} (seq {self.checkpoint_seqno}): "
            f"{self.batches_replayed} batches replayed, "
            f"{self.torn_batches} torn batch(es) discarded, "
            f"{self.torn_bytes_truncated} torn byte(s) truncated, "
            f"{len(self.checkpoints_rejected)} checkpoint(s) rejected"
        )


class RecoveryManager:
    """Startup-time scan / repair / replay over one durable directory.

    Parameters
    ----------
    directory:
        The :class:`DurableMaintainer` data directory (checkpoints +
        WAL segments).
    rt:
        Parallel runtime for the restored maintainer (serial default).
    algorithm:
        Override the checkpointed algorithm (the snapshot is
        algorithm-agnostic).
    engine:
        Execution engine for the restored maintainer (``"auto"`` /
        ``"array"`` / ``"dict"``), as for
        :func:`~repro.core.maintainer.make_maintainer`.
    repair:
        Physically truncate torn tails and delete orphaned segments
        (default).  ``False`` scans read-only -- replay still uses only
        the valid prefix.
    strict:
        When recovery *cannot* reach the pre-crash state -- a committed
        batch fails to replay, or the surviving WAL starts past the
        checkpoint base (a gap) -- raise :class:`DurabilityError`
        (default) rather than silently returning a diverged maintainer.
        ``strict=False`` degrades both cases to a ``RuntimeWarning`` and
        records them on the report (``replay_errors`` / ``wal_gap``).
    kwargs:
        Forwarded to the algorithm class on restore.
    """

    def __init__(
        self,
        directory,
        rt=None,
        *,
        algorithm: Optional[str] = None,
        engine: str = "auto",
        repair: bool = True,
        strict: bool = True,
        **kwargs,
    ) -> None:
        self.directory = Path(directory)
        self.rt = rt
        self.algorithm = algorithm
        self.engine = engine
        self.repair = repair
        self.strict = strict
        self.kwargs = kwargs

    # -- checkpoint selection ----------------------------------------------------
    def latest_checkpoint(self, report: Optional[RecoveryReport] = None):
        """Newest loadable checkpoint as ``(Checkpoint, path)``.

        Unloadable candidates are recorded on ``report`` and skipped;
        raises :class:`DurabilityError` when none survives.
        """
        candidates = list_checkpoints(self.directory)
        for path in reversed(candidates):
            try:
                return Checkpoint.load(path), path
            except (DurabilityError, TypeError, ValueError) as exc:
                if report is not None:
                    report.checkpoints_rejected.append((path, str(exc)))
        raise DurabilityError(
            "no loadable checkpoint (cannot reconstruct the base state; "
            f"{len(candidates)} candidate(s) rejected)",
            self.directory,
        )

    # -- WAL repair --------------------------------------------------------------
    def _repair_wal(self, scan: ScanResult, report: RecoveryReport) -> None:
        """Truncate everything past the last committed batch boundary."""
        if not scan.torn:
            return
        if scan.commit_end is not None:
            keep_seg, keep_offset = scan.commit_end
        else:
            keep_seg, keep_offset = None, 0  # nothing committed: drop it all
        drop = False
        for seg in scan.segments:
            if seg == keep_seg:
                size = seg.stat().st_size
                if size > keep_offset:
                    os.truncate(seg, keep_offset)
                    report.torn_bytes_truncated += size - keep_offset
                drop = True
                continue
            if keep_seg is None or drop:
                report.torn_bytes_truncated += seg.stat().st_size
                seg.unlink()
                report.segments_removed += 1

    def _sweep_stale_tmp(self, report: RecoveryReport) -> None:
        for tmp in self.directory.glob("*.tmp"):
            tmp.unlink()
            report.stale_tmp_removed += 1

    # -- the entry points --------------------------------------------------------
    def recover(self):
        """Rebuild the maintainer: returns ``(maintainer, report)``."""
        report = RecoveryReport()
        if self.repair:
            self._sweep_stale_tmp(report)
        cp, path = self.latest_checkpoint(report)
        report.checkpoint = path
        base_seq = getattr(cp, "wal_seqno", -1)
        if base_seq < 0:
            base_seq = cp.batches_processed
        report.checkpoint_seqno = base_seq

        scan = scan_wal(self.directory)
        report.records_scanned = scan.records
        report.torn_batches = len(scan.uncommitted)
        if scan.segments:
            wal_floor = _segment_seqno(scan.segments[0])
            if wal_floor > base_seq:
                # the replay suffix this checkpoint needs was pruned away
                # (a newer checkpoint was rejected, or the directory was
                # meddled with): replaying over the gap would produce a
                # state matching neither run
                report.wal_gap = (base_seq, wal_floor)
                msg = (
                    f"WAL gap: oldest surviving segment starts at batch "
                    f"{wal_floor} but checkpoint {report.checkpoint.name} "
                    f"covers only up to batch {base_seq}; batches in "
                    f"[{base_seq}, {wal_floor}) are gone and the recovered "
                    "state would silently diverge"
                )
                if self.strict:
                    raise DurabilityError(
                        msg + " -- pass strict=False to keep the partial state",
                        self.directory,
                    )
                warnings.warn(msg, RuntimeWarning, stacklevel=2)
        if self.repair:
            self._repair_wal(scan, report)

        maintainer = restore_maintainer(
            cp, self.rt, algorithm=self.algorithm, engine=self.engine, **self.kwargs
        )
        next_seq = base_seq
        # aborted batches are skipped by the scan, but their positions
        # were consumed: a resumed session must continue past them
        for seqno, _reason in scan.aborted:
            if seqno >= base_seq:
                report.batches_aborted += 1
            next_seq = max(next_seq, seqno + 1)
        for seqno, changes in scan.committed:
            if seqno < base_seq:
                continue  # already inside the checkpoint
            # the position is consumed on disk whether or not replay
            # succeeds: a resumed session must never reuse it
            next_seq = max(next_seq, seqno + 1)
            try:
                maintainer.apply_batch(Batch(list(changes)))
                report.batches_replayed += 1
            except Exception as exc:  # noqa: BLE001 -- classify, then decide
                report.replay_errors.append(
                    (seqno, f"{type(exc).__name__}: {exc}")
                )
        report.resume_seqno = next_seq
        if report.replay_errors:
            head = "; ".join(
                f"batch {s}: {e}" for s, e in report.replay_errors[:3]
            )
            msg = (
                f"{len(report.replay_errors)} committed batch(es) failed to "
                f"replay ({head}); the recovered state diverges from the "
                "pre-crash run"
            )
            if self.strict:
                raise DurabilityError(
                    msg + " -- pass strict=False to keep the partial state",
                    self.directory,
                )
            warnings.warn(msg, RuntimeWarning, stacklevel=2)
        return maintainer, report

    def resume(self, **durable_opts):
        """Recover, then wrap the result in a fresh live
        :class:`~repro.resilience.durability.durable.DurableMaintainer`
        over the same directory (which takes a new baseline checkpoint
        and prunes the replayed WAL).  Returns ``(durable, report)``.

        The new facade continues from ``report.resume_seqno`` -- the
        recovered WAL position, which legitimately exceeds
        ``batches_processed`` after a quarantined or validation-failed
        batch.  Seeding from the applied-count instead would let the
        baseline checkpoint sort *below* a surviving pre-crash
        checkpoint, and a second recovery would then silently skip the
        batches acknowledged after this resume."""
        from repro.resilience.durability.durable import DurableMaintainer

        maintainer, report = self.recover()
        durable_opts.setdefault("start_seqno", report.resume_seqno)
        durable = DurableMaintainer(maintainer, self.directory, **durable_opts)
        return durable, report

    def __repr__(self) -> str:
        return f"RecoveryManager({str(self.directory)!r}, engine={self.engine!r})"
