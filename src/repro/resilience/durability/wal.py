"""The write-ahead log: append-only, checksummed, segment-rotated.

Format
------
A WAL is a directory of segment files ``wal-<seqno>.seg``, named by the
first batch sequence number they hold.  A segment is a flat sequence of
*records*, each length-prefixed and CRC32-checksummed::

    +----------------+----------------+------------------------+
    | length (u32le) | crc32 (u32le)  | payload (length bytes) |
    +----------------+----------------+------------------------+

The payload is a pickled tuple, one of three kinds:

* ``("C", seqno, (edge, vertex, insert))`` -- one pin-change record of
  batch ``seqno`` (the paper's unit of change, Section II-C);
* ``("B", seqno, n)`` -- the *commit record* closing batch ``seqno``,
  carrying its change count;
* ``("Q", seqno, reason)`` -- the *abort record*: batch ``seqno`` was
  logged but did **not** commit in memory (the resilient supervisor
  quarantined it, or the apply raised after logging).  Every reader --
  recovery replay, replication shipping, payload decoding -- skips an
  aborted batch while still consuming its sequence position, so disk,
  standbys and the primary's memory agree on exactly which batches are
  part of the timeline.

A batch is **replayable iff its commit record landed and no abort record
for it follows**: change records without a trailing commit are a torn
batch and are discarded wholesale on recovery, which is what makes a
crash mid-append atomic at batch granularity.  Segments rotate only at
batch boundaries, so no batch spans two files (an abort record always
lands in the same segment as the batch it aborts).

Sync policies
-------------
``SyncPolicy`` decides when appended bytes become *durable* (fsync):

* ``every-record`` -- fsync after each change record: a batch is never
  more than one record from durable, at one ``fsync`` syscall per pin
  change (the slowest policy by far);
* ``every-batch`` -- fsync once, after the commit record: an
  acknowledged ``apply_batch`` implies the batch is durable (the
  default, and the policy the durability contract is stated for);
* ``size:N`` -- fsync when ``N`` unsynced bytes accumulate: the fastest
  policy, but an acknowledged batch may be lost to a crash (recovery
  then restarts from the last synced prefix -- the report says where).

Torn tails
----------
Reading tolerates every torn-write shape a crash can leave: a partial
length header, a payload shorter than its header promises, a checksum
mismatch, an undecodable pickle, an implausible length from garbage
bytes.  :func:`scan_wal` stops at the first damaged record and reports
the damage point; :class:`~repro.resilience.durability.recovery
.RecoveryManager` truncates the file back to the last *committed* batch
boundary and deletes any later segments -- the torn tail is never
replayed and never fatal.

Crash simulation: every I/O boundary here fires a
:class:`~repro.resilience.durability.crashpoints.CrashPoints` site (see
that module for the catalogue); records are deliberately written in two
halves so the ``wal.append.torn`` site leaves a genuinely torn record on
disk.  :meth:`WriteAheadLog.simulate_power_loss` additionally models
losing the OS page cache (everything after the last fsync) for the
harsher power-failure model.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.substrate import Change
from repro.resilience.durability.crashpoints import CrashPoints
from repro.resilience.durability.errors import DurabilityError

__all__ = [
    "SyncPolicy",
    "WriteAheadLog",
    "ScanResult",
    "PruneResult",
    "scan_wal",
    "read_wal_from",
    "wal_horizon",
    "encode_record",
    "encode_batch",
    "decode_payload",
]

_RECORD_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
#: sanity cap on a single record; a longer length field is garbage bytes
MAX_RECORD_BYTES = 1 << 24

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def _segment_seqno(path: Path) -> int:
    """First batch seqno of a segment, parsed from its filename."""
    stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise DurabilityError(f"not a WAL segment name: {path.name!r}", path) from None


def list_segments(directory) -> List[Path]:
    """WAL segments of ``directory`` in replay (sequence) order."""
    return sorted(Path(directory).glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))


# ---------------------------------------------------------------------------
# the record codec (shared by the writer, the scanner, the incremental
# reader, and replication shipments -- one wire format, one parser)
# ---------------------------------------------------------------------------
def encode_record(record: tuple) -> bytes:
    """One length-prefixed, CRC32-checksummed record (see module header)."""
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_batch(seqno: int, changes: Iterable[Change]) -> bytes:
    """A whole batch in WAL wire format: change records + commit record.

    This is exactly what :meth:`WriteAheadLog.append_batch` puts on disk,
    which is what makes replication shipments *literal* WAL bytes: a
    replica appends them unchanged and a torn shipment is caught by the
    same CRC parsing as a torn segment.
    """
    parts = [
        encode_record(("C", seqno, (c.edge, c.vertex, bool(c.insert))))
        for c in changes
    ]
    parts.append(encode_record(("B", seqno, len(parts))))
    return b"".join(parts)


def _parse_record(data: bytes, offset: int):
    """Parse one record at ``offset`` of ``data``.

    Returns ``((kind, seqno, obj), end_offset, None)`` on success --
    ``obj`` is a :class:`Change` for ``"C"`` records, the change count
    for ``"B"``, the abort reason string for ``"Q"`` -- or
    ``(None, offset, reason)`` for any torn-write shape a crash (or a
    torn shipment) can leave.
    """
    size = len(data)
    if offset + _RECORD_HEADER.size > size:
        return None, offset, "torn header"
    length, crc = _RECORD_HEADER.unpack_from(data, offset)
    if length > MAX_RECORD_BYTES:
        return None, offset, "implausible record length"
    start = offset + _RECORD_HEADER.size
    end = start + length
    if end > size:
        return None, offset, "torn record"
    payload = data[start:end]
    if zlib.crc32(payload) != crc:
        return None, offset, "checksum mismatch"
    try:
        record = pickle.loads(payload)
        kind = record[0]
        if kind == "C":
            _, seqno, (e, v, insert) = record
            obj = Change(e, v, bool(insert))
        elif kind == "B":
            # unpack here: a CRC-valid record with the wrong arity is
            # damage to report, not an exception to leak
            _, seqno, n = record
            obj = int(n)
        elif kind == "Q":
            _, seqno, reason = record
            obj = str(reason)
        else:
            raise ValueError(kind)
    except Exception:
        return None, offset, "undecodable record"
    return (kind, seqno, obj), end, None


def decode_payload(data: bytes):
    """Parse a flat buffer of WAL wire-format records into batches.

    Returns ``(committed, damage)`` where ``committed`` is
    ``[(seqno, [Change, ...]), ...]`` in buffer order and ``damage`` is
    ``None`` or a reason string.  A damaged record *or* trailing change
    records without their commit record report damage -- a replication
    shipment is supposed to carry whole batches, so an open group means
    the shipment was torn in flight.  The valid committed prefix is
    returned either way (the receiver applies it and NAKs for the rest).
    """
    committed: List[Tuple[int, List[Change]]] = []
    open_groups: Dict[int, List[Change]] = {}
    offset, size = 0, len(data)
    while offset < size:
        parsed, offset, damage = _parse_record(data, offset)
        if damage is not None:
            return committed, damage
        kind, seqno, obj = parsed
        if kind == "C":
            open_groups.setdefault(seqno, []).append(obj)
        elif kind == "B":
            group = open_groups.pop(seqno, [])
            if len(group) != obj:
                return committed, "batch commit count mismatch"
            committed.append((seqno, group))
        else:  # "Q": the batch aborted after commit -- retract it
            open_groups.pop(seqno, None)
            for i in range(len(committed) - 1, -1, -1):
                if committed[i][0] == seqno:
                    del committed[i]
                    break
    if open_groups:
        return committed, "torn payload tail"
    return committed, None


@dataclass(frozen=True)
class SyncPolicy:
    """When appended WAL bytes are fsynced; see the module docstring."""

    kind: str                 #: ``"record"`` | ``"batch"`` | ``"size"``
    threshold: int = 0        #: unsynced-byte trigger (``size`` only)

    KINDS = ("record", "batch", "size")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(
                f"unknown sync policy {self.kind!r}; choose from {self.KINDS}"
            )
        if self.kind == "size" and self.threshold <= 0:
            raise ValueError("size sync policy needs a positive byte threshold")

    # -- readable constructors -------------------------------------------------
    @classmethod
    def every_record(cls) -> "SyncPolicy":
        return cls("record")

    @classmethod
    def every_batch(cls) -> "SyncPolicy":
        return cls("batch")

    @classmethod
    def size_threshold(cls, n_bytes: int) -> "SyncPolicy":
        return cls("size", n_bytes)

    @classmethod
    def coerce(cls, value) -> "SyncPolicy":
        """Accept a policy, a kind name, or ``"size:N"``."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if value.startswith("size:"):
                return cls("size", int(value.split(":", 1)[1]))
            return cls(value)
        raise TypeError(f"cannot interpret {value!r} as a SyncPolicy")

    @property
    def guarantees_acked(self) -> bool:
        """Whether an acknowledged batch is guaranteed durable."""
        return self.kind in ("record", "batch")


class WriteAheadLog:
    """Append-only change log over a directory of rotated segments.

    The log is batch-oriented: :meth:`append_batch` writes one change
    record per pin change plus a commit record, then syncs per policy.
    A fresh instance over a non-empty directory never touches existing
    segments except to :meth:`prune` them -- it appends into new files,
    so recovery-then-resume needs no coordination.
    """

    def __init__(
        self,
        directory,
        *,
        sync_policy="batch",
        segment_max_bytes: int = 1 << 22,
        start_seqno: Optional[int] = None,
        crashpoints: Optional[CrashPoints] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_policy = SyncPolicy.coerce(sync_policy)
        if segment_max_bytes <= 0:
            raise ValueError("segment_max_bytes must be positive")
        self.segment_max_bytes = segment_max_bytes
        #: WAL position of the session this log serves.  The first
        #: segment is named for it (not for the first *logged* batch,
        #: which may come later if early batches fail validation), so the
        #: oldest segment name is a lower bound on every position the
        #: session consumed -- recovery's gap check depends on this.
        self.start_seqno = start_seqno
        self.crashpoints = crashpoints if crashpoints is not None else CrashPoints()
        self._fh = None
        self._path: Optional[Path] = None
        self._synced_offset = 0
        self._unsynced_bytes = 0
        self.stats: Dict[str, int] = {
            "records": 0, "batches": 0, "aborts": 0, "syncs": 0, "rotations": 0,
        }

    # -- write path ------------------------------------------------------------
    def _open_segment(self, first_seqno: int) -> None:
        path = self.directory / f"{_SEGMENT_PREFIX}{first_seqno:012d}{_SEGMENT_SUFFIX}"
        self._fh = open(path, "ab")
        self._path = path
        self._synced_offset = self._fh.tell()
        self._unsynced_bytes = 0

    def append_batch(self, seqno: int, changes: Iterable[Change]) -> None:
        """Log one batch: its change records, then its commit record.

        Under ``every-record`` / ``every-batch`` policies the batch is
        durable when this returns; under ``size:N`` it is durable once
        enough bytes accumulate (call :meth:`sync` to force).
        """
        if self._fh is None:
            first = seqno if self.start_seqno is None else min(seqno, self.start_seqno)
            self._open_segment(first)
        elif self._fh.tell() >= self.segment_max_bytes:
            self._rotate(seqno)
        every_record = self.sync_policy.kind == "record"
        n = 0
        for c in changes:
            self._append(("C", seqno, (c.edge, c.vertex, bool(c.insert))))
            n += 1
            if every_record:
                self.sync()
        self._append(("B", seqno, n))
        self.stats["batches"] += 1
        if self.sync_policy.kind in ("record", "batch"):
            self.sync()
        elif self._unsynced_bytes >= self.sync_policy.threshold:
            self.sync()

    def append_abort(self, seqno: int, reason: str = "") -> None:
        """Retract batch ``seqno`` after the fact: it was logged but never
        committed in memory (quarantined, or the apply raised after
        logging).  The abort record makes every reader -- recovery,
        replication, shipments -- skip the batch while still consuming
        its position, so replaying the log reproduces the live session's
        state instead of resurrecting the batch the session refused.

        Must be called before the next ``append_batch`` (the record goes
        into the batch's own segment; rotation only happens at the start
        of the next batch, so it always does).
        """
        if self._fh is None:
            # an abort can only follow an append_batch for the same
            # seqno, which opened the segment -- but stay defensive for
            # direct use (e.g. retracting a batch from a reopened log)
            first = seqno if self.start_seqno is None else min(seqno, self.start_seqno)
            self._open_segment(first)
        self._append(("Q", seqno, str(reason)))
        self.stats["aborts"] += 1
        if self.sync_policy.kind in ("record", "batch"):
            self.sync()
        elif self._unsynced_bytes >= self.sync_policy.threshold:
            self.sync()

    def _append(self, record: tuple) -> None:
        data = encode_record(record)
        fire = self.crashpoints.fire
        fh = self._fh
        fire("wal.append.start")
        # two-part write so the torn site leaves a genuinely torn record
        mid = len(data) // 2
        fh.write(data[:mid])
        fh.flush()
        fire("wal.append.torn")
        fh.write(data[mid:])
        fh.flush()
        self._unsynced_bytes += len(data)
        self.stats["records"] += 1
        fire("wal.append.unsynced")

    def sync(self) -> None:
        """Force everything appended so far to durable storage."""
        if self._fh is None or self._unsynced_bytes == 0:
            return
        fire = self.crashpoints.fire
        fire("wal.sync.before")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._synced_offset = self._fh.tell()
        self._unsynced_bytes = 0
        self.stats["syncs"] += 1
        fire("wal.sync.after")

    def _rotate(self, next_seqno: int) -> None:
        self.crashpoints.fire("wal.rotate.before")
        self.sync()
        self._fh.close()
        self._open_segment(next_seqno)
        self.stats["rotations"] += 1
        self.crashpoints.fire("wal.rotate.after")

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None
            self._path = None

    # -- reading back ----------------------------------------------------------
    def read_from(self, seqno: int):
        """Stream committed batches at or after position ``seqno`` --
        see :func:`read_wal_from`.  Unsynced appends are visible (the
        writer flushes every record), so a replication primary can ship
        straight from its own live log."""
        return read_wal_from(self.directory, seqno)

    def horizon(self) -> int:
        """Oldest position still replayable from this log: everything
        below it has been pruned away.  Falls back to the session's
        start position while no segment exists yet."""
        h = wal_horizon(self.directory)
        if h is not None:
            return h
        return self.start_seqno if self.start_seqno is not None else 0

    # -- maintenance -----------------------------------------------------------
    def segments(self) -> List[Path]:
        return list_segments(self.directory)

    def prune(self, upto_seqno: int) -> "PruneResult":
        """Delete whole segments made redundant by a checkpoint at
        ``upto_seqno`` (every batch they hold is ``< upto_seqno``).
        Rotation is batch-aligned, so a segment is redundant exactly when
        the *next* segment starts at or before ``upto_seqno``.  The open
        segment is never deleted.

        Returns a :class:`PruneResult` carrying the removed paths and the
        new *horizon* -- the oldest position still replayable.  A
        replication primary checks every standby's cursor against this
        horizon: a replica whose cursor fell below it has been lapped and
        must resync from a checkpoint instead of the log.
        """
        segs = self.segments()
        removed: List[Path] = []
        for seg, nxt in zip(segs, segs[1:]):
            if _segment_seqno(nxt) <= upto_seqno and seg != self._path:
                seg.unlink()
                removed.append(seg)
            else:
                break
        return PruneResult(removed=removed, horizon=self.horizon())

    def simulate_power_loss(self) -> int:
        """Model losing the OS page cache: truncate the active segment to
        the last fsynced offset and drop the handle.  Returns the number
        of bytes lost.  (``kill -9`` alone does *not* lose flushed
        writes; a power failure does -- the crash-matrix suite uses this
        to test the harsher model.)"""
        if self._fh is None:
            return 0
        path, synced = self._path, self._synced_offset
        try:
            self._fh.close()
        finally:
            self._fh = None
            self._path = None
        size = path.stat().st_size
        if size > synced:
            os.truncate(path, synced)
        return max(0, size - synced)

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.directory)!r}, {self.sync_policy.kind}, "
            f"records={self.stats['records']}, batches={self.stats['batches']})"
        )


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------
@dataclass
class PruneResult:
    """What :meth:`WriteAheadLog.prune` removed and where the log now starts.

    Truthiness and iteration delegate to ``removed`` so existing callers
    that treated prune's result as "the list of deleted segments" keep
    working unchanged.
    """

    removed: List[Path]
    #: oldest WAL position still replayable after the prune
    horizon: int

    def __bool__(self) -> bool:
        return bool(self.removed)

    def __iter__(self):
        return iter(self.removed)

    def __len__(self) -> int:
        return len(self.removed)


@dataclass
class ScanResult:
    """Everything a recovery needs to know about a WAL directory."""

    #: committed batches in log order: ``[(seqno, [Change, ...]), ...]``
    committed: List[Tuple[int, List[Change]]] = field(default_factory=list)
    #: batches retracted by an abort record: ``[(seqno, reason), ...]``;
    #: they consume their positions but are never replayed
    aborted: List[Tuple[int, str]] = field(default_factory=list)
    #: change groups whose commit record never landed (torn batches)
    uncommitted: Dict[int, List[Change]] = field(default_factory=dict)
    #: ``(segment, offset, reason)`` of the first damaged record, if any
    damage: Optional[Tuple[Path, int, str]] = None
    #: ``(segment, offset)`` just past the last committed batch's records
    commit_end: Optional[Tuple[Path, int]] = None
    records: int = 0
    segments: List[Path] = field(default_factory=list)

    @property
    def torn(self) -> bool:
        return self.damage is not None or bool(self.uncommitted)


def scan_wal(directory) -> ScanResult:
    """Read every segment, stopping at the first damaged record.

    Damage (torn header, short payload, checksum mismatch, undecodable
    or implausible record) ends the scan: with a single sequential
    writer, anything beyond a damaged record is the crash's debris, so
    the valid prefix is exactly what recovery may trust.  The scan never
    raises for damage -- it reports it.
    """
    result = ScanResult(segments=list_segments(directory))
    for seg in result.segments:
        data = seg.read_bytes()
        offset = 0
        size = len(data)
        while offset < size:
            parsed, end, damage = _parse_record(data, offset)
            if damage is not None:
                result.damage = (seg, offset, damage)
                break
            kind, seqno, obj = parsed
            result.records += 1
            if kind == "C":
                result.uncommitted.setdefault(seqno, []).append(obj)
            elif kind == "B":
                group = result.uncommitted.pop(seqno, [])
                if len(group) != obj:
                    # a commit whose group is incomplete: logical damage,
                    # the commit itself cannot be trusted
                    result.damage = (seg, end, "batch commit count mismatch")
                    break
                result.committed.append((seqno, group))
                result.commit_end = (seg, end)
            else:  # "Q": retract the committed batch it names
                result.uncommitted.pop(seqno, None)
                for i in range(len(result.committed) - 1, -1, -1):
                    if result.committed[i][0] == seqno:
                        del result.committed[i]
                        break
                result.aborted.append((seqno, obj))
                # torn-tail repair truncates back to commit_end; the
                # abort record must survive that truncation or the
                # retracted batch would resurrect on the next recovery
                result.commit_end = (seg, end)
            offset = end
        if result.damage is not None:
            break
    return result


def wal_horizon(directory) -> Optional[int]:
    """Oldest position replayable from the WAL in ``directory``: the
    first segment's name.  ``None`` when no segment exists."""
    segs = list_segments(directory)
    return _segment_seqno(segs[0]) if segs else None


def read_wal_from(directory, seqno: int):
    """Stream committed batches at or after position ``seqno``, in log
    order, as ``(seqno, [Change, ...])`` pairs.

    This is the incremental companion to :func:`scan_wal` (same record
    parsing, same stop-at-first-damage rule) for callers that already
    know their position -- replication ships from a cursor without
    re-parsing the whole directory.  Whole segments below the cursor are
    skipped by filename alone; a damaged or uncommitted tail simply ends
    the stream (it is the writer's live edge or crash debris, not an
    error).

    Raises :class:`DurabilityError` when ``seqno`` predates the log's
    horizon: the suffix the caller wants was pruned away (a replica this
    far behind has been *lapped* and must bootstrap from a checkpoint).
    """
    segments = list_segments(directory)
    if segments:
        floor = _segment_seqno(segments[0])
        if seqno < floor:
            raise DurabilityError(
                f"WAL position {seqno} predates the prune horizon {floor}; "
                "the requested suffix is gone -- resync from a checkpoint",
                Path(directory),
            )
    open_groups: Dict[int, List[Change]] = {}
    # one-batch lookahead: a committed batch is held back until the next
    # record proves no abort record retracts it (the abort, when present,
    # is appended right after the batch's commit record)
    pending: Optional[Tuple[int, List[Change]]] = None
    for i, seg in enumerate(segments):
        # every batch of this segment is < seqno iff the next segment
        # starts at or below it (rotation is batch-aligned)
        if i + 1 < len(segments) and _segment_seqno(segments[i + 1]) <= seqno:
            continue
        data = seg.read_bytes()
        offset, size = 0, len(data)
        while offset < size:
            parsed, end, damage = _parse_record(data, offset)
            if damage is not None:
                if pending is not None:
                    yield pending
                return
            kind, s, obj = parsed
            if kind == "C":
                if s >= seqno:
                    open_groups.setdefault(s, []).append(obj)
            elif kind == "B":
                group = open_groups.pop(s, [])
                if s >= seqno:
                    if len(group) != obj:
                        if pending is not None:
                            yield pending
                        return
                    if pending is not None:
                        yield pending
                    pending = (s, group)
            else:  # "Q": retract the batch it names
                open_groups.pop(s, None)
                if pending is not None and pending[0] == s:
                    pending = None
            offset = end
    if pending is not None:
        yield pending
