"""Deterministic crash-point seam threaded through all durability I/O.

Every file-touching operation in the durability subsystem announces its
position by calling :meth:`CrashPoints.fire` with a *site* name at each
I/O boundary -- before a write, after a torn half-write, before and after
an fsync, around a checkpoint rename.  The object counts hits per site;
when a hook is armed (by :class:`~repro.resilience.faults.FaultInjector`
for a ``crash``-kind :class:`~repro.resilience.faults.FaultPlan`), the
hook may raise :class:`~repro.resilience.durability.errors.CrashError`
to simulate ``kill -9`` at exactly that boundary, with exactly the bytes
written so far on disk.

Because the sites are *inside* the write sequences, the injected crash
leaves precisely the on-disk state a real SIGKILL would: nothing of the
record, half the record, the whole record unsynced, a temp checkpoint
never renamed.  The crash-matrix property suite in
``tests/test_durability.py`` sweeps every site and proves recovery from
each of them.

Canonical sites
---------------
============================  ====================================================
``wal.append.start``          record not yet written (nothing on disk)
``wal.append.torn``           first half of the record written -- a torn tail
``wal.append.unsynced``       record fully written, not yet fsynced
``wal.sync.before``           between the last write and its fsync
``wal.sync.after``            fsync completed (the record is durable)
``wal.rotate.before``         segment full, before closing it
``wal.rotate.after``          new segment opened
``checkpoint.write.start``    temp file created, nothing written
``checkpoint.write.torn``     half the checkpoint bytes written to the temp file
``checkpoint.fsync.before``   temp file complete but not fsynced
``checkpoint.rename.before``  temp file durable, final name not yet swapped
``checkpoint.rename.after``   checkpoint live, old segments not yet pruned
============================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

__all__ = ["CrashPoints", "CRASH_SITES"]

#: the canonical site names, in write order (documentation + test sweep)
CRASH_SITES = (
    "wal.append.start",
    "wal.append.torn",
    "wal.append.unsynced",
    "wal.sync.before",
    "wal.sync.after",
    "wal.rotate.before",
    "wal.rotate.after",
    "checkpoint.write.start",
    "checkpoint.write.torn",
    "checkpoint.fsync.before",
    "checkpoint.rename.before",
    "checkpoint.rename.after",
)

Hook = Callable[[str, int], None]


class CrashPoints:
    """Per-site hit counters plus an optional armed hook.

    One instance is shared by a :class:`~repro.resilience.durability
    .durable.DurableMaintainer`, its write-ahead log, and its checkpoint
    writer, so ordinals are globally consistent across the session's I/O
    stream: hit ``n`` of a site is the ``n``-th time that boundary is
    crossed since the durable session opened (the baseline checkpoint
    written at open counts too).
    """

    __slots__ = ("counts", "hook")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.hook: Optional[Hook] = None

    def fire(self, site: str) -> None:
        """Cross one I/O boundary: count it, give any armed hook its shot
        (the hook may raise :class:`CrashError` to die right here)."""
        n = self.counts.get(site, 0)
        self.counts[site] = n + 1
        hook = self.hook
        if hook is not None:
            hook(site, n)

    def __repr__(self) -> str:
        armed = "armed" if self.hook is not None else "unarmed"
        return f"CrashPoints({sum(self.counts.values())} hits, {armed})"
