"""Durability exceptions (a leaf module: safe to import from anywhere).

:class:`DurabilityError` is the subsystem's "your persisted state is not
usable" signal -- a truncated or garbage checkpoint, a WAL directory with
no valid checkpoint to recover from.  It always names the offending path.

:class:`CrashError` is raised by an armed crash point
(:class:`~repro.resilience.durability.crashpoints.CrashPoints`) to
simulate ``kill -9`` at an exact I/O boundary.  It deliberately derives
from :class:`BaseException`, not :class:`Exception`: a real SIGKILL is
not catchable, so no retry loop, supervisor, or ``except Exception``
cleanup path in the stack may swallow it -- the harness that armed the
crash is the only thing allowed to observe it, and it must then abandon
the in-memory objects entirely and recover from disk.
"""

from __future__ import annotations

__all__ = ["DurabilityError", "CrashError"]


class DurabilityError(RuntimeError):
    """Persisted state (checkpoint or WAL) is unusable; carries the path."""

    def __init__(self, message: str, path=None) -> None:
        if path is not None:
            message = f"{message} [{path}]"
        super().__init__(message)
        self.path = path


class CrashError(BaseException):
    """A simulated ``kill -9`` fired by a programmed crash point."""

    def __init__(self, site: str, hit: int) -> None:
        super().__init__(f"simulated kill -9 at crash point {site!r} (hit #{hit})")
        self.site = site
        self.hit = hit
