"""Pre-flight batch validation.

A long-running maintainer dies not from its algorithms but from its
inputs: one malformed :class:`~repro.graph.substrate.Change` in the middle
of a batch used to raise *after* earlier changes had already mutated the
substrate, leaving graph, ``tau``, the level index and the min-cache
mutually inconsistent.  :func:`validate_batch` checks every change for
structural well-formedness *before the first mutation*, so a batch either
starts applying or is rejected untouched.

What is validated here is exactly the state-independent properties -- the
ones whose violation would raise mid-apply:

* every element is a :class:`Change` with a boolean direction;
* on graphs: the edge id is a canonical ``edge_id(u, v)`` pair, no
  self-loops, and the changed pin is one of the two endpoints (the checks
  :meth:`DynamicGraph.apply` would otherwise fail *after* earlier changes
  landed);
* edge ids and vertices are hashable (they key every index).

State-*dependent* no-ops -- deleting an absent pin, re-inserting a present
edge -- are deliberately not rejected: they may become valid through
earlier changes of the same batch, and ``MaintainH`` skips them safely
without mutating anything (see ``tests/test_failure_injection.py``).
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.substrate import Change, edge_id

__all__ = ["BatchValidationError", "validate_batch"]


class BatchValidationError(ValueError):
    """A batch failed pre-flight validation; nothing was applied.

    Subclasses :class:`ValueError` so callers guarding the old mid-apply
    failures keep working.
    """

    def __init__(self, index: int, change: object, reason: str) -> None:
        self.index = index
        self.change = change
        self.reason = reason
        super().__init__(f"invalid change at batch index {index}: {reason} ({change!r})")


def _hashable(obj: object) -> bool:
    try:
        hash(obj)
    except TypeError:
        return False
    return True


def validate_batch(sub, batch: Iterable) -> None:
    """Raise :class:`BatchValidationError` unless every change of ``batch``
    is structurally applicable to ``sub``; mutate nothing."""
    is_hyper = bool(getattr(sub, "is_hypergraph", False))
    for i, change in enumerate(batch):
        if not isinstance(change, Change):
            raise BatchValidationError(i, change, "not a Change record")
        if not isinstance(change.insert, bool):
            raise BatchValidationError(i, change, "direction must be True/False")
        if not _hashable(change.edge) or not _hashable(change.vertex):
            raise BatchValidationError(i, change, "edge and vertex must be hashable")
        if is_hyper:
            continue
        e = change.edge
        if not isinstance(e, tuple) or len(e) != 2:
            raise BatchValidationError(i, change, "graph edge id must be a (u, v) pair")
        u, v = e
        try:
            canonical = edge_id(u, v)
        except ValueError:
            raise BatchValidationError(i, change, "self-loop") from None
        except TypeError:
            raise BatchValidationError(i, change, "endpoints are not mutually orderable") from None
        if canonical != e:
            raise BatchValidationError(
                i, change, f"non-canonical edge id (use edge_id -> {canonical!r})"
            )
        if change.vertex != u and change.vertex != v:
            raise BatchValidationError(
                i, change, f"pin {change.vertex!r} is not an endpoint of {e!r}"
            )
