"""Resilience layer: keep answers correct when the stream is not.

The maintenance algorithms in :mod:`repro.core` assume well-formed batches
and exception-free callbacks; a production service gets neither.  This
package adds the four defenses (see ``docs/RESILIENCE.md``):

``validation``
    Pre-flight structural checks -- a malformed batch is rejected before
    the first mutation (:func:`validate_batch`,
    :class:`BatchValidationError`).
``transaction``
    The undo machinery behind the all-or-nothing ``apply_batch`` every
    maintainer now provides (:class:`Transaction`).
``checkpoint``
    Durable ``(substrate, tau, batches_processed)`` snapshots for
    restarting long streams (:class:`Checkpoint`, :func:`take_checkpoint`,
    :func:`restore_maintainer`).
``supervisor``
    :class:`ResilientMaintainer` -- bounded retry, poison-batch
    quarantine, periodic sampled drift audits with static-reseed
    self-healing.
``faults``
    The deterministic chaos harness (:class:`FaultPlan`,
    :class:`FaultInjector`, :class:`FaultError`) used by the chaos test
    suite, including the ``crash`` kind that simulates ``kill -9`` at
    durability I/O boundaries.
``durability``
    Cross-process durability: the write-ahead log, atomic checkpoint
    files, crash recovery, and the crash-point injection seam
    (:class:`DurableMaintainer`, :class:`RecoveryManager`,
    :class:`WriteAheadLog`, :class:`SyncPolicy`, :class:`CrashPoints`,
    :class:`DurabilityError`, :class:`CrashError`).

Modules that depend on :mod:`repro.core` (checkpoint, supervisor, faults,
durability) are loaded lazily so the core algorithms can import the
validation and transaction primitives without a cycle.
"""

from __future__ import annotations

from repro.resilience.transaction import Transaction
from repro.resilience.validation import BatchValidationError, validate_batch

__all__ = [
    "BatchReport",
    "BatchValidationError",
    "Checkpoint",
    "CrashError",
    "CrashPoints",
    "DurabilityError",
    "DurableMaintainer",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "QuarantinedBatch",
    "RecoveryManager",
    "RecoveryReport",
    "ResilientMaintainer",
    "SyncPolicy",
    "Transaction",
    "WriteAheadLog",
    "restore_maintainer",
    "take_checkpoint",
    "validate_batch",
]

_LAZY = {
    "Checkpoint": "repro.resilience.checkpoint",
    "take_checkpoint": "repro.resilience.checkpoint",
    "restore_maintainer": "repro.resilience.checkpoint",
    "FaultError": "repro.resilience.faults",
    "FaultPlan": "repro.resilience.faults",
    "FaultInjector": "repro.resilience.faults",
    "BatchReport": "repro.resilience.supervisor",
    "QuarantinedBatch": "repro.resilience.supervisor",
    "ResilientMaintainer": "repro.resilience.supervisor",
    "CrashError": "repro.resilience.durability.errors",
    "DurabilityError": "repro.resilience.durability.errors",
    "CrashPoints": "repro.resilience.durability.crashpoints",
    "DurableMaintainer": "repro.resilience.durability.durable",
    "RecoveryManager": "repro.resilience.durability.recovery",
    "RecoveryReport": "repro.resilience.durability.recovery",
    "SyncPolicy": "repro.resilience.durability.wal",
    "WriteAheadLog": "repro.resilience.durability.wal",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
