"""Deterministic retry pacing: clocks and exponential backoff.

Both the in-process supervisor (:class:`~repro.resilience.supervisor
.ResilientMaintainer`) and the replication shipping loop
(:mod:`repro.replication`) retry failed work.  Retrying *immediately* is
wrong twice over: against a struggling dependency it is a tight loop of
load, and in tests it hides every timing-dependent bug.  This module
gives both call sites the same policy object:

* :class:`ExponentialBackoff` -- ``initial * factor**attempt`` capped at
  ``max_delay``, with *deterministic* jitter: the jitter fraction is
  drawn from a :class:`random.Random` seeded by ``(seed, key, attempt)``,
  so the same attempt of the same logical operation always waits the
  same amount.  Reproducibility is the whole point -- a chaos test that
  passes once passes forever.
* :class:`ManualClock` -- virtual time.  ``sleep`` advances ``now()``
  and returns; nothing blocks.  Every replication test and every
  supervisor backoff test runs on one of these, so the suites add zero
  real wall-clock waiting.
* :class:`SystemClock` -- ``time.monotonic`` / ``time.sleep`` for
  production use.

The clock protocol is two methods, ``now() -> float`` (seconds) and
``sleep(dt: float) -> None``; anything matching it can be injected.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Union

__all__ = ["Clock", "SystemClock", "ManualClock", "ExponentialBackoff"]


class Clock:
    """Protocol: ``now()`` in seconds and a ``sleep`` that honours it."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, dt: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SystemClock(Clock):
    """Real time: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, dt: float) -> None:
        if dt > 0:
            time.sleep(dt)

    def __repr__(self) -> str:
        return "SystemClock()"


class ManualClock(Clock):
    """Virtual time under test control: ``sleep`` advances, never blocks.

    ``sleeps`` records every requested wait so a test can assert the
    exact backoff schedule that was observed.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot sleep a negative duration")
        self.sleeps.append(dt)
        self._now += dt

    def advance(self, dt: float) -> float:
        """Move time forward without recording a sleep (an external wait)."""
        if dt < 0:
            raise ValueError("cannot advance backwards")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` (no-op when already past it)."""
        self._now = max(self._now, float(t))
        return self._now

    def __repr__(self) -> str:
        return f"ManualClock(now={self._now:.6f})"


class ExponentialBackoff:
    """``initial * factor**attempt`` capped at ``max_delay``, jittered.

    Parameters
    ----------
    initial:
        Delay before the first retry (attempt 0), in seconds.
    factor:
        Multiplier per further attempt.
    max_delay:
        Cap on the un-jittered delay.
    jitter:
        Fraction of the delay drawn uniformly at random and *added*
        (``0.25`` -> up to +25%).  Deterministic: the draw is seeded by
        ``(seed, key, attempt)``, never by global RNG state or time.
        Ignored under ``mode="full"``.
    seed:
        Base seed for the jitter stream.
    mode:
        ``"equal"`` (default) -- the historical additive jitter: the
        capped exponential delay plus up to ``jitter`` of itself.
        ``"full"`` -- AWS-style *full jitter*: the delay is drawn
        uniformly from ``[0, capped exponential]``.  Full jitter is the
        right policy when many independent clients retry against one
        shared resource (the serving layer's admission retry-after
        hints): equal jitter keeps the herd clustered near the same
        instant, full jitter spreads it across the whole window.  Both
        modes are pure functions of ``(seed, key, attempt)``.
    """

    MODES = ("equal", "full")

    def __init__(
        self,
        initial: float = 0.01,
        factor: float = 2.0,
        max_delay: float = 1.0,
        *,
        jitter: float = 0.25,
        seed: int = 0,
        mode: str = "equal",
    ) -> None:
        if initial < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if factor < 1.0:
            raise ValueError("factor must be >= 1 (backoff never shrinks)")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if mode not in self.MODES:
            raise ValueError(f"unknown jitter mode {mode!r}; choose from {self.MODES}")
        self.initial = float(initial)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.mode = mode

    @classmethod
    def coerce(
        cls, value: Union[None, str, "ExponentialBackoff"], *, seed: int = 0
    ) -> Optional["ExponentialBackoff"]:
        """``None`` stays ``None`` (no backoff, retry immediately);
        ``"default"`` builds the standard policy; an instance passes
        through."""
        if value is None or isinstance(value, cls):
            return value
        if value == "default":
            return cls(seed=seed)
        raise TypeError(f"cannot interpret {value!r} as a backoff policy")

    def delay(self, attempt: int, *, key: int = 0) -> float:
        """Wait before retry number ``attempt`` (0-based) of operation
        ``key``.  Pure function of ``(seed, key, attempt)``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.initial * self.factor ** attempt, self.max_delay)
        if not base:
            return base
        if self.mode == "full":
            rng = random.Random(self.seed * 1_000_003 + key * 9_176 + attempt)
            return base * rng.random()
        if not self.jitter:
            return base
        rng = random.Random(self.seed * 1_000_003 + key * 9_176 + attempt)
        return base * (1.0 + self.jitter * rng.random())

    def __repr__(self) -> str:
        return (
            f"ExponentialBackoff(initial={self.initial}, factor={self.factor}, "
            f"max_delay={self.max_delay}, jitter={self.jitter}, seed={self.seed}, "
            f"mode={self.mode!r})"
        )
