"""The resilient supervisor: retry, quarantine, audit, self-heal.

:class:`ResilientMaintainer` wraps any ``ALGORITHMS`` entry and turns
"a batch raised" from a stream-killing event into a reported, recoverable
one:

* **bounded retry** -- a failed batch is retried up to ``max_retries``
  times; the transactional ``apply_batch`` guarantees every attempt starts
  from the exact pre-batch state, so retries are sound (transient faults
  -- callback bugs tripped by iteration order, injected chaos -- succeed
  on the second attempt).  Retries are paced by a deterministic
  :class:`~repro.resilience.backoff.ExponentialBackoff` (jitter seeded
  from ``(seed, batch index, attempt)``) against an injectable clock --
  tests pass a :class:`~repro.resilience.backoff.ManualClock` and wait
  zero real time, production gets polite spacing for free;
* **quarantine** -- a batch that exhausts its retries is recorded in
  :attr:`quarantine` with a structured :class:`QuarantinedBatch` report
  and *skipped*; the stream continues and the exception is never
  re-raised (the caller inspects the returned :class:`BatchReport`);
* **drift audit** -- every ``audit_every`` batches, a sampled
  :func:`~repro.core.verify.verify_kappa` compares ``audit_sample``
  random vertices against the peeling oracle; on any mismatch the
  maintainer **self-heals** by a full static reseed (the documented
  recovery path for state drift) and the event is counted;
* **counters** -- :attr:`stats` carries
  ``batches / applied / retries / quarantined / audits / audit_failures /
  heals`` for the eval report.

The supervisor quacks like a maintainer (``kappa`` / ``kappa_of`` /
``tau`` / ``sub`` / ``apply_batch``), so the :class:`CoreMaintainer`
facade and the experiment drivers can use it interchangeably
(``CoreMaintainer(..., resilient=True, audit_every=20)``).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.resilience.backoff import ExponentialBackoff, SystemClock

__all__ = ["BatchReport", "QuarantinedBatch", "ResilientMaintainer"]

Vertex = Hashable

# lazy %s-style formatting throughout: these sit on per-batch hot paths,
# and building reprs of batches or quarantine records eagerly would cost
# more than the supervision itself when logging is disabled
logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class QuarantinedBatch:
    """A batch that failed every attempt, returned to the caller."""

    index: int              #: stream position (batches seen by the supervisor)
    batch: object           #: the offending batch, for inspection/replay
    error_type: str         #: exception class name of the final failure
    error: str              #: stringified final exception
    attempts: int           #: how many times application was attempted

    def __str__(self) -> str:
        return (
            f"batch #{self.index} quarantined after {self.attempts} attempts: "
            f"{self.error_type}: {self.error}"
        )


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one supervised batch application."""

    status: str                       #: ``"ok"`` | ``"retried"`` | ``"quarantined"``
    attempts: int
    error: Optional[str] = None       #: final error when quarantined
    audit: Optional[str] = None       #: ``"clean"`` | ``"healed"`` | None (no audit ran)

    @property
    def ok(self) -> bool:
        return self.status != "quarantined"


def _fresh_stats() -> Dict[str, int]:
    return {
        "batches": 0,
        "applied": 0,
        "retries": 0,
        "quarantined": 0,
        "audits": 0,
        "audit_failures": 0,
        "heals": 0,
        "backoff_waits": 0,
    }


class ResilientMaintainer:
    """Supervise any maintenance algorithm with retry/quarantine/audit.

    Parameters
    ----------
    sub, algorithm, rt:
        As for :func:`~repro.core.maintainer.make_maintainer`.
    max_retries:
        Re-attempts after a failed application (0 = quarantine on first
        failure).  Rollback makes each attempt start from clean state.
    audit_every:
        Run a sampled drift audit every N batches (0 disables).
    audit_sample:
        Vertices compared per audit (``None`` = all).
    seed:
        Seeds the audit's sampling RNG and the backoff jitter
        (determinism for tests).
    backoff:
        Retry pacing: ``"default"`` (an
        :class:`~repro.resilience.backoff.ExponentialBackoff` seeded from
        ``seed``), an explicit policy instance, or ``None`` to retry
        immediately (the pre-backoff behaviour).
    clock:
        Clock the backoff sleeps against
        (:class:`~repro.resilience.backoff.SystemClock` by default; tests
        inject a :class:`~repro.resilience.backoff.ManualClock` so no
        real time passes).
    kwargs:
        Forwarded to the algorithm class.
    """

    def __init__(
        self,
        sub,
        algorithm: str = "mod",
        rt=None,
        *,
        max_retries: int = 1,
        audit_every: int = 0,
        audit_sample: Optional[int] = 32,
        seed: int = 0,
        backoff="default",
        clock=None,
        **kwargs,
    ) -> None:
        from repro.core.maintainer import make_maintainer

        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if audit_every < 0:
            raise ValueError("audit_every must be >= 0")
        self._factory = lambda tau=None: make_maintainer(
            sub, algorithm, rt, **(dict(kwargs, tau=tau) if tau is not None else kwargs)
        )
        self.impl = self._factory()
        self.max_retries = max_retries
        self.audit_every = audit_every
        self.audit_sample = audit_sample
        self._rng = random.Random(seed)
        self.backoff = ExponentialBackoff.coerce(backoff, seed=seed)
        self.clock = clock if clock is not None else SystemClock()
        #: total seconds spent waiting between retry attempts
        self.backoff_s = 0.0
        self.stats: Dict[str, int] = _fresh_stats()
        self.quarantine: List[QuarantinedBatch] = []

    # -- maintainer protocol ---------------------------------------------------
    @property
    def sub(self):
        return self.impl.sub

    @property
    def rt(self):
        return self.impl.rt

    @property
    def tau(self):
        return self.impl.tau

    @property
    def algorithm(self) -> str:
        return self.impl.algorithm

    @property
    def batches_processed(self) -> int:
        return self.impl.batches_processed

    def kappa(self):
        return self.impl.kappa()

    def kappa_of(self, v: Vertex) -> int:
        return self.impl.kappa_of(v)

    # -- supervision -----------------------------------------------------------
    def apply_batch(self, batch) -> BatchReport:
        """Apply one batch under supervision; never raises for batch
        failures (the report carries the outcome)."""
        self.stats["batches"] += 1
        attempts = 0
        last: Optional[BaseException] = None
        while attempts <= self.max_retries:
            attempts += 1
            try:
                self.impl.apply_batch(batch)
                last = None
                break
            except Exception as exc:  # noqa: BLE001 -- supervision boundary
                last = exc
                if attempts <= self.max_retries:
                    self.stats["retries"] += 1
                    if self.backoff is not None:
                        wait = self.backoff.delay(
                            attempts - 1, key=self.stats["batches"] - 1
                        )
                        self.clock.sleep(wait)
                        self.backoff_s += wait
                        self.stats["backoff_waits"] += 1
        if last is not None:
            record = QuarantinedBatch(
                index=self.stats["batches"] - 1,
                batch=batch,
                error_type=type(last).__name__,
                error=str(last),
                attempts=attempts,
            )
            self.quarantine.append(record)
            self.stats["quarantined"] += 1
            logger.warning("%s", record)
            return BatchReport("quarantined", attempts, error=str(last),
                               audit=self._maybe_audit())
        self.stats["applied"] += 1
        status = "ok" if attempts == 1 else "retried"
        return BatchReport(status, attempts, audit=self._maybe_audit())

    def apply_change(self, change) -> BatchReport:
        from repro.graph.batch import Batch

        return self.apply_batch(Batch([change]))

    # -- drift audit and self-heal ---------------------------------------------
    def _maybe_audit(self) -> Optional[str]:
        if not self.audit_every or self.stats["batches"] % self.audit_every:
            return None
        return self.audit()

    def audit(self) -> str:
        """Run one sampled drift audit now; self-heal on mismatch.

        Returns ``"clean"`` or ``"healed"``.
        """
        from repro.core.verify import verify_kappa

        self.stats["audits"] += 1
        mismatches = verify_kappa(
            self.impl,
            raise_on_mismatch=False,
            sample=self.audit_sample,
            rng=self._rng,
        )
        if not mismatches:
            logger.debug(
                "audit #%d clean (sample=%s)",
                self.stats["audits"], self.audit_sample,
            )
            return "clean"
        self.stats["audit_failures"] += 1
        logger.warning(
            "audit #%d found %d drifted vertices; self-healing",
            self.stats["audits"], len(mismatches),
        )
        self.heal()
        return "healed"

    def heal(self) -> None:
        """Static reseed: rebuild the algorithm instance from scratch over
        the live substrate (tau, level index, caches, and any
        algorithm-specific state are all regenerated)."""
        batches = self.impl.batches_processed
        self.impl = self._factory()
        self.impl.batches_processed = batches
        self.stats["heals"] += 1
        logger.info("healed by static reseed after %d batches", batches)

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"ResilientMaintainer({self.algorithm!r}, batches={s['batches']}, "
            f"retries={s['retries']}, quarantined={s['quarantined']}, "
            f"heals={s['heals']})"
        )
