"""All-or-nothing batch application: the undo machinery.

``MaintainerBase.apply_batch`` wraps every algorithm's batch processing in
a :class:`Transaction`:

* a **journal** of the structural changes that actually landed (recorded
  by ``MaintainH``'s single mutation point) -- on failure they are
  re-applied *inverted, in reverse order*, which restores the substrate
  exactly (a graph edge journals once even though it carries two pin
  records; its single inverse removes/restores the whole edge).  Entries
  are usually :class:`~repro.graph.substrate.Change` records, but any
  object with an ``undo(sub)`` method participates -- the columnar bulk
  path journals whole phases as
  :class:`~repro.engine.columnar.ColumnarJournalEntry` array slices;
* a **tau snapshot** (one dict copy -- tau only holds vertices with
  degree >= 1, so this is O(|V|) of cheap C-level copying) from which the
  level index is rebuilt in place;
* an **extra-state capsule** via the ``_txn_snapshot_extra`` /
  ``_txn_restore_extra`` hooks, for algorithm-specific cross-batch state
  (the order maintainer's level sequences, the approximate maintainer's
  residual frontier and inflation bound).

Restores happen *in place* (``dict.clear()`` + ``update``) because other
objects alias the containers: the hybrid maintainer's child engines share
``tau`` and the level index, and the :class:`MinCache` holds a reference
to ``tau``.  The min-cache itself is simply cleared -- it is a cache, and
it refills lazily against the restored values.
"""

from __future__ import annotations

import logging
from typing import Dict, Hashable, List

__all__ = ["Transaction"]

Vertex = Hashable

logger = logging.getLogger(__name__)


class Transaction:
    """Pre-batch state of one maintainer, sufficient to roll back."""

    __slots__ = ("journal", "tau_snapshot", "batches_processed", "extra")

    def __init__(self, journal: List[object], tau_snapshot: Dict[Vertex, int],
                 batches_processed: int, extra: object) -> None:
        self.journal = journal
        self.tau_snapshot = tau_snapshot
        self.batches_processed = batches_processed
        self.extra = extra

    @classmethod
    def begin(cls, maintainer) -> "Transaction":
        """Capture everything a rollback needs; O(|V|) dict copies."""
        return cls(
            journal=[],
            tau_snapshot=dict(maintainer.tau),
            batches_processed=maintainer.batches_processed,
            extra=maintainer._txn_snapshot_extra(),
        )

    def rollback(self, maintainer) -> None:
        """Restore ``maintainer`` to the state captured by :meth:`begin`."""
        # lazy %s formatting: the journal repr is only built when debug
        # logging is actually enabled (rollback sits on failure paths
        # that tests and the chaos harness hit thousands of times)
        logger.debug(
            "rolling back %d journalled entries on %r",
            len(self.journal), maintainer,
        )
        sub = maintainer.sub
        for entry in reversed(self.journal):
            undo = getattr(entry, "undo", None)
            if undo is not None:
                undo(sub)
            else:
                sub.apply(entry.inverse())
        tau = maintainer.tau
        tau.clear()
        tau.update(self.tau_snapshot)
        index = maintainer._level_index
        index.clear()
        for v, k in tau.items():
            index.setdefault(k, set()).add(v)
        if maintainer.min_cache is not None:
            maintainer.min_cache.clear()
        backend = getattr(maintainer, "backend", None)
        if backend is not None:
            backend.rollback_resync()
        maintainer.batches_processed = self.batches_processed
        maintainer._txn_restore_extra(self.extra)
