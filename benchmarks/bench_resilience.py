"""Resilience layer under a faulty bursty stream.

Plays a supervised bursty remove/reinsert stream (the workload of the
paper's Section I motivation) with deterministic faults injected:

* a transient crash mid-batch -- retried after transactional rollback;
* a persistent crash -- the poison batch is quarantined and the stream
  continues;
* a silent tau corruption -- caught by the periodic sampled drift audit
  and healed by a static reseed.

The recorded panel shows the supervisor's retry / quarantine / audit
counters alongside the usual simulated batch-latency statistics, and the
assertion is the resilience contract itself: the final full verification
is clean despite every injected fault.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, SCALE, record

from repro.eval.harness import run_resilient_stream
from repro.graph.streams import BurstySchedule
from repro.resilience.faults import FaultPlan

ROUNDS = 40


def test_resilient_bursty_stream(benchmark):
    ds = BENCH_GRAPHS[0]
    plans = (
        FaultPlan.raise_at(batch=6, change=3),                    # transient
        FaultPlan.raise_at(batch=14, change=0, transient=False),  # poison
        # silent drift on the very last batch: no maintenance follows, so
        # it is guaranteed to reach the closing audit (mid-stream drift is
        # often incidentally repaired by later batches' convergence)
        FaultPlan.corrupt_tau(batch=2 * ROUNDS - 1, delta=7),
    )
    result = run_resilient_stream(
        ds,
        "mod",
        rounds=ROUNDS,
        schedule=BurstySchedule(calm_size=6, burst_factor=20, p_burst=0.2, seed=3),
        fault_plans=plans,
        max_retries=2,
        audit_every=5,
        audit_sample=None,  # full audits: the one corrupted vertex must be caught
        scale=SCALE,
        seed=0,
    )
    record("resilience", result.format())

    s = result.stats
    assert result.final_verified
    assert s["retries"] >= 1
    assert s["quarantined"] == 1
    assert s["heals"] >= 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
