"""Figure 6: mod, insertion-only edge batches.

Paper shape: runtime decreases as threads increase at every batch size;
total runtime grows only ~1.5x from the smallest to the largest batch
(the log-log flatness of Section V-B); some datasets dip slightly from 16
to 32 threads at the NUMA boundary.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS
from figlib import figure_panel, wallclock_round

#: the paper sweeps 1e2..1e6; scaled to the analogue sizes
BATCH_SIZES = (100, 400, 1600)


def test_fig06_series(benchmark):
    figure_panel("fig06_mod_insert_edges", BENCH_GRAPHS, "mod", "insert",
                 BATCH_SIZES)
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig06_wallclock(benchmark):
    wallclock_round(benchmark, BENCH_GRAPHS[0], "mod", "insert", BATCH_SIZES[0])
