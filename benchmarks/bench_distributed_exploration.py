"""§VI exploration: the algorithms on a distributed cluster.

The paper's final future-work item: "implementing these algorithms in
distributed systems to further explore scalability."  This bench sweeps
node counts on the simulated BSP cluster (repro.distributed) and reports,
for mod insertion batches:

* simulated elapsed time and speedup versus 1 node,
* message volume (value updates) and all-reduce rounds,
* load imbalance under hash vs. degree-balanced partitioning.

Measured shapes (recorded in EXPERIMENTS.md): the *compute* partitions
well -- max per-node work shrinks steadily with node count and the
degree-balanced partitioner holds imbalance near 1.0 -- but at our scaled
dataset sizes value-update traffic dominates elapsed time, so wall-clock
distribution only pays off once per-superstep compute outweighs message
cost, i.e. at the paper's real dataset sizes.  The bench asserts the
work-partitioning half (the part that is scale-independent) and reports
the communication-to-compute ratio for the elapsed-time half.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, ROUNDS, SCALE, record

from repro.distributed.cluster import ClusterSpec
from repro.distributed.core import DistributedModMaintainer
from repro.distributed.partition import degree_balanced_partition, hash_partition
from repro.eval.datasets import DATASETS
from repro.eval.stats import Stats
from repro.graph.batch import BatchProtocol

NODE_COUNTS = (1, 2, 4, 8)
BATCH = 100


def _measure(dataset: str, nodes: int, partitioner):
    spec_ds = DATASETS[dataset]
    sub = spec_ds.load(SCALE)
    cspec = ClusterSpec(nodes=nodes)
    m = DistributedModMaintainer(sub, cspec, partition=partitioner(sub, nodes))
    base_msgs = m.cluster.metrics.messages
    work_before = list(m.cluster.metrics.work_units_per_node)
    proto = BatchProtocol(sub, seed=3)
    times = []
    for _ in range(max(ROUNDS, 3)):
        deletion, insertion = proto.remove_reinsert(BATCH)
        start = m.cluster.metrics.elapsed_ns
        m.apply_batch(deletion)
        m.apply_batch(insertion)
        times.append((m.cluster.metrics.elapsed_ns - start) / 1e9)
    msgs = m.cluster.metrics.messages - base_msgs
    work_delta = [
        after - before
        for after, before in zip(m.cluster.metrics.work_units_per_node, work_before)
    ]
    return Stats.of(times), msgs, m.cluster.metrics.load_imbalance(), work_delta


def test_distributed_node_sweep(benchmark):
    ds = BENCH_GRAPHS[0]
    lines = [f"[{ds}] distributed mod, insertion batches of {BATCH} "
             f"(hash partition)"]
    lines.append(f"{'nodes':>6} {'batch time':>16} {'max node work':>14} "
                 f"{'work speedup':>13} {'messages':>9} {'imbalance':>10}")
    max_works = {}
    for nodes in NODE_COUNTS:
        stats, msgs, imb, work = _measure(ds, nodes, hash_partition)
        max_works[nodes] = max(work)
        lines.append(
            f"{nodes:>6} {stats.format():>16} {max(work):>13.0f}u "
            f"{max_works[1] / max(work):>12.2f}x {msgs:>9} {imb:>10.2f}"
        )
    ratio = max_works[1] / max_works[max(NODE_COUNTS)]
    lines.append(
        f"  compute partitions {ratio:.1f}x across {max(NODE_COUNTS)} nodes; "
        "elapsed time is message-dominated at this dataset scale (see module "
        "docstring)"
    )
    record("distributed_exploration", "\n".join(lines))
    # the scale-independent claim: per-node compute shrinks with nodes
    assert max_works[max(NODE_COUNTS)] < max_works[1]
    assert max_works[4] < max_works[2] < max_works[1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_partitioner_balance(benchmark):
    ds = BENCH_GRAPHS[0]
    lines = [f"[{ds}] partitioner ablation at 4 nodes, batch={BATCH}"]
    imbalances = {}
    for name, fn in (("hash", hash_partition),
                     ("degree-balanced", degree_balanced_partition)):
        stats, msgs, imb, work = _measure(ds, 4, fn)
        imbalances[name] = imb
        lines.append(f"  {name:>16}: {stats.format()} ms, "
                     f"messages={msgs}, imbalance={imb:.2f}")
    record("distributed_exploration", "\n".join(lines))
    assert imbalances["degree-balanced"] <= imbalances["hash"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_message_combining_ablation(benchmark):
    """Pregel-style combiner: one wire message per node pair per
    superstep.  Message counts collapse; elapsed time improves in step."""
    ds = BENCH_GRAPHS[0]
    spec_ds = DATASETS[ds]
    lines = [f"[{ds}] message-combining ablation at 4 nodes, batch={BATCH}"]
    stats = {}
    for combine in (False, True):
        sub = spec_ds.load(SCALE)
        m = DistributedModMaintainer(
            sub, ClusterSpec(nodes=4, combine_messages=combine),
            partition=hash_partition(sub, 4))
        base_msgs = m.cluster.metrics.messages
        proto = BatchProtocol(sub, seed=3)
        times = []
        for _ in range(max(ROUNDS, 3)):
            deletion, insertion = proto.remove_reinsert(BATCH)
            start = m.cluster.metrics.elapsed_ns
            m.apply_batch(deletion)
            m.apply_batch(insertion)
            times.append((m.cluster.metrics.elapsed_ns - start) / 1e9)
        stats[combine] = (Stats.of(times), m.cluster.metrics.messages - base_msgs)
        label = "combined" if combine else "per-update"
        lines.append(f"  {label:>11}: {stats[combine][0].format()} ms, "
                     f"messages={stats[combine][1]}")
    record("distributed_exploration", "\n".join(lines))
    assert stats[True][1] < stats[False][1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
