"""Substrate benchmark: the static decomposition algorithms.

Not a paper figure, but the foundation every maintenance comparison rests
on: bucket peeling (the oracle), the local h-index algorithm (Algorithms
1/2), and the vectorised CSR variant (the fast recompute baseline).  All
three must agree; the benchmark shows their relative wall-clock costs in
this Python implementation.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, BENCH_HYPERGRAPHS, SCALE, record

from repro.core.peel import peel
from repro.core.static import (
    static_hindex,
    static_hindex_csr,
    static_hindex_csr_hypergraph,
)
from repro.eval.datasets import load_dataset
from repro.graph.csr import CSRGraph, CSRHypergraph


def test_static_agreement(benchmark):
    g = load_dataset(BENCH_GRAPHS[0], scale=SCALE)
    csr = CSRGraph.from_graph(g)
    a = peel(g)
    assert static_hindex(g) == a
    assert csr.values_by_label(static_hindex_csr(csr)) == a

    h = load_dataset(BENCH_HYPERGRAPHS[0], scale=SCALE)
    csrh = CSRHypergraph.from_hypergraph(h)
    b = peel(h)
    assert static_hindex(h) == b
    assert csrh.values_by_label(static_hindex_csr_hypergraph(csrh)) == b
    record("static_algorithms",
           f"all static algorithms agree on {BENCH_GRAPHS[0]} and "
           f"{BENCH_HYPERGRAPHS[0]} at scale={SCALE}")
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_peel_wallclock(benchmark):
    g = load_dataset(BENCH_GRAPHS[0], scale=SCALE)
    benchmark(peel, g)


def test_hindex_wallclock(benchmark):
    g = load_dataset(BENCH_GRAPHS[0], scale=SCALE)
    benchmark(static_hindex, g)


def test_csr_hindex_wallclock(benchmark):
    g = load_dataset(BENCH_GRAPHS[0], scale=SCALE)
    csr = CSRGraph.from_graph(g)
    benchmark(static_hindex_csr, csr)


def test_hypergraph_csr_hindex_wallclock(benchmark):
    h = load_dataset(BENCH_HYPERGRAPHS[0], scale=SCALE)
    csrh = CSRHypergraph.from_hypergraph(h)
    benchmark(static_hindex_csr_hypergraph, csrh)
