"""Ablation: approximate maintenance under very high batch rates (§VI).

Sweeps the convergence iteration budget of the approximate maintainer and
reports, per budget, the simulated ingest cost per batch and the measured
worst-case overestimate versus the exact oracle.  The trade to see:
smaller budgets ingest cheaper, serve staler (but always >= kappa).
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, ROUNDS, SCALE, record

from repro.core.approx import ApproximateModMaintainer
from repro.core.maintainer import make_maintainer
from repro.core.peel import peel
from repro.eval.datasets import DATASETS
from repro.eval.stats import Stats
from repro.graph.batch import BatchProtocol
from repro.parallel.simulated import SimulatedRuntime

BUDGETS = (1, 2, 4)
BATCH = 200
THREADS = 16


def _run(make_maintainer_fn):
    spec = DATASETS[BENCH_GRAPHS[0]]
    sub = spec.load(SCALE)
    rt = SimulatedRuntime(profile=spec.profile)
    m = make_maintainer_fn(sub, rt)
    proto = BatchProtocol(sub, seed=2)
    times, gaps = [], []
    for _ in range(max(ROUNDS, 3)):
        deletion, insertion = proto.remove_reinsert(BATCH)
        rt.reset_clock()
        m.apply_batch(deletion)
        m.apply_batch(insertion)
        times.append(rt.take_metrics().elapsed_seconds(THREADS))
        oracle = peel(sub)
        served = m.kappa()
        gaps.append(max((served[v] - k for v, k in oracle.items()), default=0))
    if hasattr(m, "flush"):
        m.flush()
        assert m.kappa() == peel(sub)
    return Stats.of(times), max(gaps)


def test_approx_budget_sweep(benchmark):
    lines = [f"[{BENCH_GRAPHS[0]}] approximate maintenance ablation, "
             f"batch={BATCH}, T{THREADS}"]
    exact_time, _ = _run(lambda sub, rt: make_maintainer(sub, "mod", rt))
    lines.append(f"  exact mod          : {exact_time.format()} ms, gap 0")
    for budget in BUDGETS:
        t, gap = _run(lambda sub, rt, b=budget: ApproximateModMaintainer(
            sub, rt, iteration_budget=b))
        lines.append(f"  budget={budget:<2} approx   : {t.format()} ms, "
                     f"worst overestimate {gap}")
    record("ablation_approx", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
