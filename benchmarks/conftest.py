"""Shared machinery for the benchmark harness.

Every figure/table of the paper's evaluation has one ``bench_*.py`` module
here.  Each module does two things per panel:

1. **regenerates the figure's series** on the simulated 2x16-core machine
   (runtime vs. thread count, one series per batch size) and both prints
   it and writes it under ``benchmarks/results/``, and
2. **benchmarks the real wall-clock** of the same batch processing through
   pytest-benchmark, so ``pytest benchmarks/ --benchmark-only`` also
   reports honest Python execution times.

Environment knobs:

``REPRO_BENCH_SCALE``   dataset scale factor (default 0.5)
``REPRO_BENCH_ROUNDS``  repetitions per point (default 3; the paper used 50)
``REPRO_BENCH_FULL``    set to 1 to sweep every Table I/II dataset instead
                        of the representative subset
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.datasets import GRAPH_DATASETS, HYPERGRAPH_DATASETS

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: representative subset (one per skew class) for the default quick run
QUICK_GRAPHS = ("LiveJ", "Google", "WikiTalk")
QUICK_HYPERGRAPHS = ("OrkutGroup", "WebTrackers")

BENCH_GRAPHS = GRAPH_DATASETS if FULL else QUICK_GRAPHS
BENCH_HYPERGRAPHS = HYPERGRAPH_DATASETS if FULL else QUICK_HYPERGRAPHS


def record(name: str, text: str) -> None:
    """Print a series table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "a", encoding="utf-8") as f:
        f.write(text + "\n\n")
    print(f"\n{text}\n[recorded to {path}]")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    """Start each benchmark session with clean result files."""
    if RESULTS_DIR.exists():
        for f in RESULTS_DIR.glob("*.txt"):
            f.unlink()
    yield
