"""Figure 9: mod, deletion-only edge batches.

Paper shape: runtime grows with batch size and falls as threads increase
-- the approach "similarly scales on deletions".
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS
from figlib import figure_panel, wallclock_round

BATCH_SIZES = (100, 400, 1600)


def test_fig09_series(benchmark):
    figure_panel("fig09_mod_delete_edges", BENCH_GRAPHS, "mod", "delete",
                 BATCH_SIZES)
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig09_wallclock(benchmark):
    wallclock_round(benchmark, BENCH_GRAPHS[0], "mod", "delete", BATCH_SIZES[0])
