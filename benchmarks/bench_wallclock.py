#!/usr/bin/env python
"""Real wall-clock comparison: dict engine vs the flat-array engine.

Unlike the ``bench_fig*.py`` harness (which reproduces the paper's figures
on the *simulated* machine), this script measures honest Python execution
time of the same maintenance work on both execution engines:

* ``dict``  -- label-keyed hash maps, per-vertex convergence loop;
* ``array`` -- interned :class:`~repro.engine.ArrayGraph` substrate with
  vectorised frontier convergence (:func:`~repro.engine.hhc_frontier_csr`).

Graph workloads mirror the paper's evaluation shapes:

* ``fig06_insert`` -- insertion-only batches (Figure 6),
* ``fig09_delete`` -- deletion-only batches (Figure 9),
* ``fig12_mixed``  -- mixed batches at the paper's 3/2 sizing (Figure 12).

Hypergraph workloads run the same three shapes over an affiliation-model
hypergraph (the OrkutGroup/LiveJGroup analogue of Table II) under the
pin-change protocol, comparing the dict path against
:class:`~repro.engine.ArrayHypergraph` + the min-tau shadow +
:func:`~repro.engine.hhc_frontier_incidence`; they write ``hyper_*``
keys next to the graph workloads.

A third engine row, ``columnar``, replays the same streams on the array
engine with every batch pre-converted (outside the timed window) to a
:class:`~repro.graph.columnar.ColumnarBatch` -- the zero-Python steady
state: id-array parsing, bulk structural application, and array-slice
journalling with no per-``Change`` objects between parse and commit.
The ``m6`` tier scales the graph workload to ~10^6 edges
(``m6_mixed``), sharing one vectorised static seed across engines and
verifying kappa on a vertex sample.

All engines replay byte-identical batch streams generated against a
scratch copy of the dataset, so every timed round does the same semantic
work.  After the timed rounds each engine's kappa is checked against the
independent peeling oracle and the engines are checked against each
other -- a speedup only counts if the answers are identical.

Usage::

    python benchmarks/bench_wallclock.py            # full run, writes JSON
    python benchmarks/bench_wallclock.py --quick    # CI smoke (small sizes)
    python benchmarks/bench_wallclock.py --out PATH # custom output path
    python benchmarks/bench_wallclock.py --quick --gate BENCH_wallclock.json
                                        # CI regression gate: fail if the
                                        # dict->array speedup drops >20%
                                        # below the committed baseline
    python benchmarks/bench_wallclock.py --threads 1,2,4,8
                                        # real-thread scaling sweep on the
                                        # m6 tier: array/columnar engines
                                        # under ThreadRuntime(t), oracle-
                                        # verified and kappa-identical
                                        # across thread counts

The full run writes ``BENCH_wallclock.json`` at the repository root and
records its own quick-mode speedups under ``meta.quick_baseline`` (plus
``meta.quick_baseline_threads`` when ``--threads`` is given) so the CI
gate compares quick runs against quick baselines.  Thread-scaling
assertions and gates are machine-aware: the host's available CPU count
is recorded, the >=1.8x-at-t=4 target is only asserted on hosts with
>=4 CPUs, and the threaded gate is skipped when the current host has
fewer CPUs than the baseline host.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.maintainer import make_maintainer  # noqa: E402
from repro.core.verify import verify_kappa  # noqa: E402
from repro.engine import ArrayGraph, ArrayHypergraph  # noqa: E402
from repro.graph.batch import BatchProtocol  # noqa: E402
from repro.graph.columnar import ColumnarBatch  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    affiliation_hypergraph,
    powerlaw_social,
)
from repro.parallel.threads import ThreadRuntime  # noqa: E402


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1

#: (graph_vertices, graph_m, rounds, {workload: batch_edges}) plus the
#: affiliation hypergraph analogue (``hyper_*`` workloads time pin batches)
FULL_CONFIG = dict(
    n=50_000,
    m=16,
    rounds=3,
    batches={"fig06_insert": 5000, "fig09_delete": 5000, "fig12_mixed": 5000},
    hyper=dict(
        nv=30_000,
        ne=20_000,
        mean_pins=6.0,
        rounds=3,
        batches={
            "hyper_insert": 4000,
            "hyper_delete": 4000,
            "hyper_mixed": 4000,
        },
    ),
    # the 10^6-edge tier: one vectorised static seed is shared across
    # engines and kappa is verified on a vertex sample (the full peel
    # still runs once per engine inside verify_kappa)
    m6=dict(
        n=350_000,
        m=16,
        rounds=2,
        batches={"m6_mixed": 5000},
        verify_sample=2000,
    ),
)
QUICK_CONFIG = dict(
    n=4_000,
    m=10,
    # smoke rounds are ~tens of milliseconds each: median-of-5 keeps the
    # regression gate's speedup ratios stable against transient CI load
    rounds=5,
    batches={"fig12_mixed": 1200},
    hyper=dict(
        nv=2_500,
        ne=1_800,
        mean_pins=5.0,
        rounds=5,
        batches={"hyper_mixed": 700},
    ),
    # smoke-sized analogue of the 10^6-edge tier (same code path)
    m6=dict(
        n=6_000,
        m=8,
        rounds=3,
        batches={"m6_mixed": 1500},
        verify_sample=500,
    ),
)

ENGINES = ("dict", "array", "columnar")
WORKLOADS = ("fig06_insert", "fig09_delete", "fig12_mixed",
             "hyper_insert", "hyper_delete", "hyper_mixed", "m6_mixed")


def generate_rounds(base, workload: str, batch_edges: int, rounds: int, seed: int):
    """Pre-generate identical batch streams for both engines.

    The protocol samples lazily against the live substrate, so the rounds
    are drawn against a scratch copy that is kept in sync by applying each
    emitted batch to it.
    """
    scratch = base.copy()
    proto = BatchProtocol(scratch, seed=seed)
    out = []
    for _ in range(rounds):
        if workload.endswith("mixed"):
            prep, timed, post = proto.mixed(batch_edges)
        else:
            deletion, insertion = proto.remove_reinsert(batch_edges)
            if workload.endswith("insert"):
                prep, timed, post = deletion, insertion, None
            else:  # *_delete
                prep, timed, post = None, deletion, insertion
        for b in (prep, timed, post):
            if b is not None:
                for c in b:
                    scratch.apply(c)
        out.append((prep, timed, post))
    return out


def columnarize_rounds(rounds_data, is_hyper: bool):
    """Pre-convert every batch of the stream to :class:`ColumnarBatch`.

    This happens *outside* the timed window: the columnar engine row
    measures the zero-Python steady state where batches arrive already
    columnar (the ingestion format of a production feed), not the cost
    of converting a per-Change batch.
    """
    out = []
    for batches in rounds_data:
        conv = []
        for b in batches:
            if b is None:
                conv.append(None)
                continue
            cb = ColumnarBatch.from_batch(b, is_hyper=is_hyper)
            if cb is None:
                raise AssertionError("protocol batch failed to columnarise")
            conv.append(cb)
        out.append(tuple(conv))
    return out


def run_engine(base, engine: str, rounds_data, *, tau0=None,
               verify_sample=None, rt=None):
    """Replay the stream on one engine; returns (times_s, kappa, columnar).

    ``rt`` plumbs a real runtime under the maintainer (the ``--threads``
    sweep passes a :class:`ThreadRuntime`); ``None`` keeps the serial
    default used for the dict/array/columnar comparison rows.
    """
    is_hyper = getattr(base, "is_hypergraph", False)
    if engine in ("array", "columnar"):
        sub = (ArrayHypergraph.from_hypergraph(base) if is_hyper
               else ArrayGraph.from_graph(base))
    else:
        sub = base.copy()
    kwargs = {} if tau0 is None else {"tau": tau0}
    m = make_maintainer(sub, "mod", rt,
                        engine="dict" if engine == "dict" else "array",
                        **kwargs)
    if engine == "columnar":
        rounds_data = columnarize_rounds(rounds_data, is_hyper)
    times = []
    for prep, timed, post in rounds_data:
        if prep is not None:
            m.apply_batch(prep)
        # suspend cyclic GC inside the timed window (for every engine
        # alike): a gen-2 collection scans the harness's retained object
        # graph -- three substrate copies plus the batch streams -- and
        # its multi-second pause would land on an arbitrary engine's row
        gc.collect()
        gc.disable()
        t0 = time.perf_counter()
        m.apply_batch(timed)
        times.append(time.perf_counter() - t0)
        gc.enable()
        if post is not None:
            m.apply_batch(post)
    violations = verify_kappa(m, raise_on_mismatch=False,
                              sample=verify_sample,
                              rng=0 if verify_sample else None)
    if violations:
        raise AssertionError(
            f"{engine} engine diverged from the peeling oracle: "
            f"{violations[:5]} ..."
        )
    columnar_batches = getattr(m.backend, "columnar_batches", 0)
    if engine in ("array", "columnar") and columnar_batches == 0:
        raise AssertionError(
            f"{engine} engine never took the columnar bulk path"
        )
    return times, m.kappa(), columnar_batches


def run_section(report, base, batches, rounds, seed, *, tau0=None,
                verify_sample=None):
    """Time every workload in ``batches`` over ``base`` on every engine."""
    for workload, batch_edges in batches.items():
        rounds_data = generate_rounds(
            base, workload, batch_edges, rounds, seed=seed + 1
        )
        timed_changes = len(rounds_data[0][1])
        print(f"== {workload}: {batch_edges} edges/batch "
              f"({timed_changes} pin changes timed) ==")
        entry = {
            "batch_edges": batch_edges,
            "timed_pin_changes": timed_changes,
        }
        kappas = {}
        for engine in ENGINES:
            times, kappa, columnar_batches = run_engine(
                base, engine, rounds_data, tau0=tau0,
                verify_sample=verify_sample,
            )
            kappas[engine] = kappa
            entry[engine] = {
                "times_s": [round(t, 4) for t in times],
                "median_s": round(statistics.median(times), 4),
            }
            if engine != "dict":
                entry[engine]["columnar_batches"] = columnar_batches
            print(f"  {engine:>8}: " +
                  "  ".join(f"{t:.3f}s" for t in times) +
                  f"  (median {entry[engine]['median_s']:.3f}s)")
        identical = all(k == kappas["dict"] for k in kappas.values())
        speedup = entry["dict"]["median_s"] / entry["array"]["median_s"]
        entry["kappa_identical"] = identical
        entry["oracle_verified"] = True  # run_engine raises otherwise
        entry["speedup"] = round(speedup, 2)
        entry["speedup_columnar"] = round(
            entry["dict"]["median_s"] / entry["columnar"]["median_s"], 2)
        # min-based estimator for the regression gate: transient load
        # only ever inflates a round, so the per-engine minimum is the
        # stablest estimate of true cost (the ``timeit`` convention);
        # median-of-rounds speedup ratios swing well past 20% on noisy
        # CI runners at smoke sizes
        entry["speedup_best"] = round(
            min(entry["dict"]["times_s"]) / min(entry["array"]["times_s"]), 2)
        print(f"  speedup {speedup:.2f}x (columnar "
              f"{entry['speedup_columnar']:.2f}x)  "
              f"kappa identical: {identical}")
        if not identical:
            raise AssertionError(f"{workload}: engines disagree on kappa")
        report["workloads"][workload] = entry


def run(config, seed: int = 42):
    base = powerlaw_social(config["n"], config["m"], seed=seed)
    hyper_cfg = config["hyper"]
    hyper = affiliation_hypergraph(
        hyper_cfg["nv"], hyper_cfg["ne"], hyper_cfg["mean_pins"], seed=seed
    )
    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "graph": {
                "generator": f"powerlaw_social({config['n']}, {config['m']}, seed={seed})",
                "vertices": base.num_vertices(),
                "edges": base.num_edges(),
            },
            "hypergraph": {
                "generator": (
                    f"affiliation_hypergraph({hyper_cfg['nv']}, "
                    f"{hyper_cfg['ne']}, {hyper_cfg['mean_pins']}, seed={seed})"
                ),
                "vertices": hyper.num_vertices(),
                "hyperedges": hyper.num_edges(),
                "pins": hyper.num_pins(),
            },
            "rounds": config["rounds"],
            "timed_algorithm": "mod",
        },
        "workloads": {},
    }
    run_section(report, base, config["batches"], config["rounds"], seed)
    run_section(report, hyper, hyper_cfg["batches"], hyper_cfg["rounds"],
                seed + 100)
    m6_cfg = config.get("m6")
    if m6_cfg is not None:
        m6_base = powerlaw_social(m6_cfg["n"], m6_cfg["m"], seed=seed)
        print(f"== m6 tier: {m6_base.num_vertices()} vertices, "
              f"{m6_base.num_edges()} edges ==")
        # one vectorised static seed shared by every engine: at 10^6
        # edges, repeating static convergence per engine row would
        # dominate the wall clock without informing the comparison
        seed_m = make_maintainer(ArrayGraph.from_graph(m6_base), "mod")
        tau0 = dict(seed_m.tau)
        report["meta"]["m6"] = {
            "generator": (
                f"powerlaw_social({m6_cfg['n']}, {m6_cfg['m']}, seed={seed})"
            ),
            "vertices": m6_base.num_vertices(),
            "edges": m6_base.num_edges(),
            "rounds": m6_cfg["rounds"],
            "verify_sample": m6_cfg["verify_sample"],
        }
        run_section(report, m6_base, m6_cfg["batches"], m6_cfg["rounds"],
                    seed + 200, tau0=tau0,
                    verify_sample=m6_cfg["verify_sample"])
    return report


def run_thread_sweep(config, thread_counts, seed: int = 42):
    """Real-thread scaling sweep on the m6 tier.

    Replays one byte-identical ``m6_mixed`` stream on the array and
    columnar engines under ``ThreadRuntime(t)`` for every requested
    thread count (t=1 runs the chunk kernels inline and is the scaling
    baseline).  Every run is oracle-verified (``run_engine`` raises on
    divergence) and kappa must be bit-identical across all engines and
    thread counts -- a speedup only counts when the answers match.
    Per-region wall-second breakdowns from the runtime's timing counters
    are recorded so measured speedups can be attributed to kernels.
    """
    m6_cfg = config["m6"]
    base = powerlaw_social(m6_cfg["n"], m6_cfg["m"], seed=seed)
    cpus = available_cpus()
    print(f"\n== thread sweep: m6 tier ({base.num_vertices()} vertices, "
          f"{base.num_edges()} edges), t in {list(thread_counts)}, "
          f"{cpus} cpu(s) available ==")
    seed_m = make_maintainer(ArrayGraph.from_graph(base), "mod")
    tau0 = dict(seed_m.tau)
    del seed_m
    workload, batch_edges = next(iter(m6_cfg["batches"].items()))
    rounds_data = generate_rounds(
        base, workload, batch_edges, m6_cfg["rounds"], seed=seed + 201
    )
    section = {
        "tier": workload,
        "cpus": cpus,
        "thread_counts": list(thread_counts),
        "edges": base.num_edges(),
        "rounds": m6_cfg["rounds"],
        "engines": {},
    }
    ref_kappa = None
    for engine in ("array", "columnar"):
        per_engine = {}
        for t in thread_counts:
            with ThreadRuntime(t) as rt:
                times, kappa, _ = run_engine(
                    base, engine, rounds_data, tau0=tau0,
                    verify_sample=m6_cfg["verify_sample"], rt=rt,
                )
                region_s = {
                    k: round(v, 4) for k, v in sorted(
                        rt.region_seconds.items(), key=lambda kv: -kv[1]
                    )[:8]
                }
                chunks = {
                    k: int(rt.region_chunks[k]) for k in region_s
                    if rt.region_chunks.get(k)
                }
            if ref_kappa is None:
                ref_kappa = kappa
            elif kappa != ref_kappa:
                raise AssertionError(
                    f"thread sweep: {engine} at t={t} disagrees on kappa"
                )
            per_engine[str(t)] = {
                "times_s": [round(x, 4) for x in times],
                "median_s": round(statistics.median(times), 4),
                "region_seconds": region_s,
                "region_chunks": chunks,
            }
            print(f"  {engine:>8} t={t}: " +
                  "  ".join(f"{x:.3f}s" for x in times) +
                  f"  (median {per_engine[str(t)]['median_s']:.3f}s)")
        t0_key = str(thread_counts[0])
        base_med = per_engine[t0_key]["median_s"]
        base_best = min(per_engine[t0_key]["times_s"])
        per_engine["speedup"] = {
            str(t): round(base_med / per_engine[str(t)]["median_s"], 2)
            for t in thread_counts
        }
        # min-based estimator, as for the dict->array gate: transient
        # load only inflates a round, so per-config minima give the
        # stablest cross-run ratios
        per_engine["speedup_best"] = {
            str(t): round(base_best / min(per_engine[str(t)]["times_s"]), 2)
            for t in thread_counts
        }
        print(f"  {engine:>8} speedup vs t={thread_counts[0]}: " +
              "  ".join(f"t={t}:{per_engine['speedup'][str(t)]:.2f}x"
                        for t in thread_counts[1:]))
        section["engines"][engine] = per_engine
    section["kappa_identical"] = True   # checked above, raises otherwise
    section["oracle_verified"] = True   # run_engine raises otherwise
    if cpus >= 4 and 4 in thread_counts:
        section["scaling_target_met"] = all(
            section["engines"][e]["speedup"]["4"] >= 1.8
            for e in section["engines"]
        )
    else:
        # a speedup target cannot physically be met without the cores;
        # record the host's parallelism instead of a vacuous failure
        section["scaling_target_met"] = None
        section["note"] = (
            f"host exposes {cpus} cpu(s); the >=1.8x @ t=4 target is "
            "only asserted on hosts with >=4 cpus"
        )
    return section


def gate_check(report, baseline_path: Path) -> int:
    """CI regression gate: current speedups vs the committed baseline.

    Fails (returns 1) when any workload's dict->array speedup drops more
    than 20% below the baseline's recorded quick-mode speedup
    (``meta.quick_baseline``, written by full runs).  Baselines predating
    the quick-baseline field are skipped with a notice -- quick and full
    speedups are not comparable across dataset sizes.
    """
    if not baseline_path.exists():
        print(f"gate: baseline {baseline_path} not found; skipping")
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_sp = baseline.get("meta", {}).get("quick_baseline")
    if not base_sp:
        print(f"gate: {baseline_path} has no meta.quick_baseline "
              f"(pre-columnar baseline); skipping")
        return 0
    failures = []
    for key, entry in report["workloads"].items():
        prev = base_sp.get(key)
        if not prev:
            continue
        cur = entry.get("speedup_best", entry["speedup"])
        if cur < 0.8 * prev:
            failures.append(
                f"{key}: {cur:.2f}x is more than 20% below "
                f"the baseline {prev:.2f}x"
            )
        else:
            print(f"gate ok: {key} {cur:.2f}x (baseline {prev:.2f}x)")
    # threaded gate: compare the t>1 speedup-vs-t=1 ratios against the
    # baseline's threaded quick run, but only when this host has at
    # least as many CPUs as the baseline host -- thread scaling numbers
    # from machines with different parallelism are not comparable
    ts = report.get("thread_scaling")
    base_ts = baseline.get("meta", {}).get("quick_baseline_threads")
    if ts and base_ts:
        base_cpus = base_ts.get("cpus", 1)
        if ts.get("cpus", 1) < base_cpus:
            print(f"gate: host has {ts.get('cpus', 1)} cpu(s) vs the "
                  f"baseline's {base_cpus}; skipping the threaded gate")
        else:
            for key, prev in base_ts.get("speedup_best", {}).items():
                engine, _, t = key.partition("@")
                cur = (ts["engines"].get(engine, {})
                       .get("speedup_best", {}).get(t))
                if cur is None:
                    continue
                if cur < 0.8 * prev:
                    failures.append(
                        f"threads {key}: {cur:.2f}x is more than 20% "
                        f"below the baseline {prev:.2f}x"
                    )
                else:
                    print(f"gate ok: threads {key} {cur:.2f}x "
                          f"(baseline {prev:.2f}x)")
    if failures:
        print("REGRESSION GATE FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run; asserts the array engine is "
                         "not slower than dict on the mixed workload")
    ap.add_argument("--out", type=Path, default=None,
                    help="output JSON path (default: BENCH_wallclock.json "
                         "at the repo root; --quick defaults to not writing)")
    ap.add_argument("--gate", type=Path, default=None,
                    help="regression gate: fail if any workload's "
                         "dict->array speedup drops >20%% below the "
                         "quick baseline recorded in this JSON file")
    ap.add_argument("--threads", type=str, default=None, metavar="T,T,...",
                    help="real-thread scaling sweep on the m6 tier: run "
                         "the array/columnar engines under ThreadRuntime(t) "
                         "for each listed t (t=1 is added as the baseline "
                         "if missing), e.g. --threads 1,2,4,8")
    ap.add_argument("--seed", type=int, default=42)
    args = ap.parse_args(argv)

    thread_counts = None
    if args.threads:
        thread_counts = sorted({1, *(int(t) for t in args.threads.split(","))})

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run(config, seed=args.seed)
    report["meta"]["mode"] = "quick" if args.quick else "full"
    report["meta"]["cpus"] = available_cpus()

    if thread_counts:
        report["thread_scaling"] = run_thread_sweep(
            config, thread_counts, seed=args.seed
        )

    if not args.quick:
        # record quick-mode speedups so CI gates compare like with like
        print("\n== quick baseline for the CI regression gate ==")
        quick_report = run(QUICK_CONFIG, seed=args.seed)
        report["meta"]["quick_baseline"] = {
            k: w["speedup_best"] for k, w in quick_report["workloads"].items()
        }
        if thread_counts:
            qts = run_thread_sweep(QUICK_CONFIG, thread_counts, seed=args.seed)
            report["meta"]["quick_baseline_threads"] = {
                "cpus": qts["cpus"],
                "speedup_best": {
                    f"{e}@{t}": sp
                    for e, pe in qts["engines"].items()
                    for t, sp in pe["speedup_best"].items()
                    if t != "1"
                },
            }

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_wallclock.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {out}")

    if args.quick:
        for key in ("fig12_mixed", "hyper_mixed", "m6_mixed"):
            mixed = report["workloads"][key]
            assert mixed["speedup"] >= 1.0, (
                f"array engine slower than dict on the quick {key} workload "
                f"({mixed['speedup']:.2f}x)"
            )
            print(f"quick check passed: {key} array "
                  f"{mixed['speedup']:.2f}x vs dict")
        if thread_counts:
            # overhead sanity floor: threaded dispatch must never halve
            # throughput, even on a single-core host (VGC chunk counts
            # are small, so submit overhead stays marginal)
            ts = report["thread_scaling"]
            for engine, pe in ts["engines"].items():
                for t, sp in pe["speedup_best"].items():
                    assert sp >= 0.5, (
                        f"threaded overhead: {engine} at t={t} runs at "
                        f"{sp:.2f}x of t=1"
                    )
            print(f"quick check passed: threaded overhead floor on "
                  f"{ts['cpus']} cpu(s)")

    if not args.quick and thread_counts:
        met = report["thread_scaling"]["scaling_target_met"]
        if met is False:
            print("SCALING TARGET MISSED: <1.8x at t=4 with >=4 cpus")
            return 1
        if met is None:
            print(report["thread_scaling"]["note"])

    if args.gate is not None:
        return gate_check(report, args.gate)
    return 0


if __name__ == "__main__":
    sys.exit(main())
