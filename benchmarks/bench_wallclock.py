#!/usr/bin/env python
"""Real wall-clock comparison: dict engine vs the flat-array engine.

Unlike the ``bench_fig*.py`` harness (which reproduces the paper's figures
on the *simulated* machine), this script measures honest Python execution
time of the same maintenance work on both execution engines:

* ``dict``  -- label-keyed hash maps, per-vertex convergence loop;
* ``array`` -- interned :class:`~repro.engine.ArrayGraph` substrate with
  vectorised frontier convergence (:func:`~repro.engine.hhc_frontier_csr`).

Graph workloads mirror the paper's evaluation shapes:

* ``fig06_insert`` -- insertion-only batches (Figure 6),
* ``fig09_delete`` -- deletion-only batches (Figure 9),
* ``fig12_mixed``  -- mixed batches at the paper's 3/2 sizing (Figure 12).

Hypergraph workloads run the same three shapes over an affiliation-model
hypergraph (the OrkutGroup/LiveJGroup analogue of Table II) under the
pin-change protocol, comparing the dict path against
:class:`~repro.engine.ArrayHypergraph` + the min-tau shadow +
:func:`~repro.engine.hhc_frontier_incidence`; they write ``hyper_*``
keys next to the graph workloads.

Both engines replay byte-identical batch streams generated against a
scratch copy of the dataset, so every timed round does the same semantic
work.  After the timed rounds each engine's kappa is checked against the
independent peeling oracle and the two engines are checked against each
other -- a speedup only counts if the answers are identical.

Usage::

    python benchmarks/bench_wallclock.py            # full run, writes JSON
    python benchmarks/bench_wallclock.py --quick    # CI smoke (small sizes)
    python benchmarks/bench_wallclock.py --out PATH # custom output path

The full run writes ``BENCH_wallclock.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.maintainer import make_maintainer  # noqa: E402
from repro.core.verify import verify_kappa  # noqa: E402
from repro.engine import ArrayGraph, ArrayHypergraph  # noqa: E402
from repro.graph.batch import BatchProtocol  # noqa: E402
from repro.graph.generators import (  # noqa: E402
    affiliation_hypergraph,
    powerlaw_social,
)

#: (graph_vertices, graph_m, rounds, {workload: batch_edges}) plus the
#: affiliation hypergraph analogue (``hyper_*`` workloads time pin batches)
FULL_CONFIG = dict(
    n=50_000,
    m=16,
    rounds=3,
    batches={"fig06_insert": 5000, "fig09_delete": 5000, "fig12_mixed": 5000},
    hyper=dict(
        nv=30_000,
        ne=20_000,
        mean_pins=6.0,
        rounds=3,
        batches={
            "hyper_insert": 4000,
            "hyper_delete": 4000,
            "hyper_mixed": 4000,
        },
    ),
)
QUICK_CONFIG = dict(
    n=4_000,
    m=10,
    rounds=2,
    batches={"fig12_mixed": 600},
    hyper=dict(
        nv=2_500,
        ne=1_800,
        mean_pins=5.0,
        rounds=2,
        batches={"hyper_mixed": 400},
    ),
)

WORKLOADS = ("fig06_insert", "fig09_delete", "fig12_mixed",
             "hyper_insert", "hyper_delete", "hyper_mixed")


def generate_rounds(base, workload: str, batch_edges: int, rounds: int, seed: int):
    """Pre-generate identical batch streams for both engines.

    The protocol samples lazily against the live substrate, so the rounds
    are drawn against a scratch copy that is kept in sync by applying each
    emitted batch to it.
    """
    scratch = base.copy()
    proto = BatchProtocol(scratch, seed=seed)
    out = []
    for _ in range(rounds):
        if workload.endswith("mixed"):
            prep, timed, post = proto.mixed(batch_edges)
        else:
            deletion, insertion = proto.remove_reinsert(batch_edges)
            if workload.endswith("insert"):
                prep, timed, post = deletion, insertion, None
            else:  # *_delete
                prep, timed, post = None, deletion, insertion
        for b in (prep, timed, post):
            if b is not None:
                for c in b:
                    scratch.apply(c)
        out.append((prep, timed, post))
    return out


def run_engine(base, engine: str, rounds_data):
    """Replay the stream on one engine; returns (times_s, kappa)."""
    if engine == "array":
        if getattr(base, "is_hypergraph", False):
            sub = ArrayHypergraph.from_hypergraph(base)
        else:
            sub = ArrayGraph.from_graph(base)
    else:
        sub = base.copy()
    m = make_maintainer(sub, "mod", engine=engine)
    times = []
    for prep, timed, post in rounds_data:
        if prep is not None:
            m.apply_batch(prep)
        t0 = time.perf_counter()
        m.apply_batch(timed)
        times.append(time.perf_counter() - t0)
        if post is not None:
            m.apply_batch(post)
    violations = verify_kappa(m)
    if violations:
        raise AssertionError(
            f"{engine} engine diverged from the peeling oracle: "
            f"{violations[:5]} ..."
        )
    return times, m.kappa()


def run_section(report, base, batches, rounds, seed):
    """Time every workload in ``batches`` over ``base`` on both engines."""
    for workload, batch_edges in batches.items():
        rounds_data = generate_rounds(
            base, workload, batch_edges, rounds, seed=seed + 1
        )
        timed_changes = len(rounds_data[0][1])
        print(f"== {workload}: {batch_edges} edges/batch "
              f"({timed_changes} pin changes timed) ==")
        entry = {
            "batch_edges": batch_edges,
            "timed_pin_changes": timed_changes,
        }
        kappas = {}
        for engine in ("dict", "array"):
            times, kappa = run_engine(base, engine, rounds_data)
            kappas[engine] = kappa
            entry[engine] = {
                "times_s": [round(t, 4) for t in times],
                "median_s": round(statistics.median(times), 4),
            }
            print(f"  {engine:>5}: " +
                  "  ".join(f"{t:.3f}s" for t in times) +
                  f"  (median {entry[engine]['median_s']:.3f}s)")
        identical = kappas["dict"] == kappas["array"]
        speedup = entry["dict"]["median_s"] / entry["array"]["median_s"]
        entry["kappa_identical"] = identical
        entry["oracle_verified"] = True  # run_engine raises otherwise
        entry["speedup"] = round(speedup, 2)
        print(f"  speedup {speedup:.2f}x  kappa identical: {identical}")
        if not identical:
            raise AssertionError(f"{workload}: engines disagree on kappa")
        report["workloads"][workload] = entry


def run(config, seed: int = 42):
    base = powerlaw_social(config["n"], config["m"], seed=seed)
    hyper_cfg = config["hyper"]
    hyper = affiliation_hypergraph(
        hyper_cfg["nv"], hyper_cfg["ne"], hyper_cfg["mean_pins"], seed=seed
    )
    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "graph": {
                "generator": f"powerlaw_social({config['n']}, {config['m']}, seed={seed})",
                "vertices": base.num_vertices(),
                "edges": base.num_edges(),
            },
            "hypergraph": {
                "generator": (
                    f"affiliation_hypergraph({hyper_cfg['nv']}, "
                    f"{hyper_cfg['ne']}, {hyper_cfg['mean_pins']}, seed={seed})"
                ),
                "vertices": hyper.num_vertices(),
                "hyperedges": hyper.num_edges(),
                "pins": hyper.num_pins(),
            },
            "rounds": config["rounds"],
            "timed_algorithm": "mod",
        },
        "workloads": {},
    }
    run_section(report, base, config["batches"], config["rounds"], seed)
    run_section(report, hyper, hyper_cfg["batches"], hyper_cfg["rounds"],
                seed + 100)
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run; asserts the array engine is "
                         "not slower than dict on the mixed workload")
    ap.add_argument("--out", type=Path, default=None,
                    help="output JSON path (default: BENCH_wallclock.json "
                         "at the repo root; --quick defaults to not writing)")
    ap.add_argument("--seed", type=int, default=42)
    args = ap.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run(config, seed=args.seed)
    report["meta"]["mode"] = "quick" if args.quick else "full"

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_wallclock.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {out}")

    if args.quick:
        for key in ("fig12_mixed", "hyper_mixed"):
            mixed = report["workloads"][key]
            assert mixed["speedup"] >= 1.0, (
                f"array engine slower than dict on the quick {key} workload "
                f"({mixed['speedup']:.2f}x)"
            )
            print(f"quick check passed: {key} array "
                  f"{mixed['speedup']:.2f}x vs dict")
    return 0


if __name__ == "__main__":
    sys.exit(main())
