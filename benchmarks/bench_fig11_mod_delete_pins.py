"""Figure 11: mod, deletion-only pin batches on hypergraphs.

Paper shape: scaling like the insertion case, but with large variance for
small pin counts (the paper calls out OrkutGroup at 10k pins) -- pin
deletions can both demote the losing vertex and *promote* the remaining
pins, so batch cost depends heavily on which pins the sampler hits.
"""

from __future__ import annotations

from conftest import BENCH_HYPERGRAPHS, ROUNDS, SCALE, record
from figlib import figure_panel, wallclock_round

BATCH_SIZES = (50, 200, 800)


def test_fig11_series(benchmark):
    figure_panel("fig11_mod_delete_pins", BENCH_HYPERGRAPHS, "mod", "delete",
                 BATCH_SIZES)
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig11_variance_report(benchmark):
    from repro.eval.harness import run_scalability

    lines = ["Deletion variance (coefficient of variation at T16):"]
    for ds in BENCH_HYPERGRAPHS:
        r = run_scalability(ds, "mod", direction="delete", batch_sizes=(50,),
                            rounds=max(ROUNDS, 4), scale=SCALE)
        lines.append(f"  {ds}: cv={r.times[50][16].cv:.2f}")
    record("fig11_mod_delete_pins", "\n".join(lines))
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig11_wallclock(benchmark):
    wallclock_round(benchmark, BENCH_HYPERGRAPHS[0], "mod", "delete",
                    BATCH_SIZES[0])
