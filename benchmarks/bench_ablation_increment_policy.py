"""Ablation: mod's increment resolution policy (paper rule vs. the
provably-sufficient band).

The paper rule increments fewer levels; the safe band trades extra
convergence work for a correctness proof.  Both must land on identical
core values -- the difference is purely how much transient inflation
convergence has to undo.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, ROUNDS, SCALE, record
from figlib import wallclock_round

from repro.eval.harness import run_scalability

BATCH_SIZES = (64, 512)
THREADS = 16


def test_increment_policy_ablation(benchmark):
    ds = BENCH_GRAPHS[0]
    lines = [f"[{ds}] increment policy ablation, insertions, T{THREADS} (ms)"]
    results = {}
    for policy in ("paper", "safe"):
        results[policy] = run_scalability(
            ds, "mod", direction="insert", batch_sizes=BATCH_SIZES,
            rounds=ROUNDS, scale=SCALE,
            maintainer_kwargs={"increment_policy": policy},
        )
    lines.append(f"{'batch':>6} {'paper':>14} {'safe':>14} {'safe/paper':>11}")
    for b in BATCH_SIZES:
        p = results["paper"].times[b][THREADS]
        s = results["safe"].times[b][THREADS]
        lines.append(f"{b:>6} {p.format():>14} {s.format():>14} "
                     f"{s.mean / p.mean:>10.2f}x")
        assert s.mean >= 0.8 * p.mean  # safe never does meaningfully less work
    record("ablation_increment_policy", "\n".join(lines))
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_increment_policy_wallclock_safe(benchmark):
    from repro.core.maintainer import make_maintainer
    from repro.eval.datasets import DATASETS
    from repro.graph.batch import BatchProtocol

    ds = BENCH_GRAPHS[0]
    sub = DATASETS[ds].load(SCALE)
    m = make_maintainer(sub, "mod", increment_policy="safe")
    proto = BatchProtocol(sub, seed=1)

    def one_round():
        deletion, insertion = proto.remove_reinsert(64)
        m.apply_batch(deletion)
        m.apply_batch(insertion)

    benchmark(one_round)
