"""Scale trend: maintenance-vs-static improvement grows with graph size.

The paper's 10^2-10^4x small-batch improvement factors live at 10^6-10^8
edges, far beyond what pure Python can host.  This bench measures the
setmb single-change improvement factor at a sweep of dataset scales and
checks the *trend*: the median factor must grow as the graph grows,
because a single change's affected region stays local while recompute
cost scales with the whole structure.

Median, not mean: single-change latency is heavy-tailed (a change landing
in a populous level floods it), which is the paper's own setmb
observation -- "it also has high outliers that significantly increase the
average" (Section V-B).  Both are reported.
"""

from __future__ import annotations

from conftest import record

from repro.eval.harness import run_latency_vs_static

SCALES = (0.25, 0.75, 2.0)
DATASET = "LiveJ"
ROUNDS = 8


def test_improvement_grows_with_scale(benchmark):
    lines = [f"[{DATASET}] setmb batch=1 improvement over static recompute "
             f"(T1) vs dataset scale ({ROUNDS} rounds)"]
    med_factors = []
    for scale in SCALES:
        r = run_latency_vs_static(DATASET, "setmb", batch_sizes=(1,),
                                  rounds=ROUNDS, scale=scale)
        stats = r.times[1][1]
        med = r.static_time[1] / stats.median
        mean = r.static_time[1] / stats.mean
        med_factors.append(med)
        lines.append(
            f"  scale={scale:<5} static={r.static_time[1] * 1e3:8.3f}ms "
            f"maintain median={stats.median * 1e3:8.4f}ms "
            f"-> median {med:8.1f}x, mean {mean:6.1f}x"
        )
    lines.append("  (medians should climb toward the paper's 10^2-10^4x; "
                 "means lag behind due to the heavy tail the paper reports)")
    record("scale_trend", "\n".join(lines))
    assert med_factors[-1] > med_factors[0], "improvement must grow with scale"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
