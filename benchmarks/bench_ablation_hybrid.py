"""Ablation: the hybrid maintainer (the paper's future work, Section VI).

Sweeps batch sizes across mod, setmb and the hybrid.  The hybrid should
track the cheaper engine on both sides of the crossover, and its latency
tail (max/median) at large batches should match mod's rather than
setmb's.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, ROUNDS, SCALE, record
from figlib import wallclock_round

from repro.eval.harness import run_scalability

BATCH_SIZES = (4, 32, 256)
THREADS = 16


def test_hybrid_tracks_the_winner(benchmark):
    ds = BENCH_GRAPHS[0]
    results = {}
    for algo in ("setmb", "mod", "hybrid"):
        kwargs = {"threshold": 48} if algo == "hybrid" else None
        results[algo] = run_scalability(
            ds, algo, direction="insert", batch_sizes=BATCH_SIZES,
            rounds=ROUNDS, scale=SCALE, maintainer_kwargs=kwargs,
        )
    lines = [f"[{ds}] hybrid ablation, insertion latency at T{THREADS} (ms)"]
    lines.append(f"{'batch':>6} {'setmb':>14} {'mod':>14} {'hybrid':>14}")
    for b in BATCH_SIZES:
        cells = [results[a].times[b][THREADS] for a in ("setmb", "mod", "hybrid")]
        lines.append(f"{b:>6} " + " ".join(f"{c.format():>14}" for c in cells))
        best = min(cells[:2], key=lambda s: s.mean)
        # within 2.5x of the better engine at every size (routing overhead
        # plus the fixed threshold's misprediction margin)
        assert cells[2].mean <= 2.5 * best.mean
    record("ablation_hybrid", "\n".join(lines))
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_hybrid_split_hot_levels_mode(benchmark):
    ds = BENCH_GRAPHS[0]
    r = run_scalability(
        ds, "hybrid", direction="insert", batch_sizes=(256,),
        rounds=ROUNDS, scale=SCALE,
        maintainer_kwargs={"threshold": 48, "split_hot_levels": True},
    )
    record("ablation_hybrid",
           f"[{ds}] split_hot_levels=True, batch=256, T{THREADS}: "
           f"{r.times[256][THREADS].format()} ms")
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_hybrid_wallclock(benchmark):
    wallclock_round(benchmark, BENCH_GRAPHS[0], "hybrid", "insert", 32)
