"""Ablation: the cached hyperedge minimum (Section IV-A's "important
optimization": "the minimums on hyperedges are cached").

Runs mod pin-insertion batches on a hypergraph with the cache on and off;
identical results, different work.  The win grows with hyperedge size,
so the OrkutGroup analogue (largest groups) shows it best.
"""

from __future__ import annotations

from conftest import BENCH_HYPERGRAPHS, ROUNDS, SCALE, record
from figlib import wallclock_round

from repro.eval.harness import run_scalability

BATCH = 200
THREADS = 16


def test_min_cache_ablation(benchmark):
    lines = [f"min-cache ablation: mod pin insertions, batch={BATCH}, "
             f"T{THREADS} (simulated ms)"]
    for ds in BENCH_HYPERGRAPHS:
        times = {}
        for enabled in (True, False):
            r = run_scalability(
                ds, "mod", direction="insert", batch_sizes=(BATCH,),
                rounds=ROUNDS, scale=SCALE,
                maintainer_kwargs={"use_min_cache": enabled},
            )
            times[enabled] = r.times[BATCH][THREADS]
        ratio = times[False].mean / times[True].mean
        lines.append(
            f"  {ds}: cached {times[True].format()}  "
            f"uncached {times[False].format()}  ({ratio:.2f}x)"
        )
    record("ablation_min_cache", "\n".join(lines))
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_min_cache_wallclock_cached(benchmark):
    wallclock_round(benchmark, BENCH_HYPERGRAPHS[0], "mod", "insert", BATCH)
