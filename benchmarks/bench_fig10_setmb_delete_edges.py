"""Figure 10: setmb, deletion-only edge batches.

Paper shape: "For setmb, even with large batches the latency for
deletions is low" -- deletions ride pure convergence-from-above, so the
id-propagation overhead that makes setmb insertions expensive is absent.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, ROUNDS, SCALE, record
from figlib import figure_panel, wallclock_round

BATCH_SIZES = (8, 64, 256)


def test_fig10_series(benchmark):
    figure_panel("fig10_setmb_delete_edges", BENCH_GRAPHS, "setmb", "delete",
                 BATCH_SIZES)
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig10_deletions_cheaper_than_insertions(benchmark):
    from repro.eval.harness import run_scalability

    ds = BENCH_GRAPHS[0]
    dels = run_scalability(ds, "setmb", direction="delete",
                           batch_sizes=(64,), rounds=ROUNDS, scale=SCALE)
    ins = run_scalability(ds, "setmb", direction="insert",
                          batch_sizes=(64,), rounds=ROUNDS, scale=SCALE)
    d, i = dels.times[64][16].mean, ins.times[64][16].mean
    record("fig10_setmb_delete_edges",
           f"{ds}: setmb deletion vs insertion at batch=64, T16: "
           f"{d * 1e3:.3f}ms vs {i * 1e3:.3f}ms (ratio {i / d:.2f}x)")
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig10_wallclock(benchmark):
    wallclock_round(benchmark, BENCH_GRAPHS[0], "setmb", "delete", BATCH_SIZES[1])
