"""Maintenance latency vs. from-scratch recomputation (Section IV's
claim that the set family reaches orders of magnitude over static
computation on small batches; mod's consistent-but-flat improvements).

Measured at 1 simulated thread, where both sides are free of fork/barrier
overheads -- the improvement factor then reflects pure algorithmic work
and grows with graph size (the paper's 10^4x is at 10^7-edge scale; see
EXPERIMENTS.md for the scale extrapolation).
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, ROUNDS, SCALE, record
from figlib import wallclock_round

from repro.eval.harness import run_latency_vs_static
from repro.eval.tables import format_latency_vs_static


def test_latency_setmb_small_batches(benchmark):
    for ds in BENCH_GRAPHS[:2]:
        r = run_latency_vs_static(ds, "setmb", batch_sizes=(1, 4, 16),
                                  rounds=ROUNDS, scale=SCALE)
        record("latency_vs_static", format_latency_vs_static(r, 1))
        # the headline shape: single-change maintenance beats recompute
        assert r.times[1][1].mean < r.static_time[1]
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_latency_mod_large_batches(benchmark):
    for ds in BENCH_GRAPHS[:2]:
        r = run_latency_vs_static(ds, "mod", batch_sizes=(64, 256, 1024),
                                  rounds=ROUNDS, scale=SCALE)
        record("latency_vs_static", format_latency_vs_static(r, 1))
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_latency_wallclock(benchmark):
    wallclock_round(benchmark, BENCH_GRAPHS[0], "setmb", "insert", 1)
