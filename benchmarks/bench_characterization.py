"""§V-A future work: characterising graphs and batches to predict runtime.

Prints the structural profile of every quick dataset and validates the
mod batch-cost predictor (blast radius model, see
:mod:`repro.eval.characterize`) against measured simulated work on both a
mixed-size protocol workload and a separated-level workload where batch
size carries no signal at all.
"""

from __future__ import annotations

import random

from conftest import BENCH_GRAPHS, BENCH_HYPERGRAPHS, SCALE, record

from repro.core.peel import peel
from repro.eval.characterize import characterize_structure, validate_predictor
from repro.eval.datasets import load_dataset
from repro.graph.batch import Batch, BatchProtocol
from repro.graph.generators import core_ladder
from repro.graph.substrate import graph_edge_changes


def test_structure_profiles(benchmark):
    lines = ["Structural runtime factors (§V-A) of the synthetic analogues"]
    for name in list(BENCH_GRAPHS) + list(BENCH_HYPERGRAPHS):
        sub = load_dataset(name, scale=SCALE)
        profile = characterize_structure(sub)
        lines.append(f"  {name:>12}: {profile.describe()}")
    record("characterization", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_predictor_validation(benchmark):
    rng = random.Random(11)

    def mixed_factory(sub):
        proto = BatchProtocol(sub, seed=12)
        out = []
        for _ in range(8):
            b = rng.choice((1, 4, 16, 64))
            deletion, insertion = proto.remove_reinsert(b)
            out.extend((deletion, insertion))
        return out

    def ladder_factory(sub):
        kappa = peel(sub)
        by_level = {}
        for (u, v) in sub.edges():
            by_level.setdefault(min(kappa[u], kappa[v]), []).append((u, v))
        out = []
        for level in sorted(by_level):
            u, v = by_level[level][0]
            deletion = Batch(graph_edge_changes(u, v, False))
            out.append(deletion)
            out.append(Batch([c.inverse() for c in reversed(deletion.changes)]))
        return out

    ds = BENCH_GRAPHS[0]
    rho_mixed, rho_size_mixed, _ = validate_predictor(
        lambda: load_dataset(ds, scale=SCALE), mixed_factory)
    rho_ladder, rho_size_ladder, _ = validate_predictor(
        lambda: core_ladder(6, width=4), ladder_factory)
    record("characterization", "\n".join([
        "Blast-radius cost predictor (Spearman rho vs measured work):",
        f"  mixed-size protocol on {ds}: predictor {rho_mixed:+.2f}, "
        f"batch size {rho_size_mixed:+.2f}",
        f"  equal-size, separated levels (core ladder): predictor "
        f"{rho_ladder:+.2f}, batch size {rho_size_ladder:+.2f} (no signal)",
    ]))
    assert rho_mixed > 0.5
    assert rho_ladder > 0.8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
