#!/usr/bin/env python
"""Simulated thread-scaling of the flat-array engine vs the dict engine.

Until the ``parallel_ranges`` metering seam existed, the vectorised
array kernels charged their work as one serial lump, so only the slow
dict path could produce the paper's speedup-vs-threads curves.  This
benchmark demonstrates the unified picture: the **same** eval-harness
sweep (:func:`repro.eval.harness.run_scalability`, the Fig. 6/9/12
analogue workloads) is run under the :class:`SimulatedRuntime` on both
engines, and both now yield real scaling curves -- with the array
engine's total metered work agreeing with the dict path within the
documented accounting tolerance.

Two checks are asserted (and recorded in the JSON):

* the array engine reports **speedup > 1 at t in {2, 4, 8}** on the
  Fig. 6 analogue (insertion-only) workload -- the acceptance criterion
  that the vectorised kernels are metered as parallel regions;
* the array/dict **work-unit ratio** stays within ``WORK_RATIO_BOUNDS``.
  Exact equality is impossible by construction: the array path is the
  synchronous (Jacobi) sweep and the dict path the asynchronous
  (Gauss-Seidel) one, so iteration counts differ, and the dict path
  additionally re-scans pins per vertex update (roughly 3 x degree per
  touched vertex vs the kernels' degree + 1).

Usage::

    python benchmarks/bench_scaling_sim.py            # full run, writes JSON
    python benchmarks/bench_scaling_sim.py --quick    # CI smoke
    python benchmarks/bench_scaling_sim.py --out PATH # custom output path

The full run writes ``BENCH_scaling.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.eval.harness import run_scalability  # noqa: E402

#: the array/dict total-work ratio band accepted as "same accounting"
WORK_RATIO_BOUNDS = (0.2, 2.5)
#: thread counts the acceptance criterion quantifies over
ACCEPT_THREADS = (2, 4, 8)

#: (dataset, direction, figure analogue) panels; the first is the
#: acceptance-criterion panel
PANELS = (
    ("OrkutLinks", "insert", "fig06"),
    ("OrkutLinks", "delete", "fig09"),
    ("OrkutLinks", "mixed", "fig12"),
    ("OrkutGroup", "insert", "fig06_hyper"),
)

FULL_CONFIG = dict(scale=0.2, batch_sizes=(1000,), rounds=3,
                   panels=PANELS)
QUICK_CONFIG = dict(scale=0.08, batch_sizes=(400,), rounds=2,
                    panels=(PANELS[0], PANELS[3]))


def run_panel(dataset: str, direction: str, config, seed: int):
    """One figure panel on both engines; returns the JSON entry."""
    entry = {"dataset": dataset, "direction": direction}
    for eng in ("dict", "array"):
        r = run_scalability(
            dataset, "mod",
            direction=direction,
            batch_sizes=config["batch_sizes"],
            rounds=config["rounds"],
            scale=config["scale"],
            seed=seed,
            engine=eng,
        )
        b = config["batch_sizes"][-1]
        entry[eng] = {
            "engine_reported": r.engine,
            "work_units": round(r.work_units, 1),
            "speedup": {str(t): round(r.speedup(b, t), 3)
                        for t in r.thread_counts},
        }
    ratio = entry["array"]["work_units"] / max(entry["dict"]["work_units"], 1e-9)
    entry["work_ratio_array_over_dict"] = round(ratio, 3)
    return entry


def run(config, seed: int = 0):
    report = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "scale": config["scale"],
            "batch_sizes": list(config["batch_sizes"]),
            "rounds": config["rounds"],
            "timed_algorithm": "mod",
            "work_ratio_bounds": list(WORK_RATIO_BOUNDS),
        },
        "panels": {},
    }
    for dataset, direction, figure in config["panels"]:
        print(f"== {figure}: {dataset} {direction} ==")
        entry = run_panel(dataset, direction, config, seed)
        for eng in ("dict", "array"):
            sp = entry[eng]["speedup"]
            print(f"  {eng:>5}: work={entry[eng]['work_units']:>10.0f}  " +
                  "  ".join(f"T{t}={sp[str(t)]:.2f}x"
                            for t in (1, 2, 4, 8, 16, 32) if str(t) in sp))
        print(f"  work ratio array/dict: "
              f"{entry['work_ratio_array_over_dict']:.3f}")
        report["panels"][figure] = entry
    return report


def check(report) -> None:
    """Assert the acceptance criteria on every panel."""
    lo, hi = WORK_RATIO_BOUNDS
    for figure, entry in report["panels"].items():
        sp = entry["array"]["speedup"]
        for t in ACCEPT_THREADS:
            got = sp[str(t)]
            assert got > 1.0, (
                f"{figure}: array engine shows no simulated parallelism at "
                f"t={t} (speedup {got:.3f})"
            )
        ratio = entry["work_ratio_array_over_dict"]
        assert lo <= ratio <= hi, (
            f"{figure}: array/dict work ratio {ratio:.3f} outside "
            f"[{lo}, {hi}] -- the engines' accounting has diverged"
        )
        print(f"check passed: {figure} array speedups "
              + " ".join(f"T{t}={sp[str(t)]:.2f}x" for t in ACCEPT_THREADS)
              + f", work ratio {ratio:.3f}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run (fig06 graph + hypergraph "
                         "panels only)")
    ap.add_argument("--out", type=Path, default=None,
                    help="output JSON path (default: BENCH_scaling.json at "
                         "the repo root; --quick defaults to not writing)")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run(config, seed=args.seed)
    report["meta"]["mode"] = "quick" if args.quick else "full"
    check(report)

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_scaling.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
