"""Figure 7: setmb, insertion-only edge batches.

Paper shape: setmb targets small batches (it provides the smallest
runtimes there) but carries high variance on the larger graphs -- watch
the std columns, which the paper renders as tall error bars.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS
from figlib import figure_panel, wallclock_round

BATCH_SIZES = (1, 8, 64)


def test_fig07_series(benchmark):
    figure_panel("fig07_setmb_insert_edges", BENCH_GRAPHS, "setmb", "insert",
                 BATCH_SIZES)
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig07_wallclock(benchmark):
    wallclock_round(benchmark, BENCH_GRAPHS[0], "setmb", "insert", BATCH_SIZES[1])
