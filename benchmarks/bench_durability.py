#!/usr/bin/env python
"""What durability costs: WAL sync policies vs a non-durable baseline.

Measures honest wall-clock time of the paper's Fig. 12 mixed workload
(deletions interleaved with re-insertions at the 3/2 sizing) through a
:class:`~repro.resilience.durability.durable.DurableMaintainer` under
each WAL sync policy, against the same maintainer with no durability:

* ``baseline``   -- no WAL, no checkpoints (the figure-harness path);
* ``wal_record`` -- fsync after every change record (strongest, slowest);
* ``wal_batch``  -- fsync after every commit record (the default: an
  acknowledged batch is durable);
* ``wal_size64k`` -- fsync per 64 KiB of log (fastest; an acked batch
  may be lost to power failure).

Every variant replays byte-identical pre-generated batch streams, and
each finishes with a full verification against the peeling oracle.  The
run also times an actual crash-recovery: the ``wal_batch`` session is
abandoned without a final checkpoint and rebuilt from its directory,
and the recovered kappa must equal the live one.

The headline contract (asserted, and recorded in the JSON): the
``wal_batch`` policy stays within **2.5x** of the non-durable baseline.

Usage::

    python benchmarks/bench_durability.py            # full run, writes JSON
    python benchmarks/bench_durability.py --quick    # CI smoke (small sizes)
    python benchmarks/bench_durability.py --out PATH # custom output path

The full run writes ``BENCH_durability.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.maintainer import make_maintainer  # noqa: E402
from repro.core.verify import verify_kappa  # noqa: E402
from repro.graph.batch import BatchProtocol  # noqa: E402
from repro.graph.generators import powerlaw_social  # noqa: E402
from repro.resilience.durability import (  # noqa: E402
    DurableMaintainer,
    RecoveryManager,
)

FULL_CONFIG = dict(n=20_000, m=12, rounds=3, batch_edges=2000)
QUICK_CONFIG = dict(n=3_000, m=8, rounds=2, batch_edges=300)

#: (variant name, sync policy or None for the non-durable baseline)
VARIANTS = (
    ("baseline", None),
    ("wal_record", "record"),
    ("wal_batch", "batch"),
    ("wal_size64k", "size:65536"),
)

EVERY_BATCH_OVERHEAD_MAX = 2.5


def generate_rounds(base, batch_edges: int, rounds: int, seed: int):
    """Pre-generate identical Fig. 12 mixed rounds for every variant."""
    scratch = base.copy()
    proto = BatchProtocol(scratch, seed=seed)
    out = []
    for _ in range(rounds):
        prep, timed, post = proto.mixed(batch_edges)
        for b in (prep, timed, post):
            for c in b:
                scratch.apply(c)
        out.append((prep, timed, post))
    return out


def run_variant(base, policy, rounds_data, workdir):
    """Replay the stream; returns (times_s, kappa, wal_stats, maintainer)."""
    m = make_maintainer(base.copy(), "mod")
    if policy is not None:
        m = DurableMaintainer(
            m, workdir, sync_policy=policy, checkpoint_every=0
        )
    times = []
    for prep, timed, post in rounds_data:
        m.apply_batch(prep)
        t0 = time.perf_counter()
        m.apply_batch(timed)
        times.append(time.perf_counter() - t0)
        m.apply_batch(post)
    violations = verify_kappa(m.impl if policy is not None else m,
                              raise_on_mismatch=False)
    if violations:
        raise AssertionError(
            f"{policy or 'baseline'} diverged from the peeling oracle: "
            f"{violations[:5]} ..."
        )
    wal_stats = dict(m.wal.stats) if policy is not None else None
    return times, m.kappa(), wal_stats, m


def time_recovery(durable, workdir):
    """Abandon ``durable`` without a final checkpoint and rebuild it."""
    live_kappa = durable.kappa()
    durable.wal.sync()
    durable.wal._fh.close()  # process death: no close(), no final checkpoint
    t0 = time.perf_counter()
    recovered, report = RecoveryManager(workdir).recover()
    elapsed = time.perf_counter() - t0
    if recovered.kappa() != live_kappa:
        raise AssertionError("recovery diverged from the live session")
    return {
        "recover_s": round(elapsed, 4),
        "batches_replayed": report.batches_replayed,
        "records_scanned": report.records_scanned,
        "kappa_identical": True,
    }


def run(config, seed: int = 42):
    base = powerlaw_social(config["n"], config["m"], seed=seed)
    rounds_data = generate_rounds(
        base, config["batch_edges"], config["rounds"], seed=seed + 1
    )
    timed_changes = len(rounds_data[0][1])
    print(f"== fig12 mixed: {config['batch_edges']} edges/batch "
          f"({timed_changes} pin changes timed), {config['rounds']} rounds ==")
    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "graph": {
                "generator": f"powerlaw_social({config['n']}, {config['m']}, seed={seed})",
                "vertices": base.num_vertices(),
                "edges": base.num_edges(),
            },
            "workload": "fig12_mixed",
            "rounds": config["rounds"],
            "batch_edges": config["batch_edges"],
            "timed_pin_changes": timed_changes,
            "timed_algorithm": "mod",
        },
        "variants": {},
    }
    kappas = {}
    batch_session = None
    scratch_root = Path(tempfile.mkdtemp(prefix="bench-durability-"))
    try:
        for name, policy in VARIANTS:
            workdir = scratch_root / name
            times, kappa, wal_stats, m = run_variant(
                base, policy, rounds_data, workdir
            )
            kappas[name] = kappa
            entry = {
                "sync_policy": policy,
                "times_s": [round(t, 4) for t in times],
                "median_s": round(statistics.median(times), 4),
            }
            if wal_stats is not None:
                entry["wal"] = wal_stats
            report["variants"][name] = entry
            print(f"  {name:>12}: " + "  ".join(f"{t:.3f}s" for t in times) +
                  f"  (median {entry['median_s']:.3f}s)")
            if name == "wal_batch":
                batch_session = (m, workdir)
            elif policy is not None:
                m.close(final_checkpoint=False)

        base_median = report["variants"]["baseline"]["median_s"]
        for name, policy in VARIANTS[1:]:
            entry = report["variants"][name]
            entry["overhead_vs_baseline"] = round(
                entry["median_s"] / base_median, 2
            )
            print(f"  {name:>12}: {entry['overhead_vs_baseline']:.2f}x baseline")
            if kappas[name] != kappas["baseline"]:
                raise AssertionError(f"{name}: kappa diverged from baseline")

        m, workdir = batch_session
        report["recovery"] = time_recovery(m, workdir)
        print(f"  recovery: {report['recovery']['batches_replayed']} batches "
              f"replayed in {report['recovery']['recover_s']:.3f}s")

        observed = report["variants"]["wal_batch"]["overhead_vs_baseline"]
        report["contract"] = {
            "every_batch_overhead_max": EVERY_BATCH_OVERHEAD_MAX,
            "observed": observed,
            "pass": observed <= EVERY_BATCH_OVERHEAD_MAX,
        }
    finally:
        shutil.rmtree(scratch_root, ignore_errors=True)
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small CI smoke run (does not write JSON by default)")
    ap.add_argument("--out", type=Path, default=None,
                    help="output JSON path (default: BENCH_durability.json "
                         "at the repo root; --quick defaults to not writing)")
    ap.add_argument("--seed", type=int, default=42)
    args = ap.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run(config, seed=args.seed)
    report["meta"]["mode"] = "quick" if args.quick else "full"

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_durability.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {out}")

    contract = report["contract"]
    assert contract["pass"], (
        f"every-batch WAL overhead {contract['observed']:.2f}x exceeds the "
        f"{contract['every_batch_overhead_max']}x contract"
    )
    print(f"contract passed: every-batch WAL overhead "
          f"{contract['observed']:.2f}x <= {contract['every_batch_overhead_max']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
