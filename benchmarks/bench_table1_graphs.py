"""Table I: graphs used for the experiments.

Regenerates the paper's dataset table side by side with the synthetic
analogues actually used (DESIGN.md substitution), and benchmarks loading +
statically decomposing each analogue -- the baseline cost every
maintenance speedup in later figures is measured against.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, ROUNDS, SCALE, record

from repro.core.peel import peel
from repro.core.static import static_hindex
from repro.eval.datasets import load_dataset
from repro.eval.tables import format_table1


def test_table1_rows(benchmark):
    record("table1", format_table1(scale=SCALE))
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_table1_core_profiles(benchmark):
    lines = ["Core structure of the synthetic analogues "
             f"(scale={SCALE})", ""]
    lines.append(f"{'name':>12} {'V':>7} {'E':>8} {'kmax':>5} {'levels':>7}")
    for name in BENCH_GRAPHS:
        g = load_dataset(name, scale=SCALE)
        kappa = peel(g)
        levels = len(set(kappa.values()))
        lines.append(
            f"{name:>12} {g.num_vertices():>7} {g.num_edges():>8} "
            f"{max(kappa.values()):>5} {levels:>7}"
        )
    record("table1_profiles", "\n".join(lines))
    # keep this panel in the prescribed --benchmark-only run
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_static_decomposition_wallclock(benchmark):
    g = load_dataset(BENCH_GRAPHS[0], scale=SCALE)

    def decompose():
        return static_hindex(g)

    kappa = benchmark(decompose)
    assert kappa == peel(g)
