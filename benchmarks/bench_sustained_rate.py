"""Sustained change rates (the abstract's headline claim).

    "We provide the first algorithms that experimentally demonstrate
    scalability as the number of threads increase while sustaining high
    change rates in graphs and hypergraphs."

This bench binary-searches, per algorithm and simulated thread count, the
maximum Poisson arrival rate the maintainer sustains with bounded emergent
batch sizes (see :mod:`repro.eval.pipeline`).  Expected shapes:

* ``mod`` sustains far higher rates than per-change processing -- its
  nearly-flat batch cost means utilisation stays finite as batches grow;
* the sustainable rate *increases with threads* for the batch algorithms
  (the abstract's combination of scalability and change rate), while
  single-change processing gains nothing from threads.
"""

from __future__ import annotations

from conftest import BENCH_GRAPHS, SCALE, record

from repro.eval.pipeline import max_sustainable_rate

THREAD_POINTS = (1, 16)
N_CHANGES = 600
ITERATIONS = 7


def test_sustained_rate_by_algorithm_and_threads(benchmark):
    ds = BENCH_GRAPHS[1] if len(BENCH_GRAPHS) > 1 else BENCH_GRAPHS[0]
    lines = [f"[{ds}] max sustainable change rate (changes/s, Poisson "
             f"arrivals, emergent batches)"]
    lines.append(f"{'algorithm':>12} " + " ".join(f"{'T' + str(t):>14}"
                                                  for t in THREAD_POINTS))
    rates = {}
    for algo in ("traversal", "setmb", "mod"):
        row = [f"{algo:>12}"]
        for t in THREAD_POINTS:
            rate, res = max_sustainable_rate(
                ds, algo, threads=t, scale=SCALE,
                n_changes=N_CHANGES, iterations=ITERATIONS)
            rates[(algo, t)] = rate
            row.append(f"{rate:>13,.0f}")
        lines.append(" ".join(row))
    lines.append("")
    mod_gain = rates[("mod", 16)] / max(rates[("traversal", 16)], 1.0)
    lines.append(f"mod sustains {mod_gain:.1f}x the single-change rate at T16; "
                 f"mod T16/T1 = {rates[('mod', 16)] / max(rates[('mod', 1)], 1.0):.2f}x")
    record("sustained_rate", "\n".join(lines))

    assert rates[("mod", 16)] > rates[("traversal", 16)]
    assert rates[("mod", 16)] > rates[("mod", 1)]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
