#!/usr/bin/env python
"""Sharded distributed scaling study: supersteps, boundary bytes, balance.

Runs the sharded :class:`~repro.distributed.core.DistributedModMaintainer`
over a skewed (powerlaw) generator across ``nodes x partitioner``:

* ``scaling``  -- for every partitioner in {hash, degree_balanced,
  edge_cut} and node count in {1, 2, 4, 8}: partition quality (edge-cut
  fraction, replication factor, load imbalance), initial-convergence
  supersteps, and steady-state per-batch traffic (boundary bytes, ingress
  bytes, supersteps) over a remove/reinsert stream.  Every stream ends
  with a full peeling verification.
* ``cut_invariance`` -- the locality contract: a 2-shard path graph with
  a single cut edge is maintained at several sizes; steady-state
  boundary bytes per batch must be *identical* across sizes (traffic is
  proportional to the edge cut, not ``|V|``).

Contracts (asserted, and recorded in the JSON):

1. boundary bytes per batch on the fixed-cut path graph do not grow with
   ``|V|``;
2. on the skewed graph the edge-cut partitioner moves fewer steady-state
   boundary bytes than hash partitioning (lower cut -> less traffic).

All timing is *simulated* (the :class:`~repro.distributed.cluster.ClusterSpec`
cost model), so every number is deterministic under a fixed seed.

Usage::

    python benchmarks/bench_distributed.py            # full run, writes JSON
    python benchmarks/bench_distributed.py --quick    # CI smoke (small sizes)
    python benchmarks/bench_distributed.py --out PATH # custom output path

The full run writes ``BENCH_distributed.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.peel import peel  # noqa: E402
from repro.core.verify import diff_kappa  # noqa: E402
from repro.distributed import (  # noqa: E402
    PARTITIONERS,
    ClusterSpec,
    DistributedModMaintainer,
    partition_stats,
)
from repro.graph.batch import Batch, BatchProtocol  # noqa: E402
from repro.graph.dynamic_graph import DynamicGraph  # noqa: E402
from repro.graph.generators import powerlaw_social  # noqa: E402

FULL_CONFIG = dict(
    n_vertices=400, m_max=10, nodes=(1, 2, 4, 8), rounds=5, batch=25,
    path_sizes=(64, 256, 1024), path_rounds=4,
)
QUICK_CONFIG = dict(
    n_vertices=120, m_max=6, nodes=(1, 2, 4, 8), rounds=2, batch=10,
    path_sizes=(32, 128), path_rounds=3,
)


def run_scaling(config: dict, seed: int) -> list:
    """nodes x partitioner sweep on the skewed generator."""
    rows = []
    for name in sorted(PARTITIONERS):
        for nodes in config["nodes"]:
            g = powerlaw_social(config["n_vertices"], config["m_max"],
                                seed=seed)
            partition = PARTITIONERS[name](g, nodes)
            pstats = partition_stats(g, partition, nodes)
            m = DistributedModMaintainer(
                g, ClusterSpec(nodes=nodes), partition=dict(partition))
            startup = m.cluster.metrics.snapshot()
            proto = BatchProtocol(g, seed=seed + 1)
            batch_stats = []
            for _ in range(config["rounds"]):
                deletion, insertion = proto.remove_reinsert(config["batch"])
                for batch in (deletion, insertion):
                    m.apply_batch(batch)
                    for change in batch:
                        g.apply(change)
                    batch_stats.append(m.last_batch_stats)
            if diff_kappa(m.kappa(), peel(g)) != []:
                raise AssertionError(
                    f"{name}/{nodes}: distributed kappa diverged from peeling")
            n_batches = len(batch_stats)
            metrics = m.cluster.metrics
            row = {
                "partitioner": name,
                "nodes": nodes,
                "partition": pstats.as_dict(),
                "startup_supersteps": startup["supersteps"],
                "startup_message_bytes": startup["message_bytes"],
                "batches": n_batches,
                "mean_supersteps_per_batch": (
                    sum(s["supersteps"] for s in batch_stats) / n_batches),
                "mean_message_bytes_per_batch": (
                    sum(s["message_bytes"] for s in batch_stats) / n_batches),
                "mean_ingress_bytes_per_batch": (
                    sum(s["ingress_bytes"] for s in batch_stats) / n_batches),
                "total_message_bytes": metrics.message_bytes,
                "bytes_sent_per_node": list(metrics.bytes_sent_per_node),
                "work_imbalance": metrics.load_imbalance(),
                "elapsed_simulated_s": metrics.elapsed_seconds(),
                "verified": True,
            }
            print(f"  {name:>15s} nodes={nodes}: "
                  f"cut={pstats.edge_cut_fraction:.2f} "
                  f"rep={pstats.replication_factor:.2f} "
                  f"imbalance={metrics.load_imbalance():.2f} "
                  f"bytes/batch={row['mean_message_bytes_per_batch']:.0f}")
            rows.append(row)
    return rows


def run_cut_invariance(config: dict, seed: int) -> list:
    """Fixed-cut path graphs at growing |V|: steady-state boundary bytes
    per batch must not grow."""
    rows = []
    for n in config["path_sizes"]:
        g = DynamicGraph.from_edges([(i, i + 1) for i in range(n - 1)])
        partition = {v: 0 if v < n // 2 else 1 for v in range(n)}
        m = DistributedModMaintainer(g, ClusterSpec(nodes=2),
                                     partition=partition)
        per_batch = []
        for _ in range(config["path_rounds"]):
            m.apply_batch(Batch.from_graph_edges([(2, 3)], insert=False))
            per_batch.append(m.last_batch_stats["message_bytes"])
            m.apply_batch(Batch.from_graph_edges([(2, 3)], insert=True))
            per_batch.append(m.last_batch_stats["message_bytes"])
        assert m.kappa() == peel(g)
        row = {
            "n_vertices": n,
            "cut_edges": 1,
            "message_bytes_per_batch": per_batch,
            "steady_state_bytes": per_batch[-1],
        }
        print(f"  path |V|={n:>5d}: bytes/batch={per_batch}")
        rows.append(row)
    return rows


def run(config: dict, seed: int) -> dict:
    print(f"== scaling sweep (powerlaw n={config['n_vertices']}, "
          f"nodes {config['nodes']}) ==")
    scaling = run_scaling(config, seed)

    print("\n== cut invariance (2-shard path, 1 cut edge) ==")
    invariance = run_cut_invariance(config, seed)

    # contract 1: fixed cut -> flat traffic as |V| grows
    steady = [row["steady_state_bytes"] for row in invariance]
    flat = all(b == steady[0] for b in steady)

    # contract 2: lower cut -> less steady-state boundary traffic
    # (compare edge_cut vs hash at the largest node count)
    top = max(config["nodes"])
    by_name = {row["partitioner"]: row for row in scaling
               if row["nodes"] == top}
    cut_bytes = by_name["edge_cut"]["mean_message_bytes_per_batch"]
    hash_bytes = by_name["hash"]["mean_message_bytes_per_batch"]
    ordered = cut_bytes <= hash_bytes

    return {
        "meta": {
            "benchmark": "distributed",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "seed": seed,
            "config": {k: list(v) if isinstance(v, tuple) else v
                       for k, v in config.items()},
        },
        "scaling": scaling,
        "cut_invariance": invariance,
        "contract": {
            "fixed_cut_traffic_flat": flat,
            "steady_state_bytes_by_size": steady,
            "edge_cut_leq_hash_bytes": ordered,
            "edge_cut_bytes_per_batch": cut_bytes,
            "hash_bytes_per_batch": hash_bytes,
            "pass": flat and ordered,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run(config, args.seed)

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_distributed.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {out}")

    contract = report["contract"]
    assert contract["fixed_cut_traffic_flat"], (
        "boundary traffic grew with |V| at a fixed cut: "
        f"{contract['steady_state_bytes_by_size']}")
    assert contract["edge_cut_leq_hash_bytes"], (
        "edge-cut partitioning moved more boundary bytes than hash: "
        f"{contract['edge_cut_bytes_per_batch']:.0f} > "
        f"{contract['hash_bytes_per_batch']:.0f}")
    print("contract passed: fixed-cut traffic flat across sizes "
          f"({contract['steady_state_bytes_by_size']} bytes/batch); "
          f"edge_cut {contract['edge_cut_bytes_per_batch']:.0f} <= "
          f"hash {contract['hash_bytes_per_batch']:.0f} bytes/batch")
    return 0


if __name__ == "__main__":
    sys.exit(main())
