#!/usr/bin/env python
"""What replication buys: bounded lag, read scale-out, fast failover.

Plays the bursty remove/reinsert stream through a durable primary with
``N`` hot standbys over the simulated, costed transport
(:mod:`repro.replication`) and measures the three headline numbers of
the replication subsystem:

* ``lag``      -- max standby lag sampled after every committed batch.
  The contract (asserted, and recorded in the JSON): at steady state the
  lag stays **within one batch** -- the adaptive pump always lands an
  undisturbed shipment inside the round that committed it.
* ``scaleout`` -- bounded-staleness reads at budget 0 routed through the
  :class:`~repro.replication.replica_set.ReplicaSet`, swept over fleet
  sizes: reads served per endpoint and the share the standbys absorb.
* ``failover`` -- the primary is killed mid-stream (process-death model:
  the WAL handle is dropped unsynced), the freshest standby is promoted,
  and the simulated promote + survivor catch-up time is recorded.  A
  drop-plan on one survivor's link forces real retransmit work during
  catch-up, so the recovery time is not a degenerate zero.

All timing is *simulated* seconds on the shared virtual clock -- the
same :class:`~repro.distributed.cluster.ClusterSpec` cost model that
prices BSP supersteps -- so every number is deterministic under a fixed
seed.  Every run finishes with a full peeling verification and a
replica-convergence check.

Usage::

    python benchmarks/bench_replication.py            # full run, writes JSON
    python benchmarks/bench_replication.py --quick    # CI smoke (small sizes)
    python benchmarks/bench_replication.py --out PATH # custom output path

The full run writes ``BENCH_replication.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.harness import run_replicated_stream  # noqa: E402
from repro.resilience.faults import FaultPlan  # noqa: E402

FULL_CONFIG = dict(
    dataset="DBLP", scale=0.3, rounds=10, reads_per_round=8,
    fleet=(1, 2, 4), fail_at=12, checkpoint_every=8,
)
QUICK_CONFIG = dict(
    dataset="DBLP", scale=0.05, rounds=3, reads_per_round=4,
    fleet=(1, 2), fail_at=3, checkpoint_every=4,
)

#: steady-state replication lag must stay within one batch
LAG_MAX_BATCHES = 1.0


def _result_dict(r) -> dict:
    return {
        "dataset": r.dataset,
        "algorithm": r.algorithm,
        "rounds": r.rounds,
        "n_replicas": r.n_replicas,
        "staleness_budget": r.staleness_budget,
        "batch_latency_s": dataclasses.asdict(r.batch_latency),
        "lag_batches": dataclasses.asdict(r.lag_batches),
        "reads": r.reads,
        "replica_read_fraction": r.replica_read_fraction,
        "stats": r.stats,
        "failover": r.failover,
        "final_verified": r.final_verified,
        "replicas_converged": r.replicas_converged,
    }


def run_lag(config: dict, seed: int) -> dict:
    """Steady-state replication lag with the default 2-standby fleet."""
    r = run_replicated_stream(
        config["dataset"], rounds=config["rounds"], n_replicas=2,
        staleness_budget=0, reads_per_round=config["reads_per_round"],
        checkpoint_every=config["checkpoint_every"],
        scale=config["scale"], seed=seed,
    )
    print(r.format())
    if not (r.final_verified and r.replicas_converged):
        raise AssertionError("lag run diverged or left replicas lagging")
    return _result_dict(r)


def run_scaleout(config: dict, seed: int) -> list:
    """Budget-0 read routing swept over fleet sizes."""
    out = []
    for n in config["fleet"]:
        r = run_replicated_stream(
            config["dataset"], rounds=config["rounds"], n_replicas=n,
            staleness_budget=0, reads_per_round=config["reads_per_round"],
            checkpoint_every=config["checkpoint_every"],
            scale=config["scale"], seed=seed,
        )
        total = sum(r.reads.values())
        standby_reads = [v for k, v in r.reads.items() if k != "primary"]
        row = {
            "n_replicas": n,
            "reads": r.reads,
            "total_reads": total,
            "replica_read_fraction": r.replica_read_fraction,
            "max_reads_per_endpoint": max(r.reads.values()) if r.reads else 0,
            "standby_read_spread": (
                (max(standby_reads) - min(standby_reads))
                if standby_reads else None
            ),
        }
        print(f"  N={n}: {total} reads, replica share "
              f"{r.replica_read_fraction:.0%}, per-endpoint {r.reads}")
        if not (r.final_verified and r.replicas_converged):
            raise AssertionError(f"scale-out run (N={n}) diverged")
        out.append(row)
    return out


def run_failover(config: dict, seed: int) -> dict:
    """Kill the primary mid-stream, promote, finish, verify.

    Replica 1's link drops a few shipments right before the kill, so the
    promoted primary has real retransmit + catch-up work to do: the
    recorded recovery time covers election *and* bringing every survivor
    back to the promoted watermark.
    """
    fail_at = config["fail_at"]
    drops = {1: [FaultPlan.drop_shipment(k)
                 for k in range(max(0, fail_at - 2), fail_at + 1)]}
    r = run_replicated_stream(
        config["dataset"], rounds=config["rounds"], n_replicas=2,
        staleness_budget=0, reads_per_round=config["reads_per_round"],
        checkpoint_every=config["checkpoint_every"],
        fail_at=fail_at, fault_plans=drops,
        scale=config["scale"], seed=seed,
    )
    print(r.format())
    if r.failover is None:
        raise AssertionError("failover never triggered")
    if not (r.final_verified and r.replicas_converged):
        raise AssertionError("post-failover stream diverged")
    return _result_dict(r)


def run(config: dict, seed: int) -> dict:
    print(f"== replication lag ({config['dataset']}, "
          f"scale {config['scale']}) ==")
    lag = run_lag(config, seed)

    print(f"\n== read scale-out (fleet {config['fleet']}) ==")
    scaleout = run_scaleout(config, seed)

    print(f"\n== promote-on-failure (kill at batch {config['fail_at']}) ==")
    failover = run_failover(config, seed)

    observed_lag = lag["lag_batches"]["maximum"]
    report = {
        "meta": {
            "benchmark": "replication",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "seed": seed,
            "config": {k: list(v) if isinstance(v, tuple) else v
                       for k, v in config.items()},
        },
        "lag": lag,
        "scaleout": scaleout,
        "failover": failover,
        "contract": {
            "lag_max_batches": LAG_MAX_BATCHES,
            "observed": observed_lag,
            "pass": observed_lag <= LAG_MAX_BATCHES,
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run(config, args.seed)

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_replication.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {out}")

    contract = report["contract"]
    assert contract["pass"], (
        f"steady-state replication lag {contract['observed']:.0f} batches "
        f"exceeds the {contract['lag_max_batches']:.0f}-batch contract"
    )
    print(f"contract passed: steady-state replication lag "
          f"{contract['observed']:.0f} <= {contract['lag_max_batches']:.0f} "
          "batch(es); failover recovery "
          f"{report['failover']['failover']['recovery_s'] * 1e3:.3f} ms "
          "simulated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
