#!/usr/bin/env python
"""What the serving layer buys: exact snapshots under load, bounded queues.

Plays the bursty remove/reinsert stream through a
:class:`~repro.serve.server.CoreServer` (admission control -> coalescing
queue -> maintenance -> published :class:`ReadView` snapshots) and
measures the serving contract on both engines:

* ``keep_up``  -- maintenance keeps pace with the offered load: every
  query is answered ``fresh`` from a snapshot that reflects the whole
  committed stream, and the query latency percentiles price the inline
  pumping a fresh read performs.
* ``overload`` -- the engine is throttled to one bounded batch per round
  while the full bursty load keeps arriving, sustained (~10x the drain
  rate at the burst peaks).  The excess turns into explicit ``deferred``
  / ``shed`` admission decisions -- never unbounded queue growth -- and
  reads degrade to the last published snapshot with an explicit
  staleness stamp instead of blocking.

The recorded **contract** (asserted, and written to the JSON):

* every run ends view-consistent (the final published snapshot equals
  the engine's tau) and peeling-verified -- served answers are never
  torn;
* the ingest queue's observed depth never exceeds ``defer_at`` plus the
  largest admitted group (bounded by construction);
* p99 query latency stays within the deadline budget plus one batch
  cost (a deadline is checked between batches, so the overshoot is at
  most the batch that was already in flight).

All timing is simulated: the server runs on a
:class:`~repro.resilience.backoff.ManualClock` advanced only by the
per-batch maintenance cost, so every number is deterministic under a
fixed seed.

Usage::

    python benchmarks/bench_serve.py            # full run, writes JSON
    python benchmarks/bench_serve.py --quick    # CI smoke (small sizes)
    python benchmarks/bench_serve.py --out PATH # custom output path

The full run writes ``BENCH_serve.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.harness import run_served_stream  # noqa: E402

FULL_CONFIG = dict(
    dataset="DBLP", scale=0.3, rounds=12, queries_per_round=16,
    deadline_s=0.05, batch_cost_s=0.002, max_batch=64,
    overload=dict(pump_batches_per_round=1, defer_at=64, shed_at=512,
                  deadline_s=0.008, max_batch=16),
)
QUICK_CONFIG = dict(
    dataset="DBLP", scale=0.05, rounds=5, queries_per_round=8,
    deadline_s=0.05, batch_cost_s=0.002, max_batch=64,
    overload=dict(pump_batches_per_round=1, defer_at=16, shed_at=128,
                  deadline_s=0.006, max_batch=8),
)

ENGINES = ("dict", "array")


def _result_dict(r) -> dict:
    return {
        "dataset": r.dataset,
        "algorithm": r.algorithm,
        "engine": r.engine,
        "rounds": r.rounds,
        "offered_changes": r.offered_changes,
        "admission": r.admission,
        "coalesced": r.coalesced,
        "dropped_rounds": r.dropped_rounds,
        "queue_depth": dataclasses.asdict(r.queue_depth),
        "max_queue_depth": r.max_queue_depth,
        "max_group": r.max_group,
        "query_latency_s": dataclasses.asdict(r.query_latency),
        "latency_p50_s": r.latency_p50,
        "latency_p99_s": r.latency_p99,
        "staleness_batches": dataclasses.asdict(r.staleness),
        "statuses": r.statuses,
        "health_transitions": len(r.health_transitions),
        "final_health": r.final_health,
        "failed_batches": r.failed_batches,
        "subscription_events": r.events,
        "view_consistent": r.view_consistent,
        "final_verified": r.final_verified,
    }


def _check_common(r, label: str) -> None:
    if not (r.view_consistent and r.final_verified):
        raise AssertionError(f"{label}: served state diverged from peeling")
    if r.failed_batches:
        raise AssertionError(f"{label}: unexpected maintenance failures")


def run_keep_up(config: dict, engine: str, seed: int) -> dict:
    r = run_served_stream(
        config["dataset"], rounds=config["rounds"],
        queries_per_round=config["queries_per_round"],
        deadline_s=config["deadline_s"],
        batch_cost_s=config["batch_cost_s"],
        max_batch=config["max_batch"],
        scale=config["scale"], seed=seed, engine=engine,
    )
    print(r.format())
    _check_common(r, f"keep_up/{engine}")
    total = sum(r.statuses.values())
    if r.statuses.get("fresh", 0) != total:
        raise AssertionError(
            f"keep_up/{engine}: {total - r.statuses.get('fresh', 0)} of "
            f"{total} queries were not fresh with maintenance keeping pace"
        )
    return _result_dict(r)


def run_overload(config: dict, engine: str, seed: int) -> dict:
    o = config["overload"]
    r = run_served_stream(
        config["dataset"], rounds=config["rounds"],
        queries_per_round=config["queries_per_round"],
        deadline_s=o["deadline_s"],
        batch_cost_s=config["batch_cost_s"],
        max_batch=o["max_batch"],
        pump_batches_per_round=o["pump_batches_per_round"],
        defer_at=o["defer_at"], shed_at=o["shed_at"],
        scale=config["scale"], seed=seed, engine=engine,
    )
    print(r.format())
    _check_common(r, f"overload/{engine}")
    decisions = sum(r.admission.values())
    refused = r.admission.get("deferred", 0) + r.admission.get("shed", 0)
    row = _result_dict(r)
    row["shed_rate"] = refused / decisions if decisions else 0.0
    row["depth_bound"] = o["defer_at"] + r.max_group
    row["latency_budget_s"] = o["deadline_s"] + config["batch_cost_s"]
    if r.max_queue_depth > row["depth_bound"]:
        raise AssertionError(
            f"overload/{engine}: queue depth {r.max_queue_depth} exceeds "
            f"defer_at + largest group = {row['depth_bound']}"
        )
    if r.latency_p99 > row["latency_budget_s"]:
        raise AssertionError(
            f"overload/{engine}: p99 latency {r.latency_p99 * 1e3:.3f} ms "
            f"exceeds budget {row['latency_budget_s'] * 1e3:.3f} ms"
        )
    return row


def run(config: dict, seed: int) -> dict:
    panels = {"keep_up": {}, "overload": {}}
    for engine in ENGINES:
        print(f"== keep-up serving ({config['dataset']}, engine={engine}) ==")
        panels["keep_up"][engine] = run_keep_up(config, engine, seed)
        print(f"\n== sustained overload (engine={engine}) ==")
        panels["overload"][engine] = run_overload(config, engine, seed)
        print()

    contract = {
        "all_runs_view_consistent": True,     # _check_common raises otherwise
        "all_runs_peeling_verified": True,
        "queue_depth_bounded": {
            e: {
                "observed": panels["overload"][e]["max_queue_depth"],
                "bound": panels["overload"][e]["depth_bound"],
            } for e in ENGINES
        },
        "p99_within_budget": {
            e: {
                "observed_s": panels["overload"][e]["latency_p99_s"],
                "budget_s": panels["overload"][e]["latency_budget_s"],
            } for e in ENGINES
        },
        "shed_rate": {e: panels["overload"][e]["shed_rate"] for e in ENGINES},
    }
    return {
        "meta": {
            "benchmark": "serve",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "seed": seed,
            "config": {k: dict(v) if isinstance(v, dict) else v
                       for k, v in config.items()},
        },
        "panels": panels,
        "contract": contract,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke")
    parser.add_argument("--out", type=Path, default=None,
                        help="output JSON path")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    report = run(config, args.seed)

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / "BENCH_serve.json"
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")

    c = report["contract"]
    sheds = ", ".join(f"{e}={c['shed_rate'][e]:.0%}" for e in ENGINES)
    print("contract passed: every run view-consistent + peeling-verified; "
          "queue depth bounded "
          + ", ".join(
              f"{e} {c['queue_depth_bounded'][e]['observed']}"
              f"<={c['queue_depth_bounded'][e]['bound']}" for e in ENGINES)
          + "; p99 within budget; shed rate under overload: " + sheds)
    return 0


if __name__ == "__main__":
    sys.exit(main())
