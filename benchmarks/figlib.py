"""Shared driver for the Figs. 6-12 benchmark modules."""

from __future__ import annotations

from typing import Sequence

from conftest import ROUNDS, SCALE, record

from repro.core.maintainer import make_maintainer
from repro.eval.harness import run_scalability
from repro.eval.tables import format_scalability, format_speedups
from repro.eval.datasets import DATASETS
from repro.graph.batch import BatchProtocol
from repro.parallel.simulated import SimulatedRuntime


def figure_panel(
    name: str,
    datasets: Sequence[str],
    algorithm: str,
    direction: str,
    batch_sizes: Sequence[int],
    maintainer_kwargs: dict | None = None,
) -> None:
    """Regenerate one figure: a simulated runtime-vs-threads panel per
    dataset, one series per batch size, recorded under the figure name."""
    for ds in datasets:
        result = run_scalability(
            ds,
            algorithm,
            direction=direction,
            batch_sizes=tuple(batch_sizes),
            rounds=ROUNDS,
            scale=SCALE,
            maintainer_kwargs=maintainer_kwargs,
        )
        record(name, format_scalability(result))
        record(name, format_speedups(result))


def benchmarked(benchmark, fn) -> None:
    """Run a figure generator exactly once under the benchmark fixture.

    pytest-benchmark's ``--benchmark-only`` mode skips tests that never
    touch the fixture; routing the series generation through
    ``benchmark.pedantic`` keeps the figure regeneration part of the
    prescribed ``pytest benchmarks/ --benchmark-only`` run (and reports
    its wall time as a bonus)."""
    benchmark.pedantic(fn, rounds=1, iterations=1)


def wallclock_round(benchmark, dataset: str, algorithm: str,
                    direction: str, batch_size: int) -> None:
    """pytest-benchmark the real Python wall clock of one protocol round."""
    spec = DATASETS[dataset]
    sub = spec.load(SCALE)
    rt = SimulatedRuntime(profile=spec.profile)
    maintainer = make_maintainer(sub, algorithm, rt)
    proto = BatchProtocol(sub, seed=1)

    if direction == "mixed":
        def one_round():
            prep, mixed, restore = proto.mixed(batch_size)
            maintainer.apply_batch(prep)
            maintainer.apply_batch(mixed)
            maintainer.apply_batch(restore)
    else:
        def one_round():
            deletion, insertion = proto.remove_reinsert(batch_size)
            maintainer.apply_batch(deletion)
            maintainer.apply_batch(insertion)

    benchmark(one_round)
